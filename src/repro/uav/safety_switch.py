"""The Fig. 1 safety architecture: continuous monitoring -> maneuver.

The paper's intended safety architecture is a continuous monitoring loop
that analyses acquisition data and triggers the suitable emergency
procedure when a critical anomaly is detected:

* temporary unavailability of external services  -> **Hovering (H)**
* permanent communication unavailability, or on-board failures still
  allowing proper navigability                   -> **Return-to-Base (RB)**
* loss of navigation capabilities still allowing proper trajectory
  control (mainly localization + communication)  -> **Emergency Landing (EL)**
* flight continuation or safe EL impossible      -> **Flight Termination
  (FT)** — stop the engines and open the parachute.

:func:`select_maneuver` is the stateless decision rule;
:class:`SafetySwitch` adds the temporal behaviour (hover-timeout
escalation of temporary losses, monotone severity latching).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from repro.uav.capability import CapabilityState, ServiceStatus

__all__ = ["Maneuver", "select_maneuver", "SafetySwitch", "SwitchDecision"]


class Maneuver(IntEnum):
    """Emergency maneuvers, ordered by escalation severity."""

    NOMINAL = 0
    HOVER = 1
    RETURN_TO_BASE = 2
    EMERGENCY_LANDING = 3
    FLIGHT_TERMINATION = 4


def select_maneuver(capabilities: CapabilityState) -> Maneuver:
    """Map a capability state to the Fig. 1 maneuver.

    Rules are evaluated from most to least severe, so the strongest
    applicable response wins (FT > EL > RB > H > nominal).
    """
    cap = capabilities

    # FT: flight continuation impossible (no trajectory control) —
    # the only remaining option is to cut engines and open the parachute.
    if not cap.trajectory_controllable():
        return Maneuver.FLIGHT_TERMINATION

    # EL: global navigation is gone but the vehicle can still be flown
    # locally.  If a safe EL is impossible (camera dead, no energy),
    # escalate to FT per the paper's fourth rule.
    if not cap.navigable():
        if cap.safe_el_possible():
            return Maneuver.EMERGENCY_LANDING
        return Maneuver.FLIGHT_TERMINATION

    # RB: permanent communication loss, or degraded on-board systems,
    # while navigation still works.
    if (cap.communication is ServiceStatus.LOST
            or cap.flight_control is ServiceStatus.DEGRADED
            or cap.propulsion is ServiceStatus.DEGRADED
            or not cap.energy_ok):
        return Maneuver.RETURN_TO_BASE

    # H: temporary unavailability of external services.
    if (cap.communication is ServiceStatus.TEMPORARILY_LOST
            or cap.communication is ServiceStatus.DEGRADED
            or cap.navigation is ServiceStatus.DEGRADED):
        return Maneuver.HOVER

    return Maneuver.NOMINAL


@dataclass
class SwitchDecision:
    """One decision record of the safety switch."""

    time_s: float
    maneuver: Maneuver
    capabilities: CapabilityState


@dataclass
class SafetySwitch:
    """Stateful safety switch with hover-timeout escalation.

    Behaviour beyond the stateless rule:

    * **Hover timeout** — a temporary external-service loss that
      persists longer than ``hover_timeout_s`` is treated as permanent
      (the paper's distinction between H and RB/EL is precisely
      temporary vs permanent unavailability).
    * **Severity latching** — an engaged emergency maneuver is never
      de-escalated by a later, less severe assessment; recovering from
      an emergency requires an explicit :meth:`reset` (operator action).
    """

    hover_timeout_s: float = 30.0
    history: list[SwitchDecision] = field(default_factory=list)
    _hover_since_s: float | None = None
    _latched: Maneuver = Maneuver.NOMINAL

    def update(self, capabilities: CapabilityState,
               time_s: float) -> Maneuver:
        """Feed one monitoring-loop sample; returns the active maneuver."""
        maneuver = select_maneuver(capabilities)

        if maneuver is Maneuver.HOVER:
            if self._hover_since_s is None:
                self._hover_since_s = time_s
            elif time_s - self._hover_since_s >= self.hover_timeout_s:
                # Temporary loss has become permanent: escalate.
                escalated = capabilities
                if capabilities.communication is \
                        ServiceStatus.TEMPORARILY_LOST:
                    escalated = escalated.degrade(
                        communication=ServiceStatus.LOST)
                if capabilities.navigation is ServiceStatus.DEGRADED:
                    escalated = escalated.degrade(
                        navigation=ServiceStatus.LOST)
                maneuver = select_maneuver(escalated)
        else:
            self._hover_since_s = None

        if maneuver > self._latched:
            self._latched = maneuver
        decision = SwitchDecision(time_s=time_s, maneuver=self._latched,
                                  capabilities=capabilities)
        self.history.append(decision)
        return self._latched

    @property
    def active_maneuver(self) -> Maneuver:
        """Currently latched maneuver."""
        return self._latched

    def reset(self) -> None:
        """Operator reset after recovery (clears latch and timers)."""
        self._latched = Maneuver.NOMINAL
        self._hover_since_s = None
