"""Air Risk Class (ARC) determination — SORA v2.0, simplified decision tree.

Only the elements the paper's case study exercises are modelled: the
initial ARC from airspace characteristics, and (optionally) strategic
reductions.  MEDI DELIVERY flies below 500 ft over a populated area in
uncontrolled airspace, giving ARC-c; the paper assumes a segregated
corridor for containment but claims no ARC reduction, so the residual
ARC remains ARC-c.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

__all__ = ["ARC", "AirspaceEnvironment", "initial_arc", "apply_strategic_arc_mitigation"]


class ARC(IntEnum):
    """Air risk classes, ordered by increasing encounter risk."""

    A = 1
    B = 2
    C = 3
    D = 4

    def __str__(self) -> str:  # ARC-a .. ARC-d, as written in the paper
        return f"ARC-{self.name.lower()}"


@dataclass(frozen=True)
class AirspaceEnvironment:
    """Airspace characteristics relevant to the initial-ARC decision."""

    max_height_ft: float = 400.0
    controlled_airspace: bool = False
    over_urban: bool = True
    near_aerodrome: bool = False
    atypical_segregated: bool = False

    def __post_init__(self):
        if self.max_height_ft <= 0:
            raise ValueError("max_height_ft must be positive")


def initial_arc(env: AirspaceEnvironment) -> ARC:
    """Initial ARC from the SORA decision tree (simplified).

    * atypical / segregated airspace               -> ARC-a
    * controlled airspace, near an aerodrome, or
      above 500 ft                                 -> ARC-d
    * below 500 ft, uncontrolled, over urban area  -> ARC-c
    * below 500 ft, uncontrolled, rural            -> ARC-b
    """
    if env.atypical_segregated:
        return ARC.A
    if env.controlled_airspace or env.near_aerodrome or \
            env.max_height_ft > 500.0:
        return ARC.D
    if env.over_urban:
        return ARC.C
    return ARC.B


def apply_strategic_arc_mitigation(arc: ARC, reduction_levels: int = 0,
                                   floor: ARC = ARC.B) -> ARC:
    """Apply strategic air-risk mitigations (e.g. operational restrictions).

    The SORA allows lowering the ARC with strategic mitigations, but the
    residual class may not drop below the local air-traffic reality
    (``floor``; ARC-b by default, ARC-a only for genuinely atypical
    airspace).  The paper's corridor provides *containment*, not
    reduction — reduction_levels = 0 keeps ARC-c.
    """
    if reduction_levels < 0:
        raise ValueError("reduction_levels must be non-negative")
    reduced = max(int(arc) - reduction_levels, int(floor))
    return ARC(reduced)
