"""Segmentation quality metrics (confusion matrix, IoU, accuracy).

Used for the Fig. 4 reproduction: quantifying that the core model is
good on in-distribution imagery and degrades under the sunset shift,
which is the premise the runtime monitor exists to handle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "confusion_matrix",
    "iou_per_class",
    "mean_iou",
    "pixel_accuracy",
    "SegmentationReport",
    "evaluate_predictions",
]


def confusion_matrix(predictions: np.ndarray, targets: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """``(num_classes, num_classes)`` matrix; rows = target, cols = pred."""
    predictions = np.asarray(predictions).reshape(-1)
    targets = np.asarray(targets).reshape(-1)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape}, "
            f"targets {targets.shape}")
    valid = (targets >= 0) & (targets < num_classes) & \
        (predictions >= 0) & (predictions < num_classes)
    index = targets[valid].astype(np.int64) * num_classes \
        + predictions[valid].astype(np.int64)
    counts = np.bincount(index, minlength=num_classes * num_classes)
    return counts.reshape(num_classes, num_classes)


def iou_per_class(confusion: np.ndarray) -> np.ndarray:
    """Per-class intersection-over-union; NaN for absent classes."""
    confusion = np.asarray(confusion, dtype=np.float64)
    inter = np.diag(confusion)
    union = confusion.sum(axis=0) + confusion.sum(axis=1) - inter
    with np.errstate(invalid="ignore", divide="ignore"):
        iou = inter / union
    iou[union == 0] = np.nan
    return iou


def mean_iou(confusion: np.ndarray) -> float:
    """Mean IoU over classes present in targets or predictions."""
    iou = iou_per_class(confusion)
    if np.isnan(iou).all():
        return float("nan")
    return float(np.nanmean(iou))


def pixel_accuracy(confusion: np.ndarray) -> float:
    """Fraction of correctly classified pixels."""
    confusion = np.asarray(confusion, dtype=np.float64)
    total = confusion.sum()
    if total == 0:
        return float("nan")
    return float(np.diag(confusion).sum() / total)


@dataclass(frozen=True)
class SegmentationReport:
    """Aggregated evaluation result over a sample set."""

    confusion: np.ndarray
    iou: np.ndarray
    miou: float
    accuracy: float
    num_pixels: int

    def class_iou(self, class_id: int) -> float:
        return float(self.iou[int(class_id)])


def evaluate_predictions(pairs, num_classes: int) -> SegmentationReport:
    """Evaluate an iterable of ``(predicted_labels, target_labels)``."""
    total = np.zeros((num_classes, num_classes), dtype=np.int64)
    n_pixels = 0
    for pred, target in pairs:
        total += confusion_matrix(pred, target, num_classes)
        n_pixels += int(np.asarray(target).size)
    return SegmentationReport(
        confusion=total,
        iou=iou_per_class(total),
        miou=mean_iou(total),
        accuracy=pixel_accuracy(total),
        num_pixels=n_pixels,
    )
