"""UAV simulation substrate: vehicle, ballistics, failures, safety switch,
missions.

Implements the paper's MEDI DELIVERY case study end to end: the vehicle
parameters of Sec. III-A (with the exact ballistic figures), Belcastro-
style failure injection, the Fig. 1 safety-switch state machine
(H / RB / EL / FT) and a Monte-Carlo mission simulator that measures
Table II outcome frequencies under different emergency-landing policies.
"""

from repro.uav.ballistics import (
    GRAVITY,
    DriftModel,
    ballistic_impact_energy,
    descent_time,
    free_fall_speed,
    kinetic_energy,
    parachute_drift,
    parachute_impact_energy,
)
from repro.uav.capability import (
    NOMINAL_CAPABILITIES,
    CapabilityState,
    ServiceStatus,
)
from repro.uav.failures import (
    BELCASTRO_CATEGORY,
    FailureEvent,
    FailureInjector,
    FailureType,
    apply_failure,
)
from repro.uav.mission import (
    CampaignStats,
    ELPolicy,
    MissionConfig,
    MissionResult,
    run_campaign,
    simulate_mission,
)
from repro.uav.safety_switch import (
    Maneuver,
    SafetySwitch,
    SwitchDecision,
    select_maneuver,
)
from repro.uav.vehicle import MEDI_DELIVERY, UavState, VehicleParams, step_towards

__all__ = [
    "GRAVITY",
    "free_fall_speed",
    "kinetic_energy",
    "ballistic_impact_energy",
    "descent_time",
    "parachute_drift",
    "parachute_impact_energy",
    "DriftModel",
    "ServiceStatus",
    "CapabilityState",
    "NOMINAL_CAPABILITIES",
    "FailureType",
    "FailureEvent",
    "FailureInjector",
    "apply_failure",
    "BELCASTRO_CATEGORY",
    "Maneuver",
    "select_maneuver",
    "SafetySwitch",
    "SwitchDecision",
    "VehicleParams",
    "MEDI_DELIVERY",
    "UavState",
    "step_towards",
    "MissionConfig",
    "MissionResult",
    "simulate_mission",
    "CampaignStats",
    "run_campaign",
    "ELPolicy",
]
