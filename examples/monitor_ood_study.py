#!/usr/bin/env python3
"""The Fig. 4 study: in-distribution vs out-of-distribution monitoring.

Reproduces the paper's headline qualitative result, quantified:

* Fig. 4a — on an unseen *daylight* frame the model segments well and
  the monitor stays quiet on safe crops.
* Fig. 4b — on the same districts at *sunset* the model fails (road IoU
  collapses), and the monitor flags a large part of the road area the
  model missed — while still missing some (as the paper admits).

Also writes PPM/PGM visualisations (image, predictions, monitor flags)
to ``examples/output/`` so the result can be inspected visually.

Run:  python examples/monitor_ood_study.py
"""

from pathlib import Path

import numpy as np

from repro.core import RuntimeMonitor
from repro.dataset import PALETTE, busy_road_mask
from repro.eval import build_trained_system, fig4_experiment, format_table
from repro.utils import colorize_labels, write_pgm, write_ppm

OUTPUT_DIR = Path(__file__).parent / "output"

#: The paper's OOD case, named via the scenario registry.
OOD_SCENARIO = "sunset_ood"


def dump_frame(tag: str, system, monitor: RuntimeMonitor, sample) -> None:
    """Write image / prediction / monitor visualisations for one frame."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    pred = system.model.predict_labels(sample.image)
    unsafe = monitor.full_frame_unsafe(sample.image)
    write_ppm(OUTPUT_DIR / f"{tag}_image.ppm", sample.image)
    write_ppm(OUTPUT_DIR / f"{tag}_gt.ppm",
              colorize_labels(sample.labels, PALETTE))
    write_ppm(OUTPUT_DIR / f"{tag}_pred.ppm", colorize_labels(pred, PALETTE))
    write_pgm(OUTPUT_DIR / f"{tag}_monitor_unsafe.pgm",
              unsafe.astype(np.float64))


def main() -> None:
    system = build_trained_system(verbose=True)
    monitor = RuntimeMonitor(system.make_segmenter(rng=0),
                             system.monitor_config())

    results = fig4_experiment(system, condition=OOD_SCENARIO)
    rows = []
    for name, label in (("in_distribution", "Fig.4a day (test set)"),
                        ("ood", "Fig.4b sunset (OOD)")):
        r = results[name]
        rows.append([label, f"{r['miou']:.3f}", f"{r['road_iou']:.3f}",
                     f"{r['model_miss_rate']:.3f}",
                     f"{r['monitor_catch_rate']:.3f}",
                     f"{r['residual_miss_rate']:.3f}",
                     f"{r['false_alarm_rate']:.3f}"])
    print(format_table(
        ["frame set", "mIoU", "road IoU", "model miss", "monitor catch",
         "residual miss", "false alarm"],
        rows, title="Fig. 4 quantified (busy-road pixel statistics):"))

    # Per-crop demonstration, mirroring the three sub-images of Fig. 4.
    sample = system.ood_samples(OOD_SCENARIO)[0]
    from repro.core import LandingZoneSelector
    selector = LandingZoneSelector(system.selector_config())
    clearance = selector.clearance_map_m(sample.labels)
    print("\nper-crop verdicts on one sunset frame "
          "(ground truth used to pick illustrative crops):")
    from repro.utils import Box
    h, w = sample.labels.shape
    crops = {
        "road crop (should warn)": Box.from_center(
            *np.unravel_index(
                np.argmax(busy_road_mask(sample.labels)), (h, w)),
            16, 16).clip_to(h, w),
        "safest crop (should stay quiet)": Box.from_center(
            *np.unravel_index(np.argmax(clearance), (h, w)),
            16, 16).clip_to(h, w),
    }
    for name, box in crops.items():
        verdict = monitor.check_zone(sample.image, box)
        print(f"  {name:34s} unsafe fraction "
              f"{verdict.unsafe_fraction:.3f} -> "
              f"{'REJECT' if not verdict.accepted else 'confirm'}")

    print("\nwriting visualisations to examples/output/ ...")
    dump_frame("day", system, monitor, system.test_samples[0])
    dump_frame("sunset", system, monitor, sample)
    print("done; view the .ppm/.pgm files with any image viewer.")


if __name__ == "__main__":
    main()
