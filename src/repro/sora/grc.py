"""Intrinsic Ground Risk Class (GRC) determination — SORA v2.0 Table 2.

The intrinsic GRC is read from a table indexed by the UAS dimension
class (max characteristic dimension *and* typical kinetic energy — the
more demanding of the two governs) and the operational scenario.

For MEDI DELIVERY (Sec. III-D): the span is ~1 m but the ballistic
kinetic energy of 8.23 kJ exceeds the 700 J bound of the 1 m column, so
the 3 m column applies; BVLOS over a populated environment then yields
an intrinsic GRC of 6 — the paper's number.
"""

from __future__ import annotations

from enum import Enum, IntEnum

from repro.utils.validation import check_positive

__all__ = [
    "UasDimensionClass",
    "OperationalScenario",
    "dimension_class",
    "intrinsic_grc",
    "OutOfSoraScopeError",
    "GRC_TABLE",
    "MAX_SPECIFIC_GRC",
]


class OutOfSoraScopeError(ValueError):
    """The operation falls outside the SORA specific category."""


class UasDimensionClass(IntEnum):
    """Columns of the intrinsic-GRC table: dimension / energy bands."""

    D1M = 0      # 1 m   / < 700 J
    D3M = 1      # 3 m   / < 34 kJ
    D8M = 2      # 8 m   / < 1084 kJ
    D8M_PLUS = 3  # > 8 m / > 1084 kJ


#: (max dimension m, max typical kinetic energy J) per class.
_DIMENSION_BOUNDS = (
    (1.0, 700.0),
    (3.0, 34_000.0),
    (8.0, 1_084_000.0),
    (float("inf"), float("inf")),
)


class OperationalScenario(Enum):
    """Rows of the intrinsic-GRC table."""

    VLOS_CONTROLLED = "VLOS over controlled ground area"
    BVLOS_CONTROLLED = "BVLOS over controlled ground area"
    VLOS_SPARSE = "VLOS in sparsely populated environment"
    BVLOS_SPARSE = "BVLOS in sparsely populated environment"
    VLOS_POPULATED = "VLOS in populated environment"
    BVLOS_POPULATED = "BVLOS in populated environment"
    VLOS_ASSEMBLY = "VLOS over gathering of people"
    BVLOS_ASSEMBLY = "BVLOS over gathering of people"


#: SORA v2.0 Table 2.  ``None`` marks out-of-scope combinations
#: (gatherings of people with larger aircraft are not SORA-assessable).
GRC_TABLE: dict[OperationalScenario, tuple[int | None, ...]] = {
    OperationalScenario.VLOS_CONTROLLED: (1, 2, 3, 4),
    OperationalScenario.BVLOS_CONTROLLED: (1, 2, 3, 4),
    OperationalScenario.VLOS_SPARSE: (2, 3, 4, 5),
    OperationalScenario.BVLOS_SPARSE: (3, 4, 5, 6),
    OperationalScenario.VLOS_POPULATED: (4, 5, 6, 8),
    OperationalScenario.BVLOS_POPULATED: (5, 6, 8, 10),
    OperationalScenario.VLOS_ASSEMBLY: (7, None, None, None),
    OperationalScenario.BVLOS_ASSEMBLY: (8, None, None, None),
}

#: GRC values above this leave the specific category (-> certified).
MAX_SPECIFIC_GRC = 7


def dimension_class(span_m: float,
                    kinetic_energy_j: float) -> UasDimensionClass:
    """Dimension class from span and typical kinetic energy.

    Each band must satisfy *both* bounds; the first band accommodating
    both governs (e.g. a 1 m / 8.23 kJ vehicle lands in the 3 m class).
    """
    check_positive("span_m", span_m)
    check_positive("kinetic_energy_j", kinetic_energy_j)
    for cls in UasDimensionClass:
        max_dim, max_energy = _DIMENSION_BOUNDS[cls]
        if span_m <= max_dim and kinetic_energy_j <= max_energy:
            return cls
    return UasDimensionClass.D8M_PLUS  # pragma: no cover (inf bounds)


def intrinsic_grc(scenario: OperationalScenario,
                  dim_class: UasDimensionClass) -> int:
    """Intrinsic GRC for a scenario/dimension combination.

    Raises :class:`OutOfSoraScopeError` for combinations the SORA does
    not cover (large aircraft over assemblies of people).
    """
    value = GRC_TABLE[OperationalScenario(scenario)][
        UasDimensionClass(dim_class)]
    if value is None:
        raise OutOfSoraScopeError(
            f"{scenario.value} with dimension class "
            f"{UasDimensionClass(dim_class).name} is outside the SORA "
            "specific category")
    return value
