"""FIG-1 bench: the safety-switch architecture under failure injection.

Paper artefact: Fig. 1 — the four emergency procedures (H / RB / EL /
FT) and the rules mapping anomalies to them.  Expectation: exact
maneuver per the paper's four textual rules for every failure mode in
the catalogue, and the priority ordering FT > EL > RB > H over a random
capability sweep.
"""

import numpy as np

from repro.eval.reporting import format_table, format_title
from repro.uav import (
    BELCASTRO_CATEGORY,
    FailureType,
    Maneuver,
    NOMINAL_CAPABILITIES,
    apply_failure,
    select_maneuver,
)

EXPECTED = {
    FailureType.GPS_LOSS: Maneuver.EMERGENCY_LANDING,
    FailureType.GPS_DEGRADED: Maneuver.HOVER,
    FailureType.COMM_LOSS_TEMPORARY: Maneuver.HOVER,
    FailureType.COMM_LOSS_PERMANENT: Maneuver.RETURN_TO_BASE,
    FailureType.NAVIGATION_AND_COMM_LOSS: Maneuver.EMERGENCY_LANDING,
    FailureType.MOTOR_FAILURE: Maneuver.FLIGHT_TERMINATION,
    FailureType.FLIGHT_CONTROL_LOSS: Maneuver.FLIGHT_TERMINATION,
    FailureType.BATTERY_CRITICAL: Maneuver.RETURN_TO_BASE,
    FailureType.CAMERA_FAILURE: Maneuver.NOMINAL,
    FailureType.AVIONICS_DEGRADED: Maneuver.RETURN_TO_BASE,
}


def test_fig1_failure_to_maneuver_mapping(benchmark, emit):
    def evaluate_catalogue():
        return {f: select_maneuver(apply_failure(NOMINAL_CAPABILITIES, f))
                for f in FailureType}

    mapping = benchmark(evaluate_catalogue)

    emit("\n" + format_title(
        "FIG-1: Safety switch — failure to maneuver mapping"))
    rows = [[f.value, BELCASTRO_CATEGORY[f], mapping[f].name,
             EXPECTED[f].name]
            for f in FailureType]
    emit(format_table(
        ["failure", "Belcastro category", "maneuver", "expected"], rows))

    assert mapping == EXPECTED


def test_fig1_compound_failures_priority(benchmark, emit):
    """Random multi-failure scenarios: the strongest rule always wins."""
    rng = np.random.default_rng(0)
    failures = list(FailureType)

    def sweep():
        maneuvers = []
        for _ in range(300):
            cap = NOMINAL_CAPABILITIES
            count = int(rng.integers(1, 4))
            chosen = rng.choice(len(failures), size=count, replace=False)
            for idx in chosen:
                cap = apply_failure(cap, failures[int(idx)])
            maneuvers.append((cap, select_maneuver(cap)))
        return maneuvers

    maneuvers = benchmark(sweep)

    counts = {}
    for _, maneuver in maneuvers:
        counts[maneuver.name] = counts.get(maneuver.name, 0) + 1
    emit(format_table(["maneuver", "count"],
                      sorted(counts.items()),
                      title="\nmaneuver distribution over 300 random "
                            "compound failures:"))

    for cap, maneuver in maneuvers:
        # FT whenever trajectory control is gone or no safe EL exists
        # while navigation is lost — the paper's fourth rule.
        if not cap.trajectory_controllable():
            assert maneuver is Maneuver.FLIGHT_TERMINATION
        elif not cap.navigable() and not cap.safe_el_possible():
            assert maneuver is Maneuver.FLIGHT_TERMINATION
        elif not cap.navigable():
            assert maneuver is Maneuver.EMERGENCY_LANDING
