"""Monte-Carlo mission simulator: failures -> maneuvers -> outcomes.

Closes the loop of the paper's safety argument: a MEDI DELIVERY vehicle
flies a delivery route over a procedural urban scene; a failure strikes;
the Fig. 1 safety switch selects a maneuver; if Emergency Landing is
engaged, an EL policy (e.g. the paper's monitored segmentation pipeline)
chooses the touchdown zone; the parachute descent drifts with the wind;
and the touchdown footprint is classified into the Table II outcome.

Campaigns over many seeded missions measure the quantity the SORA
integrity argument is about — the probability of severe ground-risk
outcomes — with and without EL, with and without the runtime monitor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.dataset.conditions import DAY, ImagingConditions
from repro.dataset.render import render_scene_window
from repro.dataset.scene import UrbanScene
from repro.sora.hazard import (
    Severity,
    TouchdownAssessment,
    classify_touchdown,
)
from repro.uav.ballistics import (
    ballistic_impact_energy,
    parachute_drift,
    parachute_impact_energy,
)
from repro.uav.capability import NOMINAL_CAPABILITIES
from repro.uav.failures import FailureEvent, apply_failure
from repro.uav.safety_switch import Maneuver, SafetySwitch
from repro.uav.vehicle import MEDI_DELIVERY, UavState, VehicleParams, step_towards
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive

__all__ = [
    "ELPolicy",
    "MissionConfig",
    "MissionResult",
    "simulate_mission",
    "CampaignStats",
    "run_campaign",
]

#: An EL policy maps a camera frame (CHW float image) to a landing-zone
#: centre in window pixel coordinates, or ``None`` to abort (-> FT).
ELPolicy = Callable[[np.ndarray], "tuple[float, float] | None"]


@dataclass(frozen=True)
class MissionConfig:
    """Parameters of one simulated delivery mission."""

    route_m: tuple[tuple[float, float], ...] = ((30.0, 30.0),
                                                (226.0, 226.0))
    dt_s: float = 1.0
    max_time_s: float = 600.0
    wind_speed_ms: float = 4.0
    wind_direction_rad: float = 0.8
    camera_shape_px: tuple[int, int] = (96, 128)
    camera_gsd_m: float = 1.0
    conditions: ImagingConditions = DAY
    hover_timeout_s: float = 20.0
    nav_error_sigma_m: float = 4.0
    footprint_margin_m: float = 0.5

    def __post_init__(self):
        if len(self.route_m) < 2:
            raise ValueError("route needs at least two waypoints")
        check_positive("dt_s", self.dt_s)
        check_positive("max_time_s", self.max_time_s)
        check_positive("camera_gsd_m", self.camera_gsd_m)

    def wind_xy(self) -> tuple[float, float]:
        return (self.wind_speed_ms * math.cos(self.wind_direction_rad),
                self.wind_speed_ms * math.sin(self.wind_direction_rad))


@dataclass
class MissionResult:
    """Everything observable about one mission."""

    completed: bool
    final_maneuver: Maneuver
    failure: FailureEvent | None
    touchdown_xy_m: tuple[float, float] | None
    parachute_used: bool
    assessment: TouchdownAssessment | None
    el_attempted: bool
    el_zone_found: bool
    flight_time_s: float
    events: list[str] = field(default_factory=list)

    @property
    def severity(self) -> Severity:
        if self.assessment is None:
            return Severity.NEGLIGIBLE
        return self.assessment.severity


def _scene_cell(scene: UrbanScene, x_m: float, y_m: float
                ) -> tuple[float, float]:
    """World metres -> scene grid (row, col); x is col-axis, y row-axis."""
    gsd = scene.config.gsd
    return (y_m / gsd, x_m / gsd)


def _touchdown_assessment(scene: UrbanScene, vehicle: VehicleParams,
                          x_m: float, y_m: float, parachute: bool,
                          config: MissionConfig,
                          fall_height_m: float) -> TouchdownAssessment:
    """Classify the footprint under a touchdown point."""
    row, col = _scene_cell(scene, x_m, y_m)
    radius_m = vehicle.span_m / 2.0 + config.footprint_margin_m
    radius_cells = max(1.0, radius_m / scene.config.gsd)
    h, w = scene.labels.shape
    r0 = int(np.clip(math.floor(row - radius_cells), 0, h - 1))
    r1 = int(np.clip(math.ceil(row + radius_cells), 1, h))
    c0 = int(np.clip(math.floor(col - radius_cells), 0, w - 1))
    c1 = int(np.clip(math.ceil(col + radius_cells), 1, w))
    rows = np.arange(r0, r1)[:, None]
    cols = np.arange(c0, c1)[None, :]
    disk = (rows - row) ** 2 + (cols - col) ** 2 <= radius_cells ** 2
    footprint = scene.labels[r0:r1, c0:c1][disk]
    if footprint.size == 0:
        footprint = scene.labels[int(np.clip(row, 0, h - 1)),
                                 int(np.clip(col, 0, w - 1))].reshape(1)
    energy = (parachute_impact_energy(vehicle.mtow_kg,
                                      vehicle.parachute_descent_rate_ms)
              if parachute
              else ballistic_impact_energy(vehicle.mtow_kg, fall_height_m))
    return classify_touchdown(footprint, parachute, energy)


def _parachute_touchdown(x_m: float, y_m: float, height_m: float,
                         vehicle: VehicleParams, config: MissionConfig,
                         rng: np.random.Generator
                         ) -> tuple[float, float]:
    """Touchdown point of a canopy descent from (x, y, height)."""
    drift = parachute_drift(height_m, vehicle.parachute_descent_rate_ms,
                            config.wind_speed_ms)
    # Gust variability around the mean drift.
    drift *= float(rng.uniform(0.6, 1.4))
    angle = config.wind_direction_rad + float(rng.normal(0.0, 0.15))
    return (x_m + drift * math.cos(angle), y_m + drift * math.sin(angle))


def simulate_mission(scene: UrbanScene,
                     config: MissionConfig | None = None,
                     vehicle: VehicleParams = MEDI_DELIVERY,
                     failure: FailureEvent | None = None,
                     el_policy: ELPolicy | None = None,
                     rng=None) -> MissionResult:
    """Simulate one mission over ``scene``.

    Parameters
    ----------
    failure:
        The failure to inject, or ``None`` for an uneventful mission.
    el_policy:
        Landing-zone policy used when the safety switch engages EL;
        ``None`` means the vehicle has no EL capability, so a situation
        calling for EL escalates to Flight Termination in place — the
        paper's status quo ante.
    """
    config = config or MissionConfig()
    rng = ensure_rng(rng)
    events: list[str] = []

    state = UavState(x_m=config.route_m[0][0], y_m=config.route_m[0][1],
                     height_m=vehicle.cruise_height_m,
                     energy_wh=vehicle.battery_capacity_wh)
    switch = SafetySwitch(hover_timeout_s=config.hover_timeout_s)
    capabilities = NOMINAL_CAPABILITIES
    wind = config.wind_xy()

    waypoint_idx = 1
    failure_applied = failure is None
    el_attempted = False
    el_zone_found = False
    el_target: tuple[float, float] | None = None

    def finish_touchdown(x: float, y: float, parachute: bool,
                         fall_height: float,
                         maneuver: Maneuver) -> MissionResult:
        assessment = _touchdown_assessment(scene, vehicle, x, y,
                                           parachute, config, fall_height)
        events.append(
            f"touchdown at ({x:.0f}, {y:.0f}) severity "
            f"{assessment.severity.name}")
        return MissionResult(
            completed=False, final_maneuver=maneuver, failure=failure,
            touchdown_xy_m=(x, y), parachute_used=parachute,
            assessment=assessment, el_attempted=el_attempted,
            el_zone_found=el_zone_found, flight_time_s=state.time_s,
            events=events)

    while state.time_s < config.max_time_s:
        # --- failure injection -----------------------------------------
        if not failure_applied and state.time_s >= failure.time_s:
            capabilities = apply_failure(capabilities, failure.failure)
            failure_applied = True
            events.append(
                f"t={state.time_s:.0f}s failure {failure.failure.value}")

        if state.energy_wh <= 0 and capabilities.energy_ok:
            capabilities = capabilities.degrade(energy_ok=False)
            events.append(f"t={state.time_s:.0f}s battery exhausted")

        maneuver = switch.update(capabilities, state.time_s)

        # --- maneuver execution -----------------------------------------
        if maneuver is Maneuver.FLIGHT_TERMINATION:
            events.append(f"t={state.time_s:.0f}s FT engaged")
            x, y = _parachute_touchdown(state.x_m, state.y_m,
                                        state.height_m, vehicle, config,
                                        rng)
            return finish_touchdown(x, y, parachute=True,
                                    fall_height=state.height_m,
                                    maneuver=maneuver)

        if maneuver is Maneuver.EMERGENCY_LANDING:
            if el_policy is None:
                events.append(
                    f"t={state.time_s:.0f}s EL required but unavailable "
                    "-> FT")
                x, y = _parachute_touchdown(state.x_m, state.y_m,
                                            state.height_m, vehicle,
                                            config, rng)
                return finish_touchdown(
                    x, y, parachute=True, fall_height=state.height_m,
                    maneuver=Maneuver.FLIGHT_TERMINATION)

            if el_target is None and not el_attempted:
                el_attempted = True
                center = _scene_cell(scene, state.x_m, state.y_m)
                try:
                    image, _ = render_scene_window(
                        scene, center, config.camera_shape_px,
                        config.camera_gsd_m, config.conditions,
                        rng=rng)
                    zone_px = el_policy(image)
                except Exception as exc:  # pragma: no cover - defensive
                    events.append(f"EL policy error: {exc}")
                    zone_px = None
                if zone_px is None:
                    events.append(
                        f"t={state.time_s:.0f}s EL aborted (no safe "
                        "zone) -> FT")
                    x, y = _parachute_touchdown(state.x_m, state.y_m,
                                                state.height_m, vehicle,
                                                config, rng)
                    return finish_touchdown(
                        x, y, parachute=True, fall_height=state.height_m,
                        maneuver=Maneuver.FLIGHT_TERMINATION)
                el_zone_found = True
                # Window pixel -> world offset from current position.
                dr = (zone_px[0] - (config.camera_shape_px[0] - 1) / 2.0)
                dc = (zone_px[1] - (config.camera_shape_px[1] - 1) / 2.0)
                el_target = (state.x_m + dc * config.camera_gsd_m,
                             state.y_m + dr * config.camera_gsd_m)
                events.append(
                    f"t={state.time_s:.0f}s EL zone selected at "
                    f"({el_target[0]:.0f}, {el_target[1]:.0f})")

            if el_target is not None:
                # Degraded navigation: wind only partially rejected and
                # position error accumulates.
                nav_noise = rng.normal(
                    0.0, config.nav_error_sigma_m * config.dt_s / 10.0,
                    size=2)
                state = step_towards(
                    state, el_target, config.dt_s,
                    vehicle.emergency_speed_ms,
                    wind_xy_ms=(wind[0] + nav_noise[0] / config.dt_s,
                                wind[1] + nav_noise[1] / config.dt_s),
                    wind_rejection=0.8,
                    power_w=vehicle.hover_power_w)
                reached = math.hypot(state.x_m - el_target[0],
                                     state.y_m - el_target[1]) < 2.0
                if reached:
                    # Controlled descent, then canopy from release height.
                    release_h = max(vehicle.parachute_min_height_m, 40.0)
                    nav_err = rng.normal(0.0, config.nav_error_sigma_m,
                                         size=2)
                    x, y = _parachute_touchdown(
                        el_target[0] + nav_err[0],
                        el_target[1] + nav_err[1],
                        release_h, vehicle, config, rng)
                    events.append(
                        f"t={state.time_s:.0f}s EL parachute from "
                        f"{release_h:.0f} m")
                    return finish_touchdown(x, y, parachute=True,
                                            fall_height=release_h,
                                            maneuver=maneuver)
                continue

        if maneuver is Maneuver.RETURN_TO_BASE:
            state = step_towards(state, config.route_m[0], config.dt_s,
                                 vehicle.cruise_speed_ms, wind_xy_ms=wind,
                                 wind_rejection=1.0,
                                 power_w=vehicle.cruise_power_w)
            if math.hypot(state.x_m - config.route_m[0][0],
                          state.y_m - config.route_m[0][1]) < 3.0:
                events.append(f"t={state.time_s:.0f}s landed at base")
                return MissionResult(
                    completed=True, final_maneuver=maneuver,
                    failure=failure, touchdown_xy_m=config.route_m[0],
                    parachute_used=False, assessment=None,
                    el_attempted=el_attempted,
                    el_zone_found=el_zone_found,
                    flight_time_s=state.time_s, events=events)
            continue

        if maneuver is Maneuver.HOVER:
            state = step_towards(state, state.position(), config.dt_s,
                                 0.0, wind_xy_ms=wind, wind_rejection=0.9,
                                 power_w=vehicle.hover_power_w)
            continue

        # --- nominal route following ------------------------------------
        target = config.route_m[waypoint_idx]
        state = step_towards(state, target, config.dt_s,
                             vehicle.cruise_speed_ms, wind_xy_ms=wind,
                             wind_rejection=1.0,
                             power_w=vehicle.cruise_power_w)
        if math.hypot(state.x_m - target[0], state.y_m - target[1]) < 3.0:
            waypoint_idx += 1
            if waypoint_idx >= len(config.route_m):
                events.append(f"t={state.time_s:.0f}s mission complete")
                return MissionResult(
                    completed=True, final_maneuver=Maneuver.NOMINAL,
                    failure=failure, touchdown_xy_m=target,
                    parachute_used=False, assessment=None,
                    el_attempted=el_attempted,
                    el_zone_found=el_zone_found,
                    flight_time_s=state.time_s, events=events)

    # Time budget exhausted (e.g. hover against the wind): treat as
    # battery exhaustion -> FT where the vehicle is.
    events.append("mission time budget exhausted -> FT")
    x, y = _parachute_touchdown(state.x_m, state.y_m, state.height_m,
                                vehicle, config, rng)
    return finish_touchdown(x, y, parachute=True,
                            fall_height=state.height_m,
                            maneuver=Maneuver.FLIGHT_TERMINATION)


@dataclass
class CampaignStats:
    """Aggregate statistics over a mission campaign."""

    num_missions: int = 0
    severity_counts: dict[Severity, int] = field(default_factory=dict)
    outcome_counts: dict[str, int] = field(default_factory=dict)
    maneuver_counts: dict[Maneuver, int] = field(default_factory=dict)
    el_attempts: int = 0
    el_aborts: int = 0
    completed: int = 0

    def record(self, result: MissionResult) -> None:
        self.num_missions += 1
        sev = result.severity
        self.severity_counts[sev] = self.severity_counts.get(sev, 0) + 1
        if result.assessment is not None and \
                result.assessment.outcome is not None:
            key = result.assessment.outcome.value
            self.outcome_counts[key] = self.outcome_counts.get(key, 0) + 1
        man = result.final_maneuver
        self.maneuver_counts[man] = self.maneuver_counts.get(man, 0) + 1
        if result.el_attempted:
            self.el_attempts += 1
            if not result.el_zone_found:
                self.el_aborts += 1
        if result.completed:
            self.completed += 1

    def severe_fraction(self) -> float:
        """Fraction of missions ending with severity >= Major."""
        if self.num_missions == 0:
            return 0.0
        severe = sum(count for sev, count in self.severity_counts.items()
                     if sev >= Severity.MAJOR)
        return severe / self.num_missions

    def mean_severity(self) -> float:
        if self.num_missions == 0:
            return float("nan")
        total = sum(int(sev) * count
                    for sev, count in self.severity_counts.items())
        return total / self.num_missions


def run_campaign(scenes: list[UrbanScene],
                 failures: list[FailureEvent],
                 config: MissionConfig | None = None,
                 vehicle: VehicleParams = MEDI_DELIVERY,
                 el_policy: ELPolicy | None = None,
                 seed=0) -> CampaignStats:
    """Run one mission per (scene, failure) pair and aggregate stats."""
    if len(scenes) != len(failures):
        raise ValueError("need one failure event per scene")
    rng = ensure_rng(seed)
    stats = CampaignStats()
    for scene, failure in zip(scenes, failures):
        result = simulate_mission(scene, config=config, vehicle=vehicle,
                                  failure=failure, el_policy=el_policy,
                                  rng=rng)
        stats.record(result)
    return stats
