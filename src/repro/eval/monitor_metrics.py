"""Monitor-effectiveness metrics (the quantitative Fig. 4).

The paper's Fig. 4 result is qualitative: "the monitor seems to be able
to trigger uncertainty warnings for a large part of the road areas that
were not covered by the core model", while "no warning is raised" on a
clearly safe crop.  These metrics quantify exactly that:

* **model miss** — a busy-road pixel the deterministic model classified
  as safe (the dangerous error mode);
* **monitor catch rate** — the fraction of model misses flagged unsafe
  by Eq. (2);
* **false-alarm rate** — truly safe pixels flagged unsafe (the paper's
  conservatism: expected to be non-trivial by design);
* **residual miss rate** — road pixels that pass both the model and the
  monitor (the paper admits "many regions containing roads are missed
  by the monitor"; this measures how many).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.classes import BUSY_ROAD_CLASSES, busy_road_mask, class_mask
from repro.segmentation.bayesian import PixelDistribution
from repro.utils.geometry import Box

__all__ = [
    "MonitorPixelStats",
    "pixel_monitor_stats",
    "tau_sweep",
    "zone_truly_unsafe",
    "accumulate_stats",
]


@dataclass
class MonitorPixelStats:
    """Pixel-level confusion between model, monitor and ground truth."""

    road_pixels: int = 0
    model_missed_road: int = 0
    monitor_caught: int = 0
    safe_pixels: int = 0
    false_alarms: int = 0
    residual_missed: int = 0

    # ------------------------------------------------------------------
    @property
    def model_miss_rate(self) -> float:
        """Fraction of true busy-road pixels the core model misses."""
        return self._ratio(self.model_missed_road, self.road_pixels)

    @property
    def monitor_catch_rate(self) -> float:
        """Fraction of model misses flagged by the monitor."""
        return self._ratio(self.monitor_caught, self.model_missed_road)

    @property
    def false_alarm_rate(self) -> float:
        """Fraction of truly safe pixels flagged unsafe."""
        return self._ratio(self.false_alarms, self.safe_pixels)

    @property
    def residual_miss_rate(self) -> float:
        """Road pixels that pass both model and monitor."""
        return self._ratio(self.residual_missed, self.road_pixels)

    @staticmethod
    def _ratio(num: int, den: int) -> float:
        return num / den if den else float("nan")

    def merge(self, other: "MonitorPixelStats") -> "MonitorPixelStats":
        return MonitorPixelStats(
            road_pixels=self.road_pixels + other.road_pixels,
            model_missed_road=(self.model_missed_road
                               + other.model_missed_road),
            monitor_caught=self.monitor_caught + other.monitor_caught,
            safe_pixels=self.safe_pixels + other.safe_pixels,
            false_alarms=self.false_alarms + other.false_alarms,
            residual_missed=self.residual_missed + other.residual_missed,
        )


def pixel_monitor_stats(gt_labels: np.ndarray, pred_labels: np.ndarray,
                        monitor_unsafe: np.ndarray) -> MonitorPixelStats:
    """Compute pixel statistics for one frame.

    Parameters
    ----------
    gt_labels:
        Ground-truth class map ``(H, W)``.
    pred_labels:
        The deterministic model's arg-max map (same shape).
    monitor_unsafe:
        The monitor's Eq. (2) unsafe mask (same shape).
    """
    gt_labels = np.asarray(gt_labels)
    if pred_labels.shape != gt_labels.shape or \
            monitor_unsafe.shape != gt_labels.shape:
        raise ValueError("all three maps must share one shape")
    gt_road = busy_road_mask(gt_labels)
    pred_road = busy_road_mask(pred_labels)

    model_missed = gt_road & ~pred_road
    caught = model_missed & monitor_unsafe
    residual = model_missed & ~monitor_unsafe
    gt_safe = ~gt_road
    false_alarm = gt_safe & monitor_unsafe

    return MonitorPixelStats(
        road_pixels=int(gt_road.sum()),
        model_missed_road=int(model_missed.sum()),
        monitor_caught=int(caught.sum()),
        safe_pixels=int(gt_safe.sum()),
        false_alarms=int(false_alarm.sum()),
        residual_missed=int(residual.sum()),
    )


def accumulate_stats(stats_list: list[MonitorPixelStats]
                     ) -> MonitorPixelStats:
    """Merge per-frame statistics into corpus-level statistics."""
    total = MonitorPixelStats()
    for stats in stats_list:
        total = total.merge(stats)
    return total


def tau_sweep(distribution: PixelDistribution, gt_labels: np.ndarray,
              taus, sigma_multiplier: float = 3.0
              ) -> list[dict[str, float]]:
    """Monitor operating points over a threshold sweep (the ROC data).

    For each ``tau``: the monitor's busy-road flag is
    ``any_k (mu_k + s*sigma_k > tau)``; true positives are flags on true
    busy-road pixels, false positives are flags on safe pixels.
    """
    gt_road = busy_road_mask(np.asarray(gt_labels))
    upper = distribution.upper_confidence(sigma_multiplier)
    road_upper = np.stack([upper[int(c)] for c in BUSY_ROAD_CLASSES])
    max_road_upper = road_upper.max(axis=0)

    points = []
    n_road = int(gt_road.sum())
    n_safe = int((~gt_road).sum())
    for tau in taus:
        flagged = max_road_upper > tau
        tpr = float((flagged & gt_road).sum() / n_road) if n_road else \
            float("nan")
        fpr = float((flagged & ~gt_road).sum() / n_safe) if n_safe else \
            float("nan")
        points.append({"tau": float(tau), "tpr": tpr, "fpr": fpr})
    return points


def zone_truly_unsafe(gt_labels: np.ndarray, box: Box,
                      classes=BUSY_ROAD_CLASSES) -> bool:
    """Ground truth: does the zone contain any hazardous pixel?"""
    crop = box.extract(np.asarray(gt_labels))
    return bool(class_mask(crop, classes).any())
