"""Tests for optimisers and learning-rate schedules."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, CosineLR, StepLR


def _param(value):
    p = Parameter(np.array(value, dtype=np.float64))
    return p


class TestSGD:
    def test_plain_step(self):
        p = _param([1.0])
        p.grad[:] = 0.5
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_momentum_accumulates(self):
        p = _param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad[:] = 1.0
        opt.step()  # v=1, x=-1
        p.grad[:] = 1.0
        opt.step()  # v=1.9, x=-2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_weight_decay_shrinks(self):
        p = _param([10.0])
        opt = SGD([p], lr=0.1, weight_decay=0.1)
        p.grad[:] = 0.0
        opt.step()
        assert p.data[0] < 10.0

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError, match="nesterov"):
            SGD([_param([1.0])], lr=0.1, nesterov=True)

    def test_converges_on_quadratic(self):
        p = _param([5.0])
        opt = SGD([p], lr=0.1, momentum=0.5)
        for _ in range(200):
            p.grad[:] = 2 * p.data  # d/dx x^2
            opt.step()
        assert abs(p.data[0]) < 1e-4

    def test_zero_grad(self):
        p = _param([1.0])
        p.grad[:] = 3.0
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        np.testing.assert_array_equal(p.grad, 0.0)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError, match="no parameters"):
            SGD([], lr=0.1)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError, match="learning rate"):
            SGD([_param([1.0])], lr=0.0)


class TestAdam:
    def test_first_step_size_is_lr(self):
        """With bias correction, |first step| ~= lr regardless of grad."""
        p = _param([0.0])
        opt = Adam([p], lr=0.01)
        p.grad[:] = 123.0
        opt.step()
        assert abs(p.data[0]) == pytest.approx(0.01, rel=1e-3)

    def test_converges_on_quadratic(self):
        p = _param([3.0])
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            p.grad[:] = 2 * p.data
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_decoupled_weight_decay(self):
        p = _param([10.0])
        opt = Adam([p], lr=0.1, weight_decay=0.01)
        p.grad[:] = 0.0
        opt.step()
        # Decay applies even with zero gradient.
        assert p.data[0] < 10.0

    def test_invalid_betas(self):
        with pytest.raises(ValueError, match="betas"):
            Adam([_param([1.0])], betas=(1.0, 0.999))

    def test_trains_small_network(self, rng):
        """One real sanity check: Adam reduces loss on a tiny net."""
        model = nn.Sequential(nn.Conv2d(2, 8, 3, padding=1, rng=0),
                              nn.ReLU(), nn.Conv2d(8, 2, 1, rng=1))
        opt = Adam(model.parameters(), lr=1e-2)
        x = rng.normal(size=(4, 2, 8, 8)).astype(np.float32)
        y = rng.integers(0, 2, size=(4, 8, 8))
        first = None
        for _ in range(30):
            logits = model(x)
            loss, grad = nn.softmax_cross_entropy(logits, y)
            if first is None:
                first = loss
            model.zero_grad()
            model.backward(grad)
            opt.step()
        assert loss < first * 0.8


class TestSchedulers:
    def test_step_lr(self):
        p = _param([1.0])
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_cosine_endpoints(self):
        p = _param([1.0])
        opt = SGD([p], lr=1.0)
        sched = CosineLR(opt, total_steps=10, min_lr=0.0)
        for _ in range(10):
            last = sched.step()
        assert last == pytest.approx(0.0, abs=1e-9)

    def test_cosine_monotone_decreasing(self):
        opt = SGD([_param([1.0])], lr=1.0)
        sched = CosineLR(opt, total_steps=20)
        lrs = [sched.step() for _ in range(20)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_cosine_clamps_past_horizon(self):
        opt = SGD([_param([1.0])], lr=1.0)
        sched = CosineLR(opt, total_steps=5, min_lr=0.2)
        for _ in range(10):
            last = sched.step()
        assert last == pytest.approx(0.2)

    def test_invalid_args(self):
        opt = SGD([_param([1.0])], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineLR(opt, total_steps=0)
