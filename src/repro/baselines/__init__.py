"""Baseline landing-zone-selection methods from the paper's related work.

One representative per implementable family: edge density ([11]),
tile classification with an SVM ([12]-[14]) and static public-database
planning ([6], [10]).  The benchmark harness compares their unsafe-zone
acceptance with the paper's monitored segmentation pipeline.
"""

from repro.baselines.base import ZoneProposal, top_zones_from_score_map
from repro.baselines.edge_density import EdgeDensityConfig, EdgeDensityLZS
from repro.baselines.map_based import (
    DEFAULT_RISK_WEIGHTS,
    StaticMapConfig,
    StaticMapLZS,
)
from repro.baselines.svm import LinearSVM
from repro.baselines.tile_classifier import (
    SAFE_SURFACES,
    TileClassifierConfig,
    TileClassifierLZS,
    dominant_tile_labels,
)

__all__ = [
    "ZoneProposal",
    "top_zones_from_score_map",
    "EdgeDensityConfig",
    "EdgeDensityLZS",
    "StaticMapConfig",
    "StaticMapLZS",
    "DEFAULT_RISK_WEIGHTS",
    "LinearSVM",
    "TileClassifierConfig",
    "TileClassifierLZS",
    "SAFE_SURFACES",
    "dominant_tile_labels",
]
