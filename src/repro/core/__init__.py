"""The paper's primary contribution, assembled.

* :class:`LandingZoneSelector` — step 1 of the two-step EL: select an
  area far from busy roads, with Table III drift buffers.
* :class:`RuntimeMonitor` — the Bayesian MC-dropout monitor applying
  Eq. (2): ``mu + 3*sigma <= tau`` per busy-road class, ``tau = 1/8``.
* :class:`DecisionModule` — confirm / try another candidate / abort.
* :class:`LandingPipeline` — the complete Fig. 2 safety architecture.
* :mod:`repro.core.requirements` — Tables III & IV as executable
  criteria evaluated against :class:`EvidenceBundle` records.
"""

from repro.core.decision import (
    Decision,
    DecisionAction,
    DecisionConfig,
    DecisionCursor,
    DecisionModule,
)
from repro.core.engine import (
    EngineConfig,
    EpisodeRequest,
    EpisodeResult,
    EpisodeScheduler,
)
from repro.core.evidence import EvidenceBundle
from repro.core.hybrid import (
    DATABASE_HAZARD_CLASSES,
    HybridConfig,
    HybridLandingZoneSelector,
)
from repro.core.landing_zone import (
    LandingZoneConfig,
    LandingZoneSelector,
    ZoneCandidate,
)
from repro.core.monitor import (
    MonitorConfig,
    RuntimeMonitor,
    UnionWindow,
    ZoneVerdict,
)
from repro.core.pipeline import LandingPipeline, PipelineConfig, PipelineResult
from repro.core.requirements import (
    EL_ASSURANCE_CRITERIA,
    EL_INTEGRITY_CRITERIA,
    M1_ASSURANCE_CRITERIA_TEXT,
    M1_INTEGRITY_CRITERIA_TEXT,
    UNSAFE_ZONE_TOLERANCE,
    ComplianceReport,
    Criterion,
    CriterionResult,
    achieved_robustness,
    evaluate_assurance,
    evaluate_integrity,
    evaluate_level,
)

__all__ = [
    "HybridConfig",
    "HybridLandingZoneSelector",
    "DATABASE_HAZARD_CLASSES",
    "LandingZoneConfig",
    "LandingZoneSelector",
    "ZoneCandidate",
    "MonitorConfig",
    "RuntimeMonitor",
    "UnionWindow",
    "ZoneVerdict",
    "DecisionAction",
    "DecisionConfig",
    "Decision",
    "DecisionCursor",
    "DecisionModule",
    "EngineConfig",
    "EpisodeRequest",
    "EpisodeResult",
    "EpisodeScheduler",
    "PipelineConfig",
    "PipelineResult",
    "LandingPipeline",
    "EvidenceBundle",
    "Criterion",
    "CriterionResult",
    "ComplianceReport",
    "EL_INTEGRITY_CRITERIA",
    "EL_ASSURANCE_CRITERIA",
    "M1_INTEGRITY_CRITERIA_TEXT",
    "M1_ASSURANCE_CRITERIA_TEXT",
    "UNSAFE_ZONE_TOLERANCE",
    "evaluate_level",
    "evaluate_integrity",
    "evaluate_assurance",
    "achieved_robustness",
]
