"""BATCHED-INFERENCE bench: sequential vs batched MC-dropout engine.

Artefact of this repo's batched inference engine (not a paper figure):
the monitor's ``T``-sample Bayesian pass runs as chunked batched
forwards — with the deterministic stem computed once — instead of ``T``
full single-image forwards.  The Sec. V-B latency constraint is the
whole reason the Fig. 2 monitor runs on sub-images, so every factor
gained here directly widens the experiment space the monitor can
afford.

Expectations:

* the batched pass is at least 2x faster than the sequential reference
  on the bench-scale frame (relaxed to parity in smoke mode, where the
  frame is too small for the batching win to dominate noise);
* batched and sequential paths agree *bit for bit* on the same seed —
  the speedup must not change a single verdict.

The measured numbers are recorded in
``benchmarks/BENCH_batched_inference.json`` so the perf trajectory is
tracked across PRs.
"""

import os

import numpy as np
from _bench_utils import best_of as _best_of
from _bench_utils import write_bench_summary

from repro.eval.reporting import format_table, format_title

SMOKE = os.environ.get("BENCH_SMOKE") == "1"


def test_batched_inference_speedup(benchmark, system, emit):
    segmenter = system.make_segmenter(rng=0)
    image = system.test_samples[0].image
    t = system.config.monitor_samples if SMOKE else 10

    sequential_s = _best_of(
        lambda: segmenter.predict_distribution_sequential(
            image, num_samples=t))
    batched_s = _best_of(
        lambda: segmenter.predict_distribution(image, num_samples=t))
    benchmark.pedantic(
        lambda: segmenter.predict_distribution(image, num_samples=t),
        rounds=1, iterations=1)
    speedup = sequential_s / batched_s

    # Seeded equivalence: same stream, fresh segmenters per path.
    seq = system.make_segmenter(rng=7).predict_distribution_sequential(
        image, num_samples=t)
    bat = system.make_segmenter(rng=7).predict_distribution(
        image, num_samples=t)
    bit_for_bit = bool(np.array_equal(seq.mean, bat.mean)
                       and np.array_equal(seq.std, bat.std))

    emit("\n" + format_title(
        "BATCHED-INFERENCE: MC-dropout engine, sequential vs batched"))
    emit(format_table(
        ["path", f"wall time (ms), T={t}"],
        [["sequential (1 forward / sample)",
          round(sequential_s * 1000, 2)],
         ["batched (chunked tiles + shared stem)",
          round(batched_s * 1000, 2)]],
        title=f"frame {image.shape[1]}x{image.shape[2]}, "
              f"max_batch={segmenter.max_batch}:"))
    emit(f"\nspeedup: {speedup:.2f}x    "
         f"bit-for-bit equal: {bit_for_bit}")

    summary = {
        "image_shape": list(image.shape),
        "num_samples": t,
        "max_batch": segmenter.max_batch,
        "sequential_s": sequential_s,
        "batched_s": batched_s,
        "speedup": speedup,
        "bit_for_bit_equal": bit_for_bit,
    }
    # Smoke numbers feed the check.sh regression gate; only full-scale
    # numbers belong in the tracked trajectory file.
    write_bench_summary("BENCH_batched_inference.json", summary,
                        smoke=SMOKE)

    assert bit_for_bit, "batched engine diverged from sequential path"
    assert speedup >= (1.0 if SMOKE else 2.0), (
        f"batched engine only {speedup:.2f}x faster than sequential")
