"""Dataset assembly: scenes -> rendered windows -> training batches.

Replaces the role of the UAVid distribution in the paper: a corpus of
labelled aerial windows with controlled imaging conditions, split into
train/val/test by *scene* (never by window) so evaluation measures
generalisation to unseen districts, and with out-of-distribution
variants generated from the same geography under shifted conditions —
the Fig. 4 protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.dataset.classes import NUM_CLASSES
from repro.dataset.conditions import (
    DAY,
    ImagingConditions,
    TRAINING_CONDITIONS,
)
from repro.dataset.render import render_scene_window
from repro.dataset.scene import SceneConfig, UrbanScene
from repro.utils.rng import derive_seed, ensure_rng, spawn
from repro.utils.validation import check_positive

__all__ = [
    "SegmentationSample",
    "DatasetConfig",
    "generate_dataset",
    "generate_scene_samples",
    "split_by_scene",
    "stack_batch",
    "iterate_minibatches",
    "class_frequencies",
]


@dataclass
class SegmentationSample:
    """One labelled camera frame."""

    image: np.ndarray          # (3, H, W) float32 in [0, 1]
    labels: np.ndarray         # (H, W) int16 class ids
    condition: str             # imaging-condition name
    scene_seed: int            # seed of the generating scene
    center: tuple[float, float]  # window centre (scene grid coords)
    gsd: float                 # metres per pixel


@dataclass(frozen=True)
class DatasetConfig:
    """Corpus parameters.

    The defaults produce frames of 96x128 px at 1 m/px — a ~1:8 scale
    model of UAVid's 2160x3840 at ~10 cm/px that keeps the numpy training
    loop tractable while preserving scene-to-pixel statistics.
    """

    num_scenes: int = 6
    windows_per_scene: int = 8
    image_shape: tuple[int, int] = (96, 128)
    gsd: float = 1.0
    conditions: tuple[ImagingConditions, ...] = TRAINING_CONDITIONS
    scene_config: SceneConfig = field(default_factory=SceneConfig)
    seed: int = 0

    def __post_init__(self):
        check_positive("num_scenes", self.num_scenes)
        check_positive("windows_per_scene", self.windows_per_scene)
        check_positive("gsd", self.gsd)
        if not self.conditions:
            raise ValueError("at least one imaging condition is required")


def generate_scene_samples(scene: UrbanScene, num_windows: int,
                           image_shape: tuple[int, int], gsd: float,
                           conditions: tuple[ImagingConditions, ...],
                           rng, scene_seed: int = -1
                           ) -> list[SegmentationSample]:
    """Render ``num_windows`` labelled frames from one scene.

    Each window uses its own child generator, and the window *centre* is
    drawn before the condition choice — so re-rendering the corpus with
    a different condition set (the Fig. 4b protocol) keeps the exact
    same geography and labels.
    """
    rng = ensure_rng(rng)
    samples = []
    for window_rng in spawn(rng, num_windows):
        center = scene.random_window_center(image_shape, gsd, window_rng)
        condition = conditions[int(window_rng.integers(0,
                                                       len(conditions)))]
        render_rng = np.random.default_rng(
            int(window_rng.integers(0, 2**63 - 1)))
        image, labels = render_scene_window(scene, center, image_shape,
                                            gsd, condition, render_rng)
        samples.append(SegmentationSample(
            image=image, labels=labels.astype(np.int16),
            condition=condition.name, scene_seed=scene_seed,
            center=center, gsd=gsd))
    return samples


def generate_dataset(config: DatasetConfig | None = None
                     ) -> list[SegmentationSample]:
    """Generate the full corpus described by ``config``.

    Scene geometry and rendering are independently seeded per scene, so
    regenerating a subset (e.g. the same scenes under OOD conditions for
    the Fig. 4 protocol) is deterministic.
    """
    config = config or DatasetConfig()
    samples: list[SegmentationSample] = []
    for i in range(config.num_scenes):
        scene_seed = derive_seed(config.seed, 1, i)
        render_seed = derive_seed(config.seed, 2, i)
        scene = UrbanScene.generate(config.scene_config, seed=scene_seed)
        samples.extend(generate_scene_samples(
            scene, config.windows_per_scene, config.image_shape,
            config.gsd, config.conditions,
            np.random.default_rng(render_seed), scene_seed=scene_seed))
    return samples


def reshoot_under_condition(config: DatasetConfig,
                            condition: ImagingConditions
                            ) -> list[SegmentationSample]:
    """Re-render the exact corpus geography under one different condition.

    This is the Fig. 4b protocol: same places, shifted imaging — a pure
    covariate shift with unchanged labels.
    """
    shifted = replace(config, conditions=(condition,))
    return generate_dataset(shifted)


def split_by_scene(samples: list[SegmentationSample],
                   val_fraction: float = 0.2,
                   test_fraction: float = 0.2,
                   rng=None) -> tuple[list[SegmentationSample],
                                      list[SegmentationSample],
                                      list[SegmentationSample]]:
    """Split into train/val/test along scene boundaries.

    Windows from one scene never appear in two splits — the UAVid
    protocol, and the requirement behind Table IV Medium-1 ("testing on
    public datasets": the test set must be disjoint from training).
    """
    if not 0 <= val_fraction + test_fraction < 1:
        raise ValueError("val+test fractions must be in [0, 1)")
    rng = ensure_rng(rng if rng is not None else 0)
    scene_seeds = sorted({s.scene_seed for s in samples})
    scene_seeds = list(scene_seeds)
    rng.shuffle(scene_seeds)
    n = len(scene_seeds)
    n_test = max(1, int(round(test_fraction * n))) if test_fraction else 0
    n_val = max(1, int(round(val_fraction * n))) if val_fraction else 0
    if n_test + n_val >= n:
        raise ValueError(
            f"not enough scenes ({n}) for the requested split")
    test_seeds = set(scene_seeds[:n_test])
    val_seeds = set(scene_seeds[n_test:n_test + n_val])
    train, val, test = [], [], []
    for s in samples:
        if s.scene_seed in test_seeds:
            test.append(s)
        elif s.scene_seed in val_seeds:
            val.append(s)
        else:
            train.append(s)
    return train, val, test


def stack_batch(samples: list[SegmentationSample]
                ) -> tuple[np.ndarray, np.ndarray]:
    """Stack samples into ``(x, y)`` arrays for the training loop."""
    if not samples:
        raise ValueError("cannot stack an empty batch")
    shapes = {s.image.shape for s in samples}
    if len(shapes) != 1:
        raise ValueError(f"inconsistent image shapes in batch: {shapes}")
    x = np.stack([s.image for s in samples]).astype(np.float32)
    y = np.stack([s.labels for s in samples]).astype(np.int64)
    return x, y


def iterate_minibatches(samples: list[SegmentationSample],
                        batch_size: int, rng=None, epochs: int = 1):
    """Yield shuffled ``(x, y)`` minibatches for ``epochs`` passes."""
    check_positive("batch_size", batch_size)
    rng = ensure_rng(rng if rng is not None else 0)
    indices = np.arange(len(samples))
    for _ in range(epochs):
        rng.shuffle(indices)
        for start in range(0, len(indices), batch_size):
            chunk = indices[start:start + batch_size]
            yield stack_batch([samples[i] for i in chunk])


def class_frequencies(samples: list[SegmentationSample]) -> np.ndarray:
    """Pixel fraction of each UAVid class over the corpus."""
    counts = np.zeros(NUM_CLASSES, dtype=np.int64)
    for s in samples:
        counts += np.bincount(s.labels.reshape(-1).astype(np.int64),
                              minlength=NUM_CLASSES)
    total = counts.sum()
    if total == 0:
        return np.zeros(NUM_CLASSES)
    return counts / total
