"""The runtime monitor: Eq. (2), ``mu + 3*sigma <= tau`` per road class.

Sec. V-B of the paper: EL is safety-critical, so misclassifying a busy
road as something else can be catastrophic.  The monitor therefore
*over-approximates* the road category: a pixel is accepted as safe only
when the upper edge of its 99.7% confidence interval — posterior mean
plus three posterior standard deviations, estimated by Monte-Carlo
dropout — stays below the threshold ``tau`` for **each of the three
UAVid classes that make up the busy-road category**.  With 8 classes
the paper picks ``tau = 0.125``, "to make sure that the road score is
lower than a random guess".

Following Fig. 2, the monitor runs on *sub-images* (the candidate zone
plus its drift buffer), not on the full frame — the full-frame Bayesian
pass would be prohibitively slow in an emergency (Sec. V-B timing,
reproduced in ``benchmarks/bench_sec5_timing.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataset.classes import BUSY_ROAD_CLASSES, NUM_CLASSES
from repro.segmentation.bayesian import BayesianSegmenter, PixelDistribution
from repro.utils.geometry import Box
from repro.utils.validation import check_image_chw, check_probability

__all__ = ["MonitorConfig", "ZoneVerdict", "RuntimeMonitor"]


@dataclass(frozen=True)
class MonitorConfig:
    """Parameters of the conservative monitor rule."""

    tau: float = 1.0 / NUM_CLASSES  # 0.125, the paper's choice
    sigma_multiplier: float = 3.0   # the "3 sigma" of Eq. (2)
    num_samples: int = 10           # MC-dropout passes (paper: 10)
    road_classes: tuple = BUSY_ROAD_CLASSES
    max_unsafe_fraction: float = 0.0  # zone accepted iff <= this
    context_margin_px: int = 2      # extra context around the crop

    def __post_init__(self):
        check_probability("tau", self.tau)
        check_probability("max_unsafe_fraction", self.max_unsafe_fraction)
        if self.sigma_multiplier < 0:
            raise ValueError("sigma_multiplier must be non-negative")
        if self.num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        if not self.road_classes:
            raise ValueError("road_classes must not be empty")


@dataclass(frozen=True)
class ZoneVerdict:
    """The monitor's verdict on one candidate zone."""

    accepted: bool
    unsafe_fraction: float
    unsafe_mask: np.ndarray = field(repr=False)
    box: Box
    num_samples: int
    distribution: PixelDistribution = field(repr=False)

    @property
    def num_unsafe_pixels(self) -> int:
        return int(self.unsafe_mask.sum())


class RuntimeMonitor:
    """Checks candidate landing zones with the Bayesian model."""

    def __init__(self, segmenter: BayesianSegmenter,
                 config: MonitorConfig | None = None):
        self.segmenter = segmenter
        self.config = config or MonitorConfig()

    # ------------------------------------------------------------------
    def unsafe_pixels(self, distribution: PixelDistribution) -> np.ndarray:
        """Apply Eq. (2) to a pixel distribution.

        A pixel is *unsafe* when ``mu_k + s * sigma_k > tau`` for any
        busy-road class ``k`` — the complement of the paper's safety
        condition, which requires the inequality to hold "for the three
        UAVid categories that make up the busy road category".
        """
        cfg = self.config
        upper = distribution.upper_confidence(cfg.sigma_multiplier)
        unsafe = np.zeros(upper.shape[1:], dtype=bool)
        for cls in cfg.road_classes:
            unsafe |= upper[int(cls)] > cfg.tau
        return unsafe

    def _stride_padded_crop(self, image: np.ndarray,
                            box: Box) -> tuple[np.ndarray, Box]:
        """Crop ``box`` (with context margin) padded to the model stride.

        The segmentation model needs spatial sizes divisible by its
        output stride; the crop is grown symmetrically (within frame
        bounds) until that holds.  Returns the crop and the region of
        interest *within the crop* corresponding to the original box.
        """
        cfg = self.config
        h, w = image.shape[1:]
        grown = box.expand(cfg.context_margin_px).clip_to(h, w)
        stride = getattr(
            getattr(self.segmenter.model, "config", None),
            "output_stride", 1)

        def pad_span(start: int, extent: int, limit: int) -> tuple[int, int]:
            need = (-extent) % stride
            lo = max(0, start - need // 2)
            hi = min(limit, lo + extent + need)
            lo = max(0, hi - (extent + need))
            # If the frame itself is not large enough, fall back to the
            # largest stride-aligned span that fits.
            span = hi - lo
            span -= span % stride
            return lo, span

        r0, rh = pad_span(grown.row, grown.height, h)
        c0, cw = pad_span(grown.col, grown.width, w)
        crop_box = Box(r0, c0, rh, cw)
        crop = crop_box.extract(image)
        roi = Box(box.row - r0, box.col - c0, box.height, box.width)
        roi = roi.clip_to(rh, cw)
        return crop, roi

    def check_zone(self, image: np.ndarray, box: Box) -> ZoneVerdict:
        """Run the Bayesian pass on the zone crop and return a verdict.

        This is the "Monitor" box of Fig. 2: image cropping -> Bayesian
        SS model -> mean and std segmentations -> zone confirmation.
        """
        check_image_chw("image", image)
        if box.is_empty():
            raise ValueError("cannot check an empty zone box")
        crop, roi = self._stride_padded_crop(image, box)
        distribution = self.segmenter.predict_distribution(
            crop, num_samples=self.config.num_samples)
        unsafe_crop = self.unsafe_pixels(distribution)
        unsafe_zone = roi.extract(unsafe_crop)
        fraction = float(unsafe_zone.mean()) if unsafe_zone.size else 1.0
        accepted = fraction <= self.config.max_unsafe_fraction
        return ZoneVerdict(accepted=accepted, unsafe_fraction=fraction,
                           unsafe_mask=unsafe_zone, box=box,
                           num_samples=distribution.num_samples,
                           distribution=distribution)

    def full_frame_unsafe(self, image: np.ndarray) -> np.ndarray:
        """Eq. (2) evaluated over the whole frame.

        Used by the Fig. 4 evaluation (how much of the road area the
        monitor flags) and by the timing benchmark — *not* by the
        pipeline, which only monitors candidate crops.
        """
        check_image_chw("image", image)
        h, w = image.shape[1:]
        crop, roi = self._stride_padded_crop(image, Box(0, 0, h, w))
        distribution = self.segmenter.predict_distribution(
            crop, num_samples=self.config.num_samples)
        return roi.extract(self.unsafe_pixels(distribution))
