"""fp32 firewall: no silent float64 on the inference path.

PR 2 rebuilt the inference stack on strict float32 discipline — the
``Module.__call__`` boundary casts inputs once, and everything
downstream (im2col, GEMM, batch-norm folding, resize, softmax) is
dtype-preserving.  PR 4's winograd envelope and PR 5's moment envelope
are *measured in* and *certified for* float32: a stray float64
promotion silently doubles memory traffic and invalidates the
certified error models without failing a single seeded test.

Scope: the inference-path packages ``repro.nn``, ``repro.segmentation``
and ``repro.core``.  Four rules:

* ``FP32-FLOAT64`` — any direct use of ``np.float64``.
* ``FP32-DTYPELESS`` — ``np.zeros/ones/empty/arange/linspace`` without
  an explicit ``dtype`` (numpy defaults them to float64/int64; the
  firewall wants the choice written down).
* ``FP32-ASTYPE-WIDEN`` — ``.astype(float)`` / ``.astype(np.float64)``
  / ``.astype("float64")``.
* ``FP32-INT8-QUANT`` — ``np.int8`` / ``np.int16`` / ``np.int32`` (as
  attributes or ``.astype`` strings).  Quantised-integer tensors on
  the inference path change the certified working precision exactly
  like a float64 promotion does — an int8 engine is only as
  trustworthy as its documented error model, so every use must sit in
  a declared quantisation island.  (``np.uint8`` pool-count masks and
  ``np.int64``/``np.intp`` index vectors are not value quantisation
  and stay legal.)

The *documented islands* — places that deliberately leave float32 and
cast (or carry a certified error model) at a single boundary — are
allowlisted below with their justification: ``FLOAT64_ISLANDS`` for
full-precision computation, ``INT8_ISLANDS`` for deliberate
quantisation.  Anything new either stays float32 or earns an inline
``# repro-lint: disable=...`` with a one-line reason.
"""

from __future__ import annotations

import ast

from repro.analysis.base import (
    BaseChecker,
    CheckContext,
    Rule,
    ScopedVisitor,
    dotted_name,
)

#: Packages behind the firewall (repo-relative path prefixes).
SCOPE_PREFIXES = (
    "src/repro/nn/",
    "src/repro/segmentation/",
    "src/repro/core/",
)

#: The documented float64 islands: ``(path, qualname prefix or None
#: for the whole module, justification)``.  Each island computes in
#: float64 deliberately and casts (or stays off the tensor hot path)
#: at a single boundary.
FLOAT64_ISLANDS: tuple[tuple[str, str | None, str], ...] = (
    ("src/repro/nn/gradcheck.py", None,
     "gradient checking runs in float64 for stable finite "
     "differences (module docstring; float32_boundary_disabled)"),
    ("src/repro/nn/layers.py", "BatchNorm2d",
     "batch-norm running statistics accumulate in float64; the "
     "fused eval scale/shift casts once to float32"),
    ("src/repro/nn/losses.py", "class_weights_from_frequencies",
     "class-frequency statistics (training-time, off the inference "
     "path); the loss itself casts back to the logit dtype"),
    ("src/repro/nn/functional.py", "_winograd_filter_compute",
     "the cached, off-hot-path filter transform is computed at full "
     "precision and rounded to the working dtype once"),
    ("src/repro/nn/quant.py", None,
     "int8 weight scales/codes are computed off the hot path at full "
     "precision and cast once, like the winograd filter transform; "
     "error_bound is evaluation-time analysis, never on the tensor "
     "path"),
    ("src/repro/nn/functional.py", "linear_resize_weights",
     "resize weights: fractional coordinates in float64, single cast "
     "on the final memoised weight matrix"),
    ("src/repro/nn/functional.py", "resize_nearest_forward",
     "nearest-neighbour source coordinates in float64, rounded to "
     "integer indices once"),
    ("src/repro/segmentation/metrics.py", None,
     "confusion-matrix metrics (evaluation-time): IoU/accuracy "
     "ratios in float64, never on the inference path"),
    ("src/repro/segmentation/bayesian.py", "_RunningMoments",
     "float64 running sum / sum-of-squares in strict sample order — "
     "the accumulator behind every bit-for-bit moments contract"),
    ("src/repro/core/engine.py", "EpisodeScheduler._joint_distributions",
     "chunk-vectorised MC moment accumulation in float64, mirroring "
     "BayesianSegmenter's accumulator island"),
    ("src/repro/core/landing_zone.py", "LandingZoneSelector",
     "clearance maps are metric distances (metres), not tensors; "
     "scipy's distance transform returns float64"),
)

#: The documented int8 islands, same shape as :data:`FLOAT64_ISLANDS`:
#: the places allowed to create quantised-integer tensors, because the
#: quantisation they perform is the one certified by the int8 engine's
#: error model (repro.nn.quant module docstring; envelope pinned in
#: tests/nn/test_int8_equivalence.py).  An int8 array anywhere else on
#: the inference path is an undeclared precision change and flags.
INT8_ISLANDS: tuple[tuple[str, str | None, str], ...] = (
    ("src/repro/nn/quant.py", None,
     "the quantisation module itself: per-channel symmetric weight "
     "codes and the saturating int8 cast — the certified error model "
     "documents exactly these casts"),
)

#: Constructors whose numpy default dtype is not float32.
DTYPELESS_CTORS = frozenset(
    {"zeros", "ones", "empty", "arange", "linspace"})

#: Positional index at which each constructor accepts ``dtype``.
_DTYPE_POS = {"zeros": 1, "ones": 1, "empty": 1, "arange": 3,
              "linspace": 5}

_WIDENING_STRINGS = frozenset({"float64", "f8", "<f8", ">f8", "d",
                               "double"})

#: Quantised-integer dtype spellings caught by ``FP32-INT8-QUANT``.
_QUANT_INT_ATTRS = frozenset(
    {"numpy.int8", "numpy.int16", "numpy.int32"})
_QUANT_INT_STRINGS = frozenset(
    {"int8", "int16", "int32", "i1", "i2", "i4",
     "<i1", "<i2", "<i4", ">i1", ">i2", ">i4", "b"})


class Fp32FirewallChecker(BaseChecker):
    name = "fp32-firewall"
    rules = (
        Rule("FP32-FLOAT64",
             "np.float64 on the inference path outside a documented "
             "island",
             contract="fp32 error envelopes (PR 2 discipline, PR 4 "
                      "winograd, PR 5 moments)"),
        Rule("FP32-DTYPELESS",
             "numpy constructor without an explicit dtype in the "
             "firewall scope",
             contract="fp32 error envelopes (PR 2 discipline, PR 4 "
                      "winograd, PR 5 moments)"),
        Rule("FP32-ASTYPE-WIDEN",
             ".astype to float64/builtin float on the inference path",
             contract="fp32 error envelopes (PR 2 discipline, PR 4 "
                      "winograd, PR 5 moments)"),
        Rule("FP32-INT8-QUANT",
             "quantised-integer dtype (np.int8/int16/int32) on the "
             "inference path outside a documented quantisation island",
             contract="int8 engine error model (repro.nn.quant; "
                      "envelope in tests/nn/test_int8_equivalence.py)"),
    )

    def check(self, ctx: CheckContext):
        if not ctx.rel_path.startswith(SCOPE_PREFIXES):
            return
        visitor = _Fp32Visitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings

    def island_for(self, rel_path: str, qualname: str,
                   islands=FLOAT64_ISLANDS) -> str | None:
        """Justification text if the location is an allowlisted island."""
        for path, prefix, why in islands:
            if rel_path != path:
                continue
            if prefix is None or qualname == prefix \
                    or qualname.startswith(prefix + "."):
                return why
        return None


class _Fp32Visitor(ScopedVisitor):
    def __init__(self, checker: Fp32FirewallChecker, ctx: CheckContext):
        super().__init__()
        self.checker = checker
        self.ctx = ctx
        self.findings = []

    def _report(self, node, rule_id, message, hint="",
                islands=FLOAT64_ISLANDS):
        if self.checker.island_for(self.ctx.rel_path, self.qualname,
                                   islands=islands):
            return
        self.findings.append(
            self.checker.finding(self.ctx, node, rule_id, message,
                                 hint=hint))

    # -- np.float64 / quantised int dtypes anywhere -------------------
    def visit_Attribute(self, node: ast.Attribute):
        name = dotted_name(node, self.ctx.imports)
        if name == "numpy.float64":
            self._report(
                node, "FP32-FLOAT64",
                "np.float64 on the inference path",
                hint="stay in float32 (the certified working "
                     "precision), or document the island in "
                     "repro.analysis.checkers.fp32.FLOAT64_ISLANDS / "
                     "add an inline justified disable")
        elif name in _QUANT_INT_ATTRS:
            self._report(
                node, "FP32-INT8-QUANT",
                f"{name.replace('numpy.', 'np.')} on the inference "
                "path outside a quantisation island",
                hint="quantised tensors belong to the certified int8 "
                     "engine — route through repro.nn.quant, or "
                     "document the island in repro.analysis.checkers."
                     "fp32.INT8_ISLANDS / add an inline justified "
                     "disable",
                islands=INT8_ISLANDS)
        self.generic_visit(node)

    # -- dtype-less constructors and astype ---------------------------
    def visit_Call(self, node: ast.Call):
        name = dotted_name(node.func, self.ctx.imports)
        if name is not None and name.startswith("numpy."):
            fn = name.rsplit(".", 1)[1]
            if fn in DTYPELESS_CTORS and not self._has_dtype(node, fn):
                self._report(
                    node, "FP32-DTYPELESS",
                    f"np.{fn}(...) without an explicit dtype "
                    "(numpy defaults to float64/int64)",
                    hint="write the dtype down — np.float32 for "
                         "tensors, an integer dtype for index "
                         "vectors")
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "astype" and node.args:
            target = node.args[0]
            widened = (
                (isinstance(target, ast.Name) and target.id == "float")
                or dotted_name(target, self.ctx.imports)
                == "numpy.float64"
                or (isinstance(target, ast.Constant)
                    and isinstance(target.value, str)
                    and target.value in _WIDENING_STRINGS))
            if widened:
                self._report(
                    node, "FP32-ASTYPE-WIDEN",
                    ".astype to float64 on the inference path",
                    hint="cast to np.float32, or keep the input "
                         "dtype (dtype-preserving kernels)")
            # The np.int8-as-attribute form is caught by
            # visit_Attribute; only the string spellings need a hook
            # here.
            if isinstance(target, ast.Constant) \
                    and isinstance(target.value, str) \
                    and target.value in _QUANT_INT_STRINGS:
                self._report(
                    node, "FP32-INT8-QUANT",
                    f".astype({target.value!r}) on the inference path "
                    "outside a quantisation island",
                    hint="quantised tensors belong to the certified "
                         "int8 engine — route through repro.nn.quant, "
                         "or document the island in repro.analysis."
                         "checkers.fp32.INT8_ISLANDS / add an inline "
                         "justified disable",
                    islands=INT8_ISLANDS)
        self.generic_visit(node)

    @staticmethod
    def _has_dtype(node: ast.Call, fn: str) -> bool:
        if any(kw.arg == "dtype" for kw in node.keywords):
            return True
        return len(node.args) > _DTYPE_POS[fn]
