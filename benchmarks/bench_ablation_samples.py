"""EXT-SAMPLES bench: monitor stability vs the number of MC passes.

The paper computes prediction statistics on 10 samples.  This ablation
measures how the monitor's verdict and the sigma estimate stabilise as
the sample count grows.

Expectation (shape): verdict disagreement between independent runs
shrinks as T grows; T = 10 (the paper's choice) is substantially more
stable than T = 2.
"""

import numpy as np

from repro.core.monitor import MonitorConfig, RuntimeMonitor
from repro.eval.reporting import format_table, format_title
from repro.segmentation.bayesian import BayesianSegmenter
from repro.utils.geometry import Box

SAMPLE_COUNTS = [2, 5, 10, 20]


def _verdict_disagreement(system, t: int, pairs: int = 4) -> float:
    """Mean |unsafe-fraction difference| between independent runs."""
    image = system.ood_samples()[0].image
    box = Box(24, 40, 24, 24)
    gaps = []
    for seed in range(pairs):
        fractions = []
        for offset in (0, 100):
            segmenter = BayesianSegmenter(system.model, num_samples=t,
                                          rng=seed + offset)
            monitor = RuntimeMonitor(segmenter,
                                     MonitorConfig(num_samples=t))
            fractions.append(
                monitor.check_zone(image, box).unsafe_fraction)
        gaps.append(abs(fractions[0] - fractions[1]))
    return float(np.mean(gaps))


def test_sample_count_ablation(benchmark, system, emit):
    def sweep():
        return {t: _verdict_disagreement(system, t)
                for t in SAMPLE_COUNTS}

    gaps = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit("\n" + format_title(
        "EXT-SAMPLES: verdict stability vs MC sample count"))
    rows = [[t, f"{gaps[t]:.4f}",
             "  <- paper (10)" if t == 10 else ""]
            for t in SAMPLE_COUNTS]
    emit(format_table(["MC samples", "mean verdict disagreement",
                       ""], rows))

    # More samples -> more stable verdicts (allowing small noise).
    assert gaps[20] <= gaps[2] + 0.02
    assert gaps[10] <= gaps[2] + 0.02
