"""Checker framework: rule metadata, context and shared AST helpers.

Checkers subclass :class:`BaseChecker`, declare their :class:`Rule`
catalogue, and yield :class:`repro.analysis.findings.Finding` objects
from :meth:`BaseChecker.check`.  The helpers here centralise the two
pieces of AST plumbing every checker needs: resolving local names to
canonical dotted paths through the file's imports (so ``np.random.seed``
and ``from numpy import random; random.seed`` flag identically), and
tracking the enclosing class/function qualname while visiting.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = [
    "Rule",
    "CheckContext",
    "BaseChecker",
    "ScopedVisitor",
    "resolve_imports",
    "dotted_name",
]


@dataclass(frozen=True)
class Rule:
    """Identity and documentation of one lint rule."""

    id: str
    summary: str
    #: Which PR's certification contract the rule protects — surfaced
    #: by ``--list-rules`` and the README rule table.
    contract: str = ""


@dataclass
class CheckContext:
    """Everything a checker may look at for one file.

    ``rel_path`` is the repo-relative posix path the scope rules match
    against; tests fabricate it freely via
    :func:`repro.analysis.runner.lint_source` (a snippet can be linted
    *as if* it lived at ``src/repro/nn/foo.py``).  ``root`` is the
    repository root — checkers that consult sibling files (the README
    knob table, conftest guard fixtures) resolve them against it.
    """

    root: Path
    rel_path: str
    tree: ast.Module
    source: str
    lines: list[str] = field(default_factory=list)
    _imports: dict | None = None

    def __post_init__(self):
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def imports(self) -> dict[str, str]:
        if self._imports is None:
            self._imports = resolve_imports(self.tree)
        return self._imports

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class BaseChecker:
    """One invariant, expressed as a family of rules over one file."""

    #: Human name shown by ``--list-rules``.
    name: str = ""
    rules: tuple[Rule, ...] = ()

    def check(self, ctx: CheckContext):
        """Yield findings for ``ctx``; default checks nothing."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def rule(self, rule_id: str) -> Rule:
        for r in self.rules:
            if r.id == rule_id:
                return r
        raise KeyError(rule_id)

    def finding(self, ctx: CheckContext, node: ast.AST, rule_id: str,
                message: str, hint: str = "") -> Finding:
        self.rule(rule_id)  # typo guard: unknown ids fail loudly
        return Finding(path=ctx.rel_path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       rule=rule_id, message=message, hint=hint)


class ScopedVisitor(ast.NodeVisitor):
    """Node visitor that tracks the enclosing class/function qualname."""

    def __init__(self):
        self._scope: list[str] = []

    @property
    def qualname(self) -> str:
        return ".".join(self._scope)

    def _visit_scope(self, node):
        self._scope.append(node.name)
        try:
            self.generic_visit(node)
        finally:
            self._scope.pop()

    visit_FunctionDef = _visit_scope
    visit_AsyncFunctionDef = _visit_scope
    visit_ClassDef = _visit_scope


def resolve_imports(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical dotted paths they import.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy import
    random as npr`` maps ``npr -> numpy.random``; ``from numpy.random
    import default_rng`` maps ``default_rng -> numpy.random
    .default_rng``.  Relative imports keep their leading dots — the
    repo's own modules always import absolutely, so canonical matching
    against ``repro.*`` still works.
    """
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                names[local] = target
        elif isinstance(node, ast.ImportFrom):
            module = ("." * node.level) + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                names[local] = f"{module}.{alias.name}" if module \
                    else alias.name
    return names


def dotted_name(node: ast.AST, imports: dict[str, str]) -> str | None:
    """Canonical dotted path of a Name/Attribute chain, or ``None``.

    ``np.random.seed`` with ``np -> numpy`` resolves to
    ``numpy.random.seed``; chains rooted in anything but a plain name
    (calls, subscripts) resolve to ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = imports.get(node.id, node.id)
    parts.append(base)
    return ".".join(reversed(parts))
