"""Scenario-driven Monte-Carlo mission campaigns.

The bridge between the registry and :mod:`repro.uav.mission`: a
campaign's scenes, failure schedule and mission configuration all
derive from one :class:`~repro.scenarios.spec.ScenarioSpec`, so callers
name a scenario instead of assembling ``(scenes, failures, config)``
triples by hand.
"""

from __future__ import annotations

from repro.scenarios.spec import ScenarioSpec, get_scenario
from repro.uav.mission import CampaignStats, run_campaign
from repro.uav.vehicle import MEDI_DELIVERY, VehicleParams
from repro.utils.validation import check_positive

__all__ = ["campaign_inputs", "run_scenario_campaign"]


def campaign_inputs(scenario: ScenarioSpec | str, num_missions: int,
                    scene_seed_base: int | None = None,
                    **config_overrides):
    """``(scenes, failures, config)`` for a scenario campaign.

    ``scenario`` is a spec or a registered name.  ``scene_seed_base``
    pins the per-mission scene seeds to ``base + i`` (the fixed bases
    the benches publish); by default seeds derive from the spec's own
    seed.  Remaining keywords override mission parameters.
    """
    spec = (get_scenario(scenario) if isinstance(scenario, str)
            else scenario)
    check_positive("num_missions", num_missions)
    scenes = spec.scenes(num_missions, seed_base=scene_seed_base)
    failures = spec.failure_events(num_missions)
    config = spec.mission_config(**config_overrides)
    return scenes, failures, config


def run_scenario_campaign(scenario: ScenarioSpec | str,
                          num_missions: int,
                          el_policy=None,
                          vehicle: VehicleParams = MEDI_DELIVERY,
                          seed=0,
                          scene_seed_base: int | None = None,
                          **config_overrides) -> CampaignStats:
    """Run one mission per scenario episode and aggregate the stats.

    A thin composition of :func:`campaign_inputs` and
    :func:`repro.uav.mission.run_campaign`; scenarios without a failure
    profile run uneventful missions (``failure=None``).
    """
    scenes, failures, config = campaign_inputs(
        scenario, num_missions, scene_seed_base=scene_seed_base,
        **config_overrides)
    return run_campaign(scenes, failures, config=config, vehicle=vehicle,
                        el_policy=el_policy, seed=seed)
