#!/usr/bin/env python3
"""End-to-end MEDI DELIVERY mission campaign with failure injection.

Monte-Carlo missions over procedural city districts, driven by the
``nav_comm_loss_delivery`` scenario from the registry: a navigation+
communication failure strikes mid-flight, the Fig. 1 safety switch
reacts, and the resulting Table II ground-risk outcome is recorded.
Three vehicle configurations are compared:

* **FT only** — no EL capability; loss of navigation means parachute
  descent wherever the vehicle happens to be (the status quo the paper
  argues against);
* **EL unmonitored** — the segmentation core function alone;
* **EL + monitor** — the paper's full Fig. 2 architecture.

Run:  python examples/medi_delivery_mission.py
      REPRO_SMOKE=1 python examples/medi_delivery_mission.py  # CI scale
"""

import os

from repro.eval import (
    build_trained_system,
    format_table,
    format_title,
    tiny_harness_config,
)
from repro.scenarios import get_scenario, run_scenario_campaign
from repro.sora import Severity

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
NUM_MISSIONS = 4 if SMOKE else 20
SCENARIO = "nav_comm_loss_delivery"


def main() -> None:
    print(format_title("MEDI DELIVERY mission campaign (Fig. 1 + Fig. 2)"))
    system = build_trained_system(
        tiny_harness_config() if SMOKE else None, verbose=True)

    # The scenario supplies scenes, failure schedule, wind and imaging;
    # the camera is matched to the trained system's scale.
    spec = get_scenario(SCENARIO).with_camera(
        system.config.dataset.image_shape,
        system.config.dataset.gsd)
    print(f"\nscenario '{spec.name}': {spec.description}")
    print(f"running {NUM_MISSIONS} missions per strategy ...")

    policies = {
        "FT only (no EL)": None,
        "EL unmonitored": system.make_pipeline(
            monitor_enabled=False).as_mission_policy(),
        "EL + monitor": system.make_pipeline(
            monitor_enabled=True).as_mission_policy(),
    }

    rows = []
    for name, policy in policies.items():
        stats = run_scenario_campaign(spec, NUM_MISSIONS,
                                      el_policy=policy, seed=42,
                                      scene_seed_base=1000)
        severity_cells = [stats.severity_counts.get(s, 0)
                          for s in Severity]
        rows.append([name, *severity_cells,
                     f"{stats.severe_fraction():.2f}",
                     f"{stats.mean_severity():.2f}",
                     stats.el_aborts])
        print(f"  campaign '{name}' done "
              f"({stats.num_missions} missions)")

    print("\n" + format_table(
        ["strategy", "sev1", "sev2", "sev3", "sev4", "sev5",
         "P(severe)", "mean sev", "EL aborts"],
        rows,
        title="touchdown severity distribution "
              "(sev4/5 involve fatalities):"))

    print("\nreading: EL moves probability mass from severe outcomes "
          "to negligible ones;\nthe monitor additionally converts "
          "'confidently wrong' landings into aborts (-> FT),\nwhich is "
          "the integrity argument of Table III made measurable.")


if __name__ == "__main__":
    main()
