"""Tests for the renderer and imaging conditions."""

import numpy as np
import pytest

from repro.dataset.classes import UavidClass
from repro.dataset.conditions import (
    ALL_CONDITIONS,
    DAY,
    FOG,
    NIGHT,
    OOD_CONDITIONS,
    SUNSET,
    TRAINING_CONDITIONS,
    ImagingConditions,
    by_name,
)
from repro.dataset.render import BASE_COLORS, render_labels
from repro.dataset.scene import UrbanScene


@pytest.fixture(scope="module")
def scene():
    return UrbanScene.generate(seed=11)


@pytest.fixture(scope="module")
def window(scene):
    labels = scene.label_window((256, 256), (48, 64), 1.0)
    height = scene.height_window((256, 256), (48, 64), 1.0)
    return labels, height


class TestConditions:
    def test_presets_well_formed(self):
        for cond in ALL_CONDITIONS:
            assert 0 <= cond.fog <= 1
            assert cond.noise_sigma >= 0

    def test_by_name(self):
        assert by_name("sunset") is SUNSET
        with pytest.raises(KeyError):
            by_name("blizzard")

    def test_train_and_ood_disjoint(self):
        train_names = {c.name for c in TRAINING_CONDITIONS}
        ood_names = {c.name for c in OOD_CONDITIONS}
        assert not train_names & ood_names

    def test_validation(self):
        with pytest.raises(ValueError):
            ImagingConditions(name="bad", fog=1.5)
        with pytest.raises(ValueError):
            ImagingConditions(name="bad", sun_elevation_deg=0.0)
        with pytest.raises(ValueError):
            ImagingConditions(name="bad", noise_sigma=-1)


class TestRenderLabels:
    def test_output_format(self, window):
        labels, height = window
        img = render_labels(labels, height, DAY, 1.0, rng=0)
        assert img.shape == (3, 48, 64)
        assert img.dtype == np.float32
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_deterministic_given_seed(self, window):
        labels, height = window
        a = render_labels(labels, height, DAY, 1.0, rng=5)
        b = render_labels(labels, height, DAY, 1.0, rng=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_changes_texture(self, window):
        labels, height = window
        a = render_labels(labels, height, DAY, 1.0, rng=1)
        b = render_labels(labels, height, DAY, 1.0, rng=2)
        assert not np.array_equal(a, b)

    def test_sunset_is_warmer_and_darker(self, window):
        labels, height = window
        day = render_labels(labels, height, DAY, 1.0, rng=0)
        sunset = render_labels(labels, height, SUNSET, 1.0, rng=0)
        assert sunset.mean() < day.mean()
        # Red-to-blue ratio increases at sunset.
        day_rb = day[0].mean() / max(day[2].mean(), 1e-6)
        sunset_rb = sunset[0].mean() / max(sunset[2].mean(), 1e-6)
        assert sunset_rb > day_rb

    def test_night_is_dark(self, window):
        labels, height = window
        night = render_labels(labels, height, NIGHT, 1.0, rng=0)
        assert night.mean() < 0.25

    def test_fog_reduces_contrast(self, window):
        labels, height = window
        day = render_labels(labels, height, DAY, 1.0, rng=0)
        fog = render_labels(labels, height, FOG, 1.0, rng=0)
        assert fog.std() < day.std()

    def test_grass_is_greener_than_road(self, scene):
        labels = scene.label_window((256, 256), (64, 96), 1.0)
        img = render_labels(labels, None, DAY, 1.0, rng=0)
        grass = labels == int(UavidClass.LOW_VEGETATION)
        road = labels == int(UavidClass.ROAD)
        if grass.any() and road.any():
            assert img[1][grass].mean() > img[1][road].mean()

    def test_shadows_darken_ground(self, window):
        labels, height = window
        if not (height > 0).any():
            pytest.skip("no elevated objects in window")
        with_shadow = render_labels(labels, height, DAY, 1.0, rng=0)
        without = render_labels(labels, None, DAY, 1.0, rng=0)
        assert with_shadow.mean() <= without.mean() + 1e-6

    def test_invalid_labels_rejected(self):
        with pytest.raises(ValueError, match="class set"):
            render_labels(np.full((8, 8), 99), None, DAY, 1.0, rng=0)
        with pytest.raises(ValueError, match="2-D"):
            render_labels(np.zeros((2, 8, 8), dtype=int), None, DAY,
                          1.0, rng=0)

    def test_base_colors_cover_all_classes(self):
        assert BASE_COLORS.shape == (8, 3)

    def test_cars_get_distinct_instance_colors(self, scene):
        """Two separated cars should not share the exact same paint."""
        car_a = next(c for c in scene.cars if not c.moving)
        labels = scene.label_window((car_a.row, car_a.col), (32, 32),
                                    scene.config.gsd)
        img = render_labels(labels, None, DAY, 0.5, rng=0)
        mask = labels == int(UavidClass.STATIC_CAR)
        if mask.sum() >= 8:
            colors = img[:, mask]
            assert colors.std() > 0.0
