"""Tests for the runtime monitor — Eq. (2) semantics and conservatism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitor import MonitorConfig, RuntimeMonitor
from repro.dataset.classes import NUM_CLASSES, UavidClass
from repro.segmentation.bayesian import BayesianSegmenter, PixelDistribution
from repro.utils.geometry import Box


def _distribution(mean_road=0.05, std_road=0.01, h=8, w=8):
    """Synthetic pixel distribution with controllable road scores."""
    mean = np.full((NUM_CLASSES, h, w), 0.1)
    std = np.full((NUM_CLASSES, h, w), 0.005)
    for cls in (UavidClass.ROAD, UavidClass.MOVING_CAR,
                UavidClass.STATIC_CAR):
        mean[int(cls)] = mean_road
        std[int(cls)] = std_road
    return PixelDistribution(mean=mean, std=std, num_samples=10)


class _FakeSegmenter:
    """Stands in for BayesianSegmenter in pure-rule tests."""

    def __init__(self, distribution):
        self.distribution = distribution
        self.model = None

    def predict_distribution(self, image, num_samples=None,
                             max_batch=None):
        return self.distribution


class TestEq2Rule:
    def test_confident_safe_pixels_pass(self):
        monitor = RuntimeMonitor(_FakeSegmenter(None), MonitorConfig())
        dist = _distribution(mean_road=0.02, std_road=0.005)
        # 0.02 + 3*0.005 = 0.035 <= 0.125 -> safe.
        assert not monitor.unsafe_pixels(dist).any()

    def test_high_mean_flagged(self):
        monitor = RuntimeMonitor(_FakeSegmenter(None), MonitorConfig())
        dist = _distribution(mean_road=0.2, std_road=0.0)
        assert monitor.unsafe_pixels(dist).all()

    def test_high_uncertainty_flagged(self):
        """Low mean but large sigma must still trip the monitor —
        that is the whole point of Eq. (2)."""
        monitor = RuntimeMonitor(_FakeSegmenter(None), MonitorConfig())
        dist = _distribution(mean_road=0.05, std_road=0.1)
        # 0.05 + 0.3 > 0.125.
        assert monitor.unsafe_pixels(dist).all()

    def test_boundary_exactly_tau_is_safe(self):
        monitor = RuntimeMonitor(_FakeSegmenter(None),
                                 MonitorConfig(tau=0.125))
        dist = _distribution(mean_road=0.125, std_road=0.0)
        # Eq. (2) is "<= tau" -> exactly tau passes.
        assert not monitor.unsafe_pixels(dist).any()

    def test_any_road_class_trips(self):
        monitor = RuntimeMonitor(_FakeSegmenter(None), MonitorConfig())
        dist = _distribution(mean_road=0.02, std_road=0.0)
        # Only the static-car class is uncertain.
        dist.mean[int(UavidClass.STATIC_CAR), 3, 3] = 0.5
        unsafe = monitor.unsafe_pixels(dist)
        assert unsafe[3, 3]
        assert unsafe.sum() == 1

    def test_non_road_classes_ignored(self):
        monitor = RuntimeMonitor(_FakeSegmenter(None), MonitorConfig())
        dist = _distribution(mean_road=0.02, std_road=0.0)
        dist.mean[int(UavidClass.BUILDING)] = 0.9
        assert not monitor.unsafe_pixels(dist).any()

    @given(tau_low=st.floats(0.05, 0.3), delta=st.floats(0.01, 0.3))
    @settings(max_examples=40, deadline=None)
    def test_tau_monotonicity(self, tau_low, delta):
        """Raising tau can only shrink the unsafe set."""
        rng = np.random.default_rng(0)
        mean = rng.uniform(0, 0.4, size=(NUM_CLASSES, 6, 6))
        std = rng.uniform(0, 0.1, size=(NUM_CLASSES, 6, 6))
        dist = PixelDistribution(mean=mean, std=std, num_samples=10)
        low = RuntimeMonitor(_FakeSegmenter(None),
                             MonitorConfig(tau=tau_low))
        high = RuntimeMonitor(_FakeSegmenter(None),
                              MonitorConfig(tau=min(tau_low + delta,
                                                    1.0)))
        unsafe_low = low.unsafe_pixels(dist)
        unsafe_high = high.unsafe_pixels(dist)
        assert not (unsafe_high & ~unsafe_low).any()

    @given(mult=st.floats(0.0, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_sigma_multiplier_monotonicity(self, mult):
        """A larger sigma multiplier is never less conservative."""
        rng = np.random.default_rng(1)
        mean = rng.uniform(0, 0.2, size=(NUM_CLASSES, 5, 5))
        std = rng.uniform(0, 0.05, size=(NUM_CLASSES, 5, 5))
        dist = PixelDistribution(mean=mean, std=std, num_samples=10)
        base = RuntimeMonitor(_FakeSegmenter(None),
                              MonitorConfig(sigma_multiplier=mult))
        stricter = RuntimeMonitor(
            _FakeSegmenter(None),
            MonitorConfig(sigma_multiplier=mult + 1.0))
        assert (base.unsafe_pixels(dist) <=
                stricter.unsafe_pixels(dist)).all()


class TestZoneVerdicts:
    def test_accepts_clean_zone(self):
        dist = _distribution(mean_road=0.01, std_road=0.001, h=16, w=16)
        monitor = RuntimeMonitor(_FakeSegmenter(dist), MonitorConfig())
        image = np.zeros((3, 16, 16), dtype=np.float32)
        verdict = monitor.check_zone(image, Box(4, 4, 8, 8))
        assert verdict.accepted
        assert verdict.unsafe_fraction == 0.0

    def test_rejects_unsafe_zone(self):
        dist = _distribution(mean_road=0.3, std_road=0.0, h=16, w=16)
        monitor = RuntimeMonitor(_FakeSegmenter(dist), MonitorConfig())
        image = np.zeros((3, 16, 16), dtype=np.float32)
        verdict = monitor.check_zone(image, Box(4, 4, 8, 8))
        assert not verdict.accepted
        assert verdict.unsafe_fraction == 1.0

    def test_max_unsafe_fraction_tolerance(self):
        dist = _distribution(mean_road=0.01, std_road=0.0, h=16, w=16)
        # One bad pixel inside the zone.
        dist.mean[int(UavidClass.ROAD), 8, 8] = 0.9
        image = np.zeros((3, 16, 16), dtype=np.float32)
        strict = RuntimeMonitor(_FakeSegmenter(dist),
                                MonitorConfig(max_unsafe_fraction=0.0))
        lenient = RuntimeMonitor(
            _FakeSegmenter(dist),
            MonitorConfig(max_unsafe_fraction=0.05))
        box = Box(4, 4, 8, 8)
        assert not strict.check_zone(image, box).accepted
        assert lenient.check_zone(image, box).accepted

    def test_empty_box_rejected(self):
        monitor = RuntimeMonitor(_FakeSegmenter(None), MonitorConfig())
        with pytest.raises(ValueError, match="empty"):
            monitor.check_zone(np.zeros((3, 8, 8), dtype=np.float32),
                               Box(0, 0, 0, 4))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MonitorConfig(tau=1.5)
        with pytest.raises(ValueError):
            MonitorConfig(sigma_multiplier=-1.0)
        with pytest.raises(ValueError):
            MonitorConfig(num_samples=0)
        with pytest.raises(ValueError):
            MonitorConfig(road_classes=())


class TestBatchedZones:
    """check_zones must agree with N separate check_zone calls."""

    def _monitor(self, tiny_system, seed=5, num_samples=3):
        segmenter = BayesianSegmenter(tiny_system.model,
                                      num_samples=num_samples, rng=seed)
        return RuntimeMonitor(segmenter,
                              MonitorConfig(num_samples=num_samples))

    def test_check_zones_matches_sequential_calls(self, tiny_system):
        image = tiny_system.test_samples[0].image
        boxes = [Box(4, 4, 10, 10), Box(8, 20, 12, 12), Box(20, 40, 9, 11)]
        batched = self._monitor(tiny_system).check_zones(image, boxes)
        sequential_monitor = self._monitor(tiny_system)
        sequential = [sequential_monitor.check_zone(image, b)
                      for b in boxes]
        assert len(batched) == len(sequential) == len(boxes)
        for a, b in zip(batched, sequential):
            assert a.accepted == b.accepted
            assert a.unsafe_fraction == b.unsafe_fraction
            assert np.array_equal(a.unsafe_mask, b.unsafe_mask)
            assert np.array_equal(a.distribution.mean,
                                  b.distribution.mean)
            assert np.array_equal(a.distribution.std, b.distribution.std)

    def test_check_zones_joint_reproducible(self, tiny_system):
        image = tiny_system.test_samples[0].image
        boxes = [Box(4, 4, 10, 10), Box(8, 20, 12, 12)]
        a = self._monitor(tiny_system).check_zones(image, boxes,
                                                   joint=True)
        b = self._monitor(tiny_system).check_zones(image, boxes,
                                                   joint=True,
                                                   max_batch=2)
        for va, vb in zip(a, b):
            assert va.accepted == vb.accepted
            assert va.unsafe_fraction == vb.unsafe_fraction
            assert va.unsafe_mask.shape == (va.box.height, va.box.width)

    def test_check_zones_joint_on_unaligned_frame(self, tiny_system):
        """Regression: frames not divisible by the stride trim every
        natural crop below its grown extent; the joint path must centre
        a target-sized window rather than raise."""
        stride = tiny_system.model.config.output_stride
        image = tiny_system.test_samples[0].image[:, :stride * 2 + 2, :]
        box = Box(0, 4, image.shape[1], 12)  # full (unaligned) height
        monitor = self._monitor(tiny_system)
        single = monitor.check_zone(image, box)
        verdicts = self._monitor(tiny_system).check_zones(
            image, [box, Box(1, 20, 6, 6)], joint=True)
        assert len(verdicts) == 2
        assert verdicts[0].unsafe_mask.shape == single.unsafe_mask.shape

    def test_check_zones_empty_list(self, tiny_system):
        image = tiny_system.test_samples[0].image
        assert self._monitor(tiny_system).check_zones(image, []) == []

    def test_check_zones_rejects_empty_box(self, tiny_system):
        image = tiny_system.test_samples[0].image
        with pytest.raises(ValueError, match="empty"):
            self._monitor(tiny_system).check_zones(
                image, [Box(0, 0, 4, 4), Box(0, 0, 0, 4)])


class TestSmallFrames:
    """Frames or crops below the model stride must fail loudly (or be
    clamped), never produce a zero-extent crop (regression)."""

    def test_frame_smaller_than_stride_raises_clearly(self, tiny_system):
        stride = tiny_system.model.config.output_stride
        assert stride > 1  # the regression needs a real stride
        segmenter = BayesianSegmenter(tiny_system.model, num_samples=2,
                                      rng=0)
        monitor = RuntimeMonitor(segmenter, MonitorConfig(num_samples=2))
        tiny = np.zeros((3, stride - 1, stride - 1), dtype=np.float32)
        with pytest.raises(ValueError, match="output stride"):
            monitor.check_zone(tiny, Box(0, 0, 1, 1))
        with pytest.raises(ValueError, match="output stride"):
            monitor.full_frame_unsafe(tiny)

    def test_tiny_box_in_adequate_frame_is_clamped(self, tiny_system):
        """A 1x1 box in a frame >= one stride must yield a verdict."""
        segmenter = BayesianSegmenter(tiny_system.model, num_samples=2,
                                      rng=0)
        monitor = RuntimeMonitor(segmenter, MonitorConfig(
            num_samples=2, context_margin_px=0))
        image = tiny_system.test_samples[0].image
        verdict = monitor.check_zone(image, Box(0, 0, 1, 1))
        assert verdict.unsafe_mask.shape == (1, 1)


class TestWithRealModel:
    """Integration with the actual Bayesian segmenter."""

    def test_crop_padding_respects_stride(self, tiny_system):
        segmenter = BayesianSegmenter(tiny_system.model, num_samples=2,
                                      rng=0)
        monitor = RuntimeMonitor(segmenter, MonitorConfig(num_samples=2))
        image = tiny_system.test_samples[0].image
        # An awkward box size/position not divisible by the stride.
        verdict = monitor.check_zone(image, Box(3, 5, 9, 11))
        assert verdict.unsafe_mask.shape == (9, 11)

    def test_full_frame_unsafe_shape(self, tiny_system):
        segmenter = BayesianSegmenter(tiny_system.model, num_samples=2,
                                      rng=0)
        monitor = RuntimeMonitor(segmenter, MonitorConfig(num_samples=2))
        image = tiny_system.test_samples[0].image
        unsafe = monitor.full_frame_unsafe(image)
        assert unsafe.shape == image.shape[1:]
        assert unsafe.dtype == bool

    def test_verdict_reproducible_with_seed(self, tiny_system):
        image = tiny_system.test_samples[0].image
        box = Box(8, 8, 12, 12)
        verdicts = []
        for _ in range(2):
            segmenter = BayesianSegmenter(tiny_system.model,
                                          num_samples=4, rng=5)
            monitor = RuntimeMonitor(segmenter,
                                     MonitorConfig(num_samples=4))
            verdicts.append(monitor.check_zone(image, box))
        assert verdicts[0].unsafe_fraction == \
            pytest.approx(verdicts[1].unsafe_fraction)
