"""Asyncio admission broker: many clients, one episode engine.

:class:`ServeBroker` is the front door of the serving layer.  Clients
submit zone checks (``await broker.check_zone(image, box)``) or whole
episode steps (``await broker.run_episode(frames, seed=...)``) from any
number of concurrent coroutines; the broker micro-batches everything
that arrives within a short **admission window** (a few milliseconds)
into one *wave* and feeds the wave to a single shared
:class:`repro.core.engine.EpisodeScheduler` — zone checks as one
jointly seeded stacked pass (:meth:`EpisodeScheduler.check_zones_wave`),
episode steps as one ``scheduler.run`` — so concurrency buys stacked
batched forwards instead of contention.

**Backpressure is explicit and typed.**  The admission queue is
bounded (``ServeConfig.queue_depth``); a request that arrives while
the queue is full is shed immediately with :class:`AdmissionRejected`
(``reason="queue_full"``), and a request after shutdown began gets
``reason="shutdown"``.  A safety check is never silently dropped or
partially answered: every admitted request's future resolves with a
verdict, an episode result, or the wave's exception, and
:meth:`ServeBroker.stop` drains all in-flight checks before returning.

Waves execute on a dedicated single worker thread so the event loop
stays responsive for admission while numpy crunches; multi-core scaling
comes from the scheduler's persistent worker pool
(``ServeConfig.workers`` / ``REPRO_SERVE_WORKERS``), not from thread
fan-out.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.engine import (
    _MONITOR_BATCHING,
    EngineConfig,
    EpisodeRequest,
    EpisodeScheduler,
)
from repro.utils.validation import check_positive

__all__ = [
    "AdmissionRejected",
    "ServeBroker",
    "ServeConfig",
    "serve_workers_default",
]

#: Admission-queue sentinel that tells the broker loop to drain + exit.
_SHUTDOWN = object()


def serve_workers_default() -> int | None:
    """Worker count requested via ``REPRO_SERVE_WORKERS``, or None.

    The serving layer's deployment-time sizing toggle (sanctioned env
    read site, mirroring ``REPRO_CONV_ENGINE``): ``ServeConfig`` reads
    it only when its ``workers`` field is left unset, so explicit
    configuration always wins.
    """
    raw = os.environ.get("REPRO_SERVE_WORKERS", "").strip()
    if not raw:
        return None
    value = int(raw)
    if value < 1:
        raise ValueError(
            f"REPRO_SERVE_WORKERS must be >= 1, got {raw!r}")
    return value


class AdmissionRejected(RuntimeError):
    """Typed backpressure rejection — the shed half of the contract.

    Raised synchronously at submission time, never after a request was
    admitted, so a client always knows whether its safety check is in
    flight.  ``reason`` is ``"queue_full"`` (admission queue at
    ``queue_depth``) or ``"shutdown"`` (broker stopping/stopped);
    ``queue_depth`` echoes the configured bound.
    """

    def __init__(self, reason: str, queue_depth: int):
        super().__init__(
            f"request rejected at admission ({reason}, "
            f"queue_depth={queue_depth}) — resubmit or back off")
        self.reason = reason
        self.queue_depth = queue_depth


@dataclass(frozen=True)
class ServeConfig:
    """Admission-control and backend knobs of :class:`ServeBroker`.

    Attributes
    ----------
    admission_window_ms:
        How long (milliseconds) the broker keeps collecting requests
        into the current wave after the first one arrives.  Default
        2.0 — a couple of milliseconds buys most of the stacking win
        (a stacked pass amortises per-forward overhead) while staying
        far below a frame interval; ``0`` serves every request the
        moment it is dequeued (no batching, lowest latency).
    queue_depth:
        Bound of the admission queue — the *explicit backpressure*
        knob.  A request arriving while ``queue_depth`` requests are
        already waiting is shed with a typed
        :class:`AdmissionRejected` (``reason="queue_full"``) instead
        of queueing unboundedly or being dropped silently.  Default
        64.
    max_wave:
        Cap on requests admitted into one wave, whatever the window
        collects.  Default 32 — matches the joint pass's measured
        chunk sweet spot (``EngineConfig.joint_max_batch``); larger
        waves only grow per-wave latency without stacking better.
    monitor_batching:
        ``EngineConfig.monitor_batching`` for the broker's scheduler
        when it runs single-process: ``"joint"`` (default; episode
        steps share the stacked-pass machinery), ``"shared"`` or
        ``"exact"``.  Ignored when the resolved worker count is > 1 —
        worker sharding requires exact mode, so the broker switches to
        it (zone-check waves always run jointly stacked either way,
        via :meth:`EpisodeScheduler.check_zones_wave`).
    workers:
        Persistent worker processes for the backing scheduler
        (``EngineConfig.workers``).  ``None`` (default) defers to the
        ``REPRO_SERVE_WORKERS`` environment toggle and falls back to
        ``1``; an explicit value always wins.  See
        :attr:`ServeBroker.effective_workers` for the degree actually
        achieved on this platform.
    """

    admission_window_ms: float = 2.0
    queue_depth: int = 64
    max_wave: int = 32
    monitor_batching: str = "joint"
    workers: int | None = None

    def __post_init__(self):
        if self.admission_window_ms < 0:
            raise ValueError(
                f"admission_window_ms must be >= 0, "
                f"got {self.admission_window_ms}")
        check_positive("queue_depth", self.queue_depth)
        check_positive("max_wave", self.max_wave)
        if self.monitor_batching not in _MONITOR_BATCHING:
            raise ValueError(
                f"monitor_batching must be one of {_MONITOR_BATCHING}, "
                f"got {self.monitor_batching!r}")
        if self.workers is not None:
            check_positive("workers", self.workers)

    def resolved_workers(self) -> int:
        """The worker count after the environment fallback."""
        if self.workers is not None:
            return self.workers
        return serve_workers_default() or 1

    def engine_config(self, base: EngineConfig | None = None) -> EngineConfig:
        """``base`` rewritten for this serve configuration.

        Worker sharding requires ``monitor_batching="exact"`` (the
        engine validates this), so a multi-worker broker always runs
        its scheduler in exact mode; otherwise the broker's
        ``monitor_batching`` choice is applied.
        """
        from dataclasses import replace

        base = base if base is not None else EngineConfig()
        workers = self.resolved_workers()
        if workers > 1:
            return replace(base, workers=workers,
                           monitor_batching="exact")
        return replace(base, workers=1,
                       monitor_batching=self.monitor_batching)


@dataclass
class _Pending:
    """One admitted request waiting in the broker queue."""

    kind: str  # "zone" | "episode"
    payload: object
    future: asyncio.Future = field(repr=False)


class ServeBroker:
    """Micro-batching admission broker over one episode scheduler.

    Usage::

        async with ServeBroker(model, config=pipeline_config) as broker:
            verdict = await broker.check_zone(image, box)
            episode = await broker.run_episode(frames, seed=7)

    Construction builds the backing :class:`EpisodeScheduler` from
    ``serve.engine_config(engine)``; ``start``/``stop`` (or the async
    context manager) run the admission loop.  ``stats`` counts
    admissions, typed rejections, waves and served checks — the
    no-silent-drop ledger the serve bench audits.
    """

    def __init__(self, model, config=None, engine: EngineConfig | None = None,
                 serve: ServeConfig | None = None, rng=None):
        self.serve = serve or ServeConfig()
        self.scheduler = EpisodeScheduler(
            model, config=config, engine=self.serve.engine_config(engine),
            rng=rng)
        self.stats: dict[str, int] = {
            "admitted": 0,
            "rejected_queue_full": 0,
            "rejected_shutdown": 0,
            "waves": 0,
            "max_wave": 0,
            "zone_checks": 0,
            "episode_steps": 0,
            "wave_errors": 0,
        }
        self._queue: asyncio.Queue | None = None
        self._runner: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._accepting = False

    # -- lifecycle -----------------------------------------------------
    @property
    def effective_workers(self) -> int:
        """Worker processes the backing scheduler actually uses."""
        return self.scheduler.effective_workers

    @property
    def running(self) -> bool:
        return self._runner is not None and not self._runner.done()

    async def start(self) -> "ServeBroker":
        """Start the admission loop (idempotent while running)."""
        if self.running:
            return self
        self._queue = asyncio.Queue(maxsize=self.serve.queue_depth)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-wave")
        self._accepting = True
        self._runner = asyncio.create_task(
            self._run(), name="repro-serve-broker")
        return self

    async def stop(self) -> None:
        """Graceful shutdown: reject new work, drain in-flight checks.

        Every request admitted before ``stop`` resolves (served or
        failed with its wave's exception) before this returns; later
        submissions get ``AdmissionRejected(reason="shutdown")``.
        """
        self._accepting = False
        if self._runner is not None:
            await self._queue.put(_SHUTDOWN)
            try:
                await self._runner
            finally:
                self._runner = None
                self._executor.shutdown(wait=True)
                self._executor = None
        self.scheduler.close()

    async def __aenter__(self) -> "ServeBroker":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- client surface ------------------------------------------------
    async def check_zone(self, image, box):
        """One zone safety check; resolves to a ``ZoneVerdict``.

        Raises :class:`AdmissionRejected` (typed, immediate) when the
        admission queue is full or the broker is shutting down.
        """
        return await self._admit("zone", (image, box))

    async def check_zones(self, image, boxes) -> list:
        """All of one frame's zones, admitted together."""
        return list(await asyncio.gather(
            *(self.check_zone(image, box) for box in boxes)))

    async def run_episode(self, frames, seed=0, name=""):
        """One full episode step; resolves to an ``EpisodeResult``."""
        request = EpisodeRequest(frames=tuple(frames), seed=seed,
                                 name=name)
        return await self._admit("episode", request)

    def _admit(self, kind: str, payload) -> asyncio.Future:
        if not self._accepting or self._queue is None:
            self.stats["rejected_shutdown"] += 1
            raise AdmissionRejected("shutdown", self.serve.queue_depth)
        item = _Pending(kind, payload,
                        asyncio.get_running_loop().create_future())
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.stats["rejected_queue_full"] += 1
            raise AdmissionRejected(
                "queue_full", self.serve.queue_depth) from None
        self.stats["admitted"] += 1
        return item.future

    # -- admission loop ------------------------------------------------
    async def _run(self) -> None:
        window_s = self.serve.admission_window_ms / 1000.0
        loop = asyncio.get_running_loop()
        draining = False
        while not draining:
            item = await self._queue.get()
            if item is _SHUTDOWN:
                break
            wave = [item]
            deadline = loop.time() + window_s
            while len(wave) < self.serve.max_wave:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(),
                                                 remaining)
                except asyncio.TimeoutError:
                    break
                if nxt is _SHUTDOWN:
                    draining = True
                    break
                wave.append(nxt)
            await self._serve_wave(wave)
        # Shutdown sentinel seen: serve whatever was already admitted —
        # an admitted safety check is never dropped.
        leftovers = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not _SHUTDOWN:
                leftovers.append(item)
        while leftovers:
            wave = leftovers[:self.serve.max_wave]
            leftovers = leftovers[self.serve.max_wave:]
            await self._serve_wave(wave)

    async def _serve_wave(self, wave: list) -> None:
        """Serve one admitted wave: zones stacked, episodes batched.

        Zone checks run first (one ``check_zones_wave``), episode
        steps second (one ``scheduler.run``) — a fixed order, so a
        fixed request trace replays the scheduler's joint RNG stream
        identically.  Waves execute on the broker's dedicated worker
        thread; every member future resolves here, with the result or
        with the wave's exception.
        """
        self.stats["waves"] += 1
        self.stats["max_wave"] = max(self.stats["max_wave"], len(wave))
        loop = asyncio.get_running_loop()
        zones = [p for p in wave if p.kind == "zone"]
        episodes = [p for p in wave if p.kind == "episode"]
        if zones:
            items = [p.payload for p in zones]
            try:
                verdicts = await loop.run_in_executor(
                    self._executor, self.scheduler.check_zones_wave,
                    items)
            except Exception as exc:  # noqa: BLE001 - resolves futures
                self.stats["wave_errors"] += 1
                self._fail(zones, exc)
            else:
                self.stats["zone_checks"] += len(zones)
                for p, verdict in zip(zones, verdicts):
                    if not p.future.done():
                        p.future.set_result(verdict)
        if episodes:
            requests = [p.payload for p in episodes]
            try:
                out = await loop.run_in_executor(
                    self._executor, self.scheduler.run, requests)
            except Exception as exc:  # noqa: BLE001 - resolves futures
                self.stats["wave_errors"] += 1
                self._fail(episodes, exc)
            else:
                self.stats["episode_steps"] += len(episodes)
                for p, result in zip(episodes, out):
                    if not p.future.done():
                        p.future.set_result(result)

    @staticmethod
    def _fail(pending: list, exc: BaseException) -> None:
        for p in pending:
            if not p.future.done():
                p.future.set_exception(exc)
