#!/usr/bin/env python3
"""End-to-end MEDI DELIVERY mission campaign with failure injection.

Monte-Carlo missions over procedural city districts: a navigation+
communication failure strikes mid-flight, the Fig. 1 safety switch
reacts, and the resulting Table II ground-risk outcome is recorded.
Three vehicle configurations are compared:

* **FT only** — no EL capability; loss of navigation means parachute
  descent wherever the vehicle happens to be (the status quo the paper
  argues against);
* **EL unmonitored** — the segmentation core function alone;
* **EL + monitor** — the paper's full Fig. 2 architecture.

Run:  python examples/medi_delivery_mission.py
"""

from repro.dataset import UrbanScene
from repro.eval import build_trained_system, format_table, format_title
from repro.sora import Severity
from repro.uav import (
    FailureEvent,
    FailureType,
    MissionConfig,
    run_campaign,
)

NUM_MISSIONS = 20


def main() -> None:
    print(format_title("MEDI DELIVERY mission campaign (Fig. 1 + Fig. 2)"))
    system = build_trained_system(verbose=True)

    print(f"\ngenerating {NUM_MISSIONS} city districts ...")
    scenes = [UrbanScene.generate(seed=1000 + i)
              for i in range(NUM_MISSIONS)]
    failures = [FailureEvent(FailureType.NAVIGATION_AND_COMM_LOSS,
                             time_s=4.0 + (i % 10))
                for i in range(NUM_MISSIONS)]
    config = MissionConfig(camera_shape_px=(96, 128), camera_gsd_m=1.0)

    policies = {
        "FT only (no EL)": None,
        "EL unmonitored": system.make_pipeline(
            monitor_enabled=False).as_mission_policy(),
        "EL + monitor": system.make_pipeline(
            monitor_enabled=True).as_mission_policy(),
    }

    rows = []
    for name, policy in policies.items():
        stats = run_campaign(scenes, failures, config=config,
                             el_policy=policy, seed=42)
        severity_cells = [stats.severity_counts.get(s, 0)
                          for s in Severity]
        rows.append([name, *severity_cells,
                     f"{stats.severe_fraction():.2f}",
                     f"{stats.mean_severity():.2f}",
                     stats.el_aborts])
        print(f"  campaign '{name}' done "
              f"({stats.num_missions} missions)")

    print("\n" + format_table(
        ["strategy", "sev1", "sev2", "sev3", "sev4", "sev5",
         "P(severe)", "mean sev", "EL aborts"],
        rows,
        title="touchdown severity distribution "
              "(sev4/5 involve fatalities):"))

    print("\nreading: EL moves probability mass from severe outcomes "
          "to negligible ones;\nthe monitor additionally converts "
          "'confidently wrong' landings into aborts (-> FT),\nwhich is "
          "the integrity argument of Table III made measurable.")


if __name__ == "__main__":
    main()
