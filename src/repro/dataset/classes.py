"""The UAVid label set used throughout the reproduction.

The paper trains MSDnet on UAVid (Lyu et al., 2020), which labels every
pixel with one of eight classes.  The *busy road* super-category that the
emergency-landing monitor must avoid "at all costs" (Sec. V-B) is the
union of ``ROAD``, ``STATIC_CAR`` and ``MOVING_CAR`` — "the three UAVid
categories that make up the busy road category".
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

__all__ = [
    "UavidClass",
    "NUM_CLASSES",
    "BUSY_ROAD_CLASSES",
    "HIGH_RISK_CLASSES",
    "PALETTE",
    "CLASS_NAMES",
    "busy_road_mask",
    "class_mask",
]


class UavidClass(IntEnum):
    """The eight UAVid semantic classes."""

    BACKGROUND_CLUTTER = 0
    BUILDING = 1
    ROAD = 2
    TREE = 3
    LOW_VEGETATION = 4
    MOVING_CAR = 5
    STATIC_CAR = 6
    HUMAN = 7


NUM_CLASSES = len(UavidClass)

#: Classes forming the paper's "busy road" category (Sec. V-B): pixels
#: the landing-zone monitor over-approximates and must reject.
BUSY_ROAD_CLASSES: tuple[UavidClass, ...] = (
    UavidClass.ROAD,
    UavidClass.MOVING_CAR,
    UavidClass.STATIC_CAR,
)

#: Classes whose presence in a landing footprint realises one of the
#: hazardous outcomes of Table II (roads/cars -> R1/R5, humans -> R2,
#: buildings -> R4).  Used by the integrity requirements (Table III,
#: Low-1: "selected landing zones do not contain high risk areas").
HIGH_RISK_CLASSES: tuple[UavidClass, ...] = (
    UavidClass.ROAD,
    UavidClass.MOVING_CAR,
    UavidClass.STATIC_CAR,
    UavidClass.HUMAN,
    UavidClass.BUILDING,
)

#: Official UAVid visualisation palette (RGB, uint8), indexed by class id.
PALETTE = np.array(
    [
        (0, 0, 0),        # background clutter
        (128, 0, 0),      # building
        (128, 64, 128),   # road
        (0, 128, 0),      # tree
        (128, 128, 0),    # low vegetation
        (64, 0, 128),     # moving car
        (192, 0, 192),    # static car
        (64, 64, 0),      # human
    ],
    dtype=np.uint8,
)

CLASS_NAMES = {
    UavidClass.BACKGROUND_CLUTTER: "background clutter",
    UavidClass.BUILDING: "building",
    UavidClass.ROAD: "road",
    UavidClass.TREE: "tree",
    UavidClass.LOW_VEGETATION: "low vegetation",
    UavidClass.MOVING_CAR: "moving car",
    UavidClass.STATIC_CAR: "static car",
    UavidClass.HUMAN: "human",
}


def class_mask(labels: np.ndarray, classes) -> np.ndarray:
    """Boolean mask of pixels whose label is in ``classes``."""
    mask = np.zeros(np.shape(labels), dtype=bool)
    for cls in classes:
        mask |= labels == int(cls)
    return mask


def busy_road_mask(labels: np.ndarray) -> np.ndarray:
    """Boolean mask of the paper's busy-road super-category."""
    return class_mask(labels, BUSY_ROAD_CLASSES)
