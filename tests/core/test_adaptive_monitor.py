"""Adaptive early-exit monitoring: stopping rule, degenerate
contracts, and observability.

The certified claims under test:

* disabled configurations (``adaptive=False``, ``adaptive_margin=0``,
  duck-typed segmenters) route through the unchanged full-``T`` paths
  bit for bit;
* a single full-budget round (``adaptive_check_every >= T``) is bit
  for bit the non-adaptive stream, and the worst case consumes exactly
  ``T`` samples;
* the stopping rule only certifies verdicts that no completion of the
  remaining samples can flip, and never on a sliver of evidence;
* ``last_adaptive_stats`` faithfully records samples used per window.
"""

import numpy as np
import pytest

from repro.core.engine import EpisodeScheduler
from repro.core.monitor import (
    MonitorConfig,
    RuntimeMonitor,
    adaptive_default,
)
from repro.dataset.classes import NUM_CLASSES, UavidClass
from repro.segmentation.bayesian import BayesianSegmenter, PixelDistribution
from repro.utils.geometry import Box


@pytest.fixture(autouse=True)
def _no_process_default(monkeypatch):
    """These tests compare adaptive runs against plain full-``T``
    references, so the process-default toggle (set by the check.sh
    adaptive rerun stage) must not upgrade the references."""
    monkeypatch.delenv("REPRO_MONITOR_ADAPTIVE", raising=False)


def _distribution(mean_road, std_road, num_samples, h=8, w=8):
    """Synthetic running-moment snapshot with controllable road scores."""
    mean = np.full((NUM_CLASSES, h, w), 0.01, dtype=np.float32)
    std = np.full((NUM_CLASSES, h, w), 0.001, dtype=np.float32)
    for cls in (UavidClass.ROAD, UavidClass.MOVING_CAR,
                UavidClass.STATIC_CAR):
        mean[int(cls)] = mean_road
        std[int(cls)] = std_road
    return PixelDistribution(mean=mean, std=std,
                             num_samples=num_samples)


class _FakeSegmenter:
    """No adaptive engine on purpose: exercises the duck-type gate."""

    def __init__(self):
        self.model = None

    def predict_distribution(self, image, num_samples=None,
                             max_batch=None):
        raise AssertionError("not used by these tests")


def _verdict_key(v):
    return (v.accepted, v.unsafe_fraction, v.unsafe_mask.tobytes(),
            v.distribution.mean.tobytes(), v.distribution.std.tobytes())


class TestKnobValidation:
    def test_defaults_are_off(self):
        cfg = MonitorConfig()
        assert cfg.adaptive is False
        assert cfg.adaptive_check_every == 2
        assert cfg.adaptive_margin == 1.0

    def test_check_every_must_be_positive(self):
        with pytest.raises(ValueError, match="adaptive_check_every"):
            MonitorConfig(adaptive_check_every=0)

    def test_margin_must_be_nonnegative(self):
        with pytest.raises(ValueError, match="adaptive_margin"):
            MonitorConfig(adaptive_margin=-0.5)

    def test_fake_segmenter_disables_adaptive(self):
        # Duck-typed substitutes without the adaptive engine fall back
        # to the exact paths instead of crashing mid-pass.
        monitor = RuntimeMonitor(_FakeSegmenter(),
                                 MonitorConfig(adaptive=True))
        assert not monitor._adaptive_active()

    def test_margin_zero_disables_adaptive(self, tiny_system):
        segmenter = BayesianSegmenter(tiny_system.model,
                                      num_samples=6, rng=5)
        monitor = RuntimeMonitor(segmenter, MonitorConfig(
            num_samples=6, adaptive=True, adaptive_margin=0.0))
        assert not monitor._adaptive_active()

    def test_env_toggle_upgrades_default(self, monkeypatch, tiny_system):
        monkeypatch.delenv("REPRO_MONITOR_ADAPTIVE", raising=False)
        assert not adaptive_default()
        monkeypatch.setenv("REPRO_MONITOR_ADAPTIVE", "1")
        assert adaptive_default()
        segmenter = BayesianSegmenter(tiny_system.model,
                                      num_samples=6, rng=5)
        monitor = RuntimeMonitor(segmenter, MonitorConfig(num_samples=6))
        assert monitor._adaptive_active()


class TestStoppingRule:
    """``_zone_decided`` on synthetic running-moment snapshots."""

    ROI = Box(0, 0, 8, 8)

    def _monitor(self, **kwargs):
        cfg = MonitorConfig(num_samples=6, adaptive=True, **kwargs)
        return RuntimeMonitor(_FakeSegmenter(), cfg)

    def test_exhausted_budget_is_decided(self):
        monitor = self._monitor()
        dist = _distribution(0.1, 0.05, num_samples=6)
        assert monitor._zone_decided(dist, self.ROI)

    def test_sliver_of_evidence_never_certifies(self):
        monitor = self._monitor()
        # t = 1 < 2, and well under a third of the budget: even a
        # perfectly clean snapshot must not exit.
        dist = _distribution(0.0, 0.0, num_samples=1)
        assert not monitor._zone_decided(dist, self.ROI)

    def test_third_of_budget_floor(self):
        monitor = RuntimeMonitor(_FakeSegmenter(), MonitorConfig(
            num_samples=12, adaptive=True))
        clean = _distribution(0.0, 0.0, num_samples=3)
        assert not monitor._zone_decided(clean, self.ROI)  # 3*3 < 12
        clean4 = _distribution(0.0, 0.0, num_samples=4)
        assert monitor._zone_decided(clean4, self.ROI)

    def test_clean_zone_decides_early(self):
        monitor = self._monitor()
        dist = _distribution(0.02, 0.001, num_samples=2)
        assert monitor._zone_decided(dist, self.ROI)

    def test_clearly_unsafe_zone_decides_early(self):
        monitor = self._monitor()
        dist = _distribution(0.6, 0.01, num_samples=2)
        assert monitor._zone_decided(dist, self.ROI)

    def test_borderline_zone_keeps_sampling(self):
        monitor = self._monitor()
        # mu + margin*(sigma + floor) straddles tau = 0.125: neither
        # bound can certify, the pass must continue.
        dist = _distribution(0.1, 0.02, num_samples=2)
        assert not monitor._zone_decided(dist, self.ROI)

    def test_wider_margin_is_more_conservative(self):
        dist = _distribution(0.05, 0.01, num_samples=2)
        tight = self._monitor(adaptive_margin=0.05)
        wide = self._monitor(adaptive_margin=50.0)
        assert tight._zone_decided(dist, self.ROI)
        assert not wide._zone_decided(dist, self.ROI)


class TestDegenerateStreams:
    """Disabled / single-round configurations are bit for bit the
    certified full-``T`` reference stream."""

    def _monitor(self, tiny_system, seed=5, **cfg):
        segmenter = BayesianSegmenter(tiny_system.model,
                                      num_samples=6, rng=seed)
        return RuntimeMonitor(segmenter,
                              MonitorConfig(num_samples=6, **cfg))

    BOXES = [Box(4, 4, 10, 10), Box(8, 20, 12, 12), Box(20, 40, 9, 11)]

    def test_margin_zero_bit_for_bit(self, tiny_system):
        image = tiny_system.test_samples[0].image
        plain = self._monitor(tiny_system)
        disabled = self._monitor(tiny_system, adaptive=True,
                                 adaptive_margin=0.0)
        for box in self.BOXES:
            assert _verdict_key(plain.check_zone(image, box)) \
                == _verdict_key(disabled.check_zone(image, box))
        assert disabled.last_adaptive_stats["windows"] == 0

    def test_single_round_bit_for_bit_check_zone(self, tiny_system):
        image = tiny_system.test_samples[0].image
        plain = self._monitor(tiny_system)
        single = self._monitor(tiny_system, adaptive=True,
                               adaptive_check_every=6)
        for box in self.BOXES:
            assert _verdict_key(plain.check_zone(image, box)) \
                == _verdict_key(single.check_zone(image, box))

    def test_single_round_bit_for_bit_joint(self, tiny_system):
        image = tiny_system.test_samples[0].image
        plain = self._monitor(tiny_system).check_zones(
            image, self.BOXES, joint=True)
        single_monitor = self._monitor(tiny_system, adaptive=True,
                                       adaptive_check_every=6)
        single = single_monitor.check_zones(image, self.BOXES,
                                            joint=True)
        for a, b in zip(plain, single):
            assert _verdict_key(a) == _verdict_key(b)
        # Worst case provably consumes exactly the full budget.
        stats = single_monitor.last_adaptive_stats
        assert stats["windows"] == len(self.BOXES)
        assert stats["early_exits"] == 0
        assert stats["fallbacks"] == len(self.BOXES)
        assert stats["samples_used"] == 6 * len(self.BOXES)
        assert stats["samples_budget"] == 6 * len(self.BOXES)
        assert stats["samples_histogram"] == {6: len(self.BOXES)}


class TestAdaptivePasses:
    """Real early-exit runs: reproducibility, dedup, stats shape."""

    def _monitor(self, tiny_system, seed=5):
        segmenter = BayesianSegmenter(tiny_system.model,
                                      num_samples=6, rng=seed)
        return RuntimeMonitor(segmenter, MonitorConfig(
            num_samples=6, adaptive=True, adaptive_check_every=2))

    BOXES = [Box(4, 4, 10, 10), Box(8, 20, 12, 12), Box(20, 40, 9, 11)]

    def test_seeded_reproducible(self, tiny_system):
        image = tiny_system.test_samples[0].image
        ma = self._monitor(tiny_system)
        mb = self._monitor(tiny_system)
        va = ma.check_zones(image, self.BOXES, joint=True)
        vb = mb.check_zones(image, self.BOXES, joint=True)
        for a, b in zip(va, vb):
            assert _verdict_key(a) == _verdict_key(b)
        assert ma.last_adaptive_stats == mb.last_adaptive_stats

    def test_stats_shape_and_exit_floor(self, tiny_system):
        image = tiny_system.test_samples[0].image
        monitor = self._monitor(tiny_system)
        monitor.check_zones(image, self.BOXES, joint=True)
        stats = monitor.last_adaptive_stats
        assert stats["windows"] == len(self.BOXES)
        assert stats["early_exits"] + stats["fallbacks"] \
            == stats["windows"]
        assert stats["samples_used"] \
            == sum(k * n for k, n in
                   stats["samples_histogram"].items())
        assert stats["samples_budget"] == 6 * len(self.BOXES)
        # Exits land on checkpoint boundaries, never before the
        # third-of-budget floor (3*t >= T with T=6 -> t >= 2).
        for used in stats["samples_histogram"]:
            assert used == 6 or (used % 2 == 0 and 3 * used >= 6)

    def test_joint_dedup_fans_out(self, tiny_system):
        image = tiny_system.test_samples[0].image
        box = Box(4, 4, 10, 10)
        monitor = self._monitor(tiny_system)
        verdicts = monitor.check_zones(
            image, [box, box, Box(20, 40, 9, 11)], joint=True)
        assert len(verdicts) == 3
        assert _verdict_key(verdicts[0]) == _verdict_key(verdicts[1])
        # The duplicate box shares one segmentation unit.
        assert monitor.last_adaptive_stats["windows"] == 2

    def test_reset_clears_stats(self, tiny_system):
        image = tiny_system.test_samples[0].image
        monitor = self._monitor(tiny_system)
        monitor.check_zone(image, Box(4, 4, 10, 10))
        assert monitor.last_adaptive_stats["windows"] == 1
        monitor.reset_adaptive_stats()
        assert monitor.last_adaptive_stats \
            == RuntimeMonitor._empty_adaptive_stats()


class TestSchedulerAggregation:
    def test_merge_sums_counters_and_histograms(self):
        dst = {"windows": 2, "early_exits": 1, "fallbacks": 1,
               "samples_used": 8, "samples_budget": 12,
               "samples_histogram": {2: 1, 6: 1}}
        src = {"windows": 1, "early_exits": 1, "fallbacks": 0,
               "samples_used": 4, "samples_budget": 6,
               "samples_histogram": {4: 1, 2: 2}}
        EpisodeScheduler._merge_adaptive_stats(dst, src)
        assert dst == {"windows": 3, "early_exits": 2, "fallbacks": 1,
                       "samples_used": 12, "samples_budget": 18,
                       "samples_histogram": {2: 3, 4: 1, 6: 1}}
