"""Impact ballistics and parachute-descent models.

Reproduces the paper's Section III-A numbers exactly: a MEDI DELIVERY
vehicle cruising at a height of 120 m has a "typical ballistic vertical
speed" of 48.5 m/s (free-fall impact velocity, v = sqrt(2 g h)) and,
with a 7 kg maximum take-off weight, a kinetic energy of 8.23 kJ
(computed from the rounded speed, as in the paper).

The parachute model supports the Table III Medium-1 integrity criterion:
the landing-zone buffer "must take into account the typical parachute
drift in nominal conditions" — drift = wind x descent time — plus gust
and localisation margins for adverse conditions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "GRAVITY",
    "free_fall_speed",
    "kinetic_energy",
    "ballistic_impact_energy",
    "descent_time",
    "parachute_drift",
    "parachute_impact_energy",
    "DriftModel",
]

#: Standard gravity, m/s^2.
GRAVITY = 9.81


def free_fall_speed(height_m: float) -> float:
    """Drag-free impact speed from a fall of ``height_m`` metres.

    ``v = sqrt(2 g h)`` — for h = 120 m this gives 48.5 m/s, the paper's
    "typical ballistic vertical speed".
    """
    check_non_negative("height_m", height_m)
    return math.sqrt(2.0 * GRAVITY * height_m)


def kinetic_energy(mass_kg: float, speed_ms: float) -> float:
    """Kinetic energy in joules: ``E = m v^2 / 2``."""
    check_positive("mass_kg", mass_kg)
    check_non_negative("speed_ms", speed_ms)
    return 0.5 * mass_kg * speed_ms ** 2


def ballistic_impact_energy(mass_kg: float, height_m: float) -> float:
    """Impact kinetic energy of an uncontrolled fall (no parachute).

    For the MEDI DELIVERY parameters (7 kg, 120 m) this is ~8.24 kJ;
    the paper reports 8.23 kJ because it rounds the speed to 48.5 m/s
    first.  Both are asserted in the test suite.
    """
    return kinetic_energy(mass_kg, free_fall_speed(height_m))


def descent_time(height_m: float, descent_rate_ms: float) -> float:
    """Time to descend ``height_m`` at a constant sink rate."""
    check_non_negative("height_m", height_m)
    check_positive("descent_rate_ms", descent_rate_ms)
    return height_m / descent_rate_ms


def parachute_drift(height_m: float, descent_rate_ms: float,
                    wind_speed_ms: float) -> float:
    """Horizontal drift during a parachute descent in steady wind.

    A canopy quickly reaches the wind's horizontal velocity, so drift is
    ``wind x descent time`` — the "typical parachute drift in nominal
    conditions" of Table III.
    """
    check_non_negative("wind_speed_ms", wind_speed_ms)
    return wind_speed_ms * descent_time(height_m, descent_rate_ms)


def parachute_impact_energy(mass_kg: float,
                            descent_rate_ms: float) -> float:
    """Impact energy under canopy (terminal sink rate reached)."""
    return kinetic_energy(mass_kg, descent_rate_ms)


@dataclass(frozen=True)
class DriftModel:
    """Landing-deviation model used to size zone clearance buffers.

    Integrity levels of Table III map onto this model as follows:

    * **Low**: nominal drift only (``gust_factor = 1``, no extras).
    * **Medium/High**: adverse conditions and improbable single failures
      are absorbed by the gust factor, the localisation error of the
      degraded navigation solution, and the maneuver-latency allowance
      ("UAV latencies, behavior and performance").
    """

    wind_speed_ms: float = 4.0
    gust_factor: float = 1.5
    descent_rate_ms: float = 6.0
    release_height_m: float = 40.0
    position_error_m: float = 3.0
    latency_s: float = 1.0
    approach_speed_ms: float = 5.0

    def __post_init__(self):
        check_non_negative("wind_speed_ms", self.wind_speed_ms)
        check_positive("descent_rate_ms", self.descent_rate_ms)
        check_non_negative("release_height_m", self.release_height_m)
        check_non_negative("position_error_m", self.position_error_m)
        check_non_negative("latency_s", self.latency_s)
        check_non_negative("approach_speed_ms", self.approach_speed_ms)
        if self.gust_factor < 1.0:
            raise ValueError("gust_factor must be >= 1")

    # ------------------------------------------------------------------
    def nominal_drift_m(self) -> float:
        """Expected downwind drift during the parachute descent."""
        return parachute_drift(self.release_height_m, self.descent_rate_ms,
                               self.wind_speed_ms)

    def adverse_drift_m(self) -> float:
        """Drift under gusting wind (adverse-condition envelope)."""
        return parachute_drift(self.release_height_m, self.descent_rate_ms,
                               self.wind_speed_ms * self.gust_factor)

    def latency_allowance_m(self) -> float:
        """Distance overshoot due to activation latency."""
        return self.latency_s * self.approach_speed_ms

    def required_clearance_m(self, conservative: bool = True) -> float:
        """Radius a landing zone must keep clear of hazards.

        ``conservative=True`` is the Medium/High-integrity buffer
        (adverse drift + localisation + latency); ``False`` gives the
        Low-integrity nominal buffer.
        """
        drift = self.adverse_drift_m() if conservative else \
            self.nominal_drift_m()
        extras = (self.position_error_m + self.latency_allowance_m()
                  if conservative else 0.0)
        return drift + extras
