"""Module/parameter abstractions for the numpy deep-learning substrate.

The design follows the familiar layer-object pattern: each module owns
its parameters, caches whatever its backward pass needs during
``forward``, and exposes an explicit ``backward(grad)``.  There is no
autograd tape — the networks in this library are feed-forward chains and
simple DAGs (parallel dilation branches), which composite modules handle
explicitly.  This keeps the substrate small, debuggable, and exactly
gradient-checkable.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

__all__ = ["Parameter", "Module", "Sequential", "set_float32_boundary",
           "float32_boundary_disabled"]

#: When True (default), ``Module.__call__`` converts floating inputs to
#: float32 before dispatching to ``forward`` — the substrate's working
#: precision.  This is the dtype firewall: without it a single float64
#: array (a dataset artefact, a python-float product) silently promotes
#: every downstream conv/GEMM to float64 at ~2x the cost.  Gradient
#: checking deliberately runs in float64 and disables the boundary via
#: :func:`float32_boundary_disabled`.
_FLOAT32_BOUNDARY = True


def set_float32_boundary(enabled: bool) -> None:
    """Enable/disable the float32 conversion at ``Module.__call__``."""
    global _FLOAT32_BOUNDARY
    _FLOAT32_BOUNDARY = bool(enabled)


@contextmanager
def float32_boundary_disabled():
    """Temporarily let non-float32 dtypes through ``Module.__call__``.

    Used by the float64 gradient checker; inference and training code
    should never need this.
    """
    global _FLOAT32_BOUNDARY
    saved = _FLOAT32_BOUNDARY
    _FLOAT32_BOUNDARY = False
    try:
        yield
    finally:
        _FLOAT32_BOUNDARY = saved


class Parameter:
    """A trainable array with its gradient accumulator."""

    def __init__(self, data: np.ndarray, name: str = ""):
        self.data = np.asarray(data)
        self.grad = np.zeros_like(self.data)
        self.name = name

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    @property
    def shape(self):
        return self.data.shape

    def __repr__(self):
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all layers and networks.

    Sub-classes implement ``forward`` (storing caches on ``self``) and
    ``backward`` (returning the gradient w.r.t. their input and
    accumulating parameter gradients).  Sub-modules and parameters are
    discovered by attribute scan, so composition is plain attribute
    assignment.
    """

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if (_FLOAT32_BOUNDARY and isinstance(x, np.ndarray)
                and x.dtype != np.float32
                and np.issubdtype(x.dtype, np.floating)):
            x = x.astype(np.float32)
        return self.forward(x)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def children(self):
        """Yield direct sub-modules (attribute order)."""
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def modules(self):
        """Yield this module and all descendants, depth-first."""
        yield self
        for child in self.children():
            yield from child.modules()

    def parameters(self) -> list[Parameter]:
        """All parameters of this module and its descendants."""
        return [p for _, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Parameter]]:
        """``(qualified_name, Parameter)`` pairs, depth-first.

        Names are stable across runs (attribute order), which is what the
        npz checkpoint format relies on.
        """
        out: list[tuple[str, Parameter]] = []
        for attr, value in self.__dict__.items():
            qual = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                out.append((qual, value))
            elif isinstance(value, Module):
                out.extend(value.named_parameters(prefix=f"{qual}."))
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        out.append((f"{qual}.{i}", item))
                    elif isinstance(item, Module):
                        out.extend(
                            item.named_parameters(prefix=f"{qual}.{i}."))
        return out

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.data.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Mode switches
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout, batch-norm)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()


class Sequential(Module):
    """Chain of modules executed in order; backward runs in reverse."""

    def __init__(self, *layers: Module):
        super().__init__()
        for layer in layers:
            if not isinstance(layer, Module):
                raise TypeError(f"expected Module, got {type(layer).__name__}")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def append(self, layer: Module) -> None:
        if not isinstance(layer, Module):
            raise TypeError(f"expected Module, got {type(layer).__name__}")
        self.layers.append(layer)
