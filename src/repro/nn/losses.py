"""Loss functions for dense prediction.

The segmentation training loop uses pixelwise softmax cross-entropy with
optional class weights.  Class weighting matters for the reproduction:
the busy-road classes the monitor protects (road, static car, moving
car) and humans are minority classes in aerial imagery, exactly as in
UAVid.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax, softmax

__all__ = ["softmax_cross_entropy", "dice_loss", "class_weights_from_frequencies"]


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray,
                          class_weights: np.ndarray | None = None,
                          ignore_index: int | None = None
                          ) -> tuple[float, np.ndarray]:
    """Pixelwise weighted cross-entropy.

    Parameters
    ----------
    logits:
        ``(N, C, H, W)`` raw scores.
    labels:
        ``(N, H, W)`` integer class ids.
    class_weights:
        Optional ``(C,)`` per-class weights.
    ignore_index:
        Optional label value excluded from the loss.

    Returns
    -------
    loss:
        Scalar mean loss over counted pixels.
    grad:
        Gradient w.r.t. ``logits`` (same shape), already divided by the
        pixel count so ``backward`` can be called with it directly.
    """
    n, c, h, w = logits.shape
    if labels.shape != (n, h, w):
        raise ValueError(
            f"labels shape {labels.shape} does not match logits "
            f"{logits.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= c):
        valid = labels if ignore_index is None else \
            labels[labels != ignore_index]
        if valid.size and (valid.min() < 0 or valid.max() >= c):
            raise ValueError(
                f"labels out of range [0, {c}): [{valid.min()}, {valid.max()}]")

    logp = log_softmax(logits, axis=1)
    probs = np.exp(logp)

    mask = np.ones((n, h, w), dtype=bool)
    if ignore_index is not None:
        mask = labels != ignore_index
    safe_labels = np.where(mask, labels, 0)

    one_hot_logp = np.take_along_axis(
        logp, safe_labels[:, None, :, :], axis=1)[:, 0]

    if class_weights is not None:
        class_weights = np.asarray(class_weights, dtype=logits.dtype)
        if class_weights.shape != (c,):
            raise ValueError(
                f"class_weights must have shape ({c},), got "
                f"{class_weights.shape}")
        pix_w = class_weights[safe_labels] * mask
    else:
        pix_w = mask.astype(logits.dtype)

    total_w = pix_w.sum()
    if total_w <= 0:
        return 0.0, np.zeros_like(logits)

    loss = float(-(one_hot_logp * pix_w).sum() / total_w)

    one_hot = np.zeros_like(logits)
    np.put_along_axis(one_hot, safe_labels[:, None, :, :], 1.0, axis=1)
    grad = (probs - one_hot) * pix_w[:, None, :, :] / total_w
    return loss, grad.astype(logits.dtype)


def dice_loss(logits: np.ndarray, labels: np.ndarray,
              smooth: float = 1.0) -> tuple[float, np.ndarray]:
    """Soft multi-class Dice loss (auxiliary objective for rare classes).

    Returns ``(loss, grad_wrt_logits)``.  The gradient is exact for the
    softmax-Dice composition.
    """
    n, c, h, w = logits.shape
    probs = softmax(logits, axis=1)
    one_hot = np.zeros_like(probs)
    np.put_along_axis(one_hot, labels[:, None, :, :], 1.0, axis=1)

    axes = (0, 2, 3)
    inter = (probs * one_hot).sum(axis=axes)
    denom = probs.sum(axis=axes) + one_hot.sum(axis=axes)
    dice = (2.0 * inter + smooth) / (denom + smooth)
    loss = float(1.0 - dice.mean())

    # d(dice_k)/d(probs_k) then chain through softmax.
    d_inter = 2.0 / (denom + smooth)
    d_denom = -(2.0 * inter + smooth) / (denom + smooth) ** 2
    dprobs = -(d_inter[None, :, None, None] * one_hot
               + d_denom[None, :, None, None]) / c
    # Softmax Jacobian: dL/dz = p * (dL/dp - sum_j p_j dL/dp_j)
    inner = (dprobs * probs).sum(axis=1, keepdims=True)
    grad = probs * (dprobs - inner)
    return loss, grad.astype(logits.dtype)


def class_weights_from_frequencies(freq: np.ndarray,
                                   power: float = 0.5,
                                   floor: float = 1e-6) -> np.ndarray:
    """Inverse-frequency class weights, normalised to mean 1.

    ``power=0.5`` (inverse square root) is a standard compromise between
    ignoring rare classes and letting them dominate the loss.
    """
    freq = np.asarray(freq, dtype=np.float64)
    if freq.ndim != 1:
        raise ValueError(f"freq must be 1-D, got shape {freq.shape}")
    if (freq < 0).any():
        raise ValueError("frequencies must be non-negative")
    weights = 1.0 / np.maximum(freq, floor) ** power
    weights /= weights.mean()
    return weights
