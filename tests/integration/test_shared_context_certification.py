"""Shared-context certification gate (the PR 4 template, applied).

The shared-context monitor is the repo's third non-bit-exact mode
(after the joint pass and the winograd conv engine), and the first
whose deviation is *statistical* rather than floating-point: merged
union windows draw their dropout masks over window activations, so a
merged zone's moments are a fresh Monte-Carlo resample — and its crop
border sees real context where the per-zone crop saw zero padding.
Two consequences, both certified here on the seeded trained system:

* **Where sharing cannot change anything, it must not.**  A single-box
  shared call is bit-for-bit :meth:`RuntimeMonitor.check_zone`; a
  merge-free plan is bit-for-bit the joint pass (both in
  ``tests/core/test_union_geometry.py``); and the Fig. 4 full-frame
  monitor statistics — the paper's certification currency — are
  asserted identical here, through the shared planner and through the
  whole ``fig4_experiment`` protocol under ``REPRO_MONITOR_SHARED=1``.
* **Where sharing does change moments, the change must be bounded and
  benign.**  The per-zone (ROI-restricted) moment deviation against
  the sequential per-zone pass is pinned under an empirical envelope,
  and a *fidelity* gate asserts the sharper claim: measured against a
  high-T full-frame reference posterior, the merged windows' zone
  moments are at least as faithful as the small sequential crops'
  (more real context, less zero padding — the dense-risk-map framing
  of the related work).  System-level, the paper's two safety books
  (busy-road and high-risk acceptance counts) and the seeded mission
  campaign books must not flip between the exact and shared engines.

Raw per-zone accept/reject bits on *borderline* zones are NOT pinned
across engines: at T monitor samples they are as seed-sensitive as the
sequential monitor itself under reseeding (this is equally true of the
PR 3 joint pass, and is measured/documented in the bench).  The gates
above pin everything the certification argument actually consumes.
"""

import numpy as np
import pytest

from dataclasses import replace

from repro.core import EngineConfig
from repro.core.monitor import RuntimeMonitor
from repro.eval.harness import fig4_experiment, zone_acceptance_experiment
from repro.scenarios import NAV_COMM_LOSS, get_scenario, run_scenario_campaign
from repro.utils.geometry import Box

#: Certification monitor geometry: the Fig. 2 crop is "the candidate
#: zone plus its drift buffer"; margin 9 px is the conservative buffer
#: of the stream drift model at the 1 m/px repro scale, the regime
#: where neighbouring crops overlap and union windows actually merge.
MARGIN_PX = 9
OVERLAP_BUDGET = 1.3
#: Sample count of the envelope measurements (higher than the tiny
#: system's T=6 so the envelope reflects the engine, not just noise).
ENVELOPE_T = 24
#: Empirical ROI moment envelopes (measured max 0.527 / 0.225 on this
#: seeded system at T=24; pinned with headroom for platform drift).
ROI_MU_ENVELOPE = 0.7
ROI_STD_ENVELOPE = 0.35
#: Fidelity gate: shared-window zone moments must track the high-T
#: full-frame posterior at least as closely as sequential crops do
#: (measured ratios ~0.7-0.76; 1.1 leaves room for platform drift).
FIDELITY_FACTOR = 1.1

OOD_PRESETS = ("sunset_ood", "night_ood", "fog_ood")
CAMPAIGN_PRESETS = ("nav_comm_loss_delivery", "sunset_nav_loss")


def _cert_monitor_config(system, num_samples=None):
    return replace(
        system.monitor_config(num_samples=num_samples),
        context_margin_px=MARGIN_PX, overlap_budget=OVERLAP_BUDGET)


def _cert_cases(system, max_frames=6):
    """(image, boxes, spans) triples with at least two candidates."""
    pipe = system.make_pipeline(rng=0)
    cases = []
    for sample in system.test_samples[:max_frames]:
        labels = pipe.segmenter.predict_labels(sample.image)
        boxes = [c.box for c in pipe.selector.propose(labels)][:3]
        if len(boxes) >= 2:
            cases.append((sample.image, boxes))
    assert cases, "certification needs frames with multiple candidates"
    return cases


def _roi_deviation(verdict_a, verdict_b, roi) -> tuple[float, float]:
    """Max |delta mu| / |delta sigma| over the zone's ROI pixels."""
    dmu = np.abs(roi.extract(verdict_a.distribution.mean)
                 - roi.extract(verdict_b.distribution.mean))
    dsd = np.abs(roi.extract(verdict_a.distribution.std)
                 - roi.extract(verdict_b.distribution.std))
    return float(dmu.max()), float(dsd.max())


# ----------------------------------------------------------------------
# Moment envelope and full-frame fidelity
# ----------------------------------------------------------------------
class TestMomentEnvelope:
    def test_roi_moments_within_envelope(self, tiny_system):
        """Every zone's shared-pass ROI moments stay within the pinned
        envelope of the per-zone sequential pass — merged windows
        included."""
        cfg = _cert_monitor_config(tiny_system, num_samples=ENVELOPE_T)
        for image, boxes in _cert_cases(tiny_system):
            seq_monitor = RuntimeMonitor(
                tiny_system.make_segmenter(rng=7), cfg)
            spans = [seq_monitor._padded_spans(image, b) for b in boxes]
            v_seq = [seq_monitor.check_zone(image, b) for b in boxes]
            sh_monitor = RuntimeMonitor(
                tiny_system.make_segmenter(rng=7), cfg)
            v_sh = sh_monitor.check_zones(image, boxes, joint=True,
                                          shared=True)
            for (crop_box, roi), a, b in zip(spans, v_seq, v_sh):
                dmu, dsd = _roi_deviation(a, b, roi)
                assert dmu <= ROI_MU_ENVELOPE
                assert dsd <= ROI_STD_ENVELOPE

    def test_envelope_gate_catches_regressions(self, tiny_system):
        """Meta-test (PR 4 pattern): a computational error larger than
        the envelope is caught by the same measurement the gate runs —
        the envelope is tight enough to mean something."""
        from repro.segmentation.bayesian import PixelDistribution

        cfg = _cert_monitor_config(tiny_system, num_samples=ENVELOPE_T)
        image, boxes = _cert_cases(tiny_system)[0]
        monitor = RuntimeMonitor(tiny_system.make_segmenter(rng=7), cfg)
        spans = [monitor._padded_spans(image, b) for b in boxes]
        verdict = monitor.check_zone(image, boxes[0])
        broken = replace(
            verdict,
            distribution=PixelDistribution(
                mean=verdict.distribution.mean + 2 * ROI_MU_ENVELOPE,
                std=verdict.distribution.std + 2 * ROI_STD_ENVELOPE,
                num_samples=verdict.distribution.num_samples))
        dmu, dsd = _roi_deviation(verdict, broken, spans[0][1])
        assert dmu > ROI_MU_ENVELOPE
        assert dsd > ROI_STD_ENVELOPE

    def test_merged_windows_track_full_frame_reference(self, tiny_system):
        """The sharper certification claim: against a high-T full-frame
        posterior, zone moments sliced from merged union windows are at
        least as faithful as the per-zone sequential crops (the union
        window replaces zero padding at the crop border with real
        context)."""
        cfg = _cert_monitor_config(tiny_system, num_samples=ENVELOPE_T)
        err_seq, err_sh = [], []
        for image, boxes in _cert_cases(tiny_system):
            seq_monitor = RuntimeMonitor(
                tiny_system.make_segmenter(rng=7), cfg)
            spans = [seq_monitor._padded_spans(image, b) for b in boxes]
            windows = seq_monitor.plan_union_windows(
                image.shape[1:], [crop for crop, _ in spans])
            merged = {i for w in windows if not w.is_single
                      for i in w.members}
            if not merged:
                continue
            v_seq = [seq_monitor.check_zone(image, b) for b in boxes]
            sh_monitor = RuntimeMonitor(
                tiny_system.make_segmenter(rng=7), cfg)
            v_sh = sh_monitor.check_zones(image, boxes, joint=True,
                                          shared=True)
            reference = tiny_system.make_segmenter(rng=99)\
                .predict_distribution(image, num_samples=64)
            for i in merged:
                box = boxes[i]
                _, roi = spans[i]
                mu_ff = box.extract(reference.mean)
                mu_seq = roi.extract(v_seq[i].distribution.mean)
                mu_sh = roi.extract(v_sh[i].distribution.mean)
                err_seq.append(float(np.abs(mu_seq - mu_ff).max()))
                err_sh.append(float(np.abs(mu_sh - mu_ff).max()))
        assert err_sh, "no merged windows in the certification cases"
        assert float(np.mean(err_sh)) <= \
            FIDELITY_FACTOR * float(np.mean(err_seq))
        assert max(err_sh) <= FIDELITY_FACTOR * max(err_seq)


# ----------------------------------------------------------------------
# Fig. 4: the catch-rate gate (zero flips, structurally)
# ----------------------------------------------------------------------
class TestFig4Gate:
    def test_full_frame_unsafe_identical_through_shared_planner(
            self, tiny_system, monkeypatch):
        """The full-frame Eq. (2) mask — the Fig. 4 measurement — is
        bit-for-bit identical whether it runs through the classic
        full-frame pass or the shared-context planner (one box, one
        window, no merge).  The identity is a property of the *shared*
        stream: adaptive early exit truncates it by design (its own
        certification lives in test_adaptive_certification.py), so the
        toggle is cleared here."""
        monkeypatch.delenv("REPRO_MONITOR_ADAPTIVE", raising=False)
        cfg = _cert_monitor_config(tiny_system)
        for sample in tiny_system.test_samples[:4]:
            image = sample.image
            h, w = image.shape[1:]
            ref = RuntimeMonitor(tiny_system.make_segmenter(rng=5),
                                 cfg).full_frame_unsafe(image)
            verdict = RuntimeMonitor(
                tiny_system.make_segmenter(rng=5), cfg).check_zones(
                image, [Box(0, 0, h, w)], joint=True, shared=True)[0]
            assert np.array_equal(ref, verdict.unsafe_mask)

    def test_fig4_experiment_identical_under_shared_env(
            self, tiny_system, monkeypatch):
        """The whole Fig. 4 protocol — model miss rate, monitor catch
        rate, false alarms, in-distribution and OOD — must not move
        when the process-wide shared-context toggle is on: zero
        catch-rate flips."""
        monkeypatch.delenv("REPRO_MONITOR_SHARED", raising=False)
        baseline = fig4_experiment(tiny_system, "sunset_ood",
                                   max_frames=4)
        monkeypatch.setenv("REPRO_MONITOR_SHARED", "1")
        shared = fig4_experiment(tiny_system, "sunset_ood",
                                 max_frames=4)
        assert baseline == shared


# ----------------------------------------------------------------------
# System level: safety books and campaign outcomes
# ----------------------------------------------------------------------
class TestSystemGate:
    @pytest.mark.parametrize("preset", OOD_PRESETS)
    def test_safety_books_identical_on_ood_presets(self, tiny_system,
                                                   preset):
        """The paper's two safety numbers — busy-road and high-risk
        acceptance counts — are identical between the exact and shared
        engines on every seeded OOD preset (acceptance itself may move
        by monitor sampling noise; the safety books may not)."""
        samples = tiny_system.ood_samples(preset)
        exact = zone_acceptance_experiment(
            tiny_system, samples, monitor_enabled=True, rng=0)
        shared = zone_acceptance_experiment(
            tiny_system, samples, monitor_enabled=True, rng=0,
            engine=EngineConfig(monitor_batching="shared",
                                speculative_k=3))
        again = zone_acceptance_experiment(
            tiny_system, samples, monitor_enabled=True, rng=0,
            engine=EngineConfig(monitor_batching="shared",
                                speculative_k=3))
        assert shared == again, "shared run must be seeded-reproducible"
        for key in ("road_unsafe_accepted", "high_risk_accepted"):
            assert exact[key] == shared[key], (
                f"{preset}: safety book {key} flipped under the "
                "shared-context engine")

    @pytest.mark.parametrize("preset", CAMPAIGN_PRESETS)
    def test_campaign_books_identical(self, tiny_system, preset):
        """Seeded mission campaigns with speculative EL policies on the
        joint vs shared engines: outcome, severity and maneuver counts
        and the EL attempt/abort book must not change — zero
        campaign-outcome flips on the seeded presets."""
        spec = get_scenario(preset).with_failure(NAV_COMM_LOSS) \
            .with_camera(tiny_system.config.dataset.image_shape,
                         tiny_system.config.dataset.gsd)
        books = {}
        for mode in ("joint", "shared"):
            policy = tiny_system.make_pipeline(
                monitor_enabled=True, rng=0, speculative_k=3,
                engine=EngineConfig(monitor_batching=mode,
                                    speculative_k=3)
            ).as_mission_policy()
            books[mode] = run_scenario_campaign(spec, 3,
                                                el_policy=policy,
                                                seed=11)
        joint, shared = books["joint"], books["shared"]
        assert joint.num_missions == shared.num_missions
        assert joint.severity_counts == shared.severity_counts
        assert joint.outcome_counts == shared.outcome_counts
        assert joint.maneuver_counts == shared.maneuver_counts
        assert (joint.el_attempts, joint.el_aborts) == \
            (shared.el_attempts, shared.el_aborts)
