#!/usr/bin/env python3
"""Quickstart: run the full Fig. 2 landing pipeline on one camera frame.

Trains (or loads from cache) the scaled MSDnet, builds the monitored
landing pipeline, runs it on an unseen test frame, and prints the
decision trail — segmentation, zone candidates, monitor verdicts and
the final land/abort decision.

Run:  python examples/quickstart.py
"""

from repro.dataset import CLASS_NAMES, UavidClass, busy_road_mask
from repro.eval import build_trained_system, format_kv, format_title
from repro.segmentation import evaluate_model


def main() -> None:
    print(format_title("Quickstart - monitored emergency-landing pipeline"))

    print("\n[1/3] building the trained system (cached after first run)...")
    system = build_trained_system(verbose=True)
    report = evaluate_model(system.model, system.test_samples)
    print(format_kv({
        "test mIoU": report.miou,
        "test pixel accuracy": report.accuracy,
        "road IoU": report.class_iou(UavidClass.ROAD),
        "model parameters": system.model.num_parameters(),
    }, title="\nsegmentation model:"))

    print("\n[2/3] assembling the Fig. 2 pipeline "
          "(core + monitor + decision module)...")
    pipeline = system.make_pipeline(monitor_enabled=True)

    print("\n[3/3] running episodes on unseen frames until one lands...")
    sample = system.test_samples[0]
    result = pipeline.run(sample.image)
    for candidate_sample in system.test_samples:
        candidate_result = pipeline.run(candidate_sample.image)
        if candidate_result.landed:
            sample, result = candidate_sample, candidate_result
            break
        print("  frame aborted (no safely buffered zone in view) "
              "- trying the next frame")

    print(format_kv({
        "candidates proposed": len(result.candidates),
        "monitor verdicts": len(result.verdicts),
        "decision": result.decision.action.value,
        "segmentation time": f"{result.timings_s['segmentation_s']:.3f} s",
        "monitoring time": f"{result.timings_s['monitoring_s']:.3f} s",
    }, title="episode:"))
    print("\ndecision log:")
    for line in result.decision.log:
        print(f"  - {line}")

    if result.landed:
        zone = result.selected_zone
        gt = zone.box.extract(sample.labels)
        classes = sorted({CLASS_NAMES[UavidClass(int(c))]
                          for c in set(gt.reshape(-1).tolist())})
        print(f"\naccepted zone at {zone.box} "
              f"(clearance {zone.clearance_m:.1f} m, "
              f"required {zone.required_clearance_m:.1f} m)")
        print(f"ground truth inside the zone: {classes}")
        print(f"busy road present: {bool(busy_road_mask(gt).any())}")
    else:
        print("\npipeline aborted -> the safety switch would engage "
              "Flight Termination (parachute).")


if __name__ == "__main__":
    main()
