#!/usr/bin/env python
"""Bench regression gate: fresh smoke numbers vs committed baselines.

Run by ``scripts/check.sh`` after the smoke bench pass.  Benches in
smoke mode (``BENCH_SMOKE=1``) write their summaries to
``benchmarks/.smoke/BENCH_*.json``; this script compares them against
``benchmarks/smoke_baselines.json`` and fails (exit 1) when

* a gated numeric metric (always a machine-robust speedup ratio)
  regresses by more than 25% — fresh < baseline * 0.75, or
* a gated boolean contract (bit-for-bit equivalence) flips, or
* a gated file or metric is missing (the bench silently stopped
  reporting it).

A baseline value may also be a spec object ``{"baseline": <number>,
"min_cores": <n>}``: the metric is then gated only on hosts with at
least ``min_cores`` CPU cores (read from the summary's ``host``
fingerprint, falling back to the local ``os.cpu_count()``) and
reported as *skipped* elsewhere.  This is how worker-scaling ratios —
which track the host's core count by design — are gated on multi-core
hosts without flaking the 1-core CI box.

Baselines are updated deliberately in the PR that changes a
performance characteristic — never to quiet a failing gate.

The gate also audits the *committed* full-scale summaries
(``benchmarks/BENCH_*.json``): every one must carry
``schema_version >= 2`` and a host fingerprint
(``benchmarks/_bench_utils.write_bench_summary`` stamps both), so a
committed number can always be traced to the machine class that
produced it.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

TOLERANCE = 0.75  # fail when fresh < baseline * TOLERANCE

#: Minimum schema for committed summaries; matches
#: ``benchmarks/_bench_utils.SCHEMA_VERSION`` when they regenerate.
MIN_COMMITTED_SCHEMA = 2

ROOT = Path(__file__).resolve().parents[1]
BENCH_DIR = ROOT / "benchmarks"
SMOKE_DIR = BENCH_DIR / ".smoke"
BASELINES = BENCH_DIR / "smoke_baselines.json"


def check_committed_summaries(failures: list[str]) -> None:
    """Committed BENCH_*.json must be schema >= 2 with a host stamp."""
    for path in sorted(BENCH_DIR.glob("BENCH_*.json")):
        name = path.name
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            failures.append(f"{name}: unreadable committed summary "
                            f"({exc})")
            continue
        version = data.get("schema_version")
        if not isinstance(version, int) \
                or version < MIN_COMMITTED_SCHEMA:
            failures.append(
                f"{name}: schema_version={version!r} < "
                f"{MIN_COMMITTED_SCHEMA} — regenerate with the "
                "current bench (write_bench_summary stamps the "
                "schema)")
        host = data.get("host")
        if not isinstance(host, dict) or "cpu_count" not in host:
            failures.append(
                f"{name}: missing host fingerprint — committed "
                "numbers must say which machine class produced them")


def main() -> int:
    baselines = json.loads(BASELINES.read_text())
    failures: list[str] = []
    check_committed_summaries(failures)
    rows: list[tuple[str, str, str, str, str]] = []

    for filename, metrics in baselines.items():
        if filename.startswith("_"):
            continue
        fresh_path = SMOKE_DIR / filename
        if not fresh_path.exists():
            failures.append(f"{filename}: no smoke output at "
                            f"{fresh_path} (did the bench run?)")
            continue
        fresh = json.loads(fresh_path.read_text())
        host_cores = (fresh.get("host") or {}).get("cpu_count") \
            or os.cpu_count() or 1
        for metric, baseline in metrics.items():
            min_cores = 1
            if isinstance(baseline, dict):
                min_cores = int(baseline.get("min_cores", 1))
                baseline = baseline["baseline"]
            if metric not in fresh:
                failures.append(f"{filename}: metric {metric!r} missing "
                                "from smoke output")
                continue
            value = fresh[metric]
            if host_cores < min_cores:
                rows.append((filename, metric, f"{baseline}",
                             f"{value}",
                             f"skip (<{min_cores} cores)"))
                continue
            if isinstance(baseline, bool):
                ok = bool(value) == baseline
                rows.append((filename, metric, str(baseline),
                             str(bool(value)),
                             "ok" if ok else "FAIL"))
                if not ok:
                    failures.append(
                        f"{filename}: {metric} = {value!r}, "
                        f"expected {baseline!r}")
            else:
                floor = baseline * TOLERANCE
                ok = float(value) >= floor
                rows.append((filename, metric, f"{baseline:.2f}",
                             f"{float(value):.2f}",
                             "ok" if ok else "FAIL"))
                if not ok:
                    failures.append(
                        f"{filename}: {metric} = {value:.3f} < "
                        f"{floor:.3f} (baseline {baseline:.3f} "
                        f"* {TOLERANCE})")

    width = max((len(r[0]) + len(r[1]) for r in rows), default=20) + 4
    print("== bench regression gate (smoke, "
          f">{(1 - TOLERANCE):.0%} regression fails) ==")
    for filename, metric, base, val, status in rows:
        name = f"{filename}:{metric}"
        print(f"  {name:<{width}s} baseline={base:<8s} "
              f"fresh={val:<8s} {status}")
    if failures:
        print("\nFAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("all gated bench metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
