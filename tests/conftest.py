"""Shared fixtures for the test suite.

The expensive artefact — a trained segmentation system — is built once
per session at a deliberately tiny scale (small frames, few epochs) and
cached on disk, so the integration/core tests that need a real trained
model stay fast on repeated runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.harness import (
    TrainedSystem,
    build_trained_system,
    tiny_harness_config,
)


@pytest.fixture(scope="session")
def tiny_system() -> TrainedSystem:
    """A small but genuinely trained system (cached across runs).

    The configuration comes from ``tiny_harness_config`` — the single
    source shared with the benchmark suite's ``BENCH_SMOKE=1`` mode, so
    both resolve to one cached set of trained weights.
    """
    return build_trained_system(tiny_harness_config(), cache=True)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)
