"""The runtime monitor: Eq. (2), ``mu + 3*sigma <= tau`` per road class.

Sec. V-B of the paper: EL is safety-critical, so misclassifying a busy
road as something else can be catastrophic.  The monitor therefore
*over-approximates* the road category: a pixel is accepted as safe only
when the upper edge of its 99.7% confidence interval — posterior mean
plus three posterior standard deviations, estimated by Monte-Carlo
dropout — stays below the threshold ``tau`` for **each of the three
UAVid classes that make up the busy-road category**.  With 8 classes
the paper picks ``tau = 0.125``, "to make sure that the road score is
lower than a random guess".

Following Fig. 2, the monitor runs on *sub-images* (the candidate zone
plus its drift buffer), not on the full frame — the full-frame Bayesian
pass would be prohibitively slow in an emergency (Sec. V-B timing,
reproduced in ``benchmarks/bench_sec5_timing.py``).

All Bayesian passes run on the segmenter's batched MC-dropout engine
(``T`` tiles per forward; see :mod:`repro.segmentation.bayesian`).
:meth:`RuntimeMonitor.check_zones` verifies several candidate zones in
one call: by default each zone keeps its own dropout seeding, so the
verdicts are bit-for-bit identical to ``N`` separate
:meth:`RuntimeMonitor.check_zone` calls; with ``joint=True`` the crops
are stride-padded to a common shape and verified in a single jointly
seeded ``(zones * T)``-batched pass — still seeded-reproducible, but on
a different (documented) RNG stream.  The joint pass is how the
decision module's speculative check-ahead
(``DecisionConfig.speculative_k > 1``, see :mod:`repro.core.decision`)
vets the top-k ranked candidates in one go.

Shared-context monitoring
-------------------------
Neighbouring candidate zones crop overlapping pixels (each crop is the
zone plus context margin plus stride padding), yet the joint pass above
still re-segments every crop from scratch.  ``check_zones(...,
shared=True)`` instead *plans union windows*: the pending crops are
greedily clustered into stride-aligned union windows
(:meth:`RuntimeMonitor.plan_union_windows`; a crop joins a window while
``union_area <= overlap_budget * sum(member_areas)``), **one** jointly
seeded Bayesian pass runs per union window
(:meth:`repro.segmentation.bayesian.BayesianSegmenter
.predict_distribution_ragged`), and each zone's per-pixel mean/std
moments are *sliced* out of its window's stacked moments — so K
overlapping zones cost one segmentation of their union instead of K
crops.  Moment slicing is exact per pixel, but the dropout masks are
drawn over window activations instead of per-crop activations, so
merged-window verdicts sit on a different (documented, seeded) RNG
stream.  A union window containing a **single** zone is that zone's
natural crop box untouched: a single-box shared call reproduces
:meth:`RuntimeMonitor.check_zone` bit for bit, and a merge-free plan
over one common crop shape reproduces the joint pass bit for bit —
sharing only ever changes results through *merged* windows (tested in
``tests/core/test_union_geometry.py``, certified system-level in
``tests/integration/test_shared_context_certification.py`` following
the PR 4 template).  ``REPRO_MONITOR_SHARED=1`` reroutes
every ``joint=True`` call through the shared-context planner — the
environment toggle ``scripts/check.sh`` uses to re-run the
monitor-touching suites under this mode.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.dataset.classes import BUSY_ROAD_CLASSES, NUM_CLASSES
from repro.segmentation.bayesian import BayesianSegmenter, PixelDistribution
from repro.utils.geometry import Box
from repro.utils.validation import check_image_chw, check_probability

__all__ = ["MonitorConfig", "ZoneVerdict", "UnionWindow",
           "RuntimeMonitor", "pad_span", "shared_context_default"]

#: Environment toggle: ``REPRO_MONITOR_SHARED=1`` makes every
#: ``joint=True`` monitoring path run through the shared-context
#: union-crop planner instead of the per-crop joint pass.
_SHARED_ENV = "REPRO_MONITOR_SHARED"


def shared_context_default() -> bool:
    """Whether ``joint`` monitoring defaults to shared-context mode.

    Read per call (not at import), so test suites and
    ``scripts/check.sh`` can flip the mode for a whole process without
    re-importing.
    """
    return os.environ.get(_SHARED_ENV, "") == "1"


def pad_span(start: int, extent: int, limit: int, stride: int,
             want: int | None = None) -> tuple[int, int]:
    """Grow one axis span to a stride-aligned window inside the frame.

    The segmentation model needs spatial extents divisible by its
    output ``stride``; this is the single home of the alignment
    arithmetic used by every crop-window and union-window computation.
    Returns ``(lo, span)`` with ``span % stride == 0``, ``span >= 1``
    stride, and ``[lo, lo + span)`` inside ``[0, limit)``, grown
    symmetrically around ``[start, start + extent)`` where the frame
    allows.  ``want`` forces the exact span (already stride-aligned, at
    most ``limit``); spans that cannot fit are centred/trimmed exactly
    as the natural path trims them.
    """
    if limit < stride:
        raise ValueError(
            f"frame extent {limit} is smaller than the model's "
            f"output stride {stride}; the Bayesian monitor "
            "cannot run on this frame")
    if want is None:
        need = (-extent) % stride
    else:
        if want % stride or want > limit:
            raise ValueError(
                f"target span {want} must be stride-aligned "
                f"({stride}) and fit the frame extent {limit}")
        if extent >= want:
            # The grown crop exceeds the target span (the frame
            # itself was not stride-divisible, so every natural
            # span got trimmed below the grown extent): centre a
            # want-sized window on it, exactly as the natural
            # path effectively does when it trims.
            lo = max(0, start + (extent - want) // 2)
            lo = min(lo, limit - want)
            return lo, want
        need = want - extent
    lo = max(0, start - need // 2)
    hi = min(limit, lo + extent + need)
    lo = max(0, hi - (extent + need))
    span = hi - lo
    span -= span % stride
    # A degenerate zero-extent span (tiny crop in a tiny frame)
    # would produce an empty crop and crash the model; clamp to
    # one full stride instead.
    if span == 0:
        span = stride
        lo = min(lo, limit - stride)
    return lo, span


@dataclass(frozen=True)
class MonitorConfig:
    """Parameters of the conservative monitor rule.

    Attributes
    ----------
    tau:
        Per-pixel probability threshold of Eq. (2); a pixel is unsafe
        when the lower confidence bound of its busy-road probability
        exceeds ``tau``.  Default ``1/NUM_CLASSES`` (0.125), the
        paper's choice.
    sigma_multiplier:
        Width of the confidence bound in standard deviations — the
        "3 sigma" of Eq. (2).
    num_samples:
        MC-dropout forward passes per monitored zone (paper: 10).
    road_classes:
        Class indices pooled into the busy-road probability mass.
    max_unsafe_fraction:
        A zone is accepted iff its unsafe-pixel fraction is at or
        below this; 0.0 reproduces the paper's zero-tolerance rule.
    context_margin_px:
        Extra context (pixels, pre-stride-alignment) added around
        each zone crop before segmentation.
    overlap_budget:
        Shared-context union planning: a crop joins a union window
        only while ``union_area <= overlap_budget *
        sum(member_crop_areas)``.  The default of 1.0 means a merged
        window never segments more pixels than its member crops would
        separately — merging is a pure win (overlap pixels computed
        once, fewer forwards); raise it to trade extra pixels for
        fewer, larger passes.
    """

    tau: float = 1.0 / NUM_CLASSES  # 0.125, the paper's choice
    sigma_multiplier: float = 3.0   # the "3 sigma" of Eq. (2)
    num_samples: int = 10           # MC-dropout passes (paper: 10)
    road_classes: tuple = BUSY_ROAD_CLASSES
    max_unsafe_fraction: float = 0.0  # zone accepted iff <= this
    context_margin_px: int = 2      # extra context around the crop
    #: Shared-context union planning: a crop joins a union window only
    #: while ``union_area <= overlap_budget * sum(member_crop_areas)``.
    #: The default of 1.0 means a merged window never segments more
    #: pixels than its member crops would separately — merging is a
    #: pure win (overlap pixels computed once, fewer forwards); raise
    #: it to trade extra pixels for fewer, larger passes.
    overlap_budget: float = 1.0

    def __post_init__(self):
        check_probability("tau", self.tau)
        check_probability("max_unsafe_fraction", self.max_unsafe_fraction)
        if self.sigma_multiplier < 0:
            raise ValueError("sigma_multiplier must be non-negative")
        if self.num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        if not self.road_classes:
            raise ValueError("road_classes must not be empty")
        if self.overlap_budget <= 0:
            raise ValueError("overlap_budget must be positive")


@dataclass(frozen=True)
class ZoneVerdict:
    """The monitor's verdict on one candidate zone."""

    accepted: bool
    unsafe_fraction: float
    unsafe_mask: np.ndarray = field(repr=False)
    box: Box
    num_samples: int
    distribution: PixelDistribution = field(repr=False)

    @property
    def num_unsafe_pixels(self) -> int:
        return int(self.unsafe_mask.sum())


@dataclass(frozen=True)
class UnionWindow:
    """One planned union window of a shared-context monitoring pass.

    ``box`` is the stride-aligned window in frame coordinates;
    ``members`` are indices into the planned zone list whose natural
    crop boxes the window contains (a single-member window *is* that
    zone's natural crop box).
    """

    box: Box
    members: tuple[int, ...]

    @property
    def is_single(self) -> bool:
        return len(self.members) == 1


class RuntimeMonitor:
    """Checks candidate landing zones with the Bayesian model."""

    def __init__(self, segmenter: BayesianSegmenter,
                 config: MonitorConfig | None = None):
        self.segmenter = segmenter
        self.config = config or MonitorConfig()

    # ------------------------------------------------------------------
    def unsafe_pixels(self, distribution: PixelDistribution) -> np.ndarray:
        """Apply Eq. (2) to a pixel distribution.

        A pixel is *unsafe* when ``mu_k + s * sigma_k > tau`` for any
        busy-road class ``k`` — the complement of the paper's safety
        condition, which requires the inequality to hold "for the three
        UAVid categories that make up the busy road category".
        """
        return self.unsafe_from_upper(
            distribution.upper_confidence(self.config.sigma_multiplier))

    def unsafe_from_upper(self, upper: np.ndarray) -> np.ndarray:
        """Eq. (2)'s threshold rule on upper-confidence scores.

        ``upper`` is ``(..., C, H, W)`` — a single crop or a stack of
        crops (the episode engine's joint pass evaluates the rule over
        all stacked crops at once).  The single home of the rule: any
        change here reaches every monitoring path.
        """
        cfg = self.config
        unsafe = np.zeros(upper.shape[:-3] + upper.shape[-2:],
                          dtype=bool)
        for cls in cfg.road_classes:
            unsafe |= upper[..., int(cls), :, :] > cfg.tau
        return unsafe

    def _model_stride(self) -> int:
        return int(getattr(
            getattr(self.segmenter.model, "config", None),
            "output_stride", 1))

    def _padded_spans(self, image: np.ndarray, box: Box,
                      target: tuple[int, int] | None = None
                      ) -> tuple[Box, Box]:
        """Stride-aligned crop window for ``box`` — geometry only.

        The segmentation model needs spatial sizes divisible by its
        output stride; the crop window is grown symmetrically (within
        frame bounds) until that holds.  Returns the crop box and the
        region of interest *within the crop* corresponding to the
        original box, without extracting any pixels.

        ``target`` forces the crop to exact ``(height, width)`` spans
        (already stride-aligned, at most the frame size) — used by
        :meth:`check_zones` with ``joint=True`` to bring several crops
        to a common shape for one stacked Bayesian pass.
        """
        cfg = self.config
        h, w = image.shape[1:]
        grown = box.expand(cfg.context_margin_px).clip_to(h, w)
        stride = self._model_stride()

        th, tw = target if target is not None else (None, None)
        r0, rh = pad_span(grown.row, grown.height, h, stride, th)
        c0, cw = pad_span(grown.col, grown.width, w, stride, tw)
        crop_box = Box(r0, c0, rh, cw)
        roi = Box(box.row - r0, box.col - c0, box.height, box.width)
        roi = roi.clip_to(rh, cw)
        return crop_box, roi

    def _stride_padded_crop(self, image: np.ndarray, box: Box,
                            target: tuple[int, int] | None = None
                            ) -> tuple[np.ndarray, Box]:
        """:meth:`_padded_spans` plus the pixel extraction."""
        crop_box, roi = self._padded_spans(image, box, target)
        return crop_box.extract(image), roi

    # ------------------------------------------------------------------
    # Shared-context union-crop planning
    # ------------------------------------------------------------------
    def _aligned_union(self, a: Box, b: Box, h: int, w: int) -> Box:
        """Stride-aligned bounding window of two crop boxes, in-frame."""
        stride = self._model_stride()
        row = min(a.row, b.row)
        col = min(a.col, b.col)
        height = max(a.bottom, b.bottom) - row
        width = max(a.right, b.right) - col
        r0, rh = pad_span(row, height, h, stride)
        c0, cw = pad_span(col, width, w, stride)
        return Box(r0, c0, rh, cw)

    def plan_union_windows(self, image_shape: tuple[int, int],
                           crop_boxes: list[Box]) -> list[UnionWindow]:
        """Cluster natural crop boxes into stride-aligned union windows.

        Greedy merge in input (rank) order: each crop joins the first
        existing window whose stride-aligned union with it satisfies
        ``union_area <= overlap_budget * sum(member_crop_areas)`` and
        still contains every member crop (a union near the frame edge
        of a non-stride-divisible frame can be forced to trim below its
        bounding box — such a merge is rejected rather than letting a
        member stick out).  Unmerged crops become single-member windows
        that are *exactly* their natural crop box, which is what makes
        the single-zone shared pass bit-for-bit equal to the per-zone
        pass.  Geometry only — no pixels are touched.
        """
        h, w = int(image_shape[0]), int(image_shape[1])
        budget = self.config.overlap_budget
        # Mutable accumulation: [window_box, member_ids, member_area_sum]
        windows: list[list] = []
        for idx, crop in enumerate(crop_boxes):
            placed = False
            for wnd in windows:
                area_sum = wnd[2] + crop.area
                merged = self._aligned_union(wnd[0], crop, h, w)
                if merged.area > budget * area_sum:
                    continue
                if not (merged.contains_box(wnd[0])
                        and merged.contains_box(crop)):
                    continue
                wnd[0] = merged
                wnd[1].append(idx)
                wnd[2] = area_sum
                placed = True
                break
            if not placed:
                windows.append([crop, [idx], crop.area])
        return [UnionWindow(box=box, members=tuple(members))
                for box, members, _ in windows]

    def _check_zones_shared(self, image: np.ndarray, boxes: list[Box],
                            max_batch: int | None) -> list[ZoneVerdict]:
        """The shared-context joint pass (see the module docstring).

        Natural crop spans are planned into union windows; one jointly
        seeded ragged Bayesian pass covers all windows (mask stream:
        window-major, sample-minor, in planning order); each zone's
        mean/std moments and Eq. (2) mask are sliced out of its
        window's per-pixel maps.
        """
        from repro.segmentation.bayesian import PixelDistribution

        spans = [self._padded_spans(image, box) for box in boxes]
        windows = self.plan_union_windows(
            image.shape[1:], [crop_box for crop_box, _ in spans])
        crops = [wnd.box.extract(image).astype(np.float32)
                 for wnd in windows]
        distributions = self.segmenter.predict_distribution_ragged(
            crops, num_samples=self.config.num_samples,
            max_batch=max_batch)
        verdicts: list[ZoneVerdict | None] = [None] * len(boxes)
        sig = self.config.sigma_multiplier
        for wnd, dist in zip(windows, distributions):
            unsafe = self.unsafe_from_upper(dist.upper_confidence(sig))
            for idx in wnd.members:
                crop_box, roi = spans[idx]
                rel = Box(crop_box.row - wnd.box.row,
                          crop_box.col - wnd.box.col,
                          crop_box.height, crop_box.width)
                sliced = PixelDistribution(
                    mean=rel.extract(dist.mean),
                    std=rel.extract(dist.std),
                    num_samples=dist.num_samples)
                verdicts[idx] = self._verdict_from_unsafe(
                    rel.extract(unsafe), sliced, boxes[idx], roi)
        return verdicts

    def _verdict(self, distribution: PixelDistribution, box: Box,
                 roi: Box) -> ZoneVerdict:
        """Turn a crop distribution into the zone's accept/reject."""
        return self._verdict_from_unsafe(
            self.unsafe_pixels(distribution), distribution, box, roi)

    def _verdict_from_unsafe(self, unsafe_crop: np.ndarray,
                             distribution: PixelDistribution, box: Box,
                             roi: Box) -> ZoneVerdict:
        """Accept/reject from a precomputed Eq. (2) crop mask.

        The single home of the acceptance condition; the episode
        engine's joint pass calls this with masks it evaluated over a
        whole crop stack at once.
        """
        unsafe_zone = roi.extract(unsafe_crop)
        fraction = float(unsafe_zone.mean()) if unsafe_zone.size else 1.0
        accepted = fraction <= self.config.max_unsafe_fraction
        return ZoneVerdict(accepted=accepted, unsafe_fraction=fraction,
                           unsafe_mask=unsafe_zone, box=box,
                           num_samples=distribution.num_samples,
                           distribution=distribution)

    def check_zone(self, image: np.ndarray, box: Box,
                   max_batch: int | None = None) -> ZoneVerdict:
        """Run the Bayesian pass on the zone crop and return a verdict.

        This is the "Monitor" box of Fig. 2: image cropping -> Bayesian
        SS model -> mean and std segmentations -> zone confirmation.
        The pass runs on the batched engine (all ``T`` MC samples in
        chunked batched forwards; ``max_batch`` overrides the
        segmenter's chunk size).
        """
        check_image_chw("image", image)
        if box.is_empty():
            raise ValueError("cannot check an empty zone box")
        crop, roi = self._stride_padded_crop(image, box)
        distribution = self.segmenter.predict_distribution(
            crop, num_samples=self.config.num_samples,
            max_batch=max_batch)
        return self._verdict(distribution, box, roi)

    def check_zones(self, image: np.ndarray, boxes,
                    joint: bool = False,
                    shared: bool | None = None,
                    max_batch: int | None = None) -> list[ZoneVerdict]:
        """Verify several candidate zones in one batched call.

        With ``joint=False`` (default) every zone keeps its own dropout
        seeding, so the verdicts are bit-for-bit identical to calling
        :meth:`check_zone` once per box in order — each zone still gets
        the ``T``-fold batched forward.  With ``joint=True`` all crops
        are stride-padded to a common shape (growing within the frame,
        so every crop still shows real context) and verified in a
        single jointly seeded ``(len(boxes) * T)``-batched Bayesian
        pass — seeded and reproducible, but its mask stream — and the
        extra context smaller crops gain — mean the verdicts can differ
        marginally from per-zone calls.  Exactly identical crop windows
        inside a joint pass (duplicate candidate boxes, or distinct
        boxes whose padded windows coincide) are segmented once and
        share one distribution: identical pixels get identical moments
        (no numerical approximation, and re-checking the same pixels
        is deliberately idempotent), though duplicates therefore share
        one MC estimate rather than drawing independent ones, and when
        duplicates are present the joint mask stream is consumed at
        the deduplicated positions — the joint stream is documented
        per release, never a cross-version contract.

        ``shared=True`` (implies joint) runs the shared-context
        union-crop planner instead: overlapping crops are merged into
        stride-aligned union windows, one jointly seeded pass per
        window, per-zone moments sliced from the window stack (see the
        module docstring).  ``shared=None`` (default) resolves from the
        ``REPRO_MONITOR_SHARED`` environment toggle for ``joint=True``
        calls and stays off otherwise.
        """
        check_image_chw("image", image)
        boxes = list(boxes)
        for box in boxes:
            if box.is_empty():
                raise ValueError("cannot check an empty zone box")
        if not boxes:
            return []
        if shared is None:
            shared = joint and shared_context_default()
        if shared:
            return self._check_zones_shared(image, boxes, max_batch)
        if not joint:
            return [self.check_zone(image, box, max_batch=max_batch)
                    for box in boxes]

        # First pass computes only the natural spans (no pixel copies);
        # the single extraction happens at the common target shape.
        spans = [self._padded_spans(image, box) for box in boxes]
        th = max(crop_box.height for crop_box, _ in spans)
        tw = max(crop_box.width for crop_box, _ in spans)
        targets = [self._padded_spans(image, box, target=(th, tw))
                   for box in boxes]
        # Identical (crop_box, target) windows crop identical pixels;
        # segment each distinct window once (first-occurrence order
        # keeps the pass seeded-deterministic) and fan the shared
        # distribution back out to every zone that uses the window.
        order: dict[Box, int] = {}
        for crop_box, _ in targets:
            order.setdefault(crop_box, len(order))
        stack = np.stack([
            crop_box.extract(image).astype(np.float32)
            for crop_box in order])
        distributions = self.segmenter.predict_distribution_stack(
            stack, num_samples=self.config.num_samples,
            max_batch=max_batch)
        return [self._verdict(distributions[order[crop_box]], box, roi)
                for box, (crop_box, roi) in zip(boxes, targets)]

    def full_frame_unsafe(self, image: np.ndarray) -> np.ndarray:
        """Eq. (2) evaluated over the whole frame.

        Used by the Fig. 4 evaluation (how much of the road area the
        monitor flags) and by the timing benchmark — *not* by the
        pipeline, which only monitors candidate crops.
        """
        check_image_chw("image", image)
        h, w = image.shape[1:]
        crop, roi = self._stride_padded_crop(image, Box(0, 0, h, w))
        distribution = self.segmenter.predict_distribution(
            crop, num_samples=self.config.num_samples)
        return roi.extract(self.unsafe_pixels(distribution))
