"""Plain-text table/series formatting for benches and examples.

Every benchmark prints the rows/series of the paper artefact it
reproduces; these helpers keep that output consistent and legible
without any plotting dependency.
"""

from __future__ import annotations

__all__ = ["format_table", "format_kv", "format_title"]


def format_title(title: str, width: int = 72) -> str:
    """A boxed section title."""
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"


def format_table(headers: list[str], rows: list[list],
                 title: str | None = None) -> str:
    """Fixed-width ASCII table.

    Cells are stringified; floats are rendered with 4 significant
    digits.  Column widths adapt to content.
    """
    def render(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append(fmt_row(["-" * w for w in widths]))
    for row in str_rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)


def format_kv(pairs: dict, title: str | None = None) -> str:
    """Aligned key/value listing."""
    if not pairs:
        return title or ""
    width = max(len(str(k)) for k in pairs)
    lines = [title] if title else []
    for key, value in pairs.items():
        if isinstance(value, float):
            value = f"{value:.4g}"
        lines.append(f"{str(key).ljust(width)}  {value}")
    return "\n".join(lines)
