"""Edge-case and failure-injection tests across module boundaries.

These target the corners a safety-critical reviewer would probe first:
degenerate frames, boxes at image borders, all-hazard worlds, empty
footprints, adversarial monitor inputs, and pipeline behaviour when a
subsystem misbehaves.
"""

import numpy as np
import pytest

from repro.core import (
    DecisionConfig,
    DecisionModule,
    LandingZoneConfig,
    LandingZoneSelector,
    MonitorConfig,
    RuntimeMonitor,
)
from repro.core.monitor import ZoneVerdict
from repro.dataset import DAY, SUNSET, UavidClass, render_labels
from repro.dataset.scene import SceneConfig, UrbanScene
from repro.segmentation import BayesianSegmenter
from repro.sora.hazard import Severity, classify_touchdown
from repro.uav import (
    FailureEvent,
    FailureType,
    MissionConfig,
    simulate_mission,
)
from repro.uav.ballistics import DriftModel
from repro.utils.geometry import Box


class TestDegenerateFrames:
    def test_all_road_frame_aborts(self, tiny_system):
        """A frame that is wall-to-wall road must never yield a zone."""
        pipeline = tiny_system.make_pipeline(monitor_enabled=False, rng=0)
        road = np.full((48, 64), int(UavidClass.ROAD), dtype=np.int16)
        image = render_labels(road, None, DAY, 1.0, rng=0)
        result = pipeline.run(image)
        if result.landed:
            # Only acceptable if the model misread the frame AND the
            # selector still found clearance — with monitor disabled.
            # With the monitor on this must never happen:
            monitored = tiny_system.make_pipeline(monitor_enabled=True,
                                                  rng=0)
            assert not monitored.run(image).landed

    def test_all_grass_frame_lands(self, tiny_system):
        """A uniform safe frame should produce a confirmed zone."""
        pipeline = tiny_system.make_pipeline(monitor_enabled=True, rng=0)
        grass = np.full((48, 64), int(UavidClass.LOW_VEGETATION),
                        dtype=np.int16)
        image = render_labels(grass, None, DAY, 1.0, rng=0)
        result = pipeline.run(image)
        # The model has seen plenty of grass; its candidates cover the
        # frame; the monitor should confirm at least one.
        assert result.candidates
        assert result.landed

    def test_black_frame_is_handled(self, tiny_system):
        """A dead camera (all-zero frame) must not crash the pipeline."""
        pipeline = tiny_system.make_pipeline(monitor_enabled=True, rng=0)
        image = np.zeros((3, 48, 64), dtype=np.float32)
        result = pipeline.run(image)  # may land or abort; must not raise
        assert result.decision is not None

    def test_saturated_frame_is_handled(self, tiny_system):
        pipeline = tiny_system.make_pipeline(monitor_enabled=True, rng=0)
        image = np.ones((3, 48, 64), dtype=np.float32)
        result = pipeline.run(image)
        assert result.decision is not None


class TestBorderBoxes:
    def test_monitor_box_at_every_corner(self, tiny_system):
        segmenter = BayesianSegmenter(tiny_system.model, num_samples=2,
                                      rng=0)
        monitor = RuntimeMonitor(segmenter, MonitorConfig(num_samples=2))
        image = tiny_system.test_samples[0].image
        h, w = image.shape[1:]
        for box in (Box(0, 0, 8, 8), Box(0, w - 8, 8, 8),
                    Box(h - 8, 0, 8, 8), Box(h - 8, w - 8, 8, 8)):
            verdict = monitor.check_zone(image, box)
            assert verdict.unsafe_mask.shape == (8, 8)

    def test_monitor_box_larger_than_frame_is_clipped(self, tiny_system):
        segmenter = BayesianSegmenter(tiny_system.model, num_samples=2,
                                      rng=0)
        monitor = RuntimeMonitor(segmenter, MonitorConfig(num_samples=2))
        image = tiny_system.test_samples[0].image
        h, w = image.shape[1:]
        big = Box(-10, -10, h + 20, w + 20)
        verdict = monitor.check_zone(image, big)
        assert verdict.unsafe_mask.shape[0] <= h
        assert verdict.unsafe_mask.shape[1] <= w


class TestHazardEdgeCases:
    def test_empty_footprint_defended(self):
        assessment = classify_touchdown(np.empty((0,), dtype=int), True,
                                        100.0)
        assert assessment.severity is Severity.NEGLIGIBLE

    def test_scalar_footprint(self):
        assessment = classify_touchdown(
            np.array([int(UavidClass.ROAD)]), True, 100.0)
        assert assessment.severity is Severity.CATASTROPHIC

    def test_fire_threshold_boundary(self):
        from repro.sora.hazard import FIRE_ENERGY_THRESHOLD_J
        below = classify_touchdown(
            np.array([int(UavidClass.TREE)]), False,
            FIRE_ENERGY_THRESHOLD_J - 1)
        at = classify_touchdown(
            np.array([int(UavidClass.TREE)]), False,
            FIRE_ENERGY_THRESHOLD_J)
        assert below.severity is Severity.NEGLIGIBLE
        assert at.severity is Severity.SERIOUS


class TestSelectorEdgeCases:
    def test_tiny_frame_yields_no_candidates(self):
        cfg = LandingZoneConfig(zone_size_m=16.0, gsd_m=1.0,
                                drift_model=DriftModel())
        selector = LandingZoneSelector(cfg)
        labels = np.full((8, 8), int(UavidClass.LOW_VEGETATION),
                         dtype=np.int16)
        assert selector.propose(labels) == []

    def test_single_safe_pixel_world(self):
        cfg = LandingZoneConfig(zone_size_m=4.0, gsd_m=1.0,
                                drift_model=DriftModel(),
                                border_margin_px=0)
        selector = LandingZoneSelector(cfg)
        labels = np.full((32, 32), int(UavidClass.ROAD), dtype=np.int16)
        labels[16, 16] = int(UavidClass.LOW_VEGETATION)
        candidates = selector.propose(labels)
        # A candidate may exist but can never meet the buffer.
        assert all(not c.meets_buffer() for c in candidates)


class TestDecisionEdgeCases:
    def test_monitor_raising_is_not_swallowed(self):
        dm = DecisionModule(DecisionConfig())
        from repro.core import ZoneCandidate

        good = ZoneCandidate(box=Box(0, 0, 8, 8), clearance_m=50.0,
                             required_clearance_m=10.0, rank=0)

        def broken(_candidate) -> ZoneVerdict:
            raise RuntimeError("sensor dropout mid-check")

        with pytest.raises(RuntimeError, match="sensor dropout"):
            dm.decide([good], broken)


class TestMissionEdgeCases:
    def test_failure_at_time_zero(self):
        scene = UrbanScene.generate(seed=61)
        result = simulate_mission(
            scene,
            failure=FailureEvent(FailureType.MOTOR_FAILURE, 0.0),
            rng=0)
        assert result.final_maneuver.name == "FLIGHT_TERMINATION"
        assert result.flight_time_s <= 2.0

    def test_failure_after_mission_end_never_fires(self):
        scene = UrbanScene.generate(seed=61)
        result = simulate_mission(
            scene,
            failure=FailureEvent(FailureType.MOTOR_FAILURE, 9999.0),
            rng=0)
        assert result.completed

    def test_el_policy_exception_degrades_to_ft(self):
        """A crashing EL policy must not crash the mission — the
        defensive path hands control to flight termination."""
        scene = UrbanScene.generate(seed=61)

        def exploding_policy(_image):
            raise RuntimeError("model inference crashed")

        result = simulate_mission(
            scene,
            failure=FailureEvent(FailureType.NAVIGATION_AND_COMM_LOSS,
                                 4.0),
            el_policy=exploding_policy, rng=0)
        assert result.final_maneuver.name == "FLIGHT_TERMINATION"
        assert any("EL policy error" in e for e in result.events)

    def test_strong_wind_mission_terminates(self):
        """Gale-force wind: the mission must end within the time budget
        one way or another (no infinite loops)."""
        scene = UrbanScene.generate(seed=61)
        config = MissionConfig(wind_speed_ms=25.0, max_time_s=120.0)
        result = simulate_mission(
            scene, config=config,
            failure=FailureEvent(FailureType.COMM_LOSS_TEMPORARY, 2.0),
            rng=0)
        assert result.flight_time_s <= 121.0

    def test_zero_wind_parachute_lands_near_release(self):
        scene = UrbanScene.generate(seed=61)
        config = MissionConfig(wind_speed_ms=0.0)
        result = simulate_mission(
            scene, config=config,
            failure=FailureEvent(FailureType.MOTOR_FAILURE, 2.0),
            rng=0)
        x, y = result.touchdown_xy_m
        # Started at (30, 30); no wind -> negligible drift.
        assert abs(x - 30.0) < 30.0 and abs(y - 30.0) < 30.0


class TestSceneEdgeCases:
    def test_minimal_scene_size(self):
        config = SceneConfig(size_m=(130.0, 130.0), road_spacing_m=64.0)
        scene = UrbanScene.generate(config, seed=0)
        assert scene.labels.shape == config.grid_shape

    def test_dense_city_still_generates(self):
        config = SceneConfig(building_coverage=0.6,
                             static_cars_per_road_km=120.0,
                             humans_per_ha=30.0)
        scene = UrbanScene.generate(config, seed=0)
        assert (scene.labels == int(UavidClass.BUILDING)).any()

    def test_sunset_rendering_of_every_scene_class(self):
        scene = UrbanScene.generate(seed=62)
        labels = scene.label_window((256, 256), (64, 96), 1.0)
        height = scene.height_window((256, 256), (64, 96), 1.0)
        image = render_labels(labels, height, SUNSET, 1.0, rng=0)
        assert np.isfinite(image).all()
        assert image.min() >= 0.0 and image.max() <= 1.0
