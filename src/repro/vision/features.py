"""Hand-crafted tile features for classical landing-site classifiers.

References [12]-[14] of the paper classify image tiles (building /
bitumen / trees / grass / water, or safe / unsafe) with SVMs or small
CNNs on texture features.  This module extracts per-tile descriptors:
colour statistics, gradient energy and edge density.
"""

from __future__ import annotations

import numpy as np

from repro.vision.canny import canny
from repro.vision.filters import gradient_magnitude, to_grayscale

__all__ = ["tile_grid", "tile_features", "FEATURE_NAMES", "extract_tile_features"]

FEATURE_NAMES = (
    "mean_r", "mean_g", "mean_b",
    "std_r", "std_g", "std_b",
    "gradient_energy",
    "edge_density",
    "excess_green",
)


def tile_grid(shape: tuple[int, int], tile: int
              ) -> list[tuple[int, int, int, int]]:
    """Partition an image into tiles ``(row, col, height, width)``.

    Edge tiles are truncated rather than discarded so the whole frame is
    covered (a landing-site selector must reason about every pixel).
    """
    if tile < 1:
        raise ValueError(f"tile must be >= 1, got {tile}")
    h, w = shape
    boxes = []
    for row in range(0, h, tile):
        for col in range(0, w, tile):
            boxes.append((row, col, min(tile, h - row), min(tile, w - col)))
    return boxes


def tile_features(image_chw: np.ndarray, tile: int
                  ) -> tuple[np.ndarray, list[tuple[int, int, int, int]]]:
    """Feature matrix ``(num_tiles, num_features)`` plus tile boxes."""
    if image_chw.ndim != 3 or image_chw.shape[0] != 3:
        raise ValueError(f"expected (3, H, W) image, got {image_chw.shape}")
    gray = to_grayscale(image_chw)
    grad = gradient_magnitude(gray)
    edges = canny(gray)
    boxes = tile_grid(gray.shape, tile)
    features = np.empty((len(boxes), len(FEATURE_NAMES)), dtype=np.float64)
    for i, (row, col, height, width) in enumerate(boxes):
        rs = slice(row, row + height)
        cs = slice(col, col + width)
        patch = image_chw[:, rs, cs]
        features[i] = extract_tile_features(patch, grad[rs, cs],
                                            edges[rs, cs])
    return features, boxes


def extract_tile_features(patch_chw: np.ndarray, grad_patch: np.ndarray,
                          edge_patch: np.ndarray) -> np.ndarray:
    """Descriptor of a single tile (see :data:`FEATURE_NAMES`)."""
    means = patch_chw.reshape(3, -1).mean(axis=1)
    stds = patch_chw.reshape(3, -1).std(axis=1)
    gradient_energy = float(np.mean(grad_patch ** 2))
    edge_density = float(np.mean(edge_patch))
    # Excess-green index: separates vegetation from asphalt/roofs.
    excess_green = float(2 * means[1] - means[0] - means[2])
    return np.array([*means, *stds, gradient_energy, edge_density,
                     excess_green])
