"""Experiment harness: trained systems, caching, experiment drivers.

Benches and examples all need the same expensive artefact — a trained
segmentation model plus datasets — so the harness builds it once and
caches the weights on disk, keyed by a hash of the full configuration.
On top of it, each experiment of DESIGN.md's per-experiment index has a
driver here returning plain dictionaries the benches format and assert
against.  All drivers run on the batched inference paths:
``fig4_experiment`` segments its frame corpora in chunked batched
forwards, ``zone_acceptance_experiment`` goes through the streaming
episode engine (``EpisodeScheduler.run_frames``), and
``timing_experiment`` times the batched MC-dropout engine
(``sequential=True`` for the per-sample reference).

Out-of-distribution conditions are named through the scenario registry
(:mod:`repro.scenarios`): every driver that takes a ``condition``
accepts either an :class:`ImagingConditions` or a registered scenario
name such as ``"sunset_ood"``.

Scale note: the paper's system runs on 3840x2160 frames at ~10 cm/px on
a GPU; this reproduction runs 96x128 frames at 1 m/px on CPU.  The
drift/buffer parameters in :func:`scaled_drift_model` are chosen for
that scale; full-scale (paper) parameters live in
:class:`repro.uav.DriftModel`'s defaults.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.decision import DecisionConfig
from repro.core.engine import EngineConfig, EpisodeScheduler
from repro.core.landing_zone import LandingZoneConfig
from repro.core.monitor import MonitorConfig
from repro.core.pipeline import LandingPipeline, PipelineConfig
from repro.dataset.classes import (
    BUSY_ROAD_CLASSES,
    HIGH_RISK_CLASSES,
    NUM_CLASSES,
    UavidClass,
)
from repro.dataset.conditions import (
    SUNSET,
    TRAINING_CONDITIONS,
    ImagingConditions,
)
from repro.dataset.generator import (
    DatasetConfig,
    SegmentationSample,
    generate_dataset,
    reshoot_under_condition,
    split_by_scene,
)
from repro.eval.monitor_metrics import (
    accumulate_stats,
    pixel_monitor_stats,
    zone_truly_unsafe,
)
from repro.nn.io import load_weights, save_weights
from repro.segmentation.bayesian import BayesianSegmenter
from repro.segmentation.metrics import evaluate_predictions
from repro.segmentation.msdnet import MSDNet, MSDNetConfig
from repro.segmentation.train import TrainConfig, train_model
from repro.uav.ballistics import DriftModel

__all__ = [
    "HarnessConfig",
    "TrainedSystem",
    "build_trained_system",
    "scaled_drift_model",
    "tiny_harness_config",
    "default_cache_dir",
    "resolve_condition",
    "fig4_experiment",
    "zone_acceptance_experiment",
    "timing_experiment",
]


def default_cache_dir() -> Path:
    """Cache directory (override with the REPRO_CACHE env variable)."""
    env = os.environ.get("REPRO_CACHE")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".cache"


def resolve_condition(condition: "ImagingConditions | str"
                      ) -> ImagingConditions:
    """An :class:`ImagingConditions`, possibly named via the registry.

    Strings resolve through :func:`repro.scenarios.get_scenario`
    (``"sunset_ood"`` -> the sunset conditions), so experiment drivers
    can be pointed at registered scenarios by name.
    """
    if isinstance(condition, str):
        from repro.scenarios import get_scenario  # lazy: keeps layering
        return get_scenario(condition).conditions
    return condition


def tiny_harness_config() -> "HarnessConfig":
    """The CI-scale trained system (48x64 frames, short training).

    Single source of truth shared by ``tests/conftest.py`` and the
    benchmark suite's ``BENCH_SMOKE=1`` mode, so both resolve to the
    same cache key and train the tiny system at most once per machine.
    """
    return HarnessConfig(
        dataset=DatasetConfig(num_scenes=5, windows_per_scene=8,
                              image_shape=(48, 64), gsd=1.0, seed=99),
        train=TrainConfig(epochs=30, batch_size=4, learning_rate=3e-3,
                          seed=5),
        model_channels=16,
        model_blocks=2,
        model_seed=11,
        zone_size_m=10.0,
        monitor_samples=6,
    )


def scaled_drift_model() -> DriftModel:
    """Drift/buffer model matched to the 1 m/px reproduction scale."""
    return DriftModel(wind_speed_ms=3.0, gust_factor=1.3,
                      release_height_m=30.0, descent_rate_ms=6.0,
                      position_error_m=2.0, latency_s=0.5,
                      approach_speed_ms=4.0)


@dataclass(frozen=True)
class HarnessConfig:
    """Everything defining a trained system (hashable for caching)."""

    dataset: DatasetConfig = field(default_factory=lambda: DatasetConfig(
        num_scenes=8, windows_per_scene=10, image_shape=(96, 128),
        gsd=1.0, conditions=TRAINING_CONDITIONS, seed=13))
    train: TrainConfig = field(default_factory=lambda: TrainConfig(
        epochs=40, batch_size=4, learning_rate=3e-3, seed=3))
    model_channels: int = 24
    model_blocks: int = 2
    model_dropout: float = 0.5
    model_seed: int = 1
    zone_size_m: float = 12.0
    monitor_samples: int = 10

    def cache_key(self) -> str:
        """Stable content hash of the configuration."""
        text = repr(self).encode("utf-8")
        return hashlib.sha1(text).hexdigest()[:16]


@dataclass
class TrainedSystem:
    """A trained model with its data splits and scale-matched configs."""

    config: HarnessConfig
    model: MSDNet
    train_samples: list[SegmentationSample]
    val_samples: list[SegmentationSample]
    test_samples: list[SegmentationSample]

    # ------------------------------------------------------------------
    def selector_config(self, conservative: bool = True
                        ) -> LandingZoneConfig:
        return LandingZoneConfig(
            zone_size_m=self.config.zone_size_m,
            gsd_m=self.config.dataset.gsd,
            drift_model=scaled_drift_model(),
            conservative_buffer=conservative,
            max_candidates=5)

    def monitor_config(self, tau: float | None = None,
                       num_samples: int | None = None) -> MonitorConfig:
        """Monitor parameters; ``tau=None`` keeps ``MonitorConfig``'s
        canonical ``1 / NUM_CLASSES`` default (the single source of
        truth for the paper's threshold)."""
        kwargs = {"num_samples":
                  num_samples or self.config.monitor_samples}
        if tau is not None:
            kwargs["tau"] = tau
        return MonitorConfig(**kwargs)

    def pipeline_config(self, monitor_enabled: bool = True,
                        tau: float | None = None,
                        num_samples: int | None = None,
                        conservative: bool = True,
                        speculative_k: int = 1) -> PipelineConfig:
        """The scale-matched Fig. 2 pipeline configuration."""
        return PipelineConfig(
            selector=self.selector_config(conservative=conservative),
            monitor=self.monitor_config(tau=tau, num_samples=num_samples),
            decision=DecisionConfig(max_attempts=3, time_budget_s=20.0,
                                    speculative_k=speculative_k),
            monitor_enabled=monitor_enabled)

    def make_pipeline(self, monitor_enabled: bool = True,
                      tau: float | None = None,
                      num_samples: int | None = None,
                      conservative: bool = True,
                      speculative_k: int = 1,
                      rng=0, engine: EngineConfig | None = None
                      ) -> LandingPipeline:
        """Assemble a Fig. 2 pipeline around the trained model.

        ``speculative_k > 1`` turns on the decision module's
        speculative check-ahead: up to ``k`` ranked candidates are
        monitored per jointly seeded batched Bayesian pass.  ``engine``
        optionally carries the coherent knob surface
        (:class:`repro.core.engine.EngineConfig`).
        """
        config = self.pipeline_config(
            monitor_enabled=monitor_enabled, tau=tau,
            num_samples=num_samples, conservative=conservative,
            speculative_k=speculative_k)
        return LandingPipeline(self.model, config, rng=rng,
                               engine=engine)

    def make_scheduler(self, monitor_enabled: bool = True,
                       tau: float | None = None,
                       num_samples: int | None = None,
                       conservative: bool = True,
                       engine: EngineConfig | None = None,
                       rng=0) -> EpisodeScheduler:
        """A streaming episode engine around the trained model."""
        config = self.pipeline_config(
            monitor_enabled=monitor_enabled, tau=tau,
            num_samples=num_samples, conservative=conservative)
        return EpisodeScheduler(self.model, config, engine=engine,
                                rng=rng)

    def make_segmenter(self, rng=0,
                       prefix_split: bool = True) -> BayesianSegmenter:
        return BayesianSegmenter(self.model,
                                 num_samples=self.config.monitor_samples,
                                 rng=rng, prefix_split=prefix_split)

    def ood_samples(self, condition: ImagingConditions | str = SUNSET,
                    split: str = "test") -> list[SegmentationSample]:
        """The same geography re-imaged under an OOD condition.

        ``condition`` is an :class:`ImagingConditions` or a registered
        scenario name (``"sunset_ood"``, ``"night_fog"``, ...), whose
        conditions are looked up in :mod:`repro.scenarios`.
        """
        shifted = reshoot_under_condition(self.config.dataset,
                                          resolve_condition(condition))
        train, val, test = split_by_scene(shifted, 0.2, 0.25)
        return {"train": train, "val": val, "test": test}[split]


def build_trained_system(config: HarnessConfig | None = None,
                         cache: bool = True,
                         verbose: bool = False) -> TrainedSystem:
    """Generate data and train (or load) the segmentation model."""
    config = config or HarnessConfig()
    samples = generate_dataset(config.dataset)
    train_s, val_s, test_s = split_by_scene(samples, 0.2, 0.25)

    model = MSDNet(MSDNetConfig(base_channels=config.model_channels,
                                num_blocks=config.model_blocks,
                                dropout=config.model_dropout),
                   rng=config.model_seed)

    cache_path = default_cache_dir() / f"msdnet-{config.cache_key()}.npz"
    if cache and cache_path.exists():
        load_weights(model, cache_path)
        model.eval()
        if verbose:
            print(f"loaded cached weights from {cache_path}")
    else:
        history = train_model(model, train_s, config.train)
        if verbose:
            print(f"trained {history.steps} steps in "
                  f"{history.wall_time_s:.1f}s, final loss "
                  f"{history.final_loss:.4f}")
        if cache:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            save_weights(model, cache_path)
    return TrainedSystem(config=config, model=model,
                         train_samples=train_s, val_samples=val_s,
                         test_samples=test_s)


# ----------------------------------------------------------------------
# Experiment drivers
# ----------------------------------------------------------------------
def fig4_experiment(system: TrainedSystem,
                    condition: ImagingConditions | str = SUNSET,
                    max_frames: int | None = None) -> dict:
    """The Fig. 4 protocol, quantified.

    Evaluates the deterministic model and the full-frame monitor on the
    in-distribution test split (Fig. 4a) and on the same scenes under an
    OOD condition (Fig. 4b) — an :class:`ImagingConditions` or a
    registered scenario name.  Returns segmentation quality and monitor
    coverage statistics for both.
    """
    condition = resolve_condition(condition)
    results = {}
    segmenter = system.make_segmenter(rng=0)
    from repro.core.monitor import RuntimeMonitor  # avoid cycle at import
    monitor = RuntimeMonitor(segmenter, system.monitor_config())

    for name, samples in (("in_distribution", system.test_samples),
                          ("ood", system.ood_samples(condition))):
        if max_frames is not None:
            samples = samples[:max_frames]
        # The deterministic predictions of all frames run as ONE
        # chunked batched forward on the shared engine; the same
        # predictions feed both the segmentation report and the
        # monitor statistics (argmax of softmax == argmax of logits,
        # so this matches evaluate_model exactly).
        scores = segmenter.predict_deterministic_batch(
            [s.image for s in samples])
        preds = scores.argmax(axis=1)
        report = evaluate_predictions(
            ((pred, sample.labels)
             for pred, sample in zip(preds, samples)), NUM_CLASSES)
        stats = []
        for sample, pred in zip(samples, preds):
            unsafe = monitor.full_frame_unsafe(sample.image)
            stats.append(pixel_monitor_stats(sample.labels, pred, unsafe))
        total = accumulate_stats(stats)
        results[name] = {
            "miou": report.miou,
            "accuracy": report.accuracy,
            "road_iou": report.class_iou(UavidClass.ROAD),
            "model_miss_rate": total.model_miss_rate,
            "monitor_catch_rate": total.monitor_catch_rate,
            "false_alarm_rate": total.false_alarm_rate,
            "residual_miss_rate": total.residual_miss_rate,
            "num_frames": len(samples),
        }
    results["condition"] = condition.name
    return results


def zone_acceptance_experiment(system: TrainedSystem,
                               samples: list[SegmentationSample],
                               monitor_enabled: bool = True,
                               tau: float | None = None,
                               rng=0,
                               engine: EngineConfig | None = None
                               ) -> dict:
    """Run the pipeline over frames and score accepted zones on GT.

    Two safety numbers, among frames where the pipeline decided to land:

    * ``road_accept_rate`` — the accepted zone actually contained
      busy-road pixels.  The paper's "avoid at all costs" property; a
      violation realises the catastrophic R1 outcome, parachute or not.
    * ``high_risk_accept_rate`` — the zone contained *any* Table-I
      high-risk area (adds humans and buildings).  Per Table III
      footnote (a), people-occupied areas are tolerable when an
      effective M2 mitigation (parachute) is in place, so this looser
      number is reported separately.

    The frames run as one stream through the episode engine
    (``EpisodeScheduler.run_frames``), bit-for-bit identical to the
    old per-frame loop on the same seed.  ``engine`` optionally
    selects the engine knobs (e.g. ``monitor_batching="shared"`` for
    the shared-context certification runs).
    """
    scheduler = system.make_scheduler(monitor_enabled=monitor_enabled,
                                      tau=tau, engine=engine)
    landed = 0
    road_unsafe = 0
    high_risk_unsafe = 0
    aborted = 0
    attempts_total = 0
    results = scheduler.run_frames([s.image for s in samples], seed=rng)
    for sample, result in zip(samples, results):
        attempts_total += result.decision.attempts
        if result.landed:
            landed += 1
            box = result.selected_zone.box
            if zone_truly_unsafe(sample.labels, box, BUSY_ROAD_CLASSES):
                road_unsafe += 1
            if zone_truly_unsafe(sample.labels, box, HIGH_RISK_CLASSES):
                high_risk_unsafe += 1
        else:
            aborted += 1
    return {
        "num_frames": len(samples),
        "landed": landed,
        "aborted": aborted,
        "road_unsafe_accepted": road_unsafe,
        "high_risk_accepted": high_risk_unsafe,
        "accept_rate": landed / max(len(samples), 1),
        "road_accept_rate": road_unsafe / max(landed, 1),
        "high_risk_accept_rate": high_risk_unsafe / max(landed, 1),
        "mean_attempts": attempts_total / max(len(samples), 1),
    }


def timing_experiment(system: TrainedSystem,
                      crop_sizes: list[tuple[int, int]],
                      num_samples_list: list[int],
                      repeats: int = 2,
                      sequential: bool = False) -> list[dict]:
    """Monitor latency vs crop size and MC sample count (Sec. V-B).

    Returns one record per (crop, samples) point with the mean wall
    time of a Bayesian pass on that crop.  By default the pass runs on
    the batched engine; ``sequential=True`` times the one-forward-per-
    sample reference instead (the baseline of
    ``benchmarks/bench_batched_inference.py``).
    """
    import time

    segmenter = system.make_segmenter(rng=0)
    predict = (segmenter.predict_distribution_sequential if sequential
               else segmenter.predict_distribution)
    sample = system.test_samples[0]
    stride = system.model.config.output_stride
    if min(sample.image.shape[1:]) < stride:
        raise ValueError(
            f"frame {sample.image.shape[1:]} smaller than the model's "
            f"output stride {stride}")
    records = []
    for size in crop_sizes:
        h = min(size[0], sample.image.shape[1])
        w = min(size[1], sample.image.shape[2])
        # Trim to the stride, but never below one stride: a requested
        # crop smaller than the stride must still yield a runnable
        # (stride x stride) crop rather than an empty one.
        h = max(h - h % stride, stride)
        w = max(w - w % stride, stride)
        crop = sample.image[:, :h, :w]
        for t in num_samples_list:
            # One unmeasured warm-up: the first pass on a new crop
            # shape pays scratch-buffer allocation that is not part of
            # the steady-state monitoring cost being reported.
            predict(crop, num_samples=t)
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                predict(crop, num_samples=t)
                times.append(time.perf_counter() - start)
            records.append({
                "crop_h": h, "crop_w": w, "pixels": h * w,
                "num_samples": t,
                "mean_s": float(np.mean(times)),
            })
    return records
