"""Classic image filters (grayscale, Gaussian, Sobel) — CV substrate.

These support the related-work baselines the paper surveys: the
edge-density landing-site detector of Mejias & Fitzgerald (2013) and the
hand-crafted tile features used by SVM-based classifiers.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = [
    "to_grayscale",
    "gaussian_blur",
    "sobel_gradients",
    "gradient_magnitude",
    "box_filter",
]

# ITU-R BT.601 luma weights.
_LUMA = np.array([0.299, 0.587, 0.114])

_SOBEL_ROW = np.array([[-1, -2, -1],
                       [0, 0, 0],
                       [1, 2, 1]], dtype=np.float64)
_SOBEL_COL = _SOBEL_ROW.T


def to_grayscale(image_chw: np.ndarray) -> np.ndarray:
    """Luma grayscale ``(H, W)`` from a CHW RGB image."""
    if image_chw.ndim != 3 or image_chw.shape[0] != 3:
        raise ValueError(f"expected (3, H, W) image, got {image_chw.shape}")
    return np.tensordot(_LUMA, image_chw, axes=([0], [0]))


def gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Gaussian blur of a 2-D array (no-op for ``sigma <= 0``)."""
    if image.ndim != 2:
        raise ValueError(f"expected 2-D array, got shape {image.shape}")
    if sigma <= 0:
        return image.copy()
    return ndimage.gaussian_filter(image, sigma)


def sobel_gradients(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sobel row- and column-gradients of a 2-D image."""
    if image.ndim != 2:
        raise ValueError(f"expected 2-D array, got shape {image.shape}")
    grad_r = ndimage.convolve(image, _SOBEL_ROW, mode="nearest")
    grad_c = ndimage.convolve(image, _SOBEL_COL, mode="nearest")
    return grad_r, grad_c


def gradient_magnitude(image: np.ndarray) -> np.ndarray:
    """Sobel gradient magnitude of a 2-D image."""
    grad_r, grad_c = sobel_gradients(image)
    return np.hypot(grad_r, grad_c)


def box_filter(image: np.ndarray, size: int) -> np.ndarray:
    """Mean filter with a ``size x size`` window (edge-replicated)."""
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    if image.ndim != 2:
        raise ValueError(f"expected 2-D array, got shape {image.shape}")
    return ndimage.uniform_filter(image.astype(np.float64), size=size,
                                  mode="nearest")
