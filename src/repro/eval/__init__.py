"""Evaluation harness: trained-system cache, experiment drivers, metrics,
and plain-text reporting used by the benchmark suite and examples."""

from repro.eval.harness import (
    HarnessConfig,
    TrainedSystem,
    build_trained_system,
    default_cache_dir,
    fig4_experiment,
    resolve_condition,
    scaled_drift_model,
    timing_experiment,
    tiny_harness_config,
    zone_acceptance_experiment,
)
from repro.eval.monitor_metrics import (
    MonitorPixelStats,
    accumulate_stats,
    pixel_monitor_stats,
    tau_sweep,
    zone_truly_unsafe,
)
from repro.eval.reporting import format_kv, format_table, format_title

__all__ = [
    "HarnessConfig",
    "TrainedSystem",
    "build_trained_system",
    "default_cache_dir",
    "resolve_condition",
    "scaled_drift_model",
    "tiny_harness_config",
    "fig4_experiment",
    "zone_acceptance_experiment",
    "timing_experiment",
    "MonitorPixelStats",
    "pixel_monitor_stats",
    "accumulate_stats",
    "tau_sweep",
    "zone_truly_unsafe",
    "format_table",
    "format_kv",
    "format_title",
]
