"""Tests for the low-level nn operations (conv, pooling, resize, softmax)."""

import numpy as np
import pytest

from repro.nn import functional as F


class TestConvOutputSize:
    def test_basic(self):
        assert F.conv_output_size(8, 3, 1, 1, 1) == 8

    def test_stride(self):
        assert F.conv_output_size(8, 3, 2, 1, 1) == 4

    def test_dilation(self):
        # Effective kernel = (3-1)*2+1 = 5.
        assert F.conv_output_size(8, 3, 1, 2, 2) == 8

    def test_no_padding_shrinks(self):
        assert F.conv_output_size(8, 3, 1, 0, 1) == 6

    def test_too_small_raises(self):
        with pytest.raises(ValueError, match="output size"):
            F.conv_output_size(2, 5, 1, 0, 1)


class TestIm2Col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 10))
        cols, geom = F.im2col(x, (3, 3), stride=1, padding=1, dilation=1)
        assert cols.shape == (2, 3 * 9, 8 * 10)

    def test_identity_kernel_1x1(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        cols, _ = F.im2col(x, (1, 1), stride=1, padding=0, dilation=1)
        np.testing.assert_allclose(cols.reshape(1, 2, 16),
                                   x.reshape(1, 2, 16))

    def test_col2im_adjointness(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — exact adjoint pair."""
        x = rng.normal(size=(2, 2, 6, 7))
        cols, geom = F.im2col(x, (3, 3), stride=2, padding=1, dilation=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * F.col2im(y, geom)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_col2im_adjointness_dilated(self, rng):
        x = rng.normal(size=(1, 3, 9, 9))
        cols, geom = F.im2col(x, (3, 3), stride=1, padding=2, dilation=2)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * F.col2im(y, geom)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConv2d:
    def _naive_conv(self, x, w, b, stride, pad, dil):
        n, c_in, h, wd = x.shape
        c_out, _, kh, kw = w.shape
        oh = F.conv_output_size(h, kh, stride, pad, dil)
        ow = F.conv_output_size(wd, kw, stride, pad, dil)
        xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        out = np.zeros((n, c_out, oh, ow))
        for ni in range(n):
            for co in range(c_out):
                for i in range(oh):
                    for j in range(ow):
                        acc = 0.0
                        for ci in range(c_in):
                            for ki in range(kh):
                                for kj in range(kw):
                                    acc += (xp[ni, ci,
                                               i * stride + ki * dil,
                                               j * stride + kj * dil]
                                            * w[co, ci, ki, kj])
                        out[ni, co, i, j] = acc + (b[co] if b is not None
                                                   else 0.0)
        return out

    @pytest.mark.parametrize("stride,pad,dil", [(1, 1, 1), (2, 1, 1),
                                                (1, 2, 2), (1, 0, 1)])
    def test_matches_naive(self, rng, stride, pad, dil):
        x = rng.normal(size=(2, 3, 7, 8))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        y, _ = F.conv2d_forward(x, w, b, stride, pad, dil)
        expected = self._naive_conv(x, w, b, stride, pad, dil)
        np.testing.assert_allclose(y, expected, atol=1e-10)

    def test_channel_mismatch_raises(self, rng):
        x = rng.normal(size=(1, 3, 5, 5))
        w = rng.normal(size=(2, 4, 3, 3))
        with pytest.raises(ValueError, match="channels"):
            F.conv2d_forward(x, w, None)

    def test_backward_shapes(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(5, 3, 3, 3))
        b = rng.normal(size=5)
        y, cache = F.conv2d_forward(x, w, b, 1, 1, 1)
        dx, dw, db = F.conv2d_backward(np.ones_like(y), cache)
        assert dx.shape == x.shape
        assert dw.shape == w.shape
        assert db.shape == b.shape

    def test_backward_no_bias(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        y, cache = F.conv2d_forward(x, w, None, 1, 1, 1)
        _, _, db = F.conv2d_backward(np.ones_like(y), cache)
        assert db is None


class TestMaxPool:
    def test_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        y, _ = F.maxpool2d_forward(x, 2)
        np.testing.assert_allclose(y[0, 0], [[5, 7], [13, 15]])

    def test_backward_routes_to_argmax(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        y, cache = F.maxpool2d_forward(x, 2)
        dx = F.maxpool2d_backward(np.ones_like(y), cache)
        assert dx.sum() == 4
        assert dx[0, 0, 1, 1] == 1  # position of value 5

    def test_backward_ties_single_route(self):
        x = np.zeros((1, 1, 4, 4))
        y, cache = F.maxpool2d_forward(x, 2)
        dx = F.maxpool2d_backward(np.ones_like(y), cache)
        # Each 2x2 window routes exactly one unit despite the tie.
        assert dx.sum() == 4
        assert dx.max() == 1

    def test_indivisible_raises(self, rng):
        with pytest.raises(ValueError, match="divisible"):
            F.maxpool2d_forward(rng.normal(size=(1, 1, 5, 4)), 2)


class TestResize:
    def test_linear_weights_rows_sum_to_one(self):
        w = F.linear_resize_weights(7, 18)
        np.testing.assert_allclose(w.sum(axis=1), 1.0)

    def test_linear_weights_identity(self):
        w = F.linear_resize_weights(5, 5)
        np.testing.assert_allclose(w, np.eye(5), atol=1e-12)

    def test_bilinear_constant_preserved(self):
        x = np.full((1, 2, 4, 4), 3.5)
        y, _ = F.resize_bilinear_forward(x, 8, 8)
        np.testing.assert_allclose(y, 3.5)

    def test_bilinear_adjointness(self, rng):
        x = rng.normal(size=(1, 2, 4, 5))
        y, cache = F.resize_bilinear_forward(x, 8, 10)
        g = rng.normal(size=y.shape)
        lhs = float((y * g).sum())
        rhs = float((x * F.resize_bilinear_backward(g, cache)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_nearest_upsample_values(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 1, 2, 2)
        y, _ = F.resize_nearest_forward(x, 4, 4)
        np.testing.assert_allclose(y[0, 0, :2, :2], 1.0)
        np.testing.assert_allclose(y[0, 0, 2:, 2:], 4.0)

    def test_nearest_adjointness(self, rng):
        x = rng.normal(size=(2, 1, 3, 3))
        y, cache = F.resize_nearest_forward(x, 6, 6)
        g = rng.normal(size=y.shape)
        lhs = float((y * g).sum())
        rhs = float((x * F.resize_nearest_backward(g, cache)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestSoftmax:
    def test_sums_to_one(self, rng):
        x = rng.normal(size=(2, 8, 3, 3))
        s = F.softmax(x, axis=1)
        np.testing.assert_allclose(s.sum(axis=1), 1.0, atol=1e-12)

    def test_stability_large_values(self):
        x = np.array([[1000.0, 1000.0]])
        s = F.softmax(x, axis=1)
        np.testing.assert_allclose(s, 0.5)

    def test_integer_input(self):
        """Regression: the in-place exp must not reject integer input."""
        s = F.softmax(np.array([[1, 2, 3]]), axis=1)
        np.testing.assert_allclose(
            s, F.softmax(np.array([[1.0, 2.0, 3.0]]), axis=1))

    def test_log_softmax_consistent(self, rng):
        x = rng.normal(size=(4, 6))
        np.testing.assert_allclose(np.exp(F.log_softmax(x, axis=1)),
                                   F.softmax(x, axis=1), atol=1e-12)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(F.softmax(x, axis=1),
                                   F.softmax(x + 100.0, axis=1),
                                   atol=1e-12)
