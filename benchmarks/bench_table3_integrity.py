"""TABLE-III bench: EL integrity criteria, evaluated on the real system.

Paper artefact: Table III — Level of Integrity Assessment Criteria for
Emergency Landing (active-M1), side by side with the original SORA M1
criteria.  Expectation: exact criteria set; the implemented pipeline's
measured zone-acceptance evidence must reach MEDIUM integrity (buffers
applied + no busy-road zone accepted).
"""

from repro.core import (
    EL_INTEGRITY_CRITERIA,
    EvidenceBundle,
    M1_INTEGRITY_CRITERIA_TEXT,
    evaluate_integrity,
)
from repro.eval.harness import zone_acceptance_experiment
from repro.eval.reporting import format_table, format_title
from repro.sora import RobustnessLevel


def test_table3_criteria_and_compliance(benchmark, system, emit):
    held_out = zone_acceptance_experiment(system, system.test_samples,
                                          monitor_enabled=True)
    evidence = EvidenceBundle(
        declared_integrity=True,
        unsafe_zone_rate=held_out["road_accept_rate"],
        in_context_unsafe_rate=held_out["road_accept_rate"],
        drift_buffer_applied=True,
        failure_allowance_applied=True,
    )

    report = benchmark(lambda: evaluate_integrity(evidence))

    emit("\n" + format_title(
        "TABLE-III: Integrity criteria for EL (paper Table III)"))
    rows = []
    for level in (RobustnessLevel.LOW, RobustnessLevel.MEDIUM,
                  RobustnessLevel.HIGH):
        m1 = " / ".join(M1_INTEGRITY_CRITERIA_TEXT[level])
        els = [c for c in EL_INTEGRITY_CRITERIA if c.level is level]
        for i, criterion in enumerate(els):
            rows.append([level.name if i == 0 else "",
                         criterion.id,
                         criterion.text[:64] + "...",
                         (m1[:40] + "...") if i == 0 else ""])
    emit(format_table(["level", "id", "proposed EL criterion",
                       "original M1 criterion"], rows))

    emit("\nmeasured evidence: road-unsafe zone rate "
         f"{held_out['road_accept_rate']:.4f} over "
         f"{held_out['landed']} accepted zones")
    emit("\n".join(report.summary_lines()))

    # Exact criteria set (ids fixed by the paper's table structure).
    assert [c.id for c in EL_INTEGRITY_CRITERIA] == \
        ["EL-I-L1", "EL-I-L2", "EL-I-M1", "EL-I-H1"]
    # High reuses Medium ("Same as Medium" in the paper).
    assert EL_INTEGRITY_CRITERIA[-1].text == "Same as Medium."
    # The implemented system achieves at least MEDIUM integrity.
    assert held_out["road_accept_rate"] == 0.0
    assert report.achieved >= RobustnessLevel.MEDIUM
