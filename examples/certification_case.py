#!/usr/bin/env python3
"""Build a complete certification case for the EL system (Tables III & IV).

This is the paper's programme executed end to end: validate the
implemented EL system experimentally, collect the results into an
evidence bundle, evaluate the Table III integrity and Table IV assurance
criteria, derive the mitigation robustness, and feed it back into the
SORA to see the certification effect.

Run:  python examples/certification_case.py
"""

from repro.core import (
    EvidenceBundle,
    achieved_robustness,
    evaluate_assurance,
    evaluate_integrity,
)
from repro.eval import (
    build_trained_system,
    format_kv,
    format_title,
    zone_acceptance_experiment,
)
from repro.scenarios import scenario_sweep
from repro.sora import RobustnessLevel, assess_medi_delivery

#: The Table IV High-2 condition sweep, named via the registry.
SWEEP_SCENARIOS = ("overcast_nominal", "sunset_ood", "night_ood",
                   "fog_ood")


def collect_evidence(system) -> EvidenceBundle:
    """Run the validation campaign and populate the evidence bundle."""
    print("\n[validation 1] held-out in-distribution zone acceptance ...")
    held_out = zone_acceptance_experiment(system, system.test_samples,
                                          monitor_enabled=True)

    print("[validation 2] in-context (operational conditions) "
          "acceptance ...")
    in_context = zone_acceptance_experiment(
        system, system.ood_samples("overcast_nominal"),
        monitor_enabled=True)

    print("[validation 3] scenario sweep (Table IV High-2) ...")
    conditions_ok = []
    for spec in scenario_sweep(*SWEEP_SCENARIOS):
        za = zone_acceptance_experiment(
            system, system.ood_samples(spec.conditions),
            monitor_enabled=True)
        # A condition counts as validated when no busy-road zone was
        # ever accepted under it (abstaining is safe behaviour).
        if za["road_unsafe_accepted"] == 0:
            conditions_ok.append(spec.conditions.name)
        print(f"    {spec.name:16s} landed {za['landed']:2d} "
              f"road-unsafe {za['road_unsafe_accepted']}")

    return EvidenceBundle(
        declared_integrity=True,
        unsafe_zone_rate=held_out["road_accept_rate"],
        in_context_unsafe_rate=in_context["road_accept_rate"],
        drift_buffer_applied=True,       # LandingZoneConfig buffers
        failure_allowance_applied=True,  # DriftModel gust/latency terms
        tested_on_heldout_dataset=True,
        tested_in_context=True,
        video_data_verified=True,        # synthetic stand-in: recorded seeds
        runtime_monitor_in_place=True,
        third_party_validated=False,     # nobody external signed off
        conditions_validated=frozenset(["day", *conditions_ok]),
    )


def main() -> None:
    print(format_title("Certification case for the implemented EL system"))
    system = build_trained_system(verbose=True)
    evidence = collect_evidence(system)

    print("\nevidence bundle:")
    for line in evidence.summary_lines():
        print("  " + line)

    integrity = evaluate_integrity(evidence)
    assurance = evaluate_assurance(evidence)
    print("\nTable III (integrity):")
    for line in integrity.summary_lines():
        print("  " + line)
    print("\nTable IV (assurance):")
    for line in assurance.summary_lines():
        print("  " + line)

    robustness = achieved_robustness(evidence)
    print(f"\ncombined EL mitigation robustness: {robustness.name} "
          "(min of integrity and assurance)")

    print("\nSORA impact:")
    base = assess_medi_delivery(with_m3=True)
    print(format_kv({"without EL": f"final GRC {base.final_grc}, "
                                   f"{base.sail}"}))
    if robustness > RobustnessLevel.NONE:
        with_el = assess_medi_delivery(with_m3=True,
                                       el_integrity=integrity.achieved,
                                       el_assurance=assurance.achieved)
        print(format_kv({"with EL": f"final GRC {with_el.final_grc}, "
                                    f"{with_el.sail}"}))
    else:
        print("EL earns no GRC credit yet - integrity or assurance "
              "criteria unmet.")


if __name__ == "__main__":
    main()
