"""Chaos suite: the supervision/deadline/degradation claims, proven.

Every fault the serving layer says it tolerates is injected here
deterministically (:mod:`repro.serve.chaos`) and checked against the
extended no-silent-drop ledger:

* a SIGKILLed worker is respawned and its task re-executed from its
  shipped RNG state — results **bit-for-bit identical** to the
  fault-free run;
* a hung task is killed at the collect deadline and surfaces as a
  typed :class:`CheckTimedOut` (conservative reject for zone checks —
  fail safe, never open);
* a torn ring ticket is a typed task failure with its (real) ticket
  reclaimed — the regression target is the pre-supervision leak where
  a dead worker's slot was never recycled;
* a pool broken past its respawn budget degrades onto the
  bit-identical inline path via the circuit breaker, and recovers
  through a half-open probe;
* ``close()`` escalates join -> terminate -> kill, so even a worker
  ignoring SIGTERM cannot wedge shutdown.
"""

import asyncio
import time
import warnings

import numpy as np
import pytest

from repro.core import EngineConfig, EpisodeScheduler, LandingPipeline
from repro.scenarios import scenario_sweep
from repro.serve import (
    CheckTimedOut,
    PersistentWorkerPool,
    ServeBroker,
    ServeConfig,
    WorkerPoolError,
    fork_available,
)
from repro.serve.chaos import ChaosError, FaultPlan, FaultSpec, arm, \
    fork_unavailable
from repro.utils.geometry import Box
from repro.utils.rng import ensure_rng

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="persistent pool requires fork")


def _episodes(system, num=1, frames=2):
    return [
        spec.with_camera(system.config.dataset.image_shape)
        .episode_request(i, num_frames=frames)
        for spec in scenario_sweep("day_nominal", "sunset_ood")
        for i in range(num)
    ]


def _assert_results_equal(a, b):
    assert np.array_equal(a.predicted_labels, b.predicted_labels)
    assert a.decision.action is b.decision.action
    assert len(a.verdicts) == len(b.verdicts)
    for va, vb in zip(a.verdicts, b.verdicts):
        assert va.accepted == vb.accepted
        assert np.array_equal(va.distribution.mean, vb.distribution.mean)
        assert np.array_equal(va.distribution.std, vb.distribution.std)


def _assert_episodes_equal(got, expected):
    assert len(got) == len(expected)
    for ep_a, ep_b in zip(got, expected):
        assert len(ep_a.results) == len(ep_b.results)
        for ra, rb in zip(ep_a.results, ep_b.results):
            _assert_results_equal(ra, rb)


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec("explode")
        with pytest.raises(ValueError, match=">= 0"):
            FaultSpec("kill_worker", at_task=-1)
        with pytest.raises(ValueError, match="hang_s"):
            FaultSpec("hang_task", hang_s=0.0)

    def test_trigger_matching(self):
        plan = FaultPlan.kill_worker(worker=1, at_task=2)
        assert plan.fault_for(1, 0, 2) is not None
        assert plan.fault_for(0, 0, 2) is None  # other worker
        assert plan.fault_for(1, 1, 2) is None  # respawned incarnation
        assert plan.fault_for(1, 0, 1) is None  # earlier task
        assert plan.corrupts_submit(0) is False

    def test_storm_is_seeded(self):
        a = FaultPlan.storm(seed=7, workers=2, kills=3)
        b = FaultPlan.storm(seed=7, workers=2, kills=3)
        assert a == b
        assert len(a.specs) == 3
        assert sorted(s.incarnation for s in a.specs) == [0, 1, 2]

    def test_raise_error_spec_is_typed(self, tiny_system):
        """An injected task error propagates as the usual typed
        worker-task failure, pool intact."""
        config = tiny_system.pipeline_config()
        frame = tiny_system.test_samples[0].image
        plan = FaultPlan(specs=(FaultSpec("raise_error"),))
        with PersistentWorkerPool(tiny_system.model, config,
                                  EngineConfig(), workers=1,
                                  fault_plan=plan) as pool:
            pool.submit(0, frame, ensure_rng(0).bit_generator.state)
            with pytest.raises(RuntimeError, match="failed in worker"):
                pool.collect(1)
            assert pool._ring.in_flight == 0


class TestWorkerKillRecovery:
    def test_kill_mid_episode_is_bit_for_bit(self, tiny_system):
        """The headline claim: SIGKILL a worker mid-episode; the
        respawned worker re-executes the lost task from its shipped
        RNG state and the run equals the fault-free run bit for bit."""
        config = tiny_system.pipeline_config()
        episodes = _episodes(tiny_system, num=2, frames=2)
        expected = EpisodeScheduler(tiny_system.model, config).run(
            episodes)

        with EpisodeScheduler(
                tiny_system.model, config,
                engine=EngineConfig(workers=2)) as sched:
            arm(sched, FaultPlan.kill_worker(worker=0, at_task=0))
            got = sched.run(episodes)
            pool = sched._pool
            assert pool.stats["worker_deaths"] >= 1
            assert pool.stats["respawns"] >= 1
            assert pool.stats["resubmitted"] >= 1
            assert pool._ring.in_flight == 0  # ledger balanced
        _assert_episodes_equal(got, expected)

    def test_ticket_reclaimed_when_budget_exhausted(self, tiny_system):
        """Regression: a dead worker's ring ticket used to leak
        forever, pushing every later frame onto the overflow path.
        With the budget at 0 the pool gives up typed — but reclaims
        every in-flight ticket first."""
        config = tiny_system.pipeline_config()
        frame = tiny_system.test_samples[0].image
        plan = FaultPlan.kill_worker(worker=0, at_task=0)
        with PersistentWorkerPool(tiny_system.model, config,
                                  EngineConfig(), workers=1,
                                  max_respawns=0,
                                  fault_plan=plan) as pool:
            pool.submit(0, frame, ensure_rng(0).bit_generator.state)
            with pytest.raises(WorkerPoolError,
                               match="respawn_budget_exhausted"):
                pool.collect(1)
            assert pool._ring.in_flight == 0
            assert pool.stats["tickets_reclaimed"] >= 1
            # The broken pool refuses new work, typed.
            with pytest.raises(WorkerPoolError):
                pool.submit(1, frame,
                            ensure_rng(0).bit_generator.state)

    def test_fork_unavailable_degrades_inline(self, tiny_system):
        """The chaos fork-unavailable context: a sharded scheduler
        warns and serves inline, results unchanged."""
        config = tiny_system.pipeline_config()
        episodes = _episodes(tiny_system, num=1, frames=1)
        expected = EpisodeScheduler(tiny_system.model, config).run(
            episodes)
        with fork_unavailable():
            with EpisodeScheduler(
                    tiny_system.model, config,
                    engine=EngineConfig(workers=2)) as sched:
                assert sched.effective_workers == 1
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    got = sched.run(episodes)
        _assert_episodes_equal(got, expected)


class TestDeadlines:
    def test_hung_task_killed_and_typed_at_collect_deadline(
            self, tiny_system):
        """A hung worker is identified via its current-task slot,
        killed, and replaced; the task fails typed — and the pool
        keeps serving afterwards."""
        config = tiny_system.pipeline_config()
        frame = tiny_system.test_samples[0].image
        expected = LandingPipeline(tiny_system.model, config,
                                   rng=0).run(frame)
        plan = FaultPlan.hang_task(worker=0, at_task=0, hang_s=8.0)
        with PersistentWorkerPool(tiny_system.model, config,
                                  EngineConfig(), workers=1,
                                  max_respawns=2,
                                  fault_plan=plan) as pool:
            state = ensure_rng(0).bit_generator.state
            pool.submit(0, frame, state)
            start = time.monotonic()
            with pytest.raises(CheckTimedOut) as excinfo:
                pool.collect(1, deadline_s=0.3)
            assert time.monotonic() - start < 5.0
            assert excinfo.value.scope == "task"
            assert pool.stats["tasks_timed_out"] == 1
            assert pool.stats["respawns"] == 1
            assert pool._ring.in_flight == 0
            # The respawned worker (incarnation 1: no fault) serves.
            pool.submit(1, frame, ensure_rng(0).bit_generator.state)
            ((index, result, _, _),) = pool.collect(1, deadline_s=5.0)
            assert index == 1
            _assert_results_equal(result, expected)

    def test_broker_zone_deadline_is_conservative_reject(
            self, tiny_system):
        """A zone check that misses its deadline fails SAFE: the typed
        exception carries a reject verdict, never an accept."""
        config = tiny_system.pipeline_config()
        frame = tiny_system.test_samples[0].image
        box = Box(2, 2, 10, 10)

        async def scenario():
            serve = ServeConfig(deadline_ms=200.0,
                                admission_window_ms=0.0)
            async with ServeBroker(tiny_system.model, config=config,
                                   serve=serve) as broker:
                original = broker.scheduler.check_zones_wave

                def wedged(items):
                    time.sleep(0.8)
                    return original(items)

                broker.scheduler.check_zones_wave = wedged
                with pytest.raises(CheckTimedOut) as excinfo:
                    await broker.check_zone(frame, box)
            return excinfo.value, broker.stats

        exc, stats = asyncio.run(scenario())
        assert exc.verdict is not None
        assert exc.verdict.accepted is False
        assert exc.verdict.unsafe_fraction == 1.0
        assert exc.verdict.num_samples == 0  # a refusal, not a sample
        assert stats["timed_out"] == 1
        assert stats["zone_checks"] == 0
        assert stats["admitted"] == 1  # ledger: admitted == timed out

    def test_broker_episode_deadline_typed_through_pool(
            self, tiny_system):
        """deadline_ms threads broker -> engine -> pool: a hang in a
        worker resolves the client typed, the hung worker is killed."""
        config = tiny_system.pipeline_config()
        frame = tiny_system.test_samples[0].image

        async def scenario():
            serve = ServeConfig(workers=2, deadline_ms=300.0,
                                admission_window_ms=0.0)
            broker = ServeBroker(tiny_system.model, config=config,
                                 serve=serve)
            assert broker.scheduler.engine.deadline_ms == 300.0
            # Both workers hang so the wave times out deterministically
            # whichever worker picks the task.
            arm(broker, FaultPlan(specs=(
                FaultSpec("hang_task", worker=0, at_task=0,
                          hang_s=8.0),
                FaultSpec("hang_task", worker=1, at_task=0,
                          hang_s=8.0))))
            async with broker:
                with pytest.raises(CheckTimedOut):
                    await broker.run_episode([frame], seed=0)
            return broker.stats

        stats = asyncio.run(scenario())
        assert stats["timed_out"] == 1
        assert stats["pool_faults"] == 1
        assert stats["admitted"] == 1


class TestCorruptTicket:
    def test_torn_ticket_is_typed_and_leak_free(self, tiny_system):
        """A corrupted shared-memory handoff fails the task typed; the
        real ticket is reclaimed and the pool keeps serving."""
        config = tiny_system.pipeline_config()
        frame = tiny_system.test_samples[0].image
        expected = LandingPipeline(tiny_system.model, config,
                                   rng=0).run(frame)
        plan = FaultPlan.corrupt_ticket(at_submit=0)
        with PersistentWorkerPool(tiny_system.model, config,
                                  EngineConfig(), workers=1,
                                  fault_plan=plan) as pool:
            pool.submit(0, frame, ensure_rng(0).bit_generator.state)
            with pytest.raises(RuntimeError, match="failed in worker"):
                pool.collect(1)
            assert pool._ring.in_flight == 0  # no leaked slot
            assert pool.stats["worker_deaths"] == 0  # worker survived
            pool.submit(1, frame, ensure_rng(0).bit_generator.state)
            ((_, result, _, _),) = pool.collect(1)
            _assert_results_equal(result, expected)


class TestDegradedMode:
    def test_pool_fault_served_inline_then_breaker_opens(
            self, tiny_system):
        """A wave that loses its pool is re-run on the bit-identical
        inline path (degraded, not dropped); after breaker_threshold
        consecutive faults the pool path is bypassed entirely."""
        config = tiny_system.pipeline_config()
        frame = tiny_system.test_samples[0].image
        reference = EpisodeScheduler(tiny_system.model, config).run(
            [_request(frame, seed) for seed in (0, 1)])

        async def scenario():
            serve = ServeConfig(workers=2, breaker_threshold=1,
                                admission_window_ms=0.0)
            broker = ServeBroker(tiny_system.model, config=config,
                                 engine=EngineConfig(max_respawns=0),
                                 serve=serve)
            # Arm both workers so the kill lands whichever one picks
            # the wave's task.
            arm(broker, FaultPlan(specs=(
                FaultSpec("kill_worker", worker=0, at_task=0),
                FaultSpec("kill_worker", worker=1, at_task=0))))
            async with broker:
                first = await broker.run_episode([frame, frame],
                                                 seed=0)
                state_after_fault = broker.breaker_state
                second = await broker.run_episode([frame, frame],
                                                  seed=1)
            return first, second, state_after_fault, broker.stats

        first, second, state_after_fault, stats = asyncio.run(
            scenario())
        assert state_after_fault == "open"
        assert stats["pool_faults"] >= 1
        assert stats["degraded_waves"] >= 2  # faulted wave + open wave
        assert stats["breaker_opens"] == 1
        assert stats["worker_deaths"] >= 1
        # Ledger: everything admitted was served, nothing dropped.
        assert stats["admitted"] == stats["episode_steps"] == 2
        _assert_episodes_equal([first, second], reference)

    def test_half_open_probe_recovers_pool_path(self, tiny_system):
        """After the cooldown, one probe re-forks a fresh pool and a
        success closes the breaker."""
        config = tiny_system.pipeline_config()
        frame = tiny_system.test_samples[0].image

        async def scenario():
            serve = ServeConfig(workers=2, breaker_threshold=1,
                                breaker_cooldown_s=0.2,
                                admission_window_ms=0.0)
            broker = ServeBroker(tiny_system.model, config=config,
                                 engine=EngineConfig(max_respawns=0),
                                 serve=serve)
            arm(broker, FaultPlan(specs=(
                FaultSpec("kill_worker", worker=0, at_task=0),
                FaultSpec("kill_worker", worker=1, at_task=0))))
            async with broker:
                await broker.run_episode([frame], seed=0)  # fault
                opened = broker.breaker_state
                arm(broker, None)  # the "outage" ends
                await asyncio.sleep(0.25)  # cooldown elapses
                await broker.run_episode([frame], seed=1)  # probe
                closed = broker.breaker_state
            return opened, closed, broker.stats

        opened, closed, stats = asyncio.run(scenario())
        assert opened == "open"
        assert closed == "closed"
        assert stats["pool_faults"] == 1
        assert stats["admitted"] == stats["episode_steps"] == 2

    def test_fault_storm_ledger_and_bitparity(self, tiny_system):
        """Sustained kills from a seeded storm plan: every admitted
        episode step is served, bit-for-bit, zero silent drops."""
        config = tiny_system.pipeline_config()
        frame = tiny_system.test_samples[0].image
        seeds = list(range(4))
        reference = EpisodeScheduler(tiny_system.model, config).run(
            [_request(frame, seed) for seed in seeds])

        async def scenario():
            serve = ServeConfig(workers=2, admission_window_ms=5.0)
            broker = ServeBroker(tiny_system.model, config=config,
                                 engine=EngineConfig(max_respawns=8),
                                 serve=serve)
            arm(broker, FaultPlan.storm(seed=0, workers=2, kills=2,
                                        tasks_per_worker=2))
            async with broker:
                out = await asyncio.gather(
                    *(broker.run_episode([frame, frame], seed=seed)
                      for seed in seeds))
            return out, broker.stats

        out, stats = asyncio.run(scenario())
        assert stats["admitted"] == stats["episode_steps"] == len(seeds)
        assert stats["timed_out"] == 0
        _assert_episodes_equal(out, reference)


def _request(frame, seed):
    from repro.core.engine import EpisodeRequest

    return EpisodeRequest(frames=(frame, frame), seed=seed,
                          name=f"ep{seed}")


class TestCloseEscalation:
    def test_close_kills_uninterruptible_worker(self, tiny_system):
        """A worker ignoring SIGTERM cannot wedge close(): the ladder
        escalates join -> terminate -> kill within bounded time."""
        config = tiny_system.pipeline_config()
        frame = tiny_system.test_samples[0].image
        plan = FaultPlan.hang_task(worker=0, at_task=0, hang_s=30.0,
                                   uninterruptible=True)
        pool = PersistentWorkerPool(tiny_system.model, config,
                                    EngineConfig(), workers=1,
                                    fault_plan=plan,
                                    join_timeout_s=0.2)
        pool.submit(0, frame, ensure_rng(0).bit_generator.state)
        assert pool._assigned[0] == 0  # dispatched immediately
        # Give the worker time to enter the hang (and install its
        # SIGTERM ignore); if it has not yet, terminate() wins at the
        # first rung and close() is bounded either way.
        time.sleep(0.5)
        start = time.monotonic()
        pool.close()
        elapsed = time.monotonic() - start
        assert elapsed < 5.0  # bounded, not hang_s
        assert all(not p.is_alive() for p in pool._procs)
        assert pool.stats["tickets_reclaimed"] == 1
