"""Tests for the shared utilities (rng, geometry, imageops, selection)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    Box,
    clamp,
    disk_mask,
    distance,
    ensure_rng,
    footprint_box,
    resize_labels,
    resize_nearest,
    smooth_noise,
    spawn,
    to_chw,
    to_hwc,
    write_pgm,
    write_ppm,
)
from repro.utils.rng import derive_seed
from repro.utils.selection import greedy_peak_boxes


class TestRng:
    def test_ensure_rng_from_int_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, 10)
        b = ensure_rng(42).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_ensure_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_ensure_rng_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_require_seed_forbids_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_REQUIRE_SEED", "1")
        with pytest.raises(RuntimeError, match="REPRO_REQUIRE_SEED"):
            ensure_rng(None)

    def test_require_seed_allows_explicit_seeding(self, monkeypatch):
        monkeypatch.setenv("REPRO_REQUIRE_SEED", "1")
        gen = np.random.default_rng(7)
        assert ensure_rng(gen) is gen
        a = ensure_rng(42).integers(0, 1000, 10)
        b = ensure_rng(42).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_require_seed_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_REQUIRE_SEED", raising=False)
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_children_independent(self):
        children = spawn(ensure_rng(0), 3)
        draws = [c.integers(0, 10**9) for c in children]
        assert len(set(draws)) == 3

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)
        assert derive_seed(1, 2, 3) != derive_seed(1, 3, 2)
        assert 0 <= derive_seed(1, 2, 3) < 2**63 - 1


class TestGeometry:
    def test_clamp(self):
        assert clamp(5, 0, 3) == 3
        assert clamp(-1, 0, 3) == 0
        with pytest.raises(ValueError):
            clamp(1, 3, 0)

    def test_distance(self):
        assert distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_box_center_roundtrip(self):
        box = Box.from_center(10, 20, 6, 8)
        assert box.center == (10.0, 20.0)

    def test_box_contains(self):
        box = Box(2, 3, 4, 5)
        assert box.contains(2, 3)
        assert not box.contains(6, 3)  # half-open

    def test_box_intersection_and_iou(self):
        a = Box(0, 0, 4, 4)
        b = Box(2, 2, 4, 4)
        inter = a.intersect(b)
        assert inter.area == 4
        assert a.iou(b) == pytest.approx(4 / 28)

    def test_disjoint_iou_zero(self):
        assert Box(0, 0, 2, 2).iou(Box(10, 10, 2, 2)) == 0.0

    def test_clip_to(self):
        box = Box(-2, -3, 10, 10).clip_to(5, 6)
        assert (box.row, box.col, box.height, box.width) == (0, 0, 5, 6)

    def test_expand(self):
        box = Box(5, 5, 2, 2).expand(1)
        assert (box.row, box.col, box.height, box.width) == (4, 4, 4, 4)

    def test_extract_matches_slices(self, rng):
        arr = rng.normal(size=(3, 10, 12))
        box = Box(2, 3, 4, 5)
        np.testing.assert_array_equal(box.extract(arr),
                                      arr[:, 2:6, 3:8])

    def test_negative_extent_raises(self):
        with pytest.raises(ValueError):
            Box(0, 0, -1, 2)

    def test_disk_mask_area(self):
        mask = disk_mask((50, 50), (25, 25), 10)
        assert mask.sum() == pytest.approx(np.pi * 100, rel=0.05)

    def test_footprint_box_clipped(self):
        box = footprint_box(1, 1, 5, 20, 20)
        assert box.row == 0 and box.col == 0

    @given(st.integers(0, 20), st.integers(0, 20),
           st.integers(0, 10), st.integers(0, 10))
    @settings(max_examples=50, deadline=None)
    def test_iou_symmetric(self, r, c, h, w):
        a = Box(r, c, h, w)
        b = Box(5, 5, 6, 6)
        assert a.iou(b) == pytest.approx(b.iou(a))

    @given(st.integers(-5, 25), st.integers(-5, 25),
           st.integers(0, 12), st.integers(0, 12))
    @settings(max_examples=50, deadline=None)
    def test_clip_inside_bounds(self, r, c, h, w):
        box = Box(r, c, h, w).clip_to(20, 20)
        assert 0 <= box.row <= box.bottom <= 20
        assert 0 <= box.col <= box.right <= 20


class TestImageOps:
    def test_chw_hwc_roundtrip(self, rng):
        img = rng.random((3, 4, 5)).astype(np.float32)
        np.testing.assert_array_equal(to_chw(to_hwc(img)), img)

    def test_resize_nearest_identity(self, rng):
        img = rng.random((3, 6, 8))
        np.testing.assert_array_equal(resize_nearest(img, 6, 8), img)

    def test_resize_labels_preserves_classes(self, rng):
        labels = rng.integers(0, 8, size=(16, 16))
        out = resize_labels(labels, 7, 9)
        assert set(np.unique(out)) <= set(np.unique(labels))

    def test_smooth_noise_bounded(self, rng):
        field = smooth_noise((32, 32), rng, scale=8, amplitude=0.5)
        assert field.shape == (32, 32)
        assert np.abs(field).max() <= 0.5 + 1e-9

    def test_write_ppm_pgm(self, tmp_path, rng):
        img = rng.random((3, 4, 5)).astype(np.float32)
        ppm = tmp_path / "x.ppm"
        write_ppm(ppm, img)
        data = ppm.read_bytes()
        assert data.startswith(b"P6\n5 4\n255\n")
        assert len(data) == len(b"P6\n5 4\n255\n") + 4 * 5 * 3
        pgm = tmp_path / "x.pgm"
        write_pgm(pgm, img[0])
        assert pgm.read_bytes().startswith(b"P5\n5 4\n255\n")

    def test_write_ppm_wrong_shape(self, rng):
        with pytest.raises(ValueError):
            write_ppm("/tmp/never.ppm", rng.random((4, 4)))


class TestGreedyPeakBoxes:
    def test_picks_global_peak_first(self):
        score = np.zeros((20, 20))
        score[10, 10] = 5.0
        score[4, 4] = 3.0
        boxes = greedy_peak_boxes(score, 4, 3)
        assert boxes[0][0].contains(10, 10)
        assert boxes[0][1] == 5.0

    def test_suppression_prevents_overlap(self):
        score = np.ones((30, 30))
        boxes = greedy_peak_boxes(score, 6, 5)
        for i, (a, _) in enumerate(boxes):
            for b, _ in boxes[i + 1:]:
                assert a.iou(b) == 0.0

    def test_border_margin_respected(self):
        score = np.zeros((20, 20))
        score[0, 0] = 10.0  # peak at corner must be excluded
        score[10, 10] = 1.0
        boxes = greedy_peak_boxes(score, 4, 1, border_margin=2)
        assert boxes[0][0].contains(10, 10)

    def test_neg_inf_never_selected(self):
        score = np.full((20, 20), -np.inf)
        assert greedy_peak_boxes(score, 4, 3) == []

    def test_too_small_map_returns_empty(self):
        assert greedy_peak_boxes(np.ones((4, 4)), 10, 1) == []

    def test_scores_sorted_descending(self, rng):
        score = rng.random((40, 40))
        boxes = greedy_peak_boxes(score, 4, 5)
        scores = [s for _, s in boxes]
        assert scores == sorted(scores, reverse=True)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            greedy_peak_boxes(np.ones((10, 10)), 0, 1)
        with pytest.raises(ValueError):
            greedy_peak_boxes(np.ones((10, 10)), 2, 0)
        with pytest.raises(ValueError):
            greedy_peak_boxes(np.ones(10), 2, 1)
