"""Tests for the scenario registry (specs, presets, campaigns)."""

import numpy as np
import pytest

from repro.dataset.conditions import DAY, SUNSET
from repro.scenarios import (
    FAILURE_SCENARIOS,
    NAV_COMM_LOSS,
    NIGHT_FOG,
    OOD_SCENARIOS,
    FailureProfile,
    ScenarioSpec,
    campaign_inputs,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_scenario_campaign,
    scenario_names,
    scenario_sweep,
)
from repro.uav.failures import FailureType


class TestRegistry:
    def test_presets_registered(self):
        names = scenario_names()
        for expected in ("day_nominal", "sunset_ood", "night_fog",
                         "motor_failure_descent",
                         "nav_comm_loss_delivery"):
            assert expected in names

    def test_get_unknown_raises_with_known_names(self):
        with pytest.raises(KeyError, match="day_nominal"):
            get_scenario("no_such_scenario")

    def test_sweep_resolves_in_order(self):
        specs = scenario_sweep("sunset_ood", "day_nominal")
        assert [s.name for s in specs] == ["sunset_ood", "day_nominal"]

    def test_tag_filtering(self):
        ood = list_scenarios(tag="ood")
        assert {s.name for s in OOD_SCENARIOS} <= {s.name for s in ood}
        assert all("ood" in s.tags for s in ood)

    def test_duplicate_registration_rejected(self):
        spec = get_scenario("day_nominal")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(spec)
        # ... unless explicitly overwritten (idempotent re-register).
        assert register_scenario(spec, overwrite=True) is spec

    def test_failure_presets_wired(self):
        assert get_scenario("nav_comm_loss_delivery").failure \
            == NAV_COMM_LOSS
        assert get_scenario("day_nominal").failure is None
        assert get_scenario("night_fog").conditions == NIGHT_FOG


class TestFailureProfile:
    def test_staggered_events(self):
        profile = FailureProfile(
            failure=FailureType.NAVIGATION_AND_COMM_LOSS,
            time_s=4.0, stagger_s=1.0, stagger_cycle=3)
        times = [e.time_s for e in profile.events(5)]
        assert times == [4.0, 5.0, 6.0, 4.0, 5.0]
        assert all(e.failure is FailureType.NAVIGATION_AND_COMM_LOSS
                   for e in profile.events(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureProfile(failure=FailureType.MOTOR_FAILURE,
                           time_s=-1.0)
        with pytest.raises(ValueError):
            FailureProfile(failure=FailureType.MOTOR_FAILURE,
                           stagger_cycle=0)


class TestScenarioSpec:
    def test_frame_stream_deterministic(self):
        spec = get_scenario("sunset_ood").with_camera((48, 64))
        a = spec.frame_stream(index=1, num_frames=3)
        b = spec.frame_stream(index=1, num_frames=3)
        assert len(a) == 3
        assert all(np.array_equal(x.image, y.image)
                   and np.array_equal(x.labels, y.labels)
                   for x, y in zip(a, b))
        assert all(s.condition == "sunset" for s in a)
        assert a[0].image.shape == (3, 48, 64)

    def test_frame_stream_drifts_with_wind(self):
        spec = get_scenario("day_nominal").with_camera((48, 64))
        stream = spec.frame_stream(index=0, num_frames=3)
        centers = [s.center for s in stream]
        assert centers[0] != centers[1]  # the camera moved

    def test_episodes_differ_by_index(self):
        spec = get_scenario("day_nominal").with_camera((48, 64))
        a = spec.frame_stream(index=0, num_frames=1)[0]
        b = spec.frame_stream(index=1, num_frames=1)[0]
        assert not np.array_equal(a.image, b.image)
        assert spec.episode_seed(0) != spec.episode_seed(1)

    def test_episode_request_matches_stream(self):
        spec = get_scenario("fog_ood").with_camera((48, 64))
        request = spec.episode_request(index=0, num_frames=2)
        stream = spec.frame_stream(index=0, num_frames=2)
        assert request.name == "fog_ood#0"
        assert len(request.frames) == 2
        assert all(np.array_equal(f, s.image)
                   for f, s in zip(request.frames, stream))

    def test_with_camera_and_failure_derivations(self):
        spec = get_scenario("day_nominal")
        small = spec.with_camera((48, 64), 2.0)
        assert small.camera_shape_px == (48, 64)
        assert small.camera_gsd_m == 2.0
        failed = spec.with_failure(NAV_COMM_LOSS)
        assert failed.failure is NAV_COMM_LOSS
        assert spec.failure is None  # original untouched

    def test_mission_config_carries_scenario(self):
        spec = get_scenario("sunset_nav_loss")
        config = spec.mission_config(max_time_s=120.0)
        assert config.conditions == SUNSET
        assert config.camera_shape_px == spec.camera_shape_px
        assert config.max_time_s == 120.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", num_frames=0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", wind_speed_ms=-1.0)


class TestCampaigns:
    def test_campaign_inputs_shapes(self):
        scenes, failures, config = campaign_inputs(
            "nav_comm_loss_delivery", 4, scene_seed_base=100)
        assert len(scenes) == len(failures) == 4
        assert failures[0].time_s == 4.0 and failures[1].time_s == 5.0
        assert config.conditions == DAY

    def test_uneventful_scenario_has_no_failures(self):
        _, failures, _ = campaign_inputs("day_nominal", 3)
        assert failures == [None, None, None]

    def test_run_scenario_campaign_deterministic(self):
        a = run_scenario_campaign("nav_comm_loss_delivery", 3,
                                  el_policy=None, seed=7)
        b = run_scenario_campaign("nav_comm_loss_delivery", 3,
                                  el_policy=None, seed=7)
        assert a.num_missions == b.num_missions == 3
        assert a.severity_counts == b.severity_counts
        assert a.maneuver_counts == b.maneuver_counts

    def test_failure_scenarios_reach_terminal_outcomes(self):
        for spec in FAILURE_SCENARIOS:
            stats = run_scenario_campaign(spec, 2, el_policy=None,
                                          seed=3)
            assert stats.num_missions == 2
