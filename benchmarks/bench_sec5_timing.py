"""SEC5-TIMING bench: sub-image vs full-frame Bayesian monitoring cost.

Paper artefact (Sec. V-B): on a Quadro P5000, a 10-sample Bayesian pass
verifies a 1024x1024 crop in < 5 s while the full 3840x2160 frame takes
over a minute — the rationale for the Fig. 2 architecture where the
monitor only sees pre-selected sub-images.

Our frames are proportionally smaller (96x128 at 1 m/px); the claim is
architectural, so the expectations are ratios, not absolute seconds:

* a zone-sized crop is many times cheaper than the full frame (pixel
  ratio ~8x here, ~8x in the paper's 1024^2 vs 3840x2160);
* the Bayesian pass cost grows monotonically — and, on the batched
  engine, *sub-linearly* — with the number of MC samples: the
  deterministic stem is computed once and only the stochastic suffix
  is tiled per sample (see ``bench_batched_inference.py``);
* the pipeline's reported timings separate ``monitoring_s`` (wall time
  inside per-zone Bayesian passes) from ``decision_s`` (decision-module
  bookkeeping), so the Sec. V-B budget can be attributed correctly.
"""

import numpy as np

from repro.eval.harness import timing_experiment
from repro.eval.reporting import format_table, format_title


def test_sec5_monitor_timing(benchmark, system, emit):
    full_h, full_w = system.config.dataset.image_shape
    crop = 32  # zone + context, the paper's "1024x1024 sub-image" analogue

    records = benchmark.pedantic(
        lambda: timing_experiment(
            system,
            crop_sizes=[(crop, crop), (full_h, full_w)],
            num_samples_list=[1, 5, 10],
            repeats=3),
        rounds=1, iterations=1)

    emit("\n" + format_title(
        "SEC5-TIMING: Bayesian monitoring cost (10-sample protocol)"))
    rows = [[f"{r['crop_h']}x{r['crop_w']}", r["num_samples"],
             round(r["mean_s"] * 1000, 2)] for r in records]
    emit(format_table(["crop", "MC samples", "mean time (ms)"], rows))

    def time_of(h, w, t):
        for r in records:
            if r["crop_h"] == h and r["crop_w"] == w and \
                    r["num_samples"] == t:
                return r["mean_s"]
        raise KeyError((h, w, t))

    crop_10 = time_of(crop, crop, 10)
    full_10 = time_of(full_h, full_w, 10)
    pixel_ratio = (full_h * full_w) / (crop * crop)
    emit(f"\nfull-frame / sub-image cost ratio at 10 samples: "
         f"{full_10 / crop_10:.1f}x (pixel ratio {pixel_ratio:.1f}x)")

    # Sub-image monitoring is several times cheaper than full frame —
    # the architectural claim behind Fig. 2.
    assert full_10 / crop_10 > pixel_ratio / 3
    # Cost grows monotonically in the MC sample count, and the batched
    # engine amortises the shared stem, so never worse than linearly.
    crop_1 = time_of(crop, crop, 1)
    crop_5 = time_of(crop, crop, 5)
    assert crop_1 <= crop_5 <= crop_10
    assert crop_10 <= 10 * crop_1 * 1.5  # generous noise margin

    # The pipeline's decision-loop timing is split: monitoring_s is the
    # per-zone Bayesian wall time, decision_s the loop bookkeeping.
    pipeline = system.make_pipeline(rng=0)
    result = pipeline.run(system.test_samples[0].image)
    emit("\npipeline episode timing split:")
    for key in ("segmentation_s", "selection_s", "monitoring_s",
                "decision_s"):
        emit(f"  {key}: {result.timings_s[key] * 1000:.2f} ms")
    assert {"segmentation_s", "selection_s", "monitoring_s",
            "decision_s"} <= set(result.timings_s)
    assert result.timings_s["decision_s"] >= 0.0
    if result.decision.attempts > 0:
        # At least one zone was checked, so monitor time was recorded
        # and the split keeps it out of the decision overhead.
        assert result.timings_s["monitoring_s"] > 0.0
