"""Rasterisation primitives for the procedural scene generator.

All functions draw *in place* into an integer label grid (row, col
indexing).  They are deliberately simple — bounding-box restricted
numpy index arithmetic — because scene generation must stay fast enough
to synthesise hundreds of scenes inside the test suite.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "draw_disk",
    "draw_rect",
    "draw_oriented_rect",
    "draw_thick_line",
    "oriented_rect_mask",
]


def _clip_bbox(shape: tuple[int, int], r0: float, c0: float, r1: float,
               c1: float) -> tuple[int, int, int, int] | None:
    """Integer bbox clipped to the grid; None when fully outside."""
    ri0 = max(0, int(math.floor(r0)))
    ci0 = max(0, int(math.floor(c0)))
    ri1 = min(shape[0], int(math.ceil(r1)) + 1)
    ci1 = min(shape[1], int(math.ceil(c1)) + 1)
    if ri0 >= ri1 or ci0 >= ci1:
        return None
    return ri0, ci0, ri1, ci1


def draw_disk(grid: np.ndarray, center: tuple[float, float], radius: float,
              value: int) -> int:
    """Fill a disk; returns the number of cells painted."""
    if radius <= 0:
        return 0
    r, c = center
    bbox = _clip_bbox(grid.shape, r - radius, c - radius,
                      r + radius, c + radius)
    if bbox is None:
        return 0
    ri0, ci0, ri1, ci1 = bbox
    rows = np.arange(ri0, ri1)[:, None]
    cols = np.arange(ci0, ci1)[None, :]
    mask = (rows - r) ** 2 + (cols - c) ** 2 <= radius ** 2
    grid[ri0:ri1, ci0:ci1][mask] = value
    return int(mask.sum())


def draw_rect(grid: np.ndarray, top: float, left: float, height: float,
              width: float, value: int) -> int:
    """Fill an axis-aligned rectangle; returns cells painted."""
    if height <= 0 or width <= 0:
        return 0
    bbox = _clip_bbox(grid.shape, top, left, top + height - 1,
                      left + width - 1)
    if bbox is None:
        return 0
    ri0, ci0, ri1, ci1 = bbox
    grid[ri0:ri1, ci0:ci1] = value
    return (ri1 - ri0) * (ci1 - ci0)


def oriented_rect_mask(shape: tuple[int, int], center: tuple[float, float],
                       length: float, width: float, heading_rad: float
                       ) -> tuple[np.ndarray, tuple[int, int]] | None:
    """Boolean mask of a rotated rectangle within its clipped bbox.

    Returns ``(mask, (row_offset, col_offset))`` or ``None`` when the
    rectangle lies fully outside the grid.  ``heading_rad`` is measured
    from the +col axis toward +row (standard image convention).
    """
    if length <= 0 or width <= 0:
        return None
    r, c = center
    half_diag = 0.5 * math.hypot(length, width)
    bbox = _clip_bbox(shape, r - half_diag, c - half_diag,
                      r + half_diag, c + half_diag)
    if bbox is None:
        return None
    ri0, ci0, ri1, ci1 = bbox
    rows = np.arange(ri0, ri1)[:, None] - r
    cols = np.arange(ci0, ci1)[None, :] - c
    cos_h, sin_h = math.cos(heading_rad), math.sin(heading_rad)
    # Coordinates in the rectangle frame (u along heading, v across).
    u = cols * cos_h + rows * sin_h
    v = -cols * sin_h + rows * cos_h
    mask = (np.abs(u) <= length / 2.0) & (np.abs(v) <= width / 2.0)
    return mask, (ri0, ci0)


def draw_oriented_rect(grid: np.ndarray, center: tuple[float, float],
                       length: float, width: float, heading_rad: float,
                       value: int) -> int:
    """Fill a rotated rectangle (e.g. a car footprint along a road)."""
    result = oriented_rect_mask(grid.shape, center, length, width,
                                heading_rad)
    if result is None:
        return 0
    mask, (ri0, ci0) = result
    region = grid[ri0:ri0 + mask.shape[0], ci0:ci0 + mask.shape[1]]
    region[mask] = value
    return int(mask.sum())


def draw_thick_line(grid: np.ndarray, start: tuple[float, float],
                    end: tuple[float, float], width: float,
                    value: int) -> int:
    """Fill all cells within ``width / 2`` of the segment start-end.

    Used to rasterise road edges.  Returns the number of cells painted.
    """
    if width <= 0:
        return 0
    (r0, c0), (r1, c1) = start, end
    half = width / 2.0
    bbox = _clip_bbox(grid.shape, min(r0, r1) - half, min(c0, c1) - half,
                      max(r0, r1) + half, max(c0, c1) + half)
    if bbox is None:
        return 0
    ri0, ci0, ri1, ci1 = bbox
    rows = np.arange(ri0, ri1, dtype=np.float64)[:, None]
    cols = np.arange(ci0, ci1, dtype=np.float64)[None, :]

    dr, dc = r1 - r0, c1 - c0
    seg_len_sq = dr * dr + dc * dc
    if seg_len_sq == 0:
        dist_sq = (rows - r0) ** 2 + (cols - c0) ** 2
    else:
        # Project each cell onto the segment, clamped to its extent.
        t = ((rows - r0) * dr + (cols - c0) * dc) / seg_len_sq
        t = np.clip(t, 0.0, 1.0)
        dist_sq = (rows - (r0 + t * dr)) ** 2 + (cols - (c0 + t * dc)) ** 2
    mask = dist_sq <= half * half
    grid[ri0:ri1, ci0:ci1][mask] = value
    return int(mask.sum())
