"""Capability state: which on-board/external services still work.

The Fig. 1 safety switch decides between Hovering, Return-to-Base,
Emergency Landing and Flight Termination based on *which capabilities
remain*: communication, navigation (global localisation), trajectory
control, propulsion, the camera (needed for EL) and energy reserves.
This module defines that state and its derived predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

__all__ = ["ServiceStatus", "CapabilityState", "NOMINAL_CAPABILITIES"]


class ServiceStatus(Enum):
    """Health of one service or function."""

    OK = "ok"
    DEGRADED = "degraded"
    TEMPORARILY_LOST = "temporarily_lost"
    LOST = "lost"

    @property
    def usable(self) -> bool:
        """True when the service can still be relied on right now."""
        return self in (ServiceStatus.OK, ServiceStatus.DEGRADED)


@dataclass(frozen=True)
class CapabilityState:
    """Snapshot of every capability the safety switch reasons about.

    Attributes
    ----------
    communication:
        C2 link and external services (paper: "external services",
        "communication services").
    navigation:
        Global localisation / route following (paper: "navigation
        capabilities (mainly localization)").
    flight_control:
        Local attitude/trajectory control (paper: "proper trajectory
        control").
    propulsion:
        Motors/ESCs; loss means no controlled flight at all.
    camera:
        The EL camera; without it a safe EL cannot be performed.
    energy_ok:
        Sufficient battery for the contemplated maneuver.
    """

    communication: ServiceStatus = ServiceStatus.OK
    navigation: ServiceStatus = ServiceStatus.OK
    flight_control: ServiceStatus = ServiceStatus.OK
    propulsion: ServiceStatus = ServiceStatus.OK
    camera: ServiceStatus = ServiceStatus.OK
    energy_ok: bool = True

    # ------------------------------------------------------------------
    # Predicates used by the safety switch (Fig. 1 rules)
    # ------------------------------------------------------------------
    def trajectory_controllable(self) -> bool:
        """Can the vehicle still fly a commanded local trajectory?"""
        return (self.flight_control.usable and self.propulsion.usable)

    def navigable(self) -> bool:
        """Can the vehicle still navigate a global route (e.g. home)?

        A *degraded* navigation solution still counts as navigable — the
        safety switch treats it as a temporary condition (Hover) and
        only escalates when the degradation persists or becomes a loss.
        """
        return (self.trajectory_controllable()
                and self.navigation.usable)

    def safe_el_possible(self) -> bool:
        """Can an autonomous emergency landing be attempted safely?"""
        return (self.trajectory_controllable()
                and self.camera.usable
                and self.energy_ok)

    def nominal(self) -> bool:
        """True when every service is fully OK."""
        return (self.communication is ServiceStatus.OK
                and self.navigation is ServiceStatus.OK
                and self.flight_control is ServiceStatus.OK
                and self.propulsion is ServiceStatus.OK
                and self.camera is ServiceStatus.OK
                and self.energy_ok)

    def degrade(self, **changes) -> "CapabilityState":
        """Return a copy with some services changed."""
        return replace(self, **changes)


#: The all-OK capability state.
NOMINAL_CAPABILITIES = CapabilityState()
