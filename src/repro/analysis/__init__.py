"""Static enforcement of the repro's certification contracts.

Every speedup this reproduction ships is sold on a contract —
bit-for-bit seeded equivalence (PRs 1-3), a pinned fp32 error envelope
(PR 4), zero Fig. 4 / safety-book flips (PRs 4-5).  Those contracts
are guarded at runtime by the test matrix, but a single stray
``np.random.seed``, a silent float64 promotion past the
``Module.__call__`` firewall, or a module-global cache mutated inside
a ``workers=N`` fork task can invalidate them in ways the seeded tests
may not sample.  This package is the diff-time gate: a self-contained
AST-based invariant linter (stdlib :mod:`ast` only, no third-party
dependencies) run by ``scripts/check.sh`` as its first stage::

    PYTHONPATH=src python -m repro.analysis --strict

Shipped rules (``python -m repro.analysis --list-rules``):

* **RNG discipline** (:mod:`repro.analysis.checkers.rng`) — no numpy
  legacy global-state RNG calls, no unseeded ``default_rng()`` outside
  :mod:`repro.utils.rng`.
* **fp32 firewall** (:mod:`repro.analysis.checkers.fp32`) — no
  float64-introducing patterns in the inference-path packages, with a
  documented allowlist for the deliberate float64 islands.
* **Engine-mode hygiene** (:mod:`repro.analysis.checkers.engine_mode`)
  — process-global engine state (``set_conv_engine``,
  ``REPRO_CONV_ENGINE``, ``REPRO_MONITOR_SHARED``) must always be
  restored; environment reads stay at their sanctioned sites.
* **Fork-pool purity** (:mod:`repro.analysis.checkers.fork_purity`) —
  functions dispatched to ``EpisodeScheduler``'s fork pool must not
  write module-level state.
* **Knob-surface drift** (:mod:`repro.analysis.checkers.knobs`) —
  every ``EngineConfig``/``MonitorConfig``/``DecisionConfig`` field is
  documented in its class docstring and the README.

False positives are silenced per line with ``# repro-lint:
disable=RULE`` (plus a one-line justification) or grandfathered via
the committed baseline file (``scripts/repro_lint_baseline.json``,
maintained with ``--update-baseline``).
"""

from __future__ import annotations

from repro.analysis.base import BaseChecker, CheckContext, Rule
from repro.analysis.findings import Finding
from repro.analysis.runner import (
    DEFAULT_PATHS,
    all_checkers,
    lint_source,
    lint_tree,
)

__all__ = [
    "BaseChecker",
    "CheckContext",
    "Rule",
    "Finding",
    "DEFAULT_PATHS",
    "all_checkers",
    "lint_source",
    "lint_tree",
]
