"""Mission <-> pipeline integration across the OOD scenario sweep.

The satellite contract of the scenario registry: a seeded mission
campaign whose EL policy is the *monitored* Fig. 2 pipeline must be
deterministic under every OOD preset, and the monitor's catch behaviour
(never accepting more busy-road zones than the unmonitored core) must
survive the condition sweep — ``SUNSET``, ``NIGHT``, ``FOG``, all
re-shot over the same geography via ``reshoot_under_condition``.
"""

import pytest

from repro.eval.harness import zone_acceptance_experiment
from repro.scenarios import NAV_COMM_LOSS, get_scenario, run_scenario_campaign

OOD_PRESETS = ("sunset_ood", "night_ood", "fog_ood")


def _el_campaign(tiny_system, spec, seed):
    """A small seeded campaign with a freshly seeded monitored policy.

    The policy pipeline is rebuilt per campaign so its monitor RNG
    stream restarts — the precondition for run-to-run determinism.
    """
    policy = tiny_system.make_pipeline(
        monitor_enabled=True, rng=0).as_mission_policy()
    return run_scenario_campaign(spec, 3, el_policy=policy, seed=seed)


@pytest.mark.parametrize("preset", OOD_PRESETS)
class TestOodMissionSweep:
    def test_campaign_outcomes_deterministic(self, tiny_system, preset):
        spec = get_scenario(preset).with_failure(NAV_COMM_LOSS) \
            .with_camera(tiny_system.config.dataset.image_shape,
                         tiny_system.config.dataset.gsd)
        a = _el_campaign(tiny_system, spec, seed=11)
        b = _el_campaign(tiny_system, spec, seed=11)
        assert a.num_missions == b.num_missions == 3
        assert a.severity_counts == b.severity_counts
        assert a.outcome_counts == b.outcome_counts
        assert a.maneuver_counts == b.maneuver_counts
        assert (a.el_attempts, a.el_aborts) == (b.el_attempts,
                                                b.el_aborts)

    def test_el_policy_exercised_under_ood(self, tiny_system, preset):
        spec = get_scenario(preset).with_failure(NAV_COMM_LOSS) \
            .with_camera(tiny_system.config.dataset.image_shape,
                         tiny_system.config.dataset.gsd)
        stats = _el_campaign(tiny_system, spec, seed=11)
        # nav+comm loss must reach the EL policy in every mission; the
        # OOD imagery may well make it abort (-> FT), which is the safe
        # behaviour, but it must have been consulted.
        assert stats.el_attempts == stats.num_missions

    def test_monitor_catch_survives_condition(self, tiny_system,
                                              preset):
        """Under each OOD shift the monitored pipeline never accepts
        more truly-unsafe (busy-road) zones than the unmonitored core,
        and aborts at least as often — the Fig. 4 catch behaviour."""
        samples = tiny_system.ood_samples(preset)
        monitored = zone_acceptance_experiment(
            tiny_system, samples, monitor_enabled=True, rng=0)
        unmonitored = zone_acceptance_experiment(
            tiny_system, samples, monitor_enabled=False, rng=0)
        assert monitored["road_unsafe_accepted"] <= \
            unmonitored["road_unsafe_accepted"]
        assert monitored["high_risk_accepted"] <= \
            unmonitored["high_risk_accepted"]
        assert monitored["aborted"] >= unmonitored["aborted"]
