"""Hybrid landing-zone selection: learned segmentation x public database.

The paper's conclusion names this as future work: "hybrid methods
combining learning-based techniques with using public databases could
be envisioned to improve emergency landing."  This module implements
that combination:

* the **database layer** contributes the static hazards it is good at
  (roads, buildings — surveyed once, always available, unaffected by
  lighting), and
* the **learned layer** contributes what only live perception can see
  (cars, pedestrians, changes since the survey).

The fused hazard mask is the union of both, so the hybrid selector is
conservative with respect to either source alone.  When the database is
georeferenced correctly this removes the learned model's worst OOD
failure mode (missing a road at sunset) without giving up dynamic-
hazard awareness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.core.landing_zone import (
    LandingZoneConfig,
    LandingZoneSelector,
    ZoneCandidate,
)
from repro.dataset.classes import UavidClass, class_mask
from repro.utils.selection import greedy_peak_boxes
from repro.utils.validation import check_label_map

__all__ = ["HybridConfig", "HybridLandingZoneSelector"]

#: Static classes a survey database knows about.
DATABASE_HAZARD_CLASSES = (UavidClass.ROAD, UavidClass.BUILDING)


@dataclass(frozen=True)
class HybridConfig:
    """Configuration of the hybrid selector.

    ``registration_error_px`` dilates the database hazards to absorb
    georeferencing error between the database map and the camera frame
    (a real-world concern the paper's database-driven related work
    shares).
    """

    selector: LandingZoneConfig = field(default_factory=LandingZoneConfig)
    registration_error_px: int = 1
    database_classes: tuple = DATABASE_HAZARD_CLASSES

    def __post_init__(self):
        if self.registration_error_px < 0:
            raise ValueError("registration_error_px must be >= 0")
        if not self.database_classes:
            raise ValueError("database_classes must not be empty")


class HybridLandingZoneSelector:
    """Zone selection from the union of learned and database hazards."""

    def __init__(self, config: HybridConfig | None = None):
        self.config = config or HybridConfig()
        self._learned = LandingZoneSelector(self.config.selector)

    # ------------------------------------------------------------------
    def database_hazard_mask(self, static_labels: np.ndarray) -> np.ndarray:
        """Hazards contributed by the (dilated) database layer."""
        check_label_map("static_labels", static_labels)
        mask = class_mask(static_labels, self.config.database_classes)
        if self.config.registration_error_px > 0 and mask.any():
            structure = ndimage.generate_binary_structure(2, 2)
            mask = ndimage.binary_dilation(
                mask, structure=structure,
                iterations=self.config.registration_error_px)
        return mask

    def fused_hazard_mask(self, predicted_labels: np.ndarray,
                          static_labels: np.ndarray) -> np.ndarray:
        """Union of learned hazards and database hazards."""
        learned = self._learned.unsafe_mask(predicted_labels)
        database = self.database_hazard_mask(static_labels)
        if learned.shape != database.shape:
            raise ValueError(
                f"prediction {learned.shape} and database "
                f"{database.shape} windows must align")
        return learned | database

    def propose(self, predicted_labels: np.ndarray,
                static_labels: np.ndarray) -> list[ZoneCandidate]:
        """Clearance-ranked candidates from the fused hazard mask."""
        cfg = self.config.selector
        fused = self.fused_hazard_mask(predicted_labels, static_labels)
        if fused.all():
            return []
        if fused.any():
            clearance = ndimage.distance_transform_edt(~fused) * cfg.gsd_m
        else:
            bound = max(fused.shape) * cfg.gsd_m
            clearance = np.full(fused.shape, bound)
        pairs = greedy_peak_boxes(clearance, cfg.zone_size_px,
                                  cfg.max_candidates,
                                  border_margin=cfg.border_margin_px)
        half_diag_m = (cfg.zone_size_px / 2.0) * np.sqrt(2.0) * cfg.gsd_m
        required = max(cfg.required_clearance_m(), half_diag_m)
        return [ZoneCandidate(box=box, clearance_m=score,
                              required_clearance_m=required, rank=i)
                for i, (box, score) in enumerate(pairs)]

    def viable_candidates(self, predicted_labels: np.ndarray,
                          static_labels: np.ndarray
                          ) -> list[ZoneCandidate]:
        """Only candidates whose clearance covers the drift buffer."""
        return [c for c in self.propose(predicted_labels, static_labels)
                if c.meets_buffer()]
