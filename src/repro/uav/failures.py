"""Failure taxonomy and injection, after Belcastro et al. (2017).

The paper grounds its hazard analysis in Belcastro's study of civilian
UAV accidents, which distils fourteen hazard categories (loss of
control, fly-away, lost communication, ...).  This module encodes the
categories relevant to the ground-risk case, maps each failure to its
effect on the vehicle's :class:`CapabilityState`, and provides a
stochastic injector for Monte-Carlo mission campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.uav.capability import CapabilityState, ServiceStatus
from repro.utils.rng import ensure_rng

__all__ = [
    "FailureType",
    "FailureEvent",
    "apply_failure",
    "FailureInjector",
    "BELCASTRO_CATEGORY",
]


class FailureType(Enum):
    """Failure modes injected into missions."""

    GPS_LOSS = "gps_loss"
    GPS_DEGRADED = "gps_degraded"
    COMM_LOSS_TEMPORARY = "comm_loss_temporary"
    COMM_LOSS_PERMANENT = "comm_loss_permanent"
    NAVIGATION_AND_COMM_LOSS = "navigation_and_comm_loss"
    MOTOR_FAILURE = "motor_failure"
    FLIGHT_CONTROL_LOSS = "flight_control_loss"
    BATTERY_CRITICAL = "battery_critical"
    CAMERA_FAILURE = "camera_failure"
    AVIONICS_DEGRADED = "avionics_degraded"


#: Mapping to the Belcastro et al. hazard categories cited by the paper.
BELCASTRO_CATEGORY = {
    FailureType.GPS_LOSS: "loss of navigation",
    FailureType.GPS_DEGRADED: "degraded navigation",
    FailureType.COMM_LOSS_TEMPORARY: "lost communication",
    FailureType.COMM_LOSS_PERMANENT: "lost communication",
    FailureType.NAVIGATION_AND_COMM_LOSS: "fly-away precursor",
    FailureType.MOTOR_FAILURE: "loss of control (propulsion)",
    FailureType.FLIGHT_CONTROL_LOSS: "loss of control",
    FailureType.BATTERY_CRITICAL: "fuel/energy depletion",
    FailureType.CAMERA_FAILURE: "payload/sensor failure",
    FailureType.AVIONICS_DEGRADED: "system/component failure",
}


@dataclass(frozen=True)
class FailureEvent:
    """A failure occurring at a given mission time."""

    failure: FailureType
    time_s: float

    def __post_init__(self):
        if self.time_s < 0:
            raise ValueError("failure time must be non-negative")


def apply_failure(capabilities: CapabilityState,
                  failure: FailureType) -> CapabilityState:
    """Capability state after ``failure`` strikes.

    Effects compose: applying several failures in sequence accumulates
    their degradations (a service never spontaneously heals here; the
    recovery of temporary losses is handled by the safety switch timer).
    """
    f = FailureType(failure)
    if f is FailureType.GPS_LOSS:
        return capabilities.degrade(navigation=ServiceStatus.LOST)
    if f is FailureType.GPS_DEGRADED:
        return capabilities.degrade(navigation=ServiceStatus.DEGRADED)
    if f is FailureType.COMM_LOSS_TEMPORARY:
        return capabilities.degrade(
            communication=ServiceStatus.TEMPORARILY_LOST)
    if f is FailureType.COMM_LOSS_PERMANENT:
        return capabilities.degrade(communication=ServiceStatus.LOST)
    if f is FailureType.NAVIGATION_AND_COMM_LOSS:
        # The paper's canonical EL trigger: "loss of navigation
        # capabilities still allowing proper trajectory control (mainly
        # localization and communication loss)".
        return capabilities.degrade(navigation=ServiceStatus.LOST,
                                    communication=ServiceStatus.LOST)
    if f is FailureType.MOTOR_FAILURE:
        return capabilities.degrade(propulsion=ServiceStatus.LOST)
    if f is FailureType.FLIGHT_CONTROL_LOSS:
        return capabilities.degrade(flight_control=ServiceStatus.LOST)
    if f is FailureType.BATTERY_CRITICAL:
        return capabilities.degrade(energy_ok=False)
    if f is FailureType.CAMERA_FAILURE:
        return capabilities.degrade(camera=ServiceStatus.LOST)
    if f is FailureType.AVIONICS_DEGRADED:
        return capabilities.degrade(flight_control=ServiceStatus.DEGRADED)
    raise ValueError(f"unhandled failure type {failure!r}")


class FailureInjector:
    """Samples failure events for Monte-Carlo mission campaigns."""

    def __init__(self, failure_weights: dict[FailureType, float] | None = None,
                 rng=None):
        """``failure_weights`` are relative occurrence rates; default is
        uniform over all failure types."""
        weights = (failure_weights if failure_weights is not None
                   else {f: 1.0 for f in FailureType})
        if not weights:
            raise ValueError("failure_weights must not be empty")
        for f, w in weights.items():
            if w < 0:
                raise ValueError(f"negative weight for {f}")
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("at least one weight must be positive")
        self._types = list(weights.keys())
        self._probs = [weights[f] / total for f in self._types]
        self.rng = ensure_rng(rng)

    def sample(self, mission_duration_s: float) -> FailureEvent:
        """Draw one failure uniformly in time over the mission."""
        if mission_duration_s <= 0:
            raise ValueError("mission duration must be positive")
        idx = self.rng.choice(len(self._types), p=self._probs)
        time_s = float(self.rng.uniform(0.0, mission_duration_s))
        return FailureEvent(failure=self._types[int(idx)], time_s=time_s)
