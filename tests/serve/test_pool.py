"""Persistent worker pool + shared-memory ring: lifecycle and parity.

The regression targets from the fork-per-call pool this replaced:
a module-global model reference that survived runs, no deterministic
close/join, and monitor stats silently lost in the workers.
"""

import copy
import gc
import warnings
import weakref

import numpy as np
import pytest

from repro.core import EngineConfig, EpisodeScheduler, LandingPipeline
from repro.serve import (
    FrameRing,
    PersistentWorkerPool,
    attach_frame,
    fork_available,
)
from repro.serve.shm import detach_frame
from repro.scenarios import scenario_sweep
from repro.utils.rng import ensure_rng

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="persistent pool requires fork")


def _episodes(system, num=1, frames=2):
    return [
        spec.with_camera(system.config.dataset.image_shape)
        .episode_request(i, num_frames=frames)
        for spec in scenario_sweep("day_nominal", "sunset_ood")
        for i in range(num)
    ]


def _assert_results_equal(a, b):
    assert np.array_equal(a.predicted_labels, b.predicted_labels)
    assert a.decision.action is b.decision.action
    assert len(a.verdicts) == len(b.verdicts)
    for va, vb in zip(a.verdicts, b.verdicts):
        assert va.accepted == vb.accepted
        assert np.array_equal(va.distribution.mean, vb.distribution.mean)
        assert np.array_equal(va.distribution.std, vb.distribution.std)


class TestFrameRing:
    def test_slot_round_trip(self):
        frame = np.arange(2 * 4 * 5, dtype=np.float32).reshape(2, 4, 5)
        cache = {}
        with FrameRing(slots=2, slot_bytes=frame.nbytes) as ring:
            ticket = ring.put(frame)
            assert not ticket.dedicated
            view = attach_frame(ticket, cache)
            assert np.array_equal(view, frame)
            assert not view.flags.writeable
            del view
            ring.release(ticket)
            assert ring.in_flight == 0
            for handle in cache.values():
                handle.close()

    def test_overflow_and_oversize_use_dedicated_segments(self):
        small = np.ones((1, 2, 2), dtype=np.float32)
        big = np.arange(3 * 8 * 8, dtype=np.float32).reshape(3, 8, 8)
        cache = {}
        with FrameRing(slots=1, slot_bytes=small.nbytes) as ring:
            first = ring.put(small)       # takes the only slot
            second = ring.put(small)      # slot exhaustion -> dedicated
            third = ring.put(big)         # oversized -> dedicated
            assert not first.dedicated
            assert second.dedicated and third.dedicated
            assert ring.overflow_puts == 2
            for ticket, frame in ((second, small), (third, big)):
                view = attach_frame(ticket, cache)
                assert np.array_equal(view, frame)
                del view
                detach_frame(ticket, cache)
            for ticket in (first, second, third):
                ring.release(ticket)
            assert ring.in_flight == 0

    def test_double_release_raises(self):
        frame = np.zeros((1, 2, 2), dtype=np.float32)
        with FrameRing(slots=2, slot_bytes=frame.nbytes) as ring:
            ticket = ring.put(frame)
            ring.release(ticket)
            with pytest.raises(RuntimeError, match="released twice"):
                ring.release(ticket)

    def test_closed_ring_rejects_put(self):
        ring = FrameRing(slots=1, slot_bytes=64)
        ring.close()
        ring.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            ring.put(np.zeros((1, 2, 2), dtype=np.float32))

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameRing(slots=0)
        with pytest.raises(ValueError):
            FrameRing(slot_bytes=0)


class TestPersistentWorkerPool:
    def test_frames_match_inline_pipeline(self, tiny_system):
        """One pool, many waves: replies bit-for-bit match inline."""
        config = tiny_system.pipeline_config()
        episodes = _episodes(tiny_system, frames=2)
        inline = []
        for ep in episodes:
            pipeline = LandingPipeline(tiny_system.model, config,
                                       rng=ep.seed)
            inline.append([pipeline.run(frame) for frame in ep.frames])
        rngs = [ensure_rng(ep.seed) for ep in episodes]
        with PersistentWorkerPool(tiny_system.model, config,
                                  EngineConfig(), workers=2) as pool:
            for t in range(2):  # frame wavefronts, pool reused across
                for i, ep in enumerate(episodes):
                    pool.submit(i, ep.frames[t],
                                rngs[i].bit_generator.state)
                for i, result, state, stats in pool.collect(
                        len(episodes)):
                    rngs[i].bit_generator.state = state
                    _assert_results_equal(result, inline[i][t])
                    assert isinstance(stats, dict)

    def test_worker_error_propagates(self, tiny_system):
        config = tiny_system.pipeline_config()
        with PersistentWorkerPool(tiny_system.model, config,
                                  EngineConfig(), workers=1) as pool:
            bad = np.zeros((7, 3, 4), dtype=np.float32)  # not CHW RGB
            pool.submit(0, bad, ensure_rng(0).bit_generator.state)
            with pytest.raises(RuntimeError, match="failed in worker"):
                pool.collect(1)
            assert pool._ring.in_flight == 0  # slot recycled

    def test_close_joins_workers_and_is_idempotent(self, tiny_system):
        pool = PersistentWorkerPool(
            tiny_system.model, tiny_system.pipeline_config(),
            EngineConfig(), workers=2)
        procs = list(pool._procs)
        assert all(p.is_alive() for p in procs)
        pool.close()
        pool.close()
        assert not any(p.is_alive() for p in procs)
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(0, np.zeros((3, 4, 4), dtype=np.float32), None)

    def test_validation(self, tiny_system):
        with pytest.raises(ValueError, match="workers"):
            PersistentWorkerPool(tiny_system.model,
                                 tiny_system.pipeline_config(),
                                 EngineConfig(), workers=0)


class TestSchedulerLifecycle:
    def test_no_module_global_model_remains(self):
        import repro.core.engine as engine_mod

        assert not hasattr(engine_mod, "_WORKER_MODEL")

    def test_no_model_reference_survives_close(self, tiny_system):
        """Regression: the old pool parked the model in a module global
        that outlived the run; now nothing keeps the model alive."""
        model = copy.deepcopy(tiny_system.model)
        ref = weakref.ref(model)
        scheduler = EpisodeScheduler(model,
                                     tiny_system.pipeline_config(),
                                     engine=EngineConfig(workers=2))
        scheduler.run(_episodes(tiny_system, frames=1))
        scheduler.close()
        del scheduler, model
        gc.collect()
        assert ref() is None

    def test_pool_persists_across_runs(self, tiny_system):
        """The tentpole economics: fork once, reuse every run."""
        with EpisodeScheduler(tiny_system.model,
                              tiny_system.pipeline_config(),
                              engine=EngineConfig(workers=2)) as sched:
            episodes = _episodes(tiny_system, frames=1)
            sched.run(episodes)
            pool_first = sched._pool
            pids = [p.pid for p in pool_first._procs]
            sched.run(episodes)
            assert sched._pool is pool_first
            assert [p.pid for p in pool_first._procs] == pids
        assert sched._pool is None  # context exit closed it
        # The scheduler stays usable: the next run forks a fresh pool.
        sched.run(episodes)
        assert sched._pool is not None
        sched.close()

    def test_two_schedulers_interleave(self, tiny_system):
        """Two schedulers with *different* models, runs interleaved:
        each keeps answering with its own model (the old module-global
        design made this impossible to guarantee)."""
        config = tiny_system.pipeline_config()
        model_a = tiny_system.model
        model_b = copy.deepcopy(model_a)
        for _, param in model_b.named_parameters():
            param.data *= np.float32(0.8)
        episodes = _episodes(tiny_system, frames=1)

        def reference(model):
            out = []
            for ep in episodes:
                pipeline = LandingPipeline(model, config, rng=ep.seed)
                out.append([pipeline.run(f) for f in ep.frames])
            return out

        ref_a, ref_b = reference(model_a), reference(model_b)
        with EpisodeScheduler(model_a, config,
                              engine=EngineConfig(workers=2)) as sa, \
                EpisodeScheduler(model_b, config,
                                 engine=EngineConfig(workers=2)) as sb:
            for ref, sched in ((ref_a, sa), (ref_b, sb),
                               (ref_a, sa), (ref_b, sb)):
                out = sched.run(episodes)
                for engine_ep, ref_ep in zip(out, ref):
                    for a, b in zip(engine_ep.results, ref_ep):
                        _assert_results_equal(a, b)
        # Sanity: the two models actually disagree somewhere.
        assert any(
            not np.array_equal(a[0].predicted_labels,
                               b[0].predicted_labels)
            for a, b in zip(ref_a, ref_b))

    def test_fork_unavailable_degrades_with_warning(
            self, tiny_system, monkeypatch):
        """No fork: workers=N warns, runs inline, and
        effective_workers says so (the operator-visible signal)."""
        monkeypatch.setattr("repro.serve.pool.fork_available",
                            lambda: False)
        episodes = _episodes(tiny_system, frames=1)
        config = tiny_system.pipeline_config()
        inline = EpisodeScheduler(tiny_system.model, config).run(
            episodes)
        sched = EpisodeScheduler(tiny_system.model, config,
                                 engine=EngineConfig(workers=2))
        assert sched.effective_workers == 1
        with pytest.warns(RuntimeWarning, match="effective_workers"):
            out = sched.run(episodes)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # warned once, not per run
            sched.run(episodes)
        for engine_ep, ref_ep in zip(out, inline):
            for a, b in zip(engine_ep.results, ref_ep.results):
                _assert_results_equal(a, b)
        sched.close()

    def test_effective_workers_matches_config_with_fork(
            self, tiny_system):
        sched = EpisodeScheduler(tiny_system.model,
                                 tiny_system.pipeline_config(),
                                 engine=EngineConfig(workers=3))
        assert sched.effective_workers == 3
        sched.close()


class TestWorkerStats:
    def test_adaptive_stats_round_trip_matches_inline(self, tiny_system):
        """Regression: the old pool lost all monitor stats.  Sharded
        totals must equal the inline aggregates (order-independent
        sums), whatever the worker count."""
        from dataclasses import replace

        config = tiny_system.pipeline_config()
        config = replace(config,
                         monitor=replace(config.monitor, adaptive=True))
        episodes = _episodes(tiny_system, num=2, frames=2)
        inline = EpisodeScheduler(tiny_system.model, config)
        inline.run(episodes)
        assert inline.last_adaptive_stats["windows"] > 0
        with EpisodeScheduler(tiny_system.model, config,
                              engine=EngineConfig(workers=2)) as sharded:
            sharded.run(episodes)
            assert sharded.last_adaptive_stats == \
                inline.last_adaptive_stats

    def test_non_adaptive_stats_stay_empty_everywhere(self, tiny_system):
        config = tiny_system.pipeline_config()
        episodes = _episodes(tiny_system, frames=1)
        inline = EpisodeScheduler(tiny_system.model, config)
        inline.run(episodes)
        with EpisodeScheduler(tiny_system.model, config,
                              engine=EngineConfig(workers=2)) as sharded:
            sharded.run(episodes)
            assert sharded.last_adaptive_stats == \
                inline.last_adaptive_stats
