"""Tests for the layout-aware inference conv engine.

Contracts:

* the blocked engine agrees with the reference im2col+GEMM path — bit
  for bit when the geometry fits a single block, to float32
  reassociation tolerance when the column matrix is split;
* blocking depends only on per-sample geometry, so batched forwards
  equal per-sample forwards bit for bit (the batched MC engine's
  invariant) — and the winograd engine preserves the same invariant by
  construction (one N-independent GEMM slice per sample/coefficient);
* the NHWC-internal option matches to reassociation tolerance (its GEMM
  reduction order differs by construction);
* the winograd engine matches reference/blocked to a documented
  tolerance on eligible 3x3/stride-1/dilation-1 geometries and falls
  back to the blocked engine *bit for bit* everywhere else (the deeper
  numerical certification lives in ``test_winograd_equivalence.py``);
* the int8 engine stays inside its a-priori quantisation error bound on
  eligible geometries and falls back bit for bit on the rest (deeper
  certification in ``test_int8_equivalence.py``);
* stride-0 broadcast batches are computed once and re-broadcast.

The engine matrix below is driven off ``F.CONV_ENGINE_MODES`` — a new
engine mode fails these tests until it declares its accuracy contract
in ``_MODE_CONTRACTS``, so future backends are covered by construction.

Engine state isolation is provided suite-wide by the autouse
``_conv_engine_isolation`` fixture in ``tests/conftest.py``.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn import quant


def _case(rng, n, cin, cout, h, w, k=3, stride=1, padding=1, dilation=1):
    x = rng.normal(size=(n, cin, h, w)).astype(np.float32)
    wt = rng.normal(size=(cout, cin, k, k)).astype(np.float32)
    b = rng.normal(size=cout).astype(np.float32)
    return x, wt, b, stride, padding, dilation


CASES = [
    dict(n=1, cin=3, cout=8, h=24, w=32),                      # stem-like
    dict(n=4, cin=8, cout=8, h=24, w=32, stride=2),            # strided
    dict(n=2, cin=8, cout=4, h=12, w=16, padding=4, dilation=4),
    dict(n=3, cin=8, cout=8, h=9, w=11),                       # odd sizes
    dict(n=2, cin=4, cout=6, h=8, w=8, k=1, padding=0),        # 1x1
]

#: The engine matrix: every geometry below runs on every mode in
#: ``F.CONV_ENGINE_MODES``.  Reference <-> blocked must agree bit for
#: bit (all these geometries fit one im2col block at the default
#: budget); winograd is tolerance-bound on its eligible geometries,
#: int8 is bound by its a-priori quantisation error model on its
#: eligible geometries, and both fall back to blocked (hence bit-exact
#: again) on the rest.  The sweep deliberately includes the degenerate
#: corners: 1x1 spatial output, single channel in/out, batch 1 vs N,
#: kernels {1, 3, 5}, strides, paddings and dilation.
ENGINE_MATRIX = [
    dict(n=1, cin=3, cout=8, h=16, w=24),                     # stem-like
    dict(n=5, cin=3, cout=8, h=16, w=24),                     # batch N
    dict(n=2, cin=8, cout=6, h=12, w=16, k=1, padding=0),     # 1x1 kernel
    dict(n=2, cin=8, cout=6, h=12, w=16, k=5, padding=2),     # 5x5 kernel
    dict(n=3, cin=8, cout=8, h=13, w=9),                      # odd spatial
    dict(n=2, cin=8, cout=8, h=12, w=16, stride=2),           # strided
    dict(n=2, cin=8, cout=8, h=12, w=16, padding=2,
         dilation=2),                                         # dilated
    dict(n=2, cin=1, cout=1, h=10, w=10),                     # 1 channel
    dict(n=1, cin=4, cout=4, h=3, w=3, padding=0),            # 1x1 output
    dict(n=4, cin=6, cout=3, h=8, w=8, padding=2),            # fat padding
]


def _contract_bit_exact(out, ref, blk, x, wt, geom):
    assert np.array_equal(out, ref)


def _contract_winograd(out, ref, blk, x, wt, geom):
    k, s, p, d = geom
    out_h, out_w = ref.shape[2:]
    if F._winograd_eligible(k, k, s, d, out_h, out_w):
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-4)
    else:
        assert np.array_equal(out, blk)


def _contract_int8(out, ref, blk, x, wt, geom):
    k, s, p, d = geom
    if F._int8_eligible(x.shape[1], k, k):
        bound = quant.error_bound(
            x.shape[1] * k * k, quant.activation_scales(x),
            quant.weight_scales(wt).astype(np.float32), ref)
        assert (np.abs(out.astype(np.float64) - ref) <= bound).all()
    else:
        assert np.array_equal(out, blk)


#: Per-mode accuracy contract of the matrix sweep.  Keys must cover
#: ``F.CONV_ENGINE_MODES`` exactly — adding an engine mode without
#: declaring its contract here is a test failure by design.
_MODE_CONTRACTS = {
    "reference": _contract_bit_exact,
    "blocked": _contract_bit_exact,   # single-block regime == reference
    "winograd": _contract_winograd,
    "int8": _contract_int8,
}


class TestEngineMatrix:
    """Every mode in ``CONV_ENGINE_MODES`` over the geometry sweep."""

    def test_every_mode_declares_a_contract(self):
        assert set(_MODE_CONTRACTS) == set(F.CONV_ENGINE_MODES), \
            "new engine mode must declare its matrix contract"

    @pytest.mark.parametrize("mode", F.CONV_ENGINE_MODES)
    @pytest.mark.parametrize("kw", ENGINE_MATRIX)
    def test_engine_matrix_equivalence(self, kw, mode):
        seed = sum(kw.values())  # randomized-but-seeded per geometry
        x, wt, b, s, p, d = _case(np.random.default_rng(seed), **kw)
        with F.conv_engine(mode="reference"):
            ref = F.conv2d_infer(x, wt, b, s, p, d)
        with F.conv_engine(mode="blocked"):
            blk = F.conv2d_infer(x, wt, b, s, p, d)
        # Single-block regime: blocked degenerates to the reference
        # GEMM exactly, making it a valid bit-exact fallback target.
        assert np.array_equal(blk, ref)
        with F.conv_engine(mode=mode):
            out = F.conv2d_infer(x, wt, b, s, p, d)
        _MODE_CONTRACTS[mode](out, ref, blk, x, wt,
                              (kw.get("k", 3), s, p, d))

    @pytest.mark.parametrize("kw", ENGINE_MATRIX)
    def test_engine_matrix_batched_equals_per_sample(self, kw):
        """Batch 1 vs N bit-for-bit, on every engine mode."""
        seed = sum(kw.values()) + 1
        x, wt, b, s, p, d = _case(np.random.default_rng(seed), **kw)
        for mode in F.CONV_ENGINE_MODES:
            with F.conv_engine(mode=mode):
                batched = F.conv2d_infer(x, wt, b, s, p, d)
                singles = np.concatenate([
                    F.conv2d_infer(x[i:i + 1], wt, b, s, p, d)
                    for i in range(x.shape[0])])
            assert np.array_equal(batched, singles), mode


class TestBlockedEngine:
    @pytest.mark.parametrize("kw", CASES)
    def test_blocked_matches_reference(self, kw):
        x, wt, b, s, p, d = _case(np.random.default_rng(0), **kw)
        with F.conv_engine(mode="reference"):
            ref = F.conv2d_infer(x, wt, b, s, p, d)
        with F.conv_engine(mode="blocked"):
            out = F.conv2d_infer(x, wt, b, s, p, d)
        np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("kw", CASES)
    def test_blocked_matches_training_forward(self, kw):
        x, wt, b, s, p, d = _case(np.random.default_rng(1), **kw)
        ref, _ = F.conv2d_forward(x, wt, b, s, p, d)
        with F.conv_engine(mode="blocked"):
            out = F.conv2d_infer(x, wt, b, s, p, d)
        np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-5)

    def test_single_block_is_bit_identical_to_reference(self):
        # Geometry far below the block budget -> the blocked engine
        # degenerates to exactly the reference GEMM.
        x, wt, b, s, p, d = _case(np.random.default_rng(2), n=2, cin=4,
                                  cout=4, h=8, w=8)
        with F.conv_engine(mode="reference"):
            ref = F.conv2d_infer(x, wt, b, s, p, d)
        with F.conv_engine(mode="blocked"):
            out = F.conv2d_infer(x, wt, b, s, p, d)
        assert np.array_equal(out, ref)

    def test_batched_equals_per_sample_bit_for_bit(self):
        # The invariant the batched MC-dropout engine builds on: the
        # block split never depends on the batch size.  Use a spatial
        # size large enough to force multiple blocks at a small budget.
        rng = np.random.default_rng(3)
        x = rng.normal(size=(5, 8, 48, 64)).astype(np.float32)
        wt = rng.normal(size=(8, 8, 3, 3)).astype(np.float32)
        with F.conv_engine(mode="blocked", block_kib=64):
            batched = F.conv2d_infer(x, wt, None, padding=1)
            singles = np.concatenate(
                [F.conv2d_infer(x[i:i + 1], wt, None, padding=1)
                 for i in range(x.shape[0])])
        assert np.array_equal(batched, singles)

    def test_block_size_does_not_change_results_materially(self):
        x, wt, b, s, p, d = _case(np.random.default_rng(4), n=2, cin=8,
                                  cout=8, h=48, w=64)
        outs = []
        for kib in (1, 16, 4096):
            with F.conv_engine(mode="blocked", block_kib=kib):
                outs.append(F.conv2d_infer(x, wt, b, s, p, d))
        np.testing.assert_allclose(outs[0], outs[1], rtol=1e-5, atol=1e-5)
        np.testing.assert_allclose(outs[0], outs[2], rtol=1e-5, atol=1e-5)

    def test_broadcast_batch_computed_once(self):
        rng = np.random.default_rng(5)
        one = rng.normal(size=(1, 4, 8, 8)).astype(np.float32)
        wt = rng.normal(size=(4, 4, 3, 3)).astype(np.float32)
        tiled = np.broadcast_to(one, (6,) + one.shape[1:])
        assert tiled.strides[0] == 0
        y = F.conv2d_infer(tiled, wt, None, padding=1)
        assert y.shape[0] == 6
        assert y.strides[0] == 0  # result is a broadcast view too
        ref = F.conv2d_infer(one, wt, None, padding=1)
        for i in range(6):
            assert np.array_equal(y[i], ref[0])


class TestNhwcOption:
    @pytest.mark.parametrize("kw", CASES)
    def test_nhwc_matches_nchw_to_reassociation(self, kw):
        x, wt, b, s, p, d = _case(np.random.default_rng(6), **kw)
        with F.conv_engine(layout="nhwc"):
            nhwc = F.conv2d_infer(x, wt, b, s, p, d)
        with F.conv_engine(layout="nchw"):
            nchw = F.conv2d_infer(x, wt, b, s, p, d)
        np.testing.assert_allclose(nhwc, nchw, rtol=1e-4, atol=1e-4)


class TestWinogradDispatch:
    """Mode selection, fallback and filter-cache behaviour.

    The numerical certification of the winograd engine itself lives in
    ``test_winograd_equivalence.py``; these tests pin the dispatch
    plumbing.
    """

    def _data(self, seed, n=2, cin=8, cout=8, h=12, w=16, k=3):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, cin, h, w)).astype(np.float32)
        wt = rng.normal(size=(cout, cin, k, k)).astype(np.float32)
        return x, wt

    def test_winograd_mode_changes_bits_on_eligible_shapes(self):
        # The mode must actually engage: an eligible conv under
        # winograd differs from blocked in the low bits (same values to
        # tolerance, different reassociation).
        x, wt = self._data(0)
        with F.conv_engine(mode="blocked"):
            blk = F.conv2d_infer(x, wt, None, 1, 1, 1)
        with F.conv_engine(mode="winograd"):
            wg = F.conv2d_infer(x, wt, None, 1, 1, 1)
        np.testing.assert_allclose(wg, blk, rtol=1e-4, atol=1e-4)
        assert not np.array_equal(wg, blk), \
            "winograd mode silently routed an eligible conv to blocked"

    @pytest.mark.parametrize("kw", [
        dict(k=1),                       # non-3x3
        dict(k=5),                       # non-3x3
        dict(stride=2),                  # strided
        dict(dilation=2, padding=2),     # dilated
        dict(h=6, w=6),                  # small-tile (9 tiles < minimum)
        dict(h=4, w=3),                  # sub-2x2 output column count
    ])
    def test_ineligible_geometries_fall_back_bit_exact(self, kw):
        k = kw.pop("k", 3)
        h, w = kw.pop("h", 12), kw.pop("w", 16)
        stride = kw.pop("stride", 1)
        dilation = kw.pop("dilation", 1)
        padding = kw.pop("padding", 1 if k == 3 else k // 2)
        x, wt = self._data(1, h=h, w=w, k=k)
        with F.conv_engine(mode="blocked"):
            blk = F.conv2d_infer(x, wt, None, stride, padding, dilation)
        with F.conv_engine(mode="winograd"):
            wg = F.conv2d_infer(x, wt, None, stride, padding, dilation)
        assert np.array_equal(wg, blk)

    def test_broadcast_batch_computed_once_under_winograd(self):
        rng = np.random.default_rng(2)
        one = rng.normal(size=(1, 8, 16, 16)).astype(np.float32)
        wt = rng.normal(size=(8, 8, 3, 3)).astype(np.float32)
        tiled = np.broadcast_to(one, (6,) + one.shape[1:])
        with F.conv_engine(mode="winograd"):
            y = F.conv2d_infer(tiled, wt, None, padding=1)
            ref = F.conv2d_infer(one, wt, None, padding=1)
        assert y.strides[0] == 0
        for i in range(6):
            assert np.array_equal(y[i], ref[0])

    def test_filter_transform_cached_and_invalidated(self):
        _, wt = self._data(3)
        F.clear_conv_buffers()
        u1 = F._winograd_filter_transform(wt)
        assert F._winograd_filter_transform(wt) is u1  # cache hit
        # In-place weight update (what an optimiser step does) must
        # invalidate by value, not serve the stale transform.
        wt *= 2.0
        u2 = F._winograd_filter_transform(wt)
        assert u2 is not u1
        np.testing.assert_allclose(u2, 2.0 * u1, rtol=1e-6)

    def test_filter_transform_is_exact_for_exact_weights(self):
        # G's entries are 0/0.5/1: transforms of power-of-two weights
        # are exact in float32 (computed in float64, rounded once).
        wt = np.full((2, 2, 3, 3), 4.0, dtype=np.float32)
        u = F._winograd_filter_transform(wt)
        # U = G g G^T of an all-4 filter: corner rows of G sum to 1 or
        # 3... simply check against the float64 ground truth.
        g64 = F._WINOGRAD_G @ wt.astype(np.float64) @ F._WINOGRAD_G.T
        expect = g64.transpose(2, 3, 0, 1).reshape(16, 2, 2)
        assert np.array_equal(u, expect.astype(np.float32))

    def test_conv_layer_runs_winograd_in_eval(self):
        layer = nn.Conv2d(4, 4, 3, padding=1, rng=0)
        x = np.random.default_rng(4).normal(
            size=(2, 4, 12, 16)).astype(np.float32)
        layer.train()
        y_train = layer(x)
        layer.eval()
        with F.conv_engine(mode="winograd"):
            y_eval = layer(x)
        np.testing.assert_allclose(y_eval, y_train, rtol=1e-4,
                                   atol=1e-4)
        assert layer._cache is None


class TestInt8Dispatch:
    """Int8 mode selection, fallback and weight-cache behaviour.

    Mirrors ``TestWinogradDispatch``; the numerical certification of
    the int8 engine lives in ``test_int8_equivalence.py``.
    """

    def _data(self, seed, n=2, cin=8, cout=8, h=12, w=16, k=3):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, cin, h, w)).astype(np.float32)
        wt = rng.normal(size=(cout, cin, k, k)).astype(np.float32)
        return x, wt

    def test_int8_mode_changes_bits_on_eligible_shapes(self):
        # The mode must actually engage: an eligible conv under int8
        # differs from blocked (quantisation error) while staying
        # inside the certified tolerance.
        x, wt = self._data(0)
        with F.conv_engine(mode="blocked"):
            blk = F.conv2d_infer(x, wt, None, 1, 1, 1)
        with F.conv_engine(mode="int8"):
            q = F.conv2d_infer(x, wt, None, 1, 1, 1)
        # Quantisation error is absolute in units of the output scale
        # (s_a * s_w * K), so the tolerance anchors to max|y|, not to
        # each element.
        np.testing.assert_allclose(
            q, blk, rtol=0, atol=5e-2 * np.abs(blk).max())
        assert not np.array_equal(q, blk), \
            "int8 mode silently routed an eligible conv to blocked"

    @pytest.mark.parametrize("kw", [
        dict(k=1),            # kernel footprint below int8_min_kernel
        dict(cin=120),        # K = 1080 > 1040: exactness bound breaks
    ])
    def test_ineligible_geometries_fall_back_bit_exact(self, kw):
        k = kw.pop("k", 3)
        cin = kw.pop("cin", 8)
        padding = 1 if k == 3 else 0
        x, wt = self._data(1, cin=cin, k=k)
        assert not F._int8_eligible(cin, k, k)
        with F.conv_engine(mode="blocked"):
            blk = F.conv2d_infer(x, wt, None, 1, padding, 1)
        with F.conv_engine(mode="int8"):
            q = F.conv2d_infer(x, wt, None, 1, padding, 1)
        assert np.array_equal(q, blk)

    def test_strided_and_dilated_are_eligible(self):
        # Unlike winograd, int8 reuses the blocked packing, so strided
        # and dilated geometries run quantised (measured: identical
        # overhead profile to the dense 3x3 case).
        x, wt = self._data(2)
        for s, p, d in ((2, 1, 1), (1, 2, 2), (1, 8, 8)):
            with F.conv_engine(mode="blocked"):
                blk = F.conv2d_infer(x, wt, None, s, p, d)
            with F.conv_engine(mode="int8"):
                q = F.conv2d_infer(x, wt, None, s, p, d)
            assert not np.array_equal(q, blk), (s, p, d)
            np.testing.assert_allclose(
                q, blk, rtol=0, atol=5e-2 * np.abs(blk).max())

    def test_min_kernel_knob_opts_1x1_in_and_3x3_out(self):
        x, wt = self._data(3, k=1)
        x3, wt3 = self._data(3)
        with F.conv_engine(mode="blocked"):
            blk1 = F.conv2d_infer(x, wt, None, 1, 0, 1)
            blk3 = F.conv2d_infer(x3, wt3, None, 1, 1, 1)
        with F.conv_engine(mode="int8", int8_min_kernel=1):
            q1 = F.conv2d_infer(x, wt, None, 1, 0, 1)
        with F.conv_engine(mode="int8", int8_min_kernel=10):
            q3 = F.conv2d_infer(x3, wt3, None, 1, 1, 1)
        assert not np.array_equal(q1, blk1)   # 1x1 now quantised
        assert np.array_equal(q3, blk3)       # 3x3 now falls back

    def test_broadcast_batch_computed_once_under_int8(self):
        rng = np.random.default_rng(4)
        one = rng.normal(size=(1, 8, 16, 16)).astype(np.float32)
        wt = rng.normal(size=(8, 8, 3, 3)).astype(np.float32)
        tiled = np.broadcast_to(one, (6,) + one.shape[1:])
        with F.conv_engine(mode="int8"):
            y = F.conv2d_infer(tiled, wt, None, padding=1)
            ref = F.conv2d_infer(one, wt, None, padding=1)
        assert y.strides[0] == 0
        for i in range(6):
            assert np.array_equal(y[i], ref[0])

    def test_quantised_weights_cached_and_invalidated(self):
        _, wt = self._data(5)
        F.clear_conv_buffers()
        q1 = F._INT8_WEIGHT_CACHE.get(wt)
        assert F._INT8_WEIGHT_CACHE.get(wt) is q1  # cache hit
        # In-place weight update (what an optimiser step does) must
        # invalidate by value, not serve stale codes.
        wt *= 2.0
        q2 = F._INT8_WEIGHT_CACHE.get(wt)
        assert q2 is not q1
        # Doubling the weights doubles the scales, codes unchanged.
        np.testing.assert_allclose(q2.scale, 2.0 * q1.scale, rtol=1e-6)
        assert np.array_equal(q2.q, q1.q)

    def test_quantised_weight_codes_are_int8_and_match_gemm_operand(self):
        _, wt = self._data(6)
        qw = F._INT8_WEIGHT_CACHE.get(wt)
        assert qw.q.dtype == np.int8
        assert qw.gemm.dtype == np.float32
        assert np.array_equal(qw.q.astype(np.float32), qw.gemm)
        assert np.abs(qw.gemm).max() <= 127
        assert not qw.q.flags.writeable
        assert not qw.gemm.flags.writeable

    def test_conv_layer_runs_int8_in_eval(self):
        layer = nn.Conv2d(4, 4, 3, padding=1, rng=0)
        x = np.random.default_rng(7).normal(
            size=(2, 4, 12, 16)).astype(np.float32)
        layer.train()
        y_train = layer(x)
        layer.eval()
        with F.conv_engine(mode="int8"):
            y_eval = layer(x)
        np.testing.assert_allclose(y_eval, y_train, rtol=5e-2,
                                   atol=5e-2)
        assert layer._cache is None


class TestSharedPerWeightCache:
    """The one keyed cache behind winograd filters and int8 weights."""

    def test_both_caches_are_per_weight_cache_instances(self):
        assert isinstance(F._WINOGRAD_FILTER_CACHE, F._PerWeightCache)
        assert isinstance(F._INT8_WEIGHT_CACHE, F._PerWeightCache)

    def test_in_place_update_invalidates_both_caches(self):
        # Regression: one optimiser step must never leave either
        # engine serving stale derived weights.
        wt = np.random.default_rng(8).normal(
            size=(4, 4, 3, 3)).astype(np.float32)
        F.clear_conv_buffers()
        u1 = F._winograd_filter_transform(wt)
        q1 = F._INT8_WEIGHT_CACHE.get(wt)
        wt += 0.25
        u2 = F._winograd_filter_transform(wt)
        q2 = F._INT8_WEIGHT_CACHE.get(wt)
        assert u2 is not u1
        assert q2 is not q1
        np.testing.assert_allclose(
            u2, F._winograd_filter_compute(wt), rtol=0, atol=0)
        np.testing.assert_allclose(
            q2.scale, quant.quantize_weight(wt).scale, rtol=0, atol=0)

    def test_clear_conv_buffers_empties_every_registered_cache(self):
        F.clear_conv_buffers()
        wt = np.random.default_rng(9).normal(
            size=(2, 2, 3, 3)).astype(np.float32)
        F._winograd_filter_transform(wt)
        F._INT8_WEIGHT_CACHE.get(wt)
        assert len(F._WINOGRAD_FILTER_CACHE) == 1
        assert len(F._INT8_WEIGHT_CACHE) == 1
        F.clear_conv_buffers()
        assert len(F._WINOGRAD_FILTER_CACHE) == 0
        assert len(F._INT8_WEIGHT_CACHE) == 0

    def test_cache_is_bounded(self):
        F.clear_conv_buffers()
        cache = F._PerWeightCache(lambda w: w * 2.0, cap=4)
        weights = [np.full((1, 1, 3, 3), float(i), dtype=np.float32)
                   for i in range(6)]
        for w in weights:
            cache.get(w)
        assert len(cache) <= 4
        F._PerWeightCache._instances.remove(cache)

    def test_id_reuse_detected_by_value(self):
        # Same id(), different values (the gc-reuse hazard): the
        # defensive copy must force a recompute.
        cache = F._PerWeightCache(lambda w: w.sum())
        w = np.ones((2, 2), dtype=np.float32)
        assert cache.get(w) == 4.0
        w[:] = 2.0                     # same object, new values
        assert cache.get(w) == 8.0
        F._PerWeightCache._instances.remove(cache)


class TestEnvOverride:
    """``REPRO_CONV_ENGINE`` seeds the default engine mode."""

    @pytest.mark.parametrize("mode", ["winograd", "int8"])
    def test_env_override_applies_on_reset(self, monkeypatch, mode):
        monkeypatch.setenv(F.CONV_ENGINE_ENV, mode)
        cfg = F.reset_conv_engine()
        assert cfg["mode"] == mode
        assert F.get_conv_engine()["mode"] == mode

    def test_no_env_resets_to_builtin_default(self, monkeypatch):
        monkeypatch.delenv(F.CONV_ENGINE_ENV, raising=False)
        F.set_conv_engine(mode="reference", block_kib=7,
                          int8_min_kernel=9)
        cfg = F.reset_conv_engine()
        assert cfg == {"mode": "blocked", "layout": "nchw",
                       "block_kib": 384, "int8_min_kernel": 2}

    def test_invalid_env_mode_raises(self, monkeypatch):
        monkeypatch.setenv(F.CONV_ENGINE_ENV, "fft")
        with pytest.raises(ValueError, match="REPRO_CONV_ENGINE"):
            F.reset_conv_engine()


class TestEngineConfig:
    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            F.set_conv_engine(mode="banana")
        with pytest.raises(ValueError):
            F.set_conv_engine(layout="chwn")
        with pytest.raises(ValueError):
            F.set_conv_engine(block_kib=0)
        with pytest.raises(ValueError):
            F.set_conv_engine(int8_min_kernel=0)

    @pytest.mark.parametrize("mode", ["winograd", "int8"])
    def test_engine_modes_are_valid(self, mode):
        assert mode in F.CONV_ENGINE_MODES
        with F.conv_engine(mode=mode):
            assert F.get_conv_engine()["mode"] == mode

    def test_set_conv_engine_restores_prior_state_via_reset(self):
        before = F.get_conv_engine()
        F.set_conv_engine(mode="winograd", block_kib=64)
        F.set_conv_engine(**before)
        assert F.get_conv_engine() == before

    def test_context_manager_restores(self):
        before = F.get_conv_engine()
        with F.conv_engine(mode="reference", block_kib=7):
            assert F.get_conv_engine()["mode"] == "reference"
        assert F.get_conv_engine() == before

    def test_context_manager_restores_on_error(self):
        before = F.get_conv_engine()
        with pytest.raises(RuntimeError):
            with F.conv_engine(mode="reference"):
                raise RuntimeError("boom")
        assert F.get_conv_engine() == before

    def test_clear_conv_buffers(self):
        x, wt, b, s, p, d = _case(np.random.default_rng(7), n=1, cin=4,
                                  cout=4, h=8, w=8)
        F.conv2d_infer(x, wt, b, s, p, d)
        F.clear_conv_buffers()
        out = F.conv2d_infer(x, wt, b, s, p, d)
        assert out.shape == (1, 4, 8, 8)


class TestConvLayerDispatch:
    def test_eval_forward_matches_training_forward(self):
        layer = nn.Conv2d(3, 5, 3, padding=1, rng=0)
        x = np.random.default_rng(8).normal(
            size=(2, 3, 10, 12)).astype(np.float32)
        layer.train()
        y_train = layer(x)
        layer.eval()
        # Pin the bit-exact engine: eval-vs-train dispatch is what is
        # under test here, not an approximate mode's envelope (those
        # are certified in the per-engine equivalence suites).
        with F.conv_engine(mode="blocked"):
            y_eval = layer(x)
        np.testing.assert_allclose(y_eval, y_train, rtol=1e-5, atol=1e-5)

    def test_eval_forward_retains_no_cache(self):
        layer = nn.Conv2d(3, 5, 3, padding=1, rng=0)
        layer.eval()
        layer(np.zeros((1, 3, 8, 8), dtype=np.float32))
        assert layer._cache is None
        with pytest.raises(RuntimeError, match="before forward"):
            layer.backward(np.zeros((1, 5, 8, 8), dtype=np.float32))

    def test_training_backward_unaffected(self):
        layer = nn.Conv2d(2, 3, 3, padding=1, rng=0)
        x = np.random.default_rng(9).normal(
            size=(1, 2, 6, 6)).astype(np.float32)
        layer.train()
        y = layer(x)
        dx = layer.backward(np.ones_like(y))
        assert dx.shape == x.shape
