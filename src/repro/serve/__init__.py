"""Monitoring as a service: async broker over a persistent worker pool.

The paper's architecture is evaluated one frame at a time; the episode
engine (:mod:`repro.core.engine`) scaled that to many concurrent
streams inside one process.  This package is the *serving* layer the
ROADMAP's "millions of users" north star asks for:

* :class:`ServeBroker` — an asyncio front-end accepting zone-check and
  episode-step requests from many concurrent clients, micro-batching
  them over a short admission window and feeding each admitted wave
  into one shared :class:`repro.core.engine.EpisodeScheduler` as a
  single joint pass.  Backpressure is explicit: the admission queue is
  bounded and an over-capacity request is *shed with a typed rejection*
  (:class:`AdmissionRejected`) — a safety check is never silently
  dropped or partially answered.
* :class:`PersistentWorkerPool` — the multi-core backend that replaced
  the fork-per-call ``multiprocessing.Pool`` of ``EpisodeScheduler``
  (``workers=N``): worker processes are forked **once**, the model is
  shipped once (inherited copy-on-write at fork), and frames cross the
  process boundary through a :class:`FrameRing` of shared-memory slots
  as zero-copy numpy views.  Per-episode RNG state still round-trips
  with every task, so ``workers=N`` remains bit-for-bit identical to
  inline execution.
* :func:`run_doctor` — a doctor-style operational self-check (platform
  facts, fork availability, requested vs *effective* worker count,
  shared-memory round-trip, live broker end-to-end probe, and a fault
  drill that kills a live worker mid-wave), runnable as
  ``python -m repro.serve.doctor``.
* **Fault tolerance** — the pool supervises its workers (liveness
  watch, capped respawns, ticket reclamation), requests carry
  monotonic-clock deadlines resolved with a typed fail-safe
  :class:`CheckTimedOut`, and a :class:`~repro.serve.breaker.
  CircuitBreaker` degrades persistent pool faults onto the
  bit-identical inline path.  :mod:`repro.serve.chaos` injects every
  one of those faults deterministically so the claims stay tested.
"""

from repro.serve.broker import (
    AdmissionRejected,
    ServeBroker,
    ServeConfig,
    serve_workers_default,
)
from repro.serve.breaker import CircuitBreaker
from repro.serve.faults import (
    CheckTimedOut,
    WorkerPoolError,
    conservative_reject,
)
from repro.serve.pool import PersistentWorkerPool, fork_available
from repro.serve.shm import FrameRing, FrameTicket, attach_frame

__all__ = [
    "AdmissionRejected",
    "CheckTimedOut",
    "CircuitBreaker",
    "FrameRing",
    "FrameTicket",
    "PersistentWorkerPool",
    "ServeBroker",
    "ServeConfig",
    "WorkerPoolError",
    "attach_frame",
    "conservative_reject",
    "fork_available",
    "format_doctor_report",
    "run_doctor",
    "serve_workers_default",
]


def __getattr__(name: str):
    # The doctor is imported lazily so `python -m repro.serve.doctor`
    # does not re-execute a module the package import already loaded
    # (runpy would warn about unpredictable double execution).
    if name in ("format_doctor_report", "run_doctor"):
        from repro.serve import doctor

        return getattr(doctor, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
