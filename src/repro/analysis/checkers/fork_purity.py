"""Fork-pool purity: worker tasks never write module-level state.

``EpisodeScheduler(workers=N)`` shards whole episode frames over a
persistent fork-worker pool (``repro.serve.pool``), and its
bit-for-bit contract — any worker count identical to inline execution
— holds because each task carries *all* of its mutable state
explicitly (the episode's RNG state travels with the task and returns
with the result).  A worker function that mutates a module-level
global or closure cell instead would fork into N silently diverging
copies: results would depend on which worker ran which task, a race
the seeded test matrix cannot reliably sample (on the 1-core CI box it
cannot sample it at all).

``FORK-GLOBAL-WRITE`` statically walks the task surface: any function
passed to a pool dispatch method (``.map``/``.imap``/``.apply_async``/
``.starmap``/``.submit``/... ) or as a ``Process(target=...)``, plus
everything it calls *in the same module*, must not

* assign through a ``global`` (or ``nonlocal``) declaration,
* store into a subscript/attribute rooted at a module-level name, or
* call a known mutator method (``append``/``update``/``pop``/...) on a
  module-level name.

Reading module globals is fine — forked workers inherit read-only
state copy-on-write (that is how the persistent pool ships the model
once, as ``_pool_worker``'s inherited arguments).  Cross-module calls
are not followed; keep worker tasks thin and local, which
``repro.serve.pool._pool_worker`` models: one pipeline built from
inherited arguments, every mutable value in locals, RNG state and
monitor stats round-tripped through the reply.
"""

from __future__ import annotations

import ast

from repro.analysis.base import BaseChecker, CheckContext, Rule

#: Dispatch method names that take a callable first argument.
DISPATCH_METHODS = frozenset({
    "map", "map_async", "imap", "imap_unordered",
    "apply", "apply_async", "starmap", "starmap_async",
    "submit",
})

#: Mutating method names that count as writes when invoked on a
#: module-level name.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort",
    "reverse", "write",
})


class ForkPurityChecker(BaseChecker):
    name = "fork-pool-purity"
    rules = (
        Rule("FORK-GLOBAL-WRITE",
             "fork-pool task (or a same-module callee) writes "
             "module-level or closure state",
             contract="workers=N bit-for-bit sharding (PR 3)"),
    )

    def check(self, ctx: CheckContext):
        module_names = _module_level_names(ctx.tree)
        functions = {
            node.name: node
            for node in ctx.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        roots = _task_roots(ctx.tree) & set(functions)
        if not roots:
            return
        reachable = _reachable(roots, functions)
        for name in sorted(reachable):
            yield from self._check_task(ctx, functions[name],
                                        module_names, name in roots)

    # ------------------------------------------------------------------
    def _check_task(self, ctx: CheckContext, fn: ast.AST,
                    module_names: frozenset[str], is_root: bool):
        role = "fork-pool task" if is_root \
            else "function called from a fork-pool task"
        globals_declared: set[str] = {
            name for node in ast.walk(fn)
            if isinstance(node, ast.Global) for name in node.names}
        for node in ast.walk(fn):
            if isinstance(node, ast.Nonlocal):
                yield self.finding(
                    ctx, node, "FORK-GLOBAL-WRITE",
                    f"{role} `{fn.name}` writes closure state via "
                    "nonlocal — workers mutate diverging copies",
                    hint="pass the state in with the task and return "
                         "the new value with the result")
            elif isinstance(node, (ast.Assign, ast.AugAssign,
                                   ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    yield from self._check_store(
                        ctx, fn, role, target, module_names,
                        globals_declared)
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in MUTATOR_METHODS:
                base = _base_name(node.func.value)
                if base is not None and base in module_names:
                    yield self.finding(
                        ctx, node, "FORK-GLOBAL-WRITE",
                        f"{role} `{fn.name}` mutates module-level "
                        f"`{base}` via .{node.func.attr}() — each "
                        "worker mutates its own forked copy",
                        hint="carry the state in the task tuple and "
                             "return it with the result (see "
                             "repro.serve.pool._pool_worker's "
                             "RNG-state round-trip)")

    def _check_store(self, ctx, fn, role, target, module_names,
                     globals_declared):
        if isinstance(target, ast.Name):
            if target.id in globals_declared:
                yield self.finding(
                    ctx, target, "FORK-GLOBAL-WRITE",
                    f"{role} `{fn.name}` assigns global "
                    f"`{target.id}` — invisible to other workers "
                    "and to the parent",
                    hint="return the value with the task result "
                         "instead of assigning a global")
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            base = _base_name(target)
            if base is not None and base in module_names \
                    and base not in _LOCAL_SHADOW_SENTINEL:
                yield self.finding(
                    ctx, target, "FORK-GLOBAL-WRITE",
                    f"{role} `{fn.name}` stores into module-level "
                    f"`{base}` — each worker writes its own forked "
                    "copy",
                    hint="carry the state in the task tuple and "
                         "return it with the result")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from self._check_store(
                    ctx, fn, role, elt, module_names,
                    globals_declared)


#: Placeholder for future local-shadowing analysis; a task that
#: rebinds a module-level name locally before storing through it is
#: rare enough to handle with an inline suppression.
_LOCAL_SHADOW_SENTINEL: frozenset[str] = frozenset()


def _base_name(node: ast.AST) -> str | None:
    """Root plain name of a subscript/attribute chain, or ``None``."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _module_level_names(tree: ast.Module) -> frozenset[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname
                           or alias.name.split(".")[0]))
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
    return frozenset(names)


def _task_roots(tree: ast.Module) -> set[str]:
    """Names of same-module functions handed to a pool/process."""
    roots: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr in DISPATCH_METHODS and node.args:
            first = node.args[0]
            if isinstance(first, ast.Name):
                roots.add(first.id)
        # Process(target=f) / Thread(target=f)
        for kw in node.keywords:
            if kw.arg == "target" and isinstance(kw.value, ast.Name):
                roots.add(kw.value.id)
    return roots


def _reachable(roots: set[str], functions: dict[str, ast.AST]
               ) -> set[str]:
    """Same-module call-graph closure of the task roots."""
    seen: set[str] = set()
    frontier = list(roots)
    while frontier:
        name = frontier.pop()
        if name in seen or name not in functions:
            continue
        seen.add(name)
        for node in ast.walk(functions[name]):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name):
                frontier.append(node.func.id)
    return seen
