"""Winograd certification gate: Fig. 4 catch behaviour and verdicts.

The system-level half of the winograd certification harness (the
layer-level tolerance suite is ``tests/nn/test_winograd_equivalence.py``).
Per "Evaluation of Runtime Monitoring for UAV Emergency Landing"
(Guerin et al., 2022), the monitor's catch rate is the certification
currency: an engine change that is "only" off in the last float may
still flip a borderline Eq. (2) verdict, so the gate asserts —
seeded, on the real trained tiny system, across the scenario-campaign
presets — that switching the conv engine from ``blocked`` to
``winograd`` changes *zero* monitor verdicts, decisions, campaign
outcomes or Fig. 4 catch statistics.

These are empirical seeded contracts, exactly like the repo's other
bit-for-bit gates: a future change that breaks them (a sloppier
transform, a loosened tolerance) fails here before it reaches a bench.
The structure is deliberately reusable for the next non-bit-exact
modes (quantised / reduced-T monitors): parametrize ``ENGINE`` and the
same assertions apply.
"""

import numpy as np
import pytest

from repro.core.engine import EngineConfig
from repro.eval.harness import fig4_experiment, zone_acceptance_experiment
from repro.nn import functional as F
from repro.scenarios import NAV_COMM_LOSS, get_scenario, run_scenario_campaign

#: The mode under certification vs the bit-for-bit baseline engine.
BASELINE = "blocked"
ENGINE = "winograd"

OOD_PRESETS = ("sunset_ood", "night_ood", "fog_ood")
CAMPAIGN_PRESETS = ("nav_comm_loss_delivery", "sunset_nav_loss")


def _images(system, count=None):
    images = [s.image for s in system.test_samples]
    return images if count is None else images[:count]


# ----------------------------------------------------------------------
# Monitor statistics: the Bayesian pass feeding Eq. (2)
# ----------------------------------------------------------------------
class TestMonitorStatistics:
    def test_mc_statistics_within_envelope_and_labels_identical(
            self, tiny_system):
        """Same seed, same frame: the winograd MC pass must reproduce
        the blocked engine's mean/std within the certified envelope and
        the posterior-mean arg-max labels exactly."""
        from tests.nn.test_winograd_equivalence import (
            WINOGRAD_MAXNORM_REL,
        )

        image = _images(tiny_system)[0]
        dists = {}
        for mode in (BASELINE, ENGINE):
            with F.conv_engine(mode=mode):
                dists[mode] = tiny_system.make_segmenter(
                    rng=7).predict_distribution(image)
        base, wg = dists[BASELINE], dists[ENGINE]
        # The monitor thresholds mu + 3*sigma against tau; certify the
        # statistics themselves, widened for model depth (see the
        # layer-level suite for the derivation).
        scale = float(np.abs(base.mean).max())
        assert float(np.abs(wg.mean - base.mean).max()) <= \
            16 * WINOGRAD_MAXNORM_REL * scale
        assert float(np.abs(wg.std - base.std).max()) <= \
            16 * WINOGRAD_MAXNORM_REL * max(scale, 1.0)
        assert np.array_equal(base.predicted_labels, wg.predicted_labels)

    def test_deterministic_labels_identical(self, tiny_system):
        """The core function's full-frame labels (argmax over logits)
        must not flip a single pixel under winograd."""
        seg = tiny_system.make_segmenter(rng=0)
        for image in _images(tiny_system):
            with F.conv_engine(mode=BASELINE):
                base = seg.predict_labels(image)
            with F.conv_engine(mode=ENGINE):
                wg = seg.predict_labels(image)
            assert np.array_equal(base, wg)


# ----------------------------------------------------------------------
# Episode decisions: zero verdict flips
# ----------------------------------------------------------------------
def _episode_fingerprint(result):
    """Everything a certification reviewer would diff between runs."""
    zone = result.selected_zone
    return (
        result.decision.action,
        result.decision.attempts,
        tuple(v.accepted for v in result.verdicts),
        tuple(round(v.unsafe_fraction, 12) for v in result.verdicts),
        None if zone is None else
        (zone.box.row, zone.box.col, zone.box.height, zone.box.width),
    )


class TestDecisionVerdictGate:
    def test_zero_verdict_flips_on_monitored_episodes(self, tiny_system):
        """Pipeline decisions over the seeded test split, engine
        selected through the EngineConfig plumbing: identical verdict
        streams, decisions and selected zones."""
        runs = {}
        for mode in (BASELINE, ENGINE):
            pipeline = tiny_system.make_pipeline(
                rng=0, engine=EngineConfig(conv_mode=mode))
            runs[mode] = [pipeline.run(im)
                          for im in _images(tiny_system)]
        for base, wg in zip(runs[BASELINE], runs[ENGINE]):
            assert _episode_fingerprint(base) == _episode_fingerprint(wg)
            assert np.array_equal(base.predicted_labels,
                                  wg.predicted_labels)

    def test_episode_scheduler_runs_winograd_identically(self,
                                                         tiny_system):
        """The streaming engine accepts the winograd EngineConfig and
        reproduces the blocked engine's decision stream."""
        images = _images(tiny_system, 4)
        streams = {}
        for mode in (BASELINE, ENGINE):
            scheduler = tiny_system.make_scheduler(
                engine=EngineConfig(conv_mode=mode))
            streams[mode] = scheduler.run_frames(images, seed=3)
        for base, wg in zip(streams[BASELINE], streams[ENGINE]):
            assert _episode_fingerprint(base) == _episode_fingerprint(wg)

    @pytest.mark.parametrize("preset", OOD_PRESETS)
    def test_ood_catch_behaviour_unchanged(self, tiny_system, preset):
        """The Fig. 4 catch behaviour on each OOD preset — acceptance,
        aborts, truly-unsafe accept counts — is identical under the
        winograd engine (zero flips, not merely 'still safe')."""
        samples = tiny_system.ood_samples(preset)
        stats = {}
        for mode in (BASELINE, ENGINE):
            with F.conv_engine(mode=mode):
                stats[mode] = zone_acceptance_experiment(
                    tiny_system, samples, monitor_enabled=True, rng=0)
        assert stats[BASELINE] == stats[ENGINE]


# ----------------------------------------------------------------------
# Fig. 4 catch-rate gate and campaign verdicts
# ----------------------------------------------------------------------
class TestFig4AndCampaignGate:
    def test_fig4_catch_rates_identical(self, tiny_system):
        """The full Fig. 4 protocol (in-distribution + OOD, model miss
        rate / monitor catch rate / false alarms) run on both engines:
        every statistic must agree exactly — the monitor's catch rate
        is the certification currency and may not move."""
        results = {}
        for mode in (BASELINE, ENGINE):
            with F.conv_engine(mode=mode):
                results[mode] = fig4_experiment(
                    tiny_system, "sunset_ood", max_frames=4)
        assert results[BASELINE] == results[ENGINE]

    @pytest.mark.parametrize("preset", CAMPAIGN_PRESETS)
    def test_campaign_verdicts_identical(self, tiny_system, preset):
        """Seeded mission campaigns on the scenario presets, EL policy
        on each conv engine: outcome, severity and maneuver counts and
        the EL attempt/abort book must not change under winograd."""
        spec = get_scenario(preset).with_failure(NAV_COMM_LOSS) \
            .with_camera(tiny_system.config.dataset.image_shape,
                         tiny_system.config.dataset.gsd)
        stats = {}
        for mode in (BASELINE, ENGINE):
            policy = tiny_system.make_pipeline(
                monitor_enabled=True, rng=0,
                engine=EngineConfig(conv_mode=mode)).as_mission_policy()
            stats[mode] = run_scenario_campaign(
                spec, 3, el_policy=policy, seed=11)
        base, wg = stats[BASELINE], stats[ENGINE]
        assert base.num_missions == wg.num_missions
        assert base.severity_counts == wg.severity_counts
        assert base.outcome_counts == wg.outcome_counts
        assert base.maneuver_counts == wg.maneuver_counts
        assert (base.el_attempts, base.el_aborts) == \
            (wg.el_attempts, wg.el_aborts)
