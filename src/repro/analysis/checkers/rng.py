"""RNG discipline: every random draw comes from a seeded Generator.

The bit-for-bit contracts of PRs 1-3 (batched == sequential, any
worker count == inline, engine == per-episode pipelines) hold because
every stochastic component threads an explicit seeded
:class:`numpy.random.Generator` — coerced once by
:func:`repro.utils.rng.ensure_rng`, split with
:func:`repro.utils.rng.spawn`.  A single call into numpy's *legacy
global-state* API (``np.random.seed``, ``np.random.rand``, ...) or an
*unseeded* ``default_rng()`` reintroduces hidden cross-component
coupling or nondeterminism that the seeded test matrix cannot reliably
catch.

Two rules:

* ``RNG-GLOBAL-STATE`` — any call through ``numpy.random``'s legacy
  global-state functions (or the stdlib ``random`` module's
  module-level functions, the same hazard in stdlib clothing).
* ``RNG-UNSEEDED`` — ``numpy.random.default_rng()`` with no seed (or
  an explicit ``None``) anywhere outside its one sanctioned home,
  :mod:`repro.utils.rng` — whose ``ensure_rng(None)`` escape hatch is
  itself auditable at run time via ``REPRO_REQUIRE_SEED=1`` (see that
  module).
"""

from __future__ import annotations

import ast

from repro.analysis.base import (
    BaseChecker,
    CheckContext,
    Rule,
    dotted_name,
)

#: The one module allowed to mint unseeded generators (its ``None``
#: path is the documented, strict-mode-auditable escape hatch).
SANCTIONED_UNSEEDED = ("src/repro/utils/rng.py",)

#: numpy.random module-level functions that read or mutate the hidden
#: global RandomState.  ``default_rng``/``Generator``/``SeedSequence``/
#: bit generators are deliberately absent — they are the sanctioned
#: API.
LEGACY_NUMPY_FNS = frozenset({
    "seed", "get_state", "set_state",
    "rand", "randn", "randint", "random_integers",
    "random", "random_sample", "ranf", "sample", "bytes",
    "choice", "shuffle", "permutation",
    "uniform", "normal", "standard_normal", "lognormal",
    "binomial", "poisson", "beta", "gamma", "exponential",
    "chisquare", "dirichlet", "multinomial", "multivariate_normal",
    "laplace", "logistic", "pareto", "power", "rayleigh",
    "triangular", "vonmises", "wald", "weibull", "zipf", "geometric",
    "gumbel", "hypergeometric", "negative_binomial",
    "noncentral_chisquare", "noncentral_f", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_t", "f",
    "RandomState",
})

#: stdlib ``random`` module-level functions — the same global-state
#: hazard.  Instantiating a local ``random.Random(seed)`` is fine and
#: not listed.
LEGACY_STDLIB_FNS = frozenset({
    "seed", "random", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "gauss", "normalvariate",
    "betavariate", "expovariate", "gammavariate", "lognormvariate",
    "paretovariate", "triangular", "vonmisesvariate", "weibullvariate",
    "getstate", "setstate", "getrandbits",
})


class RngDisciplineChecker(BaseChecker):
    name = "rng-discipline"
    rules = (
        Rule("RNG-GLOBAL-STATE",
             "call into a process-global RNG (numpy legacy API or "
             "stdlib random module)",
             contract="bit-for-bit seeded equivalence (PRs 1-3)"),
        Rule("RNG-UNSEEDED",
             "unseeded default_rng() outside repro.utils.rng",
             contract="bit-for-bit seeded equivalence (PRs 1-3)"),
    )

    def check(self, ctx: CheckContext):
        imports = ctx.imports
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, imports)
            if name is None:
                continue
            if name.startswith("numpy.random."):
                fn = name.rsplit(".", 1)[1]
                if fn in LEGACY_NUMPY_FNS:
                    yield self.finding(
                        ctx, node, "RNG-GLOBAL-STATE",
                        f"`{name}` draws from numpy's hidden global "
                        "RandomState",
                        hint="thread a seeded numpy.random.Generator "
                             "through the call chain instead "
                             "(repro.utils.rng.ensure_rng / spawn / "
                             "derive_seed)")
                elif fn == "default_rng" and self._unseeded(node) \
                        and ctx.rel_path not in SANCTIONED_UNSEEDED:
                    yield self.finding(
                        ctx, node, "RNG-UNSEEDED",
                        "default_rng() without a seed is "
                        "nondeterministic",
                        hint="pass an int seed or an existing "
                             "Generator (repro.utils.rng.ensure_rng); "
                             "the only sanctioned unseeded path is "
                             "ensure_rng(None) in repro/utils/rng.py, "
                             "auditable via REPRO_REQUIRE_SEED=1")
            elif name.startswith("random.") \
                    and name.count(".") == 1 \
                    and name.rsplit(".", 1)[1] in LEGACY_STDLIB_FNS \
                    and any(v == "random" or v.startswith("random.")
                            for v in imports.values()):
                yield self.finding(
                    ctx, node, "RNG-GLOBAL-STATE",
                    f"`{name}` draws from the stdlib random module's "
                    "global state",
                    hint="use a seeded numpy Generator "
                         "(repro.utils.rng.ensure_rng) — stdlib "
                         "random is process-global and unseedable "
                         "per-component")

    @staticmethod
    def _unseeded(call: ast.Call) -> bool:
        if not call.args and not call.keywords:
            return True
        if call.args:
            first = call.args[0]
            return isinstance(first, ast.Constant) and first.value is None
        for kw in call.keywords:
            if kw.arg == "seed":
                return isinstance(kw.value, ast.Constant) \
                    and kw.value.value is None
        return False
