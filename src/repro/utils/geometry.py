"""Lightweight 2-D geometry primitives shared across the library.

Image-space objects use ``(row, col)`` pixel coordinates; world-space
objects use ``(x, y)`` metres.  The :class:`Box` type is the common
currency between the landing-zone selector, the runtime monitor (which
crops sub-images, Fig. 2 of the paper) and the mission simulator (which
maps touchdown footprints back onto scene label maps).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Box", "clamp", "distance", "disk_mask", "footprint_box"]


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into ``[low, high]``."""
    if low > high:
        raise ValueError(f"empty interval [{low}, {high}]")
    return max(low, min(high, value))


def distance(a, b) -> float:
    """Euclidean distance between two 2-D points."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


@dataclass(frozen=True)
class Box:
    """Axis-aligned rectangle in image coordinates.

    ``row``/``col`` locate the top-left corner; ``height``/``width`` are
    extents in pixels.  Boxes are half-open: the covered pixel range is
    ``[row, row + height) x [col, col + width)``.
    """

    row: int
    col: int
    height: int
    width: int

    def __post_init__(self):
        if self.height < 0 or self.width < 0:
            raise ValueError(f"negative box extent: {self}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_center(center_row: float, center_col: float, height: int,
                    width: int) -> "Box":
        """Build a box of given size centred (up to rounding) on a point."""
        row = int(round(center_row - height / 2.0))
        col = int(round(center_col - width / 2.0))
        return Box(row, col, height, width)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def area(self) -> int:
        return self.height * self.width

    @property
    def center(self) -> tuple[float, float]:
        return (self.row + self.height / 2.0, self.col + self.width / 2.0)

    @property
    def bottom(self) -> int:
        return self.row + self.height

    @property
    def right(self) -> int:
        return self.col + self.width

    def is_empty(self) -> bool:
        return self.height == 0 or self.width == 0

    # ------------------------------------------------------------------
    # Set-like operations
    # ------------------------------------------------------------------
    def contains(self, row: float, col: float) -> bool:
        """True if the point lies inside the half-open box."""
        return (self.row <= row < self.bottom
                and self.col <= col < self.right)

    def contains_box(self, other: "Box") -> bool:
        return (self.row <= other.row and self.col <= other.col
                and other.bottom <= self.bottom and other.right <= self.right)

    def intersect(self, other: "Box") -> "Box":
        """Intersection of two boxes (may be empty)."""
        row = max(self.row, other.row)
        col = max(self.col, other.col)
        bottom = min(self.bottom, other.bottom)
        right = min(self.right, other.right)
        return Box(row, col, max(0, bottom - row), max(0, right - col))

    def iou(self, other: "Box") -> float:
        """Intersection-over-union; 0.0 for disjoint or empty boxes."""
        inter = self.intersect(other).area
        union = self.area + other.area - inter
        if union <= 0:
            return 0.0
        return inter / union

    def clip_to(self, height: int, width: int) -> "Box":
        """Clip the box to an image of shape ``(height, width)``."""
        row = int(clamp(self.row, 0, height))
        col = int(clamp(self.col, 0, width))
        bottom = int(clamp(self.bottom, 0, height))
        right = int(clamp(self.right, 0, width))
        return Box(row, col, bottom - row, right - col)

    def expand(self, margin: int) -> "Box":
        """Grow the box by ``margin`` pixels on every side."""
        return Box(self.row - margin, self.col - margin,
                   self.height + 2 * margin, self.width + 2 * margin)

    # ------------------------------------------------------------------
    # Array interop
    # ------------------------------------------------------------------
    def as_slices(self) -> tuple[slice, slice]:
        """Return ``(row_slice, col_slice)`` for numpy indexing."""
        return (slice(self.row, self.bottom), slice(self.col, self.right))

    def extract(self, array: np.ndarray) -> np.ndarray:
        """Crop the trailing two dimensions of ``array`` to this box."""
        rs, cs = self.as_slices()
        return array[..., rs, cs]


def disk_mask(shape: tuple[int, int], center: tuple[float, float],
              radius: float) -> np.ndarray:
    """Boolean mask of a disk in an image of the given shape."""
    rows = np.arange(shape[0])[:, None]
    cols = np.arange(shape[1])[None, :]
    return ((rows - center[0]) ** 2 + (cols - center[1]) ** 2
            <= radius ** 2)


def footprint_box(center_row: float, center_col: float, radius: float,
                  height: int, width: int) -> Box:
    """Bounding box of a disk footprint, clipped to the image."""
    size = int(math.ceil(2 * radius)) + 1
    box = Box.from_center(center_row, center_col, size, size)
    return box.clip_to(height, width)
