"""Tests for the ballistics module — including the paper's exact numbers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uav.ballistics import (
    DriftModel,
    ballistic_impact_energy,
    descent_time,
    free_fall_speed,
    kinetic_energy,
    parachute_drift,
    parachute_impact_energy,
)


class TestPaperNumbers:
    """Section III-A: 120 m -> 48.5 m/s; 7 kg -> 8.23 kJ."""

    def test_ballistic_speed_matches_paper(self):
        assert free_fall_speed(120.0) == pytest.approx(48.5, abs=0.05)

    def test_kinetic_energy_from_rounded_speed(self):
        # The paper computes 8.23 kJ from the rounded 48.5 m/s.
        assert kinetic_energy(7.0, 48.5) == pytest.approx(8233, rel=1e-3)

    def test_full_precision_energy(self):
        energy = ballistic_impact_energy(7.0, 120.0)
        assert energy == pytest.approx(8240, rel=1e-3)
        # Both land within the paper's "8.23 KJ" rounding.
        assert 8200 < energy < 8300

    def test_energy_in_3m_sora_band(self):
        """8.23 kJ > 700 J pushes MEDI DELIVERY to the 3 m GRC column."""
        energy = ballistic_impact_energy(7.0, 120.0)
        assert 700.0 < energy < 34_000.0


class TestBasics:
    def test_free_fall_zero_height(self):
        assert free_fall_speed(0.0) == 0.0

    def test_negative_height_raises(self):
        with pytest.raises(ValueError):
            free_fall_speed(-1.0)

    def test_kinetic_energy_validation(self):
        with pytest.raises(ValueError):
            kinetic_energy(0.0, 10.0)
        with pytest.raises(ValueError):
            kinetic_energy(1.0, -1.0)

    def test_descent_time(self):
        assert descent_time(60.0, 6.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            descent_time(10.0, 0.0)

    def test_parachute_drift_linear_in_wind(self):
        d1 = parachute_drift(40.0, 6.0, 3.0)
        d2 = parachute_drift(40.0, 6.0, 6.0)
        assert d2 == pytest.approx(2 * d1)

    def test_parachute_impact_energy_small(self):
        # 7 kg at 6 m/s: 126 J — versus 8.2 kJ ballistic.
        energy = parachute_impact_energy(7.0, 6.0)
        assert energy == pytest.approx(126.0)
        assert energy < ballistic_impact_energy(7.0, 120.0) / 50

    @given(st.floats(1.0, 200.0))
    @settings(max_examples=30, deadline=None)
    def test_speed_monotone_in_height(self, h):
        assert free_fall_speed(h + 10.0) > free_fall_speed(h)


class TestDriftModel:
    def test_conservative_at_least_nominal(self):
        model = DriftModel()
        assert model.required_clearance_m(conservative=True) >= \
            model.required_clearance_m(conservative=False)

    def test_nominal_drift_formula(self):
        model = DriftModel(wind_speed_ms=4.0, descent_rate_ms=6.0,
                           release_height_m=40.0)
        # 4 m/s x (40/6) s
        assert model.nominal_drift_m() == pytest.approx(4.0 * 40.0 / 6.0)

    def test_adverse_scales_with_gust(self):
        model = DriftModel(gust_factor=2.0)
        assert model.adverse_drift_m() == \
            pytest.approx(2.0 * model.nominal_drift_m())

    def test_latency_allowance(self):
        model = DriftModel(latency_s=2.0, approach_speed_ms=5.0)
        assert model.latency_allowance_m() == pytest.approx(10.0)

    def test_gust_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            DriftModel(gust_factor=0.5)

    @given(st.floats(0.0, 15.0), st.floats(10.0, 100.0))
    @settings(max_examples=30, deadline=None)
    def test_clearance_monotone_in_wind_and_height(self, wind, height):
        a = DriftModel(wind_speed_ms=wind, release_height_m=height)
        b = DriftModel(wind_speed_ms=wind + 1.0,
                       release_height_m=height + 5.0)
        assert b.required_clearance_m() >= a.required_clearance_m()
