"""Raster renderer: label windows -> realistic-enough RGB imagery.

The renderer turns ground-truth label windows into the on-board camera
frames the landing pipeline consumes.  It is intentionally *not* a flat
colour-per-class mapping: per-region tint fields, per-class speckle
texture, per-instance car colours, lane markings, cast shadows, and the
imaging-condition model make the segmentation problem non-trivial while
remaining learnable — mirroring what matters about UAVid for the paper's
experiments.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import ndimage

from repro.dataset.classes import NUM_CLASSES, UavidClass
from repro.dataset.conditions import DAY, ImagingConditions
from repro.utils.imageops import clip01, smooth_noise
from repro.utils.rng import ensure_rng

__all__ = ["render_labels", "render_scene_window", "BASE_COLORS"]

#: Natural (not palette) base reflectance per class, RGB in [0, 1].
BASE_COLORS = np.array(
    [
        (0.46, 0.43, 0.38),   # background clutter: packed soil/pavement
        (0.48, 0.36, 0.32),   # building: roofing
        (0.33, 0.33, 0.35),   # road: asphalt
        (0.10, 0.27, 0.11),   # tree: dark canopy
        (0.35, 0.50, 0.22),   # low vegetation: grass
        (0.55, 0.20, 0.20),   # moving car (re-tinted per instance)
        (0.25, 0.30, 0.55),   # static car (re-tinted per instance)
        (0.70, 0.55, 0.45),   # human
    ],
    dtype=np.float64,
)

#: Per-class speckle noise amplitude (texture strength).
_SPECKLE = np.array(
    [0.050, 0.035, 0.018, 0.075, 0.055, 0.020, 0.020, 0.030])

#: Per-class tint-field amplitude (low-frequency colour variation).
_TINT_AMPLITUDE = np.array(
    [0.06, 0.12, 0.03, 0.06, 0.09, 0.0, 0.0, 0.0])


def _per_instance_car_colors(labels: np.ndarray, image: np.ndarray,
                             rng: np.random.Generator) -> None:
    """Give each connected car blob its own paint colour (in place)."""
    for cls in (UavidClass.MOVING_CAR, UavidClass.STATIC_CAR):
        mask = labels == int(cls)
        if not mask.any():
            continue
        blobs, n_blobs = ndimage.label(mask)
        # A small palette of plausible car paints.
        paints = rng.uniform(0.08, 0.9, size=(n_blobs + 1, 3))
        whiteish = rng.random(n_blobs + 1) < 0.35
        paints[whiteish] = rng.uniform(0.75, 0.95, size=(whiteish.sum(), 3))
        image[mask] = paints[blobs[mask]]


def _lane_markings(labels: np.ndarray, image: np.ndarray) -> None:
    """Paint dashed centre-line markings on roads (in place)."""
    road = labels == int(UavidClass.ROAD)
    if not road.any():
        return
    depth = ndimage.distance_transform_edt(road)
    max_depth = depth.max()
    if max_depth < 2.0:
        return
    center = depth >= max_depth - 1.2
    rows = np.arange(labels.shape[0])[:, None]
    cols = np.arange(labels.shape[1])[None, :]
    dashed = ((rows + cols) % 10) < 5
    marking = center & dashed
    image[marking] = (0.85, 0.85, 0.80)


def _cast_shadows(height_m: np.ndarray, gsd: float,
                  conditions: ImagingConditions) -> np.ndarray:
    """Boolean mask of ground cells shadowed by buildings/trees.

    A cell is shadowed when, stepping toward the sun, some earlier cell's
    object top is above the sun ray.  Discretised ray-marching with a
    capped shadow length keeps this cheap.
    """
    if conditions.shadow_strength <= 0.0 or not (height_m > 0).any():
        return np.zeros_like(height_m, dtype=bool)
    az = math.radians(conditions.sun_azimuth_deg)
    # Shadows fall opposite the sun direction.
    step_r = -math.cos(az)
    step_c = -math.sin(az)
    tan_elev = math.tan(math.radians(conditions.sun_elevation_deg))
    max_len_m = min(60.0, height_m.max() / max(tan_elev, 1e-3))
    max_steps = max(1, min(40, int(max_len_m / gsd)))

    shadow = np.zeros_like(height_m, dtype=bool)
    h, w = height_m.shape
    for k in range(1, max_steps + 1):
        dr = int(round(step_r * k))
        dc = int(round(step_c * k))
        # Height an occluder at distance k*gsd must exceed.
        required = tan_elev * k * gsd
        src_r0, src_r1 = max(0, -dr), min(h, h - dr)
        dst_r0, dst_r1 = max(0, dr), min(h, h + dr)
        src_c0, src_c1 = max(0, -dc), min(w, w - dc)
        dst_c0, dst_c1 = max(0, dc), min(w, w + dc)
        if src_r0 >= src_r1 or src_c0 >= src_c1:
            break
        occluder = height_m[src_r0:src_r1, src_c0:src_c1] > required
        shadow[dst_r0:dst_r1, dst_c0:dst_c1] |= occluder
    # Objects do not shadow their own tops.
    shadow &= height_m <= 0
    return shadow


def render_labels(labels: np.ndarray, height_m: np.ndarray | None = None,
                  conditions: ImagingConditions = DAY,
                  gsd: float = 1.0, rng=None) -> np.ndarray:
    """Render a label window into a CHW float32 RGB image in [0, 1].

    Parameters
    ----------
    labels:
        ``(H, W)`` integer class map.
    height_m:
        Optional above-ground height map for cast shadows.
    conditions:
        Imaging conditions (lighting, weather, sensor model).
    gsd:
        Ground sample distance in metres per pixel (shadow geometry).
    rng:
        Seed or generator for texture and noise.
    """
    rng = ensure_rng(rng)
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise ValueError(f"labels must be 2-D, got shape {labels.shape}")
    if labels.min() < 0 or labels.max() >= NUM_CLASSES:
        raise ValueError("labels contain ids outside the UAVid class set")
    h, w = labels.shape

    image = BASE_COLORS[labels].copy()  # (H, W, 3)

    # Low-frequency per-class tint (roof colours, grass patchiness).
    tint = np.stack([smooth_noise((h, w), rng, scale=12) for _ in range(3)],
                    axis=-1)
    image += tint * _TINT_AMPLITUDE[labels][..., None]

    _per_instance_car_colors(labels, image, rng)
    _lane_markings(labels, image)

    # Per-pixel speckle texture.
    speckle = rng.normal(0.0, 1.0, size=(h, w, 3))
    image += speckle * _SPECKLE[labels][..., None]

    # Cast shadows.
    if height_m is not None:
        shadow = _cast_shadows(np.asarray(height_m, dtype=np.float64),
                               gsd, conditions)
        image[shadow] *= (1.0 - conditions.shadow_strength)

    # Illumination model.
    cast = np.asarray(conditions.color_cast, dtype=np.float64)
    image = (image - 0.5) * conditions.contrast + 0.5
    image = clip01(image) ** conditions.gamma
    image *= conditions.brightness * cast[None, None, :]

    if conditions.fog > 0:
        fog_color = np.array([0.72, 0.74, 0.78])
        image = image * (1.0 - conditions.fog) + fog_color * conditions.fog

    if conditions.blur_sigma > 0:
        for ch in range(3):
            image[..., ch] = ndimage.gaussian_filter(
                image[..., ch], conditions.blur_sigma)

    if conditions.noise_sigma > 0:
        image += rng.normal(0.0, conditions.noise_sigma, size=image.shape)

    chw = np.moveaxis(clip01(image), -1, 0)
    return np.ascontiguousarray(chw, dtype=np.float32)


def render_scene_window(scene, center_rc: tuple[float, float],
                        shape_px: tuple[int, int], gsd: float,
                        conditions: ImagingConditions = DAY,
                        rng=None) -> tuple[np.ndarray, np.ndarray]:
    """Render the camera view of a scene window.

    Returns ``(image_chw, labels)`` — the frame the landing pipeline
    sees and the aligned ground truth used for training/evaluation.
    """
    labels = scene.label_window(center_rc, shape_px, gsd)
    height = scene.height_window(center_rc, shape_px, gsd)
    image = render_labels(labels, height_m=height, conditions=conditions,
                          gsd=gsd, rng=rng)
    return image, labels
