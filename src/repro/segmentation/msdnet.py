"""Scaled-down Multi-Scale-Dilation network (MSDnet).

The paper's core function is MSDnet (Lyu et al., 2020), a semantic
segmentation CNN whose defining feature is *parallel dilated-convolution
branches* that observe multiple receptive-field scales at once.  This
module reproduces that architecture faithfully at a size a numpy
substrate can train:

``stem -> [strided downsampling] x D -> [MSD block] x B -> 1x1 head ->
bilinear upsample to input resolution``

where each MSD block runs parallel 3x3 convolutions with dilations
(1, 2, 4, 8), concatenates the branch outputs, normalises, activates,
applies dropout (the hook for Monte-Carlo inference) and adds a residual
connection.

The dropout layers use rate 0.5 as in the paper ("a dropout rate of 0.5
for all relevant MSDnet layers").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.utils.rng import ensure_rng, spawn

__all__ = ["MSDNetConfig", "MSDBlock", "MSDNet", "build_msdnet"]


@dataclass(frozen=True)
class MSDNetConfig:
    """Architecture hyper-parameters.

    ``base_channels`` must be divisible by ``len(dilations)`` so the
    parallel branches concatenate back to the trunk width.
    """

    num_classes: int = 8
    in_channels: int = 3
    base_channels: int = 16
    num_blocks: int = 2
    dilations: tuple[int, ...] = (1, 2, 4, 8)
    dropout: float = 0.5
    downsample_stages: int = 2

    def __post_init__(self):
        if self.base_channels % len(self.dilations) != 0:
            raise ValueError(
                f"base_channels ({self.base_channels}) must be divisible "
                f"by the number of dilation branches ({len(self.dilations)})")
        if self.downsample_stages < 0:
            raise ValueError("downsample_stages must be >= 0")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")

    @property
    def output_stride(self) -> int:
        return 2 ** self.downsample_stages


class MSDBlock(nn.Module):
    """One multi-scale-dilation block with residual connection.

    Parallel branches ``Conv3x3(dilation=d)`` for each ``d`` produce
    ``channels / len(dilations)`` maps; their concatenation is batch-
    normalised, activated, dropped out, and added back to the input.
    """

    def __init__(self, channels: int, dilations: tuple[int, ...],
                 dropout: float, rng=None):
        super().__init__()
        rng = ensure_rng(rng)
        branch_out = channels // len(dilations)
        branch_rngs = spawn(rng, len(dilations))
        self.branches = [
            nn.Conv2d(channels, branch_out, kernel_size=3, stride=1,
                      padding=nn.Conv2d.same_padding(3, d), dilation=d,
                      rng=r)
            for d, r in zip(dilations, branch_rngs)
        ]
        self.norm = nn.BatchNorm2d(channels)
        self.act = nn.ReLU()
        self.drop = nn.SpatialDropout2d(dropout, rng=rng)
        self._split_sizes = [branch_out] * len(dilations)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.forward_from_pre_dropout(
            self.forward_pre_dropout(x), x)

    def forward_pre_dropout(self, x: np.ndarray) -> np.ndarray:
        """Branches, concat, norm and activation — all deterministic.

        Everything before the block's dropout; under MC inference this
        part is identical for every sample of the same input, which the
        batched engine exploits (see :meth:`MSDNet.forward_prefix`).
        """
        outs = [branch(x) for branch in self.branches]
        merged = np.concatenate(outs, axis=1)
        return self.act(self.norm(merged))

    def forward_from_pre_dropout(self, activated: np.ndarray,
                                 x: np.ndarray) -> np.ndarray:
        """Dropout plus the residual connection — the stochastic tail."""
        return self.drop(activated) + x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        inner = self.norm.backward(
            self.act.backward(self.drop.backward(grad)))
        dx = grad.copy()  # residual path
        start = 0
        for branch, size in zip(self.branches, self._split_sizes):
            dx += branch.backward(inner[:, start:start + size])
            start += size
        return dx


class MSDNet(nn.Module):
    """The full scaled MSDnet segmentation model."""

    def __init__(self, config: MSDNetConfig | None = None, rng=None):
        super().__init__()
        config = config or MSDNetConfig()
        rng = ensure_rng(rng)
        self.config = config
        ch = config.base_channels

        stem_layers: list[nn.Module] = [
            nn.Conv2d(config.in_channels, ch, 3, padding=1, rng=rng),
            nn.BatchNorm2d(ch),
            nn.ReLU(),
        ]
        for _ in range(config.downsample_stages):
            stem_layers += [
                nn.Conv2d(ch, ch, 3, stride=2, padding=1, rng=rng),
                nn.BatchNorm2d(ch),
                nn.ReLU(),
            ]
        self.stem = nn.Sequential(*stem_layers)

        self.blocks = [
            MSDBlock(ch, config.dilations, config.dropout, rng=rng)
            for _ in range(config.num_blocks)
        ]
        self.head = nn.Conv2d(ch, config.num_classes, kernel_size=1,
                              rng=rng)
        self.upsample = (nn.Upsample(config.output_stride, mode="bilinear")
                         if config.output_stride > 1 else nn.Identity())

    # ------------------------------------------------------------------
    def _check_input(self, x: np.ndarray) -> None:
        stride = self.config.output_stride
        if x.ndim != 4:
            raise ValueError(f"expected NCHW input, got shape {x.shape}")
        if x.shape[2] % stride or x.shape[3] % stride:
            raise ValueError(
                f"input spatial size {x.shape[2:]} must be divisible by "
                f"the output stride {stride}")

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Logits of shape ``(N, num_classes, H, W)`` for NCHW input.

        H and W must be divisible by ``config.output_stride``.
        Computes the direct path; ``forward_suffix(forward_prefix(x))``
        must produce the identical result (the split contract, covered
        by ``tests/segmentation/test_bayesian_batched.py``).
        """
        self._check_input(x)
        y = self.stem(x)
        for block in self.blocks:
            y = block(y)
        y = self.head(y)
        return self.upsample(y)

    def forward_prefix(self, x: np.ndarray) -> np.ndarray:
        """The deterministic prefix of the network.

        Together with :meth:`forward_suffix` this implements the split
        contract of the batched MC-dropout engine
        (:class:`repro.segmentation.bayesian.BayesianSegmenter`):
        ``forward(x) == forward_suffix(forward_prefix(x))`` and the
        prefix applies **no stochastic (dropout) layer**, so under MC
        dropout it can be computed once per image instead of once per
        sample.  In MSDnet the first randomness is the *first block's*
        dropout, so the prefix covers the stem plus that block's
        branches/norm/activation; the pre-dropout activations and the
        residual input are returned concatenated along the channel axis
        for :meth:`forward_suffix` to unpack.
        """
        self._check_input(x)
        y = self.stem(x)
        if not self.blocks:
            return y
        activated = self.blocks[0].forward_pre_dropout(y)
        return np.concatenate([activated, y], axis=1)

    def forward_suffix(self, z: np.ndarray) -> np.ndarray:
        """Dropout of block 1 onward — the (stochastic) remainder."""
        if self.blocks:
            ch = self.config.base_channels
            activated, y = z[:, :ch], z[:, ch:]
            y = self.blocks[0].forward_from_pre_dropout(activated, y)
            for block in self.blocks[1:]:
                y = block(y)
        else:
            y = z
        y = self.head(y)
        return self.upsample(y)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.upsample.backward(grad)
        grad = self.head.backward(grad)
        for block in reversed(self.blocks):
            grad = block.backward(grad)
        return self.stem.backward(grad)

    # ------------------------------------------------------------------
    def predict_probabilities(self, image: np.ndarray) -> np.ndarray:
        """Softmax class scores ``(num_classes, H, W)`` for one image.

        Deterministic standard-version inference (dropout inactive unless
        explicitly put in MC mode) — the core function of Fig. 2.
        """
        from repro.segmentation._inference import predict_probabilities
        return predict_probabilities(self, image)

    def predict_labels(self, image: np.ndarray) -> np.ndarray:
        """Arg-max class map ``(H, W)`` for one CHW image (taken on raw
        logits — softmax is monotone — skipping the normalisation)."""
        from repro.segmentation._inference import predict_labels
        return predict_labels(self, image)


def build_msdnet(num_classes: int = 8, base_channels: int = 16,
                 num_blocks: int = 2, dropout: float = 0.5,
                 seed: int = 0) -> MSDNet:
    """Convenience constructor with the reproduction's defaults."""
    config = MSDNetConfig(num_classes=num_classes,
                          base_channels=base_channels,
                          num_blocks=num_blocks, dropout=dropout)
    return MSDNet(config, rng=seed)
