"""Seeded equivalence tests for the batched MC-dropout engine.

The engine's contract (see ``repro/segmentation/bayesian.py``): on the
same seed, the batched path — any ``max_batch`` chunking included —
reproduces the sequential one-forward-per-sample reference *bit for
bit*, because dropout masks are consumed in sample order from the same
generator stream and every other layer is batch-element-deterministic.
"""

import numpy as np
import pytest

from repro.segmentation.bayesian import BayesianSegmenter
from repro.segmentation.lightweight import LightSegNet, LightSegNetConfig
from repro.segmentation.msdnet import MSDNet, MSDNetConfig


@pytest.fixture(scope="module")
def model() -> MSDNet:
    """A small untrained MSDnet (weights are irrelevant to the RNG
    contract)."""
    return MSDNet(MSDNetConfig(base_channels=16, num_blocks=2), rng=1)


@pytest.fixture(scope="module")
def light_model() -> LightSegNet:
    return LightSegNet(LightSegNetConfig(base_channels=8), rng=2)


@pytest.fixture(scope="module")
def image() -> np.ndarray:
    return np.random.default_rng(0).random((3, 32, 48)).astype(np.float32)


def _dist_equal(a, b) -> bool:
    return (np.array_equal(a.mean, b.mean)
            and np.array_equal(a.std, b.std)
            and a.num_samples == b.num_samples)


class TestSequentialEquivalence:
    def test_batched_matches_sequential_bit_for_bit(self, model, image):
        seq = BayesianSegmenter(model, num_samples=7, rng=123)\
            .predict_distribution_sequential(image)
        bat = BayesianSegmenter(model, num_samples=7, rng=123)\
            .predict_distribution(image)
        assert _dist_equal(seq, bat)

    def test_chunking_never_changes_results(self, model, image):
        reference = BayesianSegmenter(model, num_samples=9, rng=5)\
            .predict_distribution(image, max_batch=9)
        for max_batch in (1, 2, 4, 16):
            chunked = BayesianSegmenter(model, num_samples=9, rng=5)\
                .predict_distribution(image, max_batch=max_batch)
            assert _dist_equal(reference, chunked), max_batch

    def test_predict_samples_matches_chunked(self, model, image):
        full = BayesianSegmenter(model, num_samples=6, rng=7)\
            .predict_samples(image)
        chunked = BayesianSegmenter(model, num_samples=6, rng=7)\
            .predict_samples(image, max_batch=2)
        assert np.array_equal(full, chunked)
        assert full.shape == (6, 8, 32, 48)

    def test_samples_consistent_with_distribution(self, model, image):
        stack = BayesianSegmenter(model, num_samples=8, rng=11)\
            .predict_samples(image)
        dist = BayesianSegmenter(model, num_samples=8, rng=11)\
            .predict_distribution(image)
        assert np.allclose(stack.mean(axis=0), dist.mean)
        assert np.allclose(stack.std(axis=0), dist.std)

    def test_model_left_deterministic_afterwards(self, model, image):
        from repro.nn.layers import mc_dropout_enabled
        segmenter = BayesianSegmenter(model, num_samples=3, rng=0)
        segmenter.predict_distribution(image)
        assert not mc_dropout_enabled(model)


class TestBatchApis:
    def test_independent_batch_matches_per_image_calls(self, model):
        rng = np.random.default_rng(3)
        images = [rng.random((3, 32, 48)).astype(np.float32)
                  for _ in range(3)]
        batch = BayesianSegmenter(model, num_samples=4, rng=21)\
            .predict_distribution_batch(images)
        loop_seg = BayesianSegmenter(model, num_samples=4, rng=21)
        loop = [loop_seg.predict_distribution(im) for im in images]
        assert all(_dist_equal(a, b) for a, b in zip(batch, loop))

    def test_joint_batch_reproducible_and_chunk_invariant(self, model):
        rng = np.random.default_rng(4)
        images = [rng.random((3, 32, 48)).astype(np.float32)
                  for _ in range(3)]
        a = BayesianSegmenter(model, num_samples=4, rng=9)\
            .predict_distribution_batch(images, independent=False)
        b = BayesianSegmenter(model, num_samples=4, rng=9)\
            .predict_distribution_batch(images, independent=False,
                                        max_batch=5)
        assert all(_dist_equal(x, y) for x, y in zip(a, b))

    def test_deterministic_batch_matches_single(self, model):
        rng = np.random.default_rng(6)
        images = [rng.random((3, 32, 48)).astype(np.float32)
                  for _ in range(3)]
        segmenter = BayesianSegmenter(model, rng=0)
        batch = segmenter.predict_deterministic_batch(images,
                                                      max_batch=2)
        for i, im in enumerate(images):
            assert np.array_equal(batch[i],
                                  segmenter.predict_deterministic(im))

    def test_shape_mismatch_rejected(self, model):
        images = [np.zeros((3, 32, 48), dtype=np.float32),
                  np.zeros((3, 16, 48), dtype=np.float32)]
        with pytest.raises(ValueError, match="common shape"):
            BayesianSegmenter(model, rng=0)\
                .predict_distribution_batch(images)

    def test_empty_batch(self, model):
        segmenter = BayesianSegmenter(model, rng=0)
        assert segmenter.predict_distribution_batch([]) == []
        assert segmenter.predict_deterministic_batch([]).shape[0] == 0

    def test_invalid_knobs_rejected(self, model, image):
        segmenter = BayesianSegmenter(model, rng=0)
        with pytest.raises(ValueError):
            segmenter.predict_distribution(image, num_samples=0)
        with pytest.raises(ValueError):
            segmenter.predict_distribution(image, max_batch=0)
        with pytest.raises(ValueError):
            BayesianSegmenter(model, max_batch=0)


class TestPrefixSplit:
    """The deterministic-prefix split must never change the forward."""

    def test_forward_equals_suffix_of_prefix(self, model, image):
        model.eval()
        x = image[None]
        assert np.array_equal(
            model.forward(x),
            model.forward_suffix(model.forward_prefix(x)))

    def test_lightsegnet_forward_equals_suffix_of_prefix(
            self, light_model, image):
        light_model.eval()
        x = image[None]
        assert np.array_equal(
            light_model.forward(x),
            light_model.forward_suffix(light_model.forward_prefix(x)))

    def test_lightsegnet_prefix_is_deterministic(self, light_model):
        from repro.nn.layers import Dropout
        split = light_model._prefix_len
        layers = light_model.body.layers
        assert not any(isinstance(m, Dropout) for m in layers[:split])
        assert any(isinstance(m, Dropout) for m in layers[split:])

    def test_lightsegnet_batched_matches_sequential_bit_for_bit(
            self, light_model, image):
        seq = BayesianSegmenter(light_model, num_samples=7, rng=123)\
            .predict_distribution_sequential(image)
        bat = BayesianSegmenter(light_model, num_samples=7, rng=123)\
            .predict_distribution(image)
        assert _dist_equal(seq, bat)

    def test_lightsegnet_split_engages_in_engine(self, light_model,
                                                 image):
        # prefix_split=False must give the same distribution (split is
        # an optimisation, not a semantic change) while actually using
        # whole-network forwards.
        with_split = BayesianSegmenter(light_model, num_samples=5,
                                       rng=11)
        without = BayesianSegmenter(light_model, num_samples=5, rng=11,
                                    prefix_split=False)
        assert with_split._split_fns()[0] is not None
        assert without._split_fns() == (None, None)
        assert _dist_equal(with_split.predict_distribution(image),
                           without.predict_distribution(image))

    def test_split_holds_in_training_mode(self, model):
        model.train()
        try:
            x = np.random.default_rng(8).random((2, 3, 16, 16))\
                .astype(np.float32)
            # Dropout draws differ between the two executions, so only
            # shapes are comparable here; the MC equivalence tests above
            # cover value equality under a controlled stream.
            assert model.forward(x).shape == (2, 8, 16, 16)
        finally:
            model.eval()


class TestRaggedEngine:
    """The jointly seeded ragged pass over different-shaped crops.

    Contract (see ``predict_distribution_ragged``): one seeding, mask
    stream crop-major/sample-minor in input order, same-shape runs
    batched — bit-for-bit ``predict_distribution_stack`` whenever the
    shapes allow a single stack.
    """

    def _crops(self, shapes, seed=3):
        rng = np.random.default_rng(seed)
        return [rng.random((3,) + s).astype(np.float32) for s in shapes]

    def test_single_crop_matches_predict_distribution(self, model):
        (crop,) = self._crops([(16, 24)])
        ref = BayesianSegmenter(model, num_samples=6, rng=9)\
            .predict_distribution(crop)
        rag = BayesianSegmenter(model, num_samples=6, rng=9)\
            .predict_distribution_ragged([crop], num_samples=6)[0]
        assert _dist_equal(ref, rag)

    def test_same_shape_run_matches_stack(self, model):
        crops = self._crops([(16, 16)] * 4)
        ref = BayesianSegmenter(model, num_samples=5, rng=4)\
            .predict_distribution_stack(np.stack(crops), num_samples=5)
        rag = BayesianSegmenter(model, num_samples=5, rng=4)\
            .predict_distribution_ragged(crops, num_samples=5)
        for a, b in zip(ref, rag):
            assert _dist_equal(a, b)

    def test_mixed_shapes_consume_one_stream_in_order(self, model):
        """A ragged pass equals running its same-shape runs through
        ``predict_distribution_stack`` back to back on one shared
        generator (the stream never resets between runs)."""
        crops = self._crops([(16, 16), (16, 16), (16, 32), (24, 16)])
        rag = BayesianSegmenter(model, num_samples=4, rng=7)\
            .predict_distribution_ragged(crops, num_samples=4)
        ref_seg = BayesianSegmenter(model, num_samples=4, rng=7)
        ref = []
        for run in ([crops[0], crops[1]], [crops[2]], [crops[3]]):
            # NOTE: each call re-derives layer seeds from the shared
            # generator exactly once, like the ragged pass does per
            # seeding — so split the comparison at the seeding level:
            ref.extend(ref_seg.predict_distribution_stack(
                np.stack(run), num_samples=4))
        # The reference reseeds per call, the ragged pass seeds once;
        # the FIRST run must therefore agree bit for bit, later runs
        # are covered by the seeded-reproducibility assertion below.
        assert _dist_equal(ref[0], rag[0])
        assert _dist_equal(ref[1], rag[1])
        rag2 = BayesianSegmenter(model, num_samples=4, rng=7)\
            .predict_distribution_ragged(crops, num_samples=4)
        for a, b in zip(rag, rag2):
            assert _dist_equal(a, b)

    def test_chunking_never_changes_results(self, model):
        crops = self._crops([(16, 16), (16, 16), (24, 32)])
        outs = [
            BayesianSegmenter(model, num_samples=6, rng=5,
                              max_batch=mb)
            .predict_distribution_ragged(crops, num_samples=6)
            for mb in (1, 2, 6, 32)
        ]
        for other in outs[1:]:
            for a, b in zip(outs[0], other):
                assert _dist_equal(a, b)

    def test_empty_and_validation(self, model):
        seg = BayesianSegmenter(model, num_samples=3, rng=0)
        assert seg.predict_distribution_ragged([]) == []
        with pytest.raises(ValueError):
            seg.predict_distribution_ragged(
                [np.zeros((16, 16), dtype=np.float32)])

    def test_model_left_deterministic_afterwards(self, model):
        from repro.nn.layers import mc_dropout_enabled

        crops = self._crops([(16, 16), (24, 16)])
        BayesianSegmenter(model, num_samples=3, rng=0)\
            .predict_distribution_ragged(crops)
        assert not mc_dropout_enabled(model)


class TestComputePrefix:
    def test_matches_per_image_prefix(self, model):
        stack = np.random.default_rng(1).random((5, 3, 16, 16))\
            .astype(np.float32)
        seg = BayesianSegmenter(model, rng=0, max_batch=2)
        base = seg.compute_prefix(stack)
        assert base is not None
        model.eval()
        for i in range(stack.shape[0]):
            single = model.forward_prefix(stack[i:i + 1])
            assert np.array_equal(base[i], single[0])

    def test_none_without_split(self, model):
        seg = BayesianSegmenter(model, rng=0, prefix_split=False)
        stack = np.zeros((1, 3, 16, 16), dtype=np.float32)
        assert seg.compute_prefix(stack) is None
