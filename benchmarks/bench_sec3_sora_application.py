"""SEC3-SORA bench: the Section III-D certification numbers, computed.

Paper artefacts (Sections III-A and III-D):

* ballistic vertical speed 48.5 m/s, kinetic energy 8.23 kJ,
* intrinsic GRC 6 (1 m span pushed to the 3 m column by energy),
* ARC-c (below 500 ft, urban, uncontrolled),
* final GRC 6 with medium-robustness M3, 7 without,
* SAIL V (VI without M3), all OSOs requested, most at High.

Expectation: exact match on every number.
"""

import pytest

from repro.eval.reporting import format_table, format_title
from repro.sora import (
    ARC,
    SAIL,
    OsoLevel,
    UasDimensionClass,
    assess_medi_delivery,
)


def test_sec3_sora_application(benchmark, emit):
    with_m3 = benchmark(lambda: assess_medi_delivery(with_m3=True))
    without_m3 = assess_medi_delivery(with_m3=False)

    emit("\n" + format_title(
        "SEC3-SORA: SORA application to MEDI DELIVERY (Sec. III-D)"))
    rows = [
        ["ballistic speed (m/s)", 48.5,
         round(with_m3.ballistic_speed_ms, 1)],
        ["kinetic energy (kJ)", 8.23,
         round(with_m3.ballistic_energy_j / 1000, 2)],
        ["dimension column", "3 m", with_m3.dimension.name],
        ["intrinsic GRC", 6, with_m3.intrinsic_grc],
        ["final GRC (M3 medium)", 6, with_m3.final_grc],
        ["final GRC (no M3)", 7, without_m3.final_grc],
        ["ARC", "ARC-c", str(with_m3.residual_arc)],
        ["SAIL (M3 medium)", "SAIL V", str(with_m3.sail)],
        ["SAIL (no M3)", "SAIL VI", str(without_m3.sail)],
    ]
    emit(format_table(["quantity", "paper", "computed"], rows))

    counts = with_m3.oso_counts()
    emit(f"\nOSO profile at {with_m3.sail}: "
         f"{counts[OsoLevel.HIGH]} high, {counts[OsoLevel.MEDIUM]} "
         f"medium, {counts[OsoLevel.LOW]} low, "
         f"{counts[OsoLevel.OPTIONAL]} optional")

    # --- exact assertions --------------------------------------------
    assert with_m3.ballistic_speed_ms == pytest.approx(48.5, abs=0.05)
    assert with_m3.ballistic_energy_j == pytest.approx(8240, rel=2e-3)
    assert with_m3.dimension is UasDimensionClass.D3M
    assert with_m3.intrinsic_grc == 6
    assert with_m3.final_grc == 6
    assert without_m3.final_grc == 7
    assert with_m3.residual_arc is ARC.C
    assert with_m3.sail is SAIL.V
    assert without_m3.sail is SAIL.VI
    # "all the OSOs are requested and most of them at a high level".
    assert counts[OsoLevel.OPTIONAL] == 0
    assert counts[OsoLevel.HIGH] > 12
