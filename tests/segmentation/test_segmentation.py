"""Tests for MSDnet, training, metrics and Bayesian inference."""

import numpy as np
import pytest

from repro.dataset.generator import DatasetConfig, generate_dataset
from repro.segmentation import (
    BayesianSegmenter,
    MSDNet,
    MSDNetConfig,
    TrainConfig,
    build_msdnet,
    confusion_matrix,
    evaluate_model,
    evaluate_predictions,
    iou_per_class,
    mean_iou,
    pixel_accuracy,
    train_model,
)
from repro.nn.layers import Dropout, mc_dropout_enabled


class TestMSDNetArchitecture:
    def test_output_shape(self, rng):
        model = build_msdnet(base_channels=8, num_blocks=1, seed=0)
        x = rng.normal(size=(2, 3, 16, 24)).astype(np.float32)
        y = model(x)
        assert y.shape == (2, 8, 16, 24)

    def test_channels_must_divide_branches(self):
        with pytest.raises(ValueError, match="divisible"):
            MSDNetConfig(base_channels=10, dilations=(1, 2, 4))

    def test_indivisible_input_rejected(self, rng):
        model = build_msdnet(base_channels=8, num_blocks=1, seed=0)
        with pytest.raises(ValueError, match="divisible"):
            model(rng.normal(size=(1, 3, 15, 16)).astype(np.float32))

    def test_non_nchw_rejected(self, rng):
        model = build_msdnet(base_channels=8, num_blocks=1, seed=0)
        with pytest.raises(ValueError, match="NCHW"):
            model(rng.normal(size=(3, 16, 16)))

    def test_output_stride_property(self):
        assert MSDNetConfig(downsample_stages=2).output_stride == 4
        assert MSDNetConfig(downsample_stages=0).output_stride == 1

    def test_contains_dropout_layers(self):
        model = build_msdnet(seed=0)
        assert any(isinstance(m, Dropout) for m in model.modules())

    def test_predict_labels(self, rng):
        model = build_msdnet(base_channels=8, num_blocks=1, seed=0)
        image = rng.random((3, 16, 16)).astype(np.float32)
        labels = model.predict_labels(image)
        assert labels.shape == (16, 16)
        assert labels.min() >= 0 and labels.max() < 8

    def test_probabilities_sum_to_one(self, rng):
        model = build_msdnet(base_channels=8, num_blocks=1, seed=0)
        model.eval()
        image = rng.random((3, 16, 16)).astype(np.float32)
        probs = model.predict_probabilities(image)
        np.testing.assert_allclose(probs.sum(axis=0), 1.0, atol=1e-5)

    def test_eval_deterministic(self, rng):
        model = build_msdnet(base_channels=8, num_blocks=1, seed=0)
        model.eval()
        x = rng.random((1, 3, 16, 16)).astype(np.float32)
        np.testing.assert_array_equal(model(x), model(x))


class TestTraining:
    @pytest.fixture(scope="class")
    def small_data(self):
        return generate_dataset(DatasetConfig(
            num_scenes=2, windows_per_scene=4, image_shape=(32, 48),
            seed=3))

    def test_loss_decreases(self, small_data):
        model = build_msdnet(base_channels=8, num_blocks=1, seed=1)
        history = train_model(model, small_data,
                              TrainConfig(epochs=6, batch_size=4,
                                          seed=0))
        assert history.final_loss < history.epoch_losses[0]

    def test_history_bookkeeping(self, small_data):
        model = build_msdnet(base_channels=8, num_blocks=1, seed=1)
        history = train_model(model, small_data,
                              TrainConfig(epochs=2, batch_size=4,
                                          seed=0))
        assert len(history.epoch_losses) == 2
        assert history.steps == 2 * 2  # 8 samples / batch 4 / epoch
        assert history.wall_time_s > 0

    def test_model_left_in_eval_mode(self, small_data):
        model = build_msdnet(base_channels=8, num_blocks=1, seed=1)
        train_model(model, small_data, TrainConfig(epochs=1, seed=0))
        assert not model.training

    def test_empty_samples_raise(self):
        model = build_msdnet(seed=0)
        with pytest.raises(ValueError, match="no training samples"):
            train_model(model, [])

    def test_evaluate_model(self, small_data):
        model = build_msdnet(base_channels=8, num_blocks=1, seed=1)
        train_model(model, small_data, TrainConfig(epochs=2, seed=0))
        report = evaluate_model(model, small_data)
        assert 0.0 <= report.accuracy <= 1.0
        assert report.num_pixels == len(small_data) * 32 * 48


class TestMetrics:
    def test_confusion_matrix_exact(self):
        pred = np.array([0, 0, 1, 1])
        target = np.array([0, 1, 1, 1])
        cm = confusion_matrix(pred, target, 2)
        np.testing.assert_array_equal(cm, [[1, 0], [1, 2]])

    def test_perfect_prediction(self):
        labels = np.arange(4)
        cm = confusion_matrix(labels, labels, 4)
        assert pixel_accuracy(cm) == 1.0
        assert mean_iou(cm) == 1.0

    def test_iou_absent_class_nan(self):
        pred = np.array([0, 0])
        target = np.array([0, 0])
        iou = iou_per_class(confusion_matrix(pred, target, 3))
        assert iou[0] == 1.0
        assert np.isnan(iou[1]) and np.isnan(iou[2])

    def test_mean_iou_skips_nan(self):
        pred = np.array([0, 1])
        target = np.array([0, 1])
        assert mean_iou(confusion_matrix(pred, target, 5)) == 1.0

    def test_known_iou_value(self):
        # class 0: inter 2, union 3 -> 2/3.
        pred = np.array([0, 0, 0, 1])
        target = np.array([0, 0, 1, 0])
        iou = iou_per_class(confusion_matrix(pred, target, 2))
        assert iou[0] == pytest.approx(2 / 4)  # inter 2, union 4

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(3), np.zeros(4), 2)

    def test_evaluate_predictions_accumulates(self):
        pairs = [(np.array([0]), np.array([0])),
                 (np.array([1]), np.array([0]))]
        report = evaluate_predictions(pairs, 2)
        assert report.num_pixels == 2
        assert report.accuracy == 0.5


class TestBayesianSegmenter:
    @pytest.fixture(scope="class")
    def model(self):
        return build_msdnet(base_channels=8, num_blocks=1, dropout=0.5,
                            seed=2)

    @pytest.fixture(scope="class")
    def image(self):
        rng = np.random.default_rng(0)
        return rng.random((3, 16, 16)).astype(np.float32)

    def test_distribution_shapes(self, model, image):
        segmenter = BayesianSegmenter(model, num_samples=5, rng=0)
        dist = segmenter.predict_distribution(image)
        assert dist.mean.shape == (8, 16, 16)
        assert dist.std.shape == (8, 16, 16)
        assert dist.num_samples == 5

    def test_mean_is_probability(self, model, image):
        segmenter = BayesianSegmenter(model, num_samples=5, rng=0)
        dist = segmenter.predict_distribution(image)
        np.testing.assert_allclose(dist.mean.sum(axis=0), 1.0, atol=1e-5)
        assert (dist.std >= 0).all()

    def test_dropout_produces_variance(self, model, image):
        segmenter = BayesianSegmenter(model, num_samples=8, rng=0)
        dist = segmenter.predict_distribution(image)
        assert dist.std.max() > 0.0

    def test_deterministic_pass_has_no_variance(self, model, image):
        segmenter = BayesianSegmenter(model, num_samples=1, rng=0)
        a = segmenter.predict_deterministic(image)
        b = segmenter.predict_deterministic(image)
        np.testing.assert_array_equal(a, b)

    def test_mc_mode_restored_after_inference(self, model, image):
        segmenter = BayesianSegmenter(model, num_samples=3, rng=0)
        segmenter.predict_distribution(image)
        assert not mc_dropout_enabled(model)

    def test_reproducible_with_seed(self, model, image):
        a = BayesianSegmenter(model, num_samples=4,
                              rng=7).predict_distribution(image)
        b = BayesianSegmenter(model, num_samples=4,
                              rng=7).predict_distribution(image)
        np.testing.assert_allclose(a.mean, b.mean)
        np.testing.assert_allclose(a.std, b.std)

    def test_upper_confidence(self, model, image):
        segmenter = BayesianSegmenter(model, num_samples=4, rng=0)
        dist = segmenter.predict_distribution(image)
        np.testing.assert_allclose(dist.upper_confidence(0.0), dist.mean)
        assert (dist.upper_confidence(3.0) >= dist.mean).all()

    def test_samples_stack(self, model, image):
        segmenter = BayesianSegmenter(model, num_samples=3, rng=0)
        stack = segmenter.predict_samples(image)
        assert stack.shape == (3, 8, 16, 16)
        # Stochastic passes differ.
        assert not np.allclose(stack[0], stack[1])

    def test_more_samples_stabilise_mean(self, model, image):
        """Convergence: means of independent many-sample runs agree
        better than means of few-sample runs (averaged over pairs to
        keep the check statistically stable)."""
        def mean_gap(t, seed_a, seed_b):
            a = BayesianSegmenter(model, num_samples=t,
                                  rng=seed_a).predict_distribution(image)
            b = BayesianSegmenter(model, num_samples=t,
                                  rng=seed_b).predict_distribution(image)
            return np.abs(a.mean - b.mean).mean()

        pairs = [(1, 2), (3, 4), (5, 6)]
        gap_many = np.mean([mean_gap(24, a, b) for a, b in pairs])
        gap_few = np.mean([mean_gap(2, a + 10, b + 10)
                           for a, b in pairs])
        assert gap_many < gap_few

    def test_invalid_num_samples(self, model, image):
        with pytest.raises(ValueError):
            BayesianSegmenter(model, num_samples=0)
        segmenter = BayesianSegmenter(model, num_samples=2, rng=0)
        with pytest.raises(ValueError):
            segmenter.predict_distribution(image, num_samples=0)
