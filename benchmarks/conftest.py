"""Shared fixtures for the benchmark suite.

Every bench reproduces one table or figure of the paper (see the
per-experiment index in DESIGN.md), prints the reproduced rows/series,
and *asserts* the expected result — exact values for the certification
artefacts, shape inequalities for the learning-based experiments.

The trained system is built once per session and cached on disk, so the
first benchmark run pays the training cost (~1 minute) and later runs
load weights.

Smoke mode (CI): setting ``BENCH_SMOKE=1`` swaps in the test-suite's
tiny trained system (48x64 frames, shared on-disk weight cache with
``tests/conftest.py``) and truncates the fig4 frame corpus, so the
whole bench suite runs in seconds.  All bench assertions hold at the
tiny scale as-is; a bench whose threshold is genuinely full-scale-only
should read ``os.environ.get("BENCH_SMOKE") == "1"`` and relax it, as
``bench_batched_inference.py`` does for its speedup floor.
``scripts/check.sh`` runs tier-1 pytest plus this smoke pass.
"""

from __future__ import annotations

import os

import pytest

from repro.eval.harness import (
    HarnessConfig,
    TrainedSystem,
    build_trained_system,
    fig4_experiment,
    tiny_harness_config,
)

BENCH_SMOKE = os.environ.get("BENCH_SMOKE") == "1"


@pytest.fixture(scope="session")
def system() -> TrainedSystem:
    """The bench-scale trained system (cached across runs).

    Smoke mode uses ``tiny_harness_config`` — the same configuration
    (and therefore the same weight cache) as the test suite's
    ``tiny_system`` fixture."""
    config = tiny_harness_config() if BENCH_SMOKE else HarnessConfig()
    return build_trained_system(config, cache=True)


@pytest.fixture(scope="session")
def fig4_results(system):
    """Fig. 4 statistics, shared by the monitoring bench and ablations."""
    return fig4_experiment(system,
                           max_frames=2 if BENCH_SMOKE else None)


@pytest.fixture()
def emit(capsys):
    """Print straight to the terminal, bypassing pytest capture.

    Benches use this so the reproduced tables land in
    ``bench_output.txt`` when running
    ``pytest benchmarks/ --benchmark-only | tee ...``.
    """
    def _emit(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _emit
