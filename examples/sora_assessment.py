#!/usr/bin/env python3
"""SORA assessment of MEDI DELIVERY — the paper's Sections III-D and IV.

Reproduces the certification walk-through: ballistic figures, intrinsic
GRC, the inapplicability of classic mitigations, SAIL with and without
an ERP, the OSO burden — and then what changes when Emergency Landing
is accepted as an active-M1 mitigation at each robustness level.

Run:  python examples/sora_assessment.py
"""

from repro.eval import format_table, format_title
from repro.sora import (
    OUTCOME_TABLE,
    SEVERITY_DESCRIPTIONS,
    OsoLevel,
    RobustnessLevel,
    Severity,
    assess_medi_delivery,
)


def main() -> None:
    print(format_title("SORA application to MEDI DELIVERY (Sec. III-D)"))

    print("\nTable I - severity scale")
    print(format_table(
        ["rating", "description"],
        [[int(s), SEVERITY_DESCRIPTIONS[s]] for s in Severity]))

    print("\nTable II - main ground risks")
    print(format_table(
        ["id", "hazardous outcome", "severity"],
        [[spec.outcome.value, spec.description, int(spec.severity)]
         for spec in OUTCOME_TABLE]))

    print("\n--- baseline assessment (M3 ERP at medium robustness) ---")
    base = assess_medi_delivery(with_m3=True)
    for line in base.summary_lines():
        print("  " + line)

    print("\n--- without any ERP (the paper's '7 if no M3' case) ---")
    no_erp = assess_medi_delivery(with_m3=False)
    for line in no_erp.summary_lines():
        print("  " + line)

    print("\n" + format_title(
        "Emergency Landing as an active-M1 mitigation (Sec. IV)"))
    rows = []
    for level in (RobustnessLevel.LOW, RobustnessLevel.MEDIUM,
                  RobustnessLevel.HIGH):
        a = assess_medi_delivery(with_m3=True, el_integrity=level,
                                 el_assurance=level)
        counts = a.oso_counts()
        rows.append([level.name, a.final_grc, str(a.sail),
                     counts[OsoLevel.HIGH], counts[OsoLevel.MEDIUM],
                     counts[OsoLevel.LOW], counts[OsoLevel.OPTIONAL]])
    print(format_table(
        ["EL robustness", "final GRC", "SAIL", "OSO high", "OSO med",
         "OSO low", "OSO opt"],
        rows, title="\neffect of claiming EL at each robustness level:"))

    print("\nreading: with EL at medium robustness the final GRC drops "
          "6 -> 4 and the SAIL V -> IV;\nthe residual SAIL IV is pinned "
          "by the ARC-c air risk, which EL (a ground-risk mitigation)\n"
          "cannot address — certification effort shifts from ground "
          "risk to air risk.")


if __name__ == "__main__":
    main()
