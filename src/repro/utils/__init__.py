"""Shared utilities: seeded RNG handling, geometry, image ops, validation."""

from repro.utils.geometry import Box, clamp, disk_mask, distance, footprint_box
from repro.utils.imageops import (
    clip01,
    colorize_labels,
    resize_labels,
    resize_nearest,
    smooth_noise,
    to_chw,
    to_hwc,
    write_pgm,
    write_ppm,
)
from repro.utils.rng import derive_seed, ensure_rng, spawn
from repro.utils.validation import (
    check_image_chw,
    check_in_range,
    check_label_map,
    check_non_negative,
    check_positive,
    check_probability,
    check_shape,
)

__all__ = [
    "Box",
    "clamp",
    "disk_mask",
    "distance",
    "footprint_box",
    "clip01",
    "colorize_labels",
    "resize_labels",
    "resize_nearest",
    "smooth_noise",
    "to_chw",
    "to_hwc",
    "write_pgm",
    "write_ppm",
    "derive_seed",
    "ensure_rng",
    "spawn",
    "check_image_chw",
    "check_in_range",
    "check_label_map",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_shape",
]
