"""The shipped checkers, one module per invariant family."""

from __future__ import annotations

from repro.analysis.checkers.engine_mode import EngineModeChecker
from repro.analysis.checkers.fork_purity import ForkPurityChecker
from repro.analysis.checkers.fp32 import Fp32FirewallChecker
from repro.analysis.checkers.knobs import KnobSurfaceChecker
from repro.analysis.checkers.rng import RngDisciplineChecker

#: Instantiation order fixes the report order of equal-position
#: findings; keep alphabetical by invariant name.
CHECKER_CLASSES = (
    EngineModeChecker,
    ForkPurityChecker,
    Fp32FirewallChecker,
    KnobSurfaceChecker,
    RngDisciplineChecker,
)

__all__ = [
    "CHECKER_CLASSES",
    "EngineModeChecker",
    "ForkPurityChecker",
    "Fp32FirewallChecker",
    "KnobSurfaceChecker",
    "RngDisciplineChecker",
]
