"""Tests for the rasterisation primitives (including property tests)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset import rasterize


def _grid(h=40, w=40):
    return np.zeros((h, w), dtype=np.int16)


class TestDrawDisk:
    def test_area_close_to_pi_r2(self):
        grid = _grid(100, 100)
        painted = rasterize.draw_disk(grid, (50, 50), 20, 1)
        assert painted == pytest.approx(np.pi * 400, rel=0.05)
        assert (grid == 1).sum() == painted

    def test_zero_radius_paints_nothing(self):
        grid = _grid()
        assert rasterize.draw_disk(grid, (5, 5), 0, 1) == 0

    def test_fully_outside_paints_nothing(self):
        grid = _grid()
        assert rasterize.draw_disk(grid, (-50, -50), 3, 1) == 0

    def test_clipping_at_border(self):
        grid = _grid(20, 20)
        painted = rasterize.draw_disk(grid, (0, 0), 5, 1)
        assert 0 < painted < np.pi * 25

    @given(st.floats(0, 39), st.floats(0, 39), st.floats(0.5, 10))
    @settings(max_examples=40, deadline=None)
    def test_painted_cells_within_radius(self, r, c, radius):
        grid = _grid()
        rasterize.draw_disk(grid, (r, c), radius, 1)
        rows, cols = np.nonzero(grid)
        if rows.size:
            dist = np.sqrt((rows - r) ** 2 + (cols - c) ** 2)
            assert dist.max() <= radius + 1e-9


class TestDrawRect:
    def test_exact_area(self):
        grid = _grid()
        painted = rasterize.draw_rect(grid, 5, 6, 4, 7, 2)
        assert painted == 4 * 7
        assert (grid == 2).sum() == 28

    def test_clipped_area(self):
        grid = _grid(10, 10)
        painted = rasterize.draw_rect(grid, 8, 8, 5, 5, 1)
        assert painted == 4  # 2x2 corner

    def test_degenerate(self):
        grid = _grid()
        assert rasterize.draw_rect(grid, 0, 0, 0, 5, 1) == 0


class TestOrientedRect:
    def test_axis_aligned_matches_rect_area(self):
        grid = _grid()
        painted = rasterize.draw_oriented_rect(grid, (20, 20), 10, 4,
                                               0.0, 1)
        # Cell-centre rasterisation with inclusive bounds covers
        # (length+1) x (width+1) cells for integer extents.
        assert 10 * 4 <= painted <= 11 * 5

    def test_rotation_preserves_area_roughly(self):
        areas = []
        for heading in (0.0, np.pi / 6, np.pi / 4, np.pi / 2):
            grid = _grid()
            areas.append(rasterize.draw_oriented_rect(
                grid, (20, 20), 12, 5, heading, 1))
        assert max(areas) / min(areas) < 1.4

    def test_heading_rotates_footprint(self):
        horizontal = _grid()
        rasterize.draw_oriented_rect(horizontal, (20, 20), 12, 3, 0.0, 1)
        vertical = _grid()
        rasterize.draw_oriented_rect(vertical, (20, 20), 12, 3,
                                     np.pi / 2, 1)
        rows_h, cols_h = np.nonzero(horizontal)
        rows_v, cols_v = np.nonzero(vertical)
        assert np.ptp(cols_h) > np.ptp(rows_h)  # long axis horizontal
        assert np.ptp(rows_v) > np.ptp(cols_v)  # long axis vertical

    def test_outside_returns_zero(self):
        grid = _grid()
        assert rasterize.draw_oriented_rect(grid, (-100, -100), 5, 2,
                                            0.3, 1) == 0

    def test_mask_offset_consistent(self):
        result = rasterize.oriented_rect_mask((40, 40), (10, 10), 6, 3,
                                              0.5)
        assert result is not None
        mask, (r0, c0) = result
        assert r0 >= 0 and c0 >= 0
        assert mask.any()


class TestThickLine:
    def test_horizontal_line_area(self):
        grid = _grid(20, 60)
        painted = rasterize.draw_thick_line(grid, (10, 5), (10, 55), 4, 1)
        # 50 long x (4+1 inclusive-bound) wide plus rounded caps.
        assert 50 * 4 <= painted <= 56 * 5.5

    def test_cells_within_half_width(self):
        grid = _grid(40, 40)
        rasterize.draw_thick_line(grid, (5, 5), (35, 30), 6, 1)
        rows, cols = np.nonzero(grid)
        # Distance from segment must be <= half width.
        p0 = np.array([5.0, 5.0])
        p1 = np.array([35.0, 30.0])
        d = p1 - p0
        for r, c in zip(rows, cols):
            p = np.array([r, c], dtype=float)
            t = np.clip(np.dot(p - p0, d) / np.dot(d, d), 0, 1)
            dist = np.linalg.norm(p - (p0 + t * d))
            assert dist <= 3.0 + 1e-9

    def test_degenerate_segment_is_disk(self):
        grid = _grid()
        painted = rasterize.draw_thick_line(grid, (20, 20), (20, 20), 8, 1)
        assert painted == pytest.approx(np.pi * 16, rel=0.15)

    def test_zero_width_paints_nothing(self):
        grid = _grid()
        assert rasterize.draw_thick_line(grid, (0, 0), (10, 10), 0, 1) == 0
