"""Circuit breaker gating the broker's worker-pool path.

The broker's episode waves normally run on the persistent fork-worker
pool.  When the pool faults (worker deaths past the respawn budget,
collect deadlines), each faulted wave is already retried on the
bit-identical inline path — but paying fork + fault-detection latency
on *every* wave of a persistently broken pool would be absurd.  The
:class:`CircuitBreaker` is the standard answer:

* **closed** — pool path in use; consecutive faults are counted and
  any success resets the count.
* **open** — after ``threshold`` consecutive faults the breaker trips:
  every wave routes straight to the inline fallback (degraded mode)
  until ``cooldown_s`` has elapsed.
* **half-open** — the first wave after the cooldown is a *probe* sent
  back through the pool: success closes the breaker, failure re-opens
  it and restarts the cooldown.

The clock is injectable (``clock=time.monotonic`` by default) so the
state machine is testable as a pure unit with a fake clock — no
sleeping, no processes (``tests/serve/test_breaker.py``).
"""

from __future__ import annotations

import time

from repro.utils.validation import check_non_negative, check_positive

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-fault breaker with a cooldown and recovery probes.

    Single-threaded by design: the broker's admission loop is the only
    caller, so state transitions need no locking.  ``allow()`` answers
    "may this wave use the pool?" and performs the open -> half-open
    transition when the cooldown has elapsed; ``record_success`` /
    ``record_failure`` feed the outcome back.
    """

    def __init__(self, threshold: int, cooldown_s: float, clock=None):
        check_positive("threshold", threshold)
        check_non_negative("cooldown_s", cooldown_s)
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock if clock is not None else time.monotonic
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.stats: dict[str, int] = {
            "failures": 0,
            "opens": 0,
            "probes": 0,
        }

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` (probing)."""
        return self._state

    def allow(self) -> bool:
        """True when the next wave may use the pool path.

        In the open state this is where the cooldown is checked: once
        ``cooldown_s`` has elapsed the breaker moves to half-open and
        admits exactly one probe; further calls return False until the
        probe's outcome is recorded.
        """
        if self._state == CLOSED:
            return True
        if self._state == OPEN:
            if self._clock() - self._opened_at < self.cooldown_s:
                return False
            self._state = HALF_OPEN
            self._probe_in_flight = False
        if self._probe_in_flight:
            return False
        self._probe_in_flight = True
        self.stats["probes"] += 1
        return True

    def record_success(self) -> None:
        """A pool wave completed: reset the streak, close if probing."""
        self._consecutive_failures = 0
        self._probe_in_flight = False
        self._state = CLOSED

    def record_failure(self) -> None:
        """A pool fault: trip after ``threshold`` consecutive ones.

        A half-open probe failure re-opens immediately (the cooldown
        restarts from now) — a recovering pool gets one chance per
        cooldown, not ``threshold`` of them.
        """
        self.stats["failures"] += 1
        self._probe_in_flight = False
        if self._state == HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        if self._state == CLOSED and \
                self._consecutive_failures >= self.threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self.stats["opens"] += 1
