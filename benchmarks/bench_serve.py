"""SERVE bench: monitoring-as-a-service under open-loop traffic.

The serving stack (PR 9) turns the episode engine into a shared
online service: many concurrent clients submit zone checks, the
``ServeBroker`` micro-batches them over a short admission window, and
each admitted wave runs as one joint engine pass.  This bench measures
the operational story the README's Serving section tells:

* **capacity** — closed-loop checks/sec through the broker (each
  round stacks a full wave, so this is the engine's joint-pass
  throughput as seen *through* the asyncio front door);
* **sustained open-loop traffic** — requests arrive on a fixed clock
  at a fraction of measured capacity, whether or not earlier requests
  have finished (the honest serving regime): sustained checks/sec plus
  client-side p50/p99 latency;
* **overload burst** — a tiny admission queue is deliberately flooded;
  the no-silent-drop ledger must balance: every request is either
  served or shed with a typed ``AdmissionRejected`` (gated boolean);
* **persistent-pool wavefront ratio** — ``workers=2`` behind the
  persistent shared-memory pool vs the inline exact engine on a
  scenario fleet.  The fork-per-call pool this replaced measured
  ~0.72x here (it re-forked and re-pickled the model every run); the
  persistent pool forks once and ships frames by shared memory, so the
  ratio is gated ``>= 1.0x`` on multi-core hosts (``min_cores`` spec —
  a 1-core host has no parallelism to buy back the IPC with).

* **fault storm** (PR 10) — a seeded chaos plan SIGKILLs workers while
  episode traffic is in flight; supervision respawns them and re-runs
  the lost tasks, so every admitted request still resolves (gated
  boolean ``serve_no_silent_drops_under_faults``) and the wall-clock
  overhead per death is recorded as recovery latency (tracked, not
  gated — it is dominated by the model re-fork);
* **degraded-mode throughput** — the circuit breaker is tripped open
  and episode throughput on the inline fallback path is compared to a
  ``workers=1`` baseline broker.  Both sides run the same single-core
  compute, so the ratio is machine-robust and gated
  (``degraded_throughput_ratio``): degraded mode must not be
  meaningfully slower than honest inline serving.

Raw checks/sec is machine-dependent, so ``serve_throughput_cps`` is
gated only on multi-core hosts too; the boolean contract and the
tracked trajectory cover the 1-core CI box.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np

from _bench_utils import best_of, write_bench_summary
from repro.core import EngineConfig, EpisodeScheduler
from repro.eval.reporting import format_table, format_title
from repro.scenarios import scenario_sweep
from repro.serve import AdmissionRejected, ServeBroker, ServeConfig
from repro.serve.chaos import FaultPlan, FaultSpec, arm
from repro.utils.geometry import Box

BENCH_SMOKE = os.environ.get("BENCH_SMOKE") == "1"

ZONES_PER_FRAME = 6
CLOSED_LOOP_ROUNDS = 3 if BENCH_SMOKE else 8
OPEN_LOOP_REQUESTS = 48 if BENCH_SMOKE else 240
#: Offered open-loop rate as a fraction of measured capacity — far
#: enough below saturation that queueing delay, not shedding, is the
#: story, while still exercising admission batching.
OPEN_LOOP_UTILISATION = 0.6
OVERLOAD_REQUESTS = 24 if BENCH_SMOKE else 64
#: The wavefront fleet (mirrors bench_episode_engine's multi-stream
#: scale so the ratios are comparable across the two benches).
SCENARIOS = ("day_nominal", "sunset_ood")
STREAM_SHAPE = (48, 64)
STREAMS_PER_SCENARIO = 2 if BENCH_SMOKE else 4
FRAMES_PER_STREAM = 2 if BENCH_SMOKE else 4
REPEATS = 3 if BENCH_SMOKE else 5
#: Fault-storm / degraded-mode episode load (PR 10).
STORM_EPISODES = 4 if BENCH_SMOKE else 8
STORM_KILLS = 2 if BENCH_SMOKE else 3
DEGRADED_EPISODES = 4 if BENCH_SMOKE else 8


def _boxes(frame, n=ZONES_PER_FRAME):
    height, width = frame.shape[-2:]
    return [Box((k * 7) % max(height - 16, 1),
                (k * 11) % max(width - 16, 1), 14, 14)
            for k in range(n)]


async def _closed_loop_capacity(broker, frame, boxes) -> float:
    """Checks/sec with each wave fully stacked (the capacity probe)."""
    await broker.check_zones(frame, boxes)  # warm-up
    best = float("inf")
    for _ in range(CLOSED_LOOP_ROUNDS):
        start = time.perf_counter()
        await broker.check_zones(frame, boxes)
        best = min(best, time.perf_counter() - start)
    return len(boxes) / best


async def _open_loop(broker, frame, boxes, rate_cps, total):
    """Fire ``total`` requests on a fixed clock; gather latencies."""
    loop = asyncio.get_running_loop()
    latencies: list[float] = []
    rejected = 0

    async def one(box):
        nonlocal rejected
        start = time.perf_counter()
        try:
            await broker.check_zone(frame, box)
        except AdmissionRejected:
            rejected += 1
        else:
            latencies.append(time.perf_counter() - start)

    interval = 1.0 / rate_cps
    tasks = []
    t0 = loop.time()
    wall_start = time.perf_counter()
    for k in range(total):
        delay = (t0 + k * interval) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(
            one(boxes[k % len(boxes)])))
    await asyncio.gather(*tasks)
    wall = time.perf_counter() - wall_start
    return latencies, rejected, wall


async def _overload_burst(model, config, frame, box):
    """Flood a deliberately tiny queue; return the shedding ledger."""
    serve = ServeConfig(queue_depth=2, max_wave=2,
                        admission_window_ms=0.0)
    async with ServeBroker(model, config=config, serve=serve,
                           rng=0) as broker:
        outcomes = await asyncio.gather(
            *(broker.check_zone(frame, box)
              for _ in range(OVERLOAD_REQUESTS)),
            return_exceptions=True)
    served = sum(1 for o in outcomes
                 if not isinstance(o, BaseException))
    rejected = sum(1 for o in outcomes
                   if isinstance(o, AdmissionRejected))
    stray = OVERLOAD_REQUESTS - served - rejected
    stats = broker.stats
    ledger_ok = (stray == 0
                 and stats["admitted"] == served
                 and stats["rejected_queue_full"] == rejected)
    return {"requests": OVERLOAD_REQUESTS, "served": served,
            "rejected_queue_full": rejected, "queue_depth": 2,
            "ledger_balanced": bool(ledger_ok)}


async def _serve_phase(model, config, frame):
    boxes = _boxes(frame)
    serve = ServeConfig(admission_window_ms=2.0)
    async with ServeBroker(model, config=config, serve=serve,
                           rng=0) as broker:
        capacity_cps = await _closed_loop_capacity(broker, frame,
                                                   boxes)
        offered_cps = capacity_cps * OPEN_LOOP_UTILISATION
        before = dict(broker.stats)  # capacity probe's admissions
        latencies, rejected, wall = await _open_loop(
            broker, frame, boxes, offered_cps, OPEN_LOOP_REQUESTS)
    stats = broker.stats
    admitted = stats["admitted"] - before["admitted"]
    open_ok = (len(latencies) + rejected == OPEN_LOOP_REQUESTS
               and admitted == len(latencies))
    overload = await _overload_burst(model, config, frame, boxes[0])
    stats = dict(stats)
    stats["waves"] = stats["waves"] - before["waves"]  # open loop only
    return (capacity_cps, offered_cps, latencies, rejected, wall,
            stats, open_ok, overload)


async def _episode_load(broker, frame, count, seed0=0):
    """``count`` concurrent two-frame episodes; outcomes + wall."""
    start = time.perf_counter()
    outcomes = await asyncio.gather(
        *(broker.run_episode([frame, frame], seed=seed0 + k,
                             name=f"load{seed0 + k}")
          for k in range(count)),
        return_exceptions=True)
    return outcomes, time.perf_counter() - start


async def _fault_storm(model, config, frame):
    """Seeded worker kills under episode load: the recovery ledger."""
    serve = ServeConfig(workers=2, admission_window_ms=2.0)
    engine = EngineConfig(max_respawns=8)
    async with ServeBroker(model, config=config, engine=engine,
                           serve=serve, rng=0) as broker:
        clean, clean_wall = await _episode_load(
            broker, frame, STORM_EPISODES)
    assert all(not isinstance(o, BaseException) for o in clean)

    broker = ServeBroker(model, config=config, engine=engine,
                         serve=serve, rng=0)
    arm(broker, FaultPlan.storm(seed=0, workers=2, kills=STORM_KILLS,
                                tasks_per_worker=2))
    async with broker:
        outcomes, storm_wall = await _episode_load(
            broker, frame, STORM_EPISODES)
    stats = broker.stats
    served = sum(1 for o in outcomes
                 if not isinstance(o, BaseException))
    deaths = stats["worker_deaths"]
    ledger_ok = (served == STORM_EPISODES
                 and stats["admitted"] == stats["episode_steps"]
                 and stats["timed_out"] == 0)
    recovery_ms = ((storm_wall - clean_wall) * 1e3 / deaths
                   if deaths else 0.0)
    return {"episodes": STORM_EPISODES, "kills_armed": STORM_KILLS,
            "served": served, "worker_deaths": deaths,
            "respawns": stats["respawns"],
            "tasks_resubmitted": stats["tasks_resubmitted"],
            "pool_faults": stats["pool_faults"],
            "degraded_waves": stats["degraded_waves"],
            "wall_clean_s": round(clean_wall, 3),
            "wall_storm_s": round(storm_wall, 3),
            "recovery_ms_per_death": round(max(recovery_ms, 0.0), 2),
            "ledger_balanced": bool(ledger_ok)}


async def _degraded_throughput(model, config, frame):
    """Breaker forced open: fallback-path vs honest inline serving."""
    serve1 = ServeConfig(workers=1, admission_window_ms=2.0)
    async with ServeBroker(model, config=config, serve=serve1,
                           rng=0) as broker:
        base, base_wall = await _episode_load(
            broker, frame, DEGRADED_EPISODES)
    assert all(not isinstance(o, BaseException) for o in base)

    serve2 = ServeConfig(workers=2, breaker_threshold=1,
                         breaker_cooldown_s=600.0,
                         admission_window_ms=2.0)
    broker = ServeBroker(model, config=config,
                         engine=EngineConfig(max_respawns=0),
                         serve=serve2, rng=0)
    # Kill whichever worker picks the tripwire task; with respawn
    # budget 0 the pool fault opens the breaker immediately.
    arm(broker, FaultPlan(specs=(
        FaultSpec("kill_worker", worker=0, at_task=0),
        FaultSpec("kill_worker", worker=1, at_task=0))))
    async with broker:
        await broker.run_episode([frame], seed=999, name="tripwire")
        arm(broker, None)
        degraded, degraded_wall = await _episode_load(
            broker, frame, DEGRADED_EPISODES, seed0=100)
    stats = broker.stats
    served = sum(1 for o in degraded
                 if not isinstance(o, BaseException))
    ledger_ok = (served == DEGRADED_EPISODES
                 and stats["admitted"] == stats["episode_steps"])
    base_eps = DEGRADED_EPISODES / base_wall
    degraded_eps = DEGRADED_EPISODES / degraded_wall
    return {"episodes": DEGRADED_EPISODES,
            "baseline_eps": round(base_eps, 2),
            "degraded_eps": round(degraded_eps, 2),
            "breaker_state": broker.breaker_state,
            "pool_faults": stats["pool_faults"],
            "degraded_waves": stats["degraded_waves"],
            "ledger_balanced": bool(ledger_ok)}, \
        degraded_eps / base_eps


def _wavefront_ratio(model, config, episodes):
    """Inline exact vs persistent ``workers=2``, pool reused across
    every repeat (the economics the tentpole bought)."""
    inline = EpisodeScheduler(model, config)
    t_inline = best_of(lambda: inline.run(episodes), REPEATS)
    with EpisodeScheduler(
            model, config,
            engine=EngineConfig(workers=2)) as sharded:
        effective = sharded.effective_workers
        t_workers = best_of(lambda: sharded.run(episodes), REPEATS)
    return t_inline, t_workers, effective


def test_serve_broker_load(system, emit):
    config = system.pipeline_config()
    frame = system.test_samples[0].image
    (capacity_cps, offered_cps, latencies, rejected, wall, stats,
     open_ok, overload) = asyncio.run(
        _serve_phase(system.model, config, frame))

    lat_ms = np.sort(np.asarray(latencies, dtype=np.float64)) * 1e3
    p50 = float(np.percentile(lat_ms, 50))
    p99 = float(np.percentile(lat_ms, 99))
    throughput_cps = len(latencies) / wall

    episodes = [
        spec.with_camera(STREAM_SHAPE)
        .episode_request(i, FRAMES_PER_STREAM)
        for spec in scenario_sweep(*SCENARIOS)
        for i in range(STREAMS_PER_SCENARIO)
    ]
    t_inline, t_workers, effective = _wavefront_ratio(
        system.model, config, episodes)

    storm = asyncio.run(_fault_storm(system.model, config, frame))
    degraded, degraded_ratio = asyncio.run(
        _degraded_throughput(system.model, config, frame))

    no_silent_drops = bool(open_ok and overload["ledger_balanced"])
    no_drops_under_faults = bool(storm["ledger_balanced"]
                                 and degraded["ledger_balanced"])
    summary = {
        "cpu_count": os.cpu_count(),
        "zones_per_frame": ZONES_PER_FRAME,
        "serve_capacity_cps": round(capacity_cps, 2),
        "serve_throughput_cps": round(throughput_cps, 2),
        "serve_p50_ms": round(p50, 3),
        "serve_p99_ms": round(p99, 3),
        "serve_no_silent_drops": no_silent_drops,
        "open_loop": {
            "requests": OPEN_LOOP_REQUESTS,
            "offered_cps": round(offered_cps, 2),
            "utilisation": OPEN_LOOP_UTILISATION,
            "served": len(latencies),
            "rejected_queue_full": rejected,
            "wall_s": round(wall, 3),
            "waves": stats["waves"],
            "max_wave": stats["max_wave"],
        },
        "overload": overload,
        "wavefront": {
            "episodes": len(episodes),
            "frames": len(episodes) * FRAMES_PER_STREAM,
            "effective_workers": effective,
            "t_inline_ms": round(t_inline * 1e3, 3),
            "t_workers2_ms": round(t_workers * 1e3, 3),
        },
        "workers2_wavefront_ratio": round(t_inline / t_workers, 3),
        "fault_storm": storm,
        "degraded": degraded,
        "serve_no_silent_drops_under_faults": no_drops_under_faults,
        "degraded_throughput_ratio": round(degraded_ratio, 3),
    }
    out = write_bench_summary("BENCH_serve.json", summary,
                              smoke=BENCH_SMOKE)

    emit("\n" + format_title(
        "SERVE: broker capacity, open-loop latency, backpressure"))
    emit(format_table(
        ["metric", "value"],
        [["capacity (closed loop)", f"{capacity_cps:.1f} checks/s"],
         ["offered (open loop)",
          f"{offered_cps:.1f} checks/s "
          f"({OPEN_LOOP_UTILISATION:.0%} util)"],
         ["sustained", f"{throughput_cps:.1f} checks/s"],
         ["latency p50 / p99", f"{p50:.1f} / {p99:.1f} ms"],
         ["admission waves",
          f"{stats['waves']} (largest {stats['max_wave']})"]],
        title=f"{OPEN_LOOP_REQUESTS} open-loop zone checks on a "
              f"{frame.shape[-2]}x{frame.shape[-1]} frame:"))
    emit(f"overload burst (queue_depth=2): "
         f"{overload['served']} served + "
         f"{overload['rejected_queue_full']} typed rejections = "
         f"{overload['requests']} submitted; ledger balanced: "
         f"{no_silent_drops}")
    wf = summary["wavefront"]
    emit(f"wavefront fleet ({wf['episodes']} episodes x "
         f"{FRAMES_PER_STREAM} frames, effective_workers="
         f"{wf['effective_workers']}): inline "
         f"{wf['t_inline_ms']:.0f} -> workers=2 "
         f"{wf['t_workers2_ms']:.0f} ms "
         f"({summary['workers2_wavefront_ratio']:.2f}x; gated >= "
         "1.0x on multi-core hosts)")
    emit(f"fault storm ({storm['kills_armed']} kills armed over "
         f"{storm['episodes']} episodes): {storm['worker_deaths']} "
         f"death(s), {storm['respawns']} respawn(s), "
         f"{storm['tasks_resubmitted']} task(s) re-executed, "
         f"{storm['served']}/{storm['episodes']} served; recovery "
         f"~{storm['recovery_ms_per_death']:.0f} ms/death; ledger "
         f"balanced: {storm['ledger_balanced']}")
    emit(f"degraded mode (breaker {degraded['breaker_state']}): "
         f"{degraded['degraded_eps']:.1f} eps/s inline-fallback vs "
         f"{degraded['baseline_eps']:.1f} eps/s workers=1 baseline "
         f"({summary['degraded_throughput_ratio']:.2f}x, gated)")
    emit(f"summary -> {out}")

    # Hard contracts, machine-independent: the ledgers balance (a
    # safety check is served, shed with a typed rejection, or timed
    # out typed — never silently dropped), with or without faults,
    # and the open-loop run actually served work.
    assert no_silent_drops, "serving ledger did not balance"
    assert no_drops_under_faults, "fault-storm ledger did not balance"
    assert latencies, "open-loop run served nothing"
    assert p99 >= p50
