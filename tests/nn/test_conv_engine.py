"""Tests for the layout-aware inference conv engine.

Contracts:

* the blocked engine agrees with the reference im2col+GEMM path — bit
  for bit when the geometry fits a single block, to float32
  reassociation tolerance when the column matrix is split;
* blocking depends only on per-sample geometry, so batched forwards
  equal per-sample forwards bit for bit (the batched MC engine's
  invariant);
* the NHWC-internal option matches to reassociation tolerance (its GEMM
  reduction order differs by construction);
* stride-0 broadcast batches are computed once and re-broadcast.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F


@pytest.fixture(autouse=True)
def _restore_engine():
    saved = F.get_conv_engine()
    yield
    F.set_conv_engine(**saved)


def _case(rng, n, cin, cout, h, w, k=3, stride=1, padding=1, dilation=1):
    x = rng.normal(size=(n, cin, h, w)).astype(np.float32)
    wt = rng.normal(size=(cout, cin, k, k)).astype(np.float32)
    b = rng.normal(size=cout).astype(np.float32)
    return x, wt, b, stride, padding, dilation


CASES = [
    dict(n=1, cin=3, cout=8, h=24, w=32),                      # stem-like
    dict(n=4, cin=8, cout=8, h=24, w=32, stride=2),            # strided
    dict(n=2, cin=8, cout=4, h=12, w=16, padding=4, dilation=4),
    dict(n=3, cin=8, cout=8, h=9, w=11),                       # odd sizes
    dict(n=2, cin=4, cout=6, h=8, w=8, k=1, padding=0),        # 1x1
]


class TestBlockedEngine:
    @pytest.mark.parametrize("kw", CASES)
    def test_blocked_matches_reference(self, kw):
        x, wt, b, s, p, d = _case(np.random.default_rng(0), **kw)
        with F.conv_engine(mode="reference"):
            ref = F.conv2d_infer(x, wt, b, s, p, d)
        with F.conv_engine(mode="blocked"):
            out = F.conv2d_infer(x, wt, b, s, p, d)
        np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("kw", CASES)
    def test_blocked_matches_training_forward(self, kw):
        x, wt, b, s, p, d = _case(np.random.default_rng(1), **kw)
        ref, _ = F.conv2d_forward(x, wt, b, s, p, d)
        out = F.conv2d_infer(x, wt, b, s, p, d)
        np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-5)

    def test_single_block_is_bit_identical_to_reference(self):
        # Geometry far below the block budget -> the blocked engine
        # degenerates to exactly the reference GEMM.
        x, wt, b, s, p, d = _case(np.random.default_rng(2), n=2, cin=4,
                                  cout=4, h=8, w=8)
        with F.conv_engine(mode="reference"):
            ref = F.conv2d_infer(x, wt, b, s, p, d)
        with F.conv_engine(mode="blocked"):
            out = F.conv2d_infer(x, wt, b, s, p, d)
        assert np.array_equal(out, ref)

    def test_batched_equals_per_sample_bit_for_bit(self):
        # The invariant the batched MC-dropout engine builds on: the
        # block split never depends on the batch size.  Use a spatial
        # size large enough to force multiple blocks at a small budget.
        rng = np.random.default_rng(3)
        x = rng.normal(size=(5, 8, 48, 64)).astype(np.float32)
        wt = rng.normal(size=(8, 8, 3, 3)).astype(np.float32)
        with F.conv_engine(mode="blocked", block_kib=64):
            batched = F.conv2d_infer(x, wt, None, padding=1)
            singles = np.concatenate(
                [F.conv2d_infer(x[i:i + 1], wt, None, padding=1)
                 for i in range(x.shape[0])])
        assert np.array_equal(batched, singles)

    def test_block_size_does_not_change_results_materially(self):
        x, wt, b, s, p, d = _case(np.random.default_rng(4), n=2, cin=8,
                                  cout=8, h=48, w=64)
        outs = []
        for kib in (1, 16, 4096):
            with F.conv_engine(mode="blocked", block_kib=kib):
                outs.append(F.conv2d_infer(x, wt, b, s, p, d))
        np.testing.assert_allclose(outs[0], outs[1], rtol=1e-5, atol=1e-5)
        np.testing.assert_allclose(outs[0], outs[2], rtol=1e-5, atol=1e-5)

    def test_broadcast_batch_computed_once(self):
        rng = np.random.default_rng(5)
        one = rng.normal(size=(1, 4, 8, 8)).astype(np.float32)
        wt = rng.normal(size=(4, 4, 3, 3)).astype(np.float32)
        tiled = np.broadcast_to(one, (6,) + one.shape[1:])
        assert tiled.strides[0] == 0
        y = F.conv2d_infer(tiled, wt, None, padding=1)
        assert y.shape[0] == 6
        assert y.strides[0] == 0  # result is a broadcast view too
        ref = F.conv2d_infer(one, wt, None, padding=1)
        for i in range(6):
            assert np.array_equal(y[i], ref[0])


class TestNhwcOption:
    @pytest.mark.parametrize("kw", CASES)
    def test_nhwc_matches_nchw_to_reassociation(self, kw):
        x, wt, b, s, p, d = _case(np.random.default_rng(6), **kw)
        with F.conv_engine(layout="nhwc"):
            nhwc = F.conv2d_infer(x, wt, b, s, p, d)
        with F.conv_engine(layout="nchw"):
            nchw = F.conv2d_infer(x, wt, b, s, p, d)
        np.testing.assert_allclose(nhwc, nchw, rtol=1e-4, atol=1e-4)


class TestEngineConfig:
    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            F.set_conv_engine(mode="banana")
        with pytest.raises(ValueError):
            F.set_conv_engine(layout="chwn")
        with pytest.raises(ValueError):
            F.set_conv_engine(block_kib=0)

    def test_context_manager_restores(self):
        before = F.get_conv_engine()
        with F.conv_engine(mode="reference", block_kib=7):
            assert F.get_conv_engine()["mode"] == "reference"
        assert F.get_conv_engine() == before

    def test_context_manager_restores_on_error(self):
        before = F.get_conv_engine()
        with pytest.raises(RuntimeError):
            with F.conv_engine(mode="reference"):
                raise RuntimeError("boom")
        assert F.get_conv_engine() == before

    def test_clear_conv_buffers(self):
        x, wt, b, s, p, d = _case(np.random.default_rng(7), n=1, cin=4,
                                  cout=4, h=8, w=8)
        F.conv2d_infer(x, wt, b, s, p, d)
        F.clear_conv_buffers()
        out = F.conv2d_infer(x, wt, b, s, p, d)
        assert out.shape == (1, 4, 8, 8)


class TestConvLayerDispatch:
    def test_eval_forward_matches_training_forward(self):
        layer = nn.Conv2d(3, 5, 3, padding=1, rng=0)
        x = np.random.default_rng(8).normal(
            size=(2, 3, 10, 12)).astype(np.float32)
        layer.train()
        y_train = layer(x)
        layer.eval()
        y_eval = layer(x)
        np.testing.assert_allclose(y_eval, y_train, rtol=1e-5, atol=1e-5)

    def test_eval_forward_retains_no_cache(self):
        layer = nn.Conv2d(3, 5, 3, padding=1, rng=0)
        layer.eval()
        layer(np.zeros((1, 3, 8, 8), dtype=np.float32))
        assert layer._cache is None
        with pytest.raises(RuntimeError, match="before forward"):
            layer.backward(np.zeros((1, 5, 8, 8), dtype=np.float32))

    def test_training_backward_unaffected(self):
        layer = nn.Conv2d(2, 3, 3, padding=1, rng=0)
        x = np.random.default_rng(9).normal(
            size=(1, 2, 6, 6)).astype(np.float32)
        layer.train()
        y = layer(x)
        dx = layer.backward(np.ones_like(y))
        assert dx.shape == x.shape
