"""Tests for dataset assembly, splitting and batching."""

import numpy as np
import pytest

from repro.dataset.classes import NUM_CLASSES, busy_road_mask, class_mask, UavidClass
from repro.dataset.conditions import SUNSET
from repro.dataset.generator import (
    DatasetConfig,
    class_frequencies,
    generate_dataset,
    iterate_minibatches,
    reshoot_under_condition,
    split_by_scene,
    stack_batch,
)


@pytest.fixture(scope="module")
def config():
    return DatasetConfig(num_scenes=4, windows_per_scene=3,
                         image_shape=(32, 48), seed=5)


@pytest.fixture(scope="module")
def dataset(config):
    return generate_dataset(config)


class TestClasses:
    def test_class_mask(self):
        labels = np.array([[0, 2], [5, 7]])
        mask = class_mask(labels, (UavidClass.ROAD, UavidClass.HUMAN))
        np.testing.assert_array_equal(mask, [[False, True],
                                             [False, True]])

    def test_busy_road_mask(self):
        labels = np.array([[2, 5, 6, 1]])
        np.testing.assert_array_equal(busy_road_mask(labels),
                                      [[True, True, True, False]])


class TestGeneration:
    def test_size(self, dataset, config):
        assert len(dataset) == config.num_scenes * config.windows_per_scene

    def test_sample_format(self, dataset):
        s = dataset[0]
        assert s.image.shape == (3, 32, 48)
        assert s.image.dtype == np.float32
        assert s.labels.shape == (32, 48)
        assert s.labels.dtype == np.int16

    def test_deterministic(self, config, dataset):
        again = generate_dataset(config)
        np.testing.assert_array_equal(dataset[0].image, again[0].image)
        np.testing.assert_array_equal(dataset[-1].labels,
                                      again[-1].labels)

    def test_conditions_from_training_set(self, dataset, config):
        names = {s.condition for s in dataset}
        allowed = {c.name for c in config.conditions}
        assert names <= allowed

    def test_scene_seeds_distinct(self, dataset, config):
        seeds = {s.scene_seed for s in dataset}
        assert len(seeds) == config.num_scenes


class TestReshoot:
    def test_same_geography_same_labels(self, config, dataset):
        shifted = reshoot_under_condition(config, SUNSET)
        assert len(shifted) == len(dataset)
        for a, b in zip(dataset, shifted):
            np.testing.assert_array_equal(a.labels, b.labels)
            assert b.condition == "sunset"

    def test_images_differ(self, config, dataset):
        shifted = reshoot_under_condition(config, SUNSET)
        assert not np.array_equal(dataset[0].image, shifted[0].image)


class TestSplit:
    def test_scene_level_disjoint(self, dataset):
        train, val, test = split_by_scene(dataset, 0.25, 0.25)
        seeds = [({s.scene_seed for s in split})
                 for split in (train, val, test)]
        assert not (seeds[0] & seeds[1])
        assert not (seeds[0] & seeds[2])
        assert not (seeds[1] & seeds[2])

    def test_partition_complete(self, dataset):
        train, val, test = split_by_scene(dataset, 0.25, 0.25)
        assert len(train) + len(val) + len(test) == len(dataset)

    def test_deterministic_split(self, dataset):
        a = split_by_scene(dataset, 0.25, 0.25)
        b = split_by_scene(dataset, 0.25, 0.25)
        assert [len(x) for x in a] == [len(x) for x in b]

    def test_impossible_split_raises(self, dataset):
        with pytest.raises(ValueError, match="not enough scenes"):
            split_by_scene(dataset, 0.45, 0.45)

    def test_invalid_fractions_raise(self, dataset):
        with pytest.raises(ValueError):
            split_by_scene(dataset, 0.8, 0.4)


class TestBatching:
    def test_stack_batch(self, dataset):
        x, y = stack_batch(dataset[:3])
        assert x.shape == (3, 3, 32, 48)
        assert y.shape == (3, 32, 48)
        assert y.dtype == np.int64

    def test_stack_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            stack_batch([])

    def test_minibatches_cover_all_samples(self, dataset):
        seen = 0
        for x, y in iterate_minibatches(dataset, 4, rng=0, epochs=1):
            seen += x.shape[0]
        assert seen == len(dataset)

    def test_minibatches_epochs(self, dataset):
        batches = list(iterate_minibatches(dataset, 4, rng=0, epochs=2))
        total = sum(x.shape[0] for x, _ in batches)
        assert total == 2 * len(dataset)

    def test_minibatch_shuffled(self, dataset):
        first_a = next(iter(iterate_minibatches(dataset, 4, rng=1)))
        first_b = next(iter(iterate_minibatches(dataset, 4, rng=2)))
        assert not np.array_equal(first_a[0], first_b[0])


class TestFrequencies:
    def test_sums_to_one(self, dataset):
        freq = class_frequencies(dataset)
        assert freq.shape == (NUM_CLASSES,)
        assert freq.sum() == pytest.approx(1.0)

    def test_vegetation_dominant_humans_rare(self, dataset):
        freq = class_frequencies(dataset)
        assert freq[int(UavidClass.LOW_VEGETATION)] > \
            freq[int(UavidClass.HUMAN)]

    def test_empty_returns_zeros(self):
        np.testing.assert_array_equal(class_frequencies([]),
                                      np.zeros(NUM_CLASSES))
