#!/usr/bin/env python3
"""Quickstart: the Fig. 2 landing pipeline, frame by frame and streamed.

Trains (or loads from cache) the scaled MSDnet, builds the monitored
landing pipeline, runs it on an unseen test frame, and prints the
decision trail — segmentation, zone candidates, monitor verdicts and
the final land/abort decision.  Then demonstrates the streaming episode
engine: named scenarios from the registry (``day_nominal``,
``sunset_ood``, ...) run as concurrent frame-stream episodes through
``EpisodeScheduler``.

Run:  python examples/quickstart.py
      REPRO_SMOKE=1 python examples/quickstart.py   # tiny CI-scale system
"""

import os

from repro.dataset import CLASS_NAMES, UavidClass, busy_road_mask
from repro.eval import (
    build_trained_system,
    format_kv,
    format_title,
    tiny_harness_config,
)
from repro.scenarios import scenario_sweep
from repro.segmentation import evaluate_model

SMOKE = os.environ.get("REPRO_SMOKE") == "1"

#: Scenario sweep for the streaming demo: nominal + the Fig. 4 shifts.
STREAM_SCENARIOS = ("day_nominal", "sunset_ood", "night_fog")


def main() -> None:
    print(format_title("Quickstart - monitored emergency-landing pipeline"))

    print("\n[1/4] building the trained system (cached after first run)...")
    system = build_trained_system(
        tiny_harness_config() if SMOKE else None, verbose=True)
    report = evaluate_model(system.model, system.test_samples)
    print(format_kv({
        "test mIoU": report.miou,
        "test pixel accuracy": report.accuracy,
        "road IoU": report.class_iou(UavidClass.ROAD),
        "model parameters": system.model.num_parameters(),
    }, title="\nsegmentation model:"))

    print("\n[2/4] assembling the Fig. 2 pipeline "
          "(core + monitor + decision module)...")
    pipeline = system.make_pipeline(monitor_enabled=True)

    print("\n[3/4] running episodes on unseen frames until one lands...")
    sample = system.test_samples[0]
    result = pipeline.run(sample.image)
    for candidate_sample in system.test_samples:
        candidate_result = pipeline.run(candidate_sample.image)
        if candidate_result.landed:
            sample, result = candidate_sample, candidate_result
            break
        print("  frame aborted (no safely buffered zone in view) "
              "- trying the next frame")

    print(format_kv({
        "candidates proposed": len(result.candidates),
        "monitor verdicts": len(result.verdicts),
        "decision": result.decision.action.value,
        "segmentation time": f"{result.timings_s['segmentation_s']:.3f} s",
        "monitoring time": f"{result.timings_s['monitoring_s']:.3f} s",
    }, title="episode:"))
    print("\ndecision log:")
    for line in result.decision.log:
        print(f"  - {line}")

    if result.landed:
        zone = result.selected_zone
        gt = zone.box.extract(sample.labels)
        classes = sorted({CLASS_NAMES[UavidClass(int(c))]
                          for c in set(gt.reshape(-1).tolist())})
        print(f"\naccepted zone at {zone.box} "
              f"(clearance {zone.clearance_m:.1f} m, "
              f"required {zone.required_clearance_m:.1f} m)")
        print(f"ground truth inside the zone: {classes}")
        print(f"busy road present: {bool(busy_road_mask(gt).any())}")
    else:
        print("\npipeline aborted -> the safety switch would engage "
              "Flight Termination (parachute).")

    print("\n[4/4] streaming scenario episodes through the engine...")
    shape = system.config.dataset.image_shape
    episodes = [
        spec.with_camera(shape).episode_request(index=0, num_frames=2)
        for spec in scenario_sweep(*STREAM_SCENARIOS)
    ]
    scheduler = system.make_scheduler()
    for episode in scheduler.run(episodes):
        outcomes = ", ".join(
            "land" if r.landed else "abort" for r in episode.results)
        print(f"  {episode.name:16s} -> {outcomes}")
    print("\n(workloads at scale: EpisodeScheduler batches the core "
          "segmentation across\nstreams and can shard or jointly batch "
          "the per-zone Bayesian checks --\nsee benchmarks/"
          "bench_episode_engine.py)")


if __name__ == "__main__":
    main()
