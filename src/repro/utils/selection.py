"""Greedy peak selection over dense score maps.

Shared by the core landing-zone selector and the baseline LZS methods:
repeatedly take the best-scoring location as a zone centre, suppress its
neighbourhood, repeat.  Keeping this in ``utils`` avoids a dependency
between the core pipeline and the baselines package.
"""

from __future__ import annotations

import numpy as np

from repro.utils.geometry import Box

__all__ = ["greedy_peak_boxes"]


def greedy_peak_boxes(score_map: np.ndarray, zone_size: int,
                      num_candidates: int,
                      border_margin: int = 0
                      ) -> list[tuple[Box, float]]:
    """Select up to ``num_candidates`` non-overlapping peak boxes.

    Returns ``(box, score)`` pairs sorted by decreasing score.  Boxes
    are ``zone_size`` squares centred on score peaks, kept at least
    ``border_margin + zone_size // 2`` away from the image border so
    each returned box has full support in the frame.  Pixels whose score
    is ``-inf`` are never selected.
    """
    if zone_size < 1:
        raise ValueError(f"zone_size must be >= 1, got {zone_size}")
    if num_candidates < 1:
        raise ValueError("num_candidates must be >= 1")
    if score_map.ndim != 2:
        raise ValueError(f"score_map must be 2-D, got {score_map.shape}")
    h, w = score_map.shape
    half = zone_size // 2
    margin = border_margin + half
    if 2 * margin >= h or 2 * margin >= w:
        return []

    working = np.full((h, w), -np.inf, dtype=np.float64)
    working[margin:h - margin, margin:w - margin] = \
        score_map[margin:h - margin, margin:w - margin]

    selected: list[tuple[Box, float]] = []
    for _ in range(num_candidates):
        flat_idx = int(np.argmax(working))
        best = working.reshape(-1)[flat_idx]
        if not np.isfinite(best):
            break
        row, col = divmod(flat_idx, w)
        box = Box.from_center(row, col, zone_size, zone_size).clip_to(h, w)
        selected.append((box, float(best)))
        r0 = max(0, row - zone_size)
        c0 = max(0, col - zone_size)
        working[r0:row + zone_size + 1, c0:col + zone_size + 1] = -np.inf
    return selected
