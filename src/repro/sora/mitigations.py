"""Ground-risk mitigations (M1/M2/M3) and the paper's active-M1 EL.

SORA v2.0 Table 3 assigns each mitigation a GRC adaptation depending on
its *robustness* (the lower of its integrity and assurance levels):

====  ==========================================  ====  ======  ====
 #    Mitigation                                  Low   Medium  High
====  ==========================================  ====  ======  ====
M1    Strategic mitigations for ground risk        -1     -2     -4
M2    Effects of ground impact are reduced          0     -1     -2
M3    Emergency Response Plan in place             +1      0     -1
====  ==========================================  ====  ======  ====

(M3 at low robustness — or absent — *penalises* the GRC by +1.)

Section IV of the paper proposes Emergency Landing as an **active M1**:
like M1 it reduces the number of people at risk, but by *actively*
selecting a landing zone from live data instead of by static route
buffers.  Its robustness combines the Table III integrity level with
the Table IV assurance level; its GRC credit follows the M1 schedule.

The final GRC may not be reduced below the intrinsic GRC of the
controlled-ground-area row for the same dimension class (you cannot
mitigate below "nobody under the drone").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, IntEnum

from repro.sora.grc import (
    GRC_TABLE,
    OperationalScenario,
    UasDimensionClass,
)

__all__ = [
    "RobustnessLevel",
    "MitigationType",
    "Mitigation",
    "GRC_ADJUSTMENT",
    "el_mitigation",
    "apply_mitigations",
    "grc_floor",
]


class RobustnessLevel(IntEnum):
    """SORA robustness: combination of integrity and assurance."""

    NONE = 0
    LOW = 1
    MEDIUM = 2
    HIGH = 3


class MitigationType(Enum):
    """Ground-risk mitigation categories."""

    M1_STRATEGIC = "M1"
    M2_IMPACT_REDUCTION = "M2"
    M3_ERP = "M3"
    EL_ACTIVE_M1 = "EL (active M1)"


#: SORA v2.0 Table 3 GRC adaptations, by robustness level.
GRC_ADJUSTMENT: dict[MitigationType, dict[RobustnessLevel, int]] = {
    MitigationType.M1_STRATEGIC: {
        RobustnessLevel.NONE: 0,
        RobustnessLevel.LOW: -1,
        RobustnessLevel.MEDIUM: -2,
        RobustnessLevel.HIGH: -4,
    },
    MitigationType.M2_IMPACT_REDUCTION: {
        RobustnessLevel.NONE: 0,
        RobustnessLevel.LOW: 0,
        RobustnessLevel.MEDIUM: -1,
        RobustnessLevel.HIGH: -2,
    },
    MitigationType.M3_ERP: {
        RobustnessLevel.NONE: 1,   # absent ERP penalises the GRC
        RobustnessLevel.LOW: 1,
        RobustnessLevel.MEDIUM: 0,
        RobustnessLevel.HIGH: -1,
    },
    # The paper's proposal: EL credited on the M1 schedule.
    MitigationType.EL_ACTIVE_M1: {
        RobustnessLevel.NONE: 0,
        RobustnessLevel.LOW: -1,
        RobustnessLevel.MEDIUM: -2,
        RobustnessLevel.HIGH: -4,
    },
}


@dataclass(frozen=True)
class Mitigation:
    """A claimed mitigation with its robustness."""

    type: MitigationType
    robustness: RobustnessLevel

    def grc_adjustment(self) -> int:
        return GRC_ADJUSTMENT[self.type][self.robustness]


def el_mitigation(integrity: RobustnessLevel,
                  assurance: RobustnessLevel) -> Mitigation:
    """Build the active-M1 EL mitigation from its two assessments.

    Per the SORA, robustness is the *lower* of the integrity level
    (Table III) and the assurance level (Table IV): strong integrity
    claims with weak evidence earn no extra credit.
    """
    robustness = RobustnessLevel(min(int(integrity), int(assurance)))
    return Mitigation(MitigationType.EL_ACTIVE_M1, robustness)


def grc_floor(dim_class: UasDimensionClass) -> int:
    """Lowest GRC reachable through mitigation for this aircraft size."""
    value = GRC_TABLE[OperationalScenario.VLOS_CONTROLLED][
        UasDimensionClass(dim_class)]
    assert value is not None  # controlled row is fully populated
    return value


def apply_mitigations(intrinsic: int, mitigations: list[Mitigation],
                      dim_class: UasDimensionClass) -> int:
    """Final GRC after applying all claimed mitigations.

    Note the M3 rule: if *no* M3 mitigation is claimed at all, the
    SORA's +1 penalty for a missing ERP applies (this is how the paper
    arrives at "7 if no M3 with medium robustness is proposed").
    """
    if intrinsic < 1:
        raise ValueError(f"intrinsic GRC must be >= 1, got {intrinsic}")
    seen_types = set()
    total = 0
    for mitigation in mitigations:
        if mitigation.type in seen_types:
            raise ValueError(
                f"duplicate mitigation claim: {mitigation.type.value}")
        seen_types.add(mitigation.type)
        total += mitigation.grc_adjustment()
    if MitigationType.M3_ERP not in seen_types:
        total += GRC_ADJUSTMENT[MitigationType.M3_ERP][RobustnessLevel.NONE]
    final = intrinsic + total
    return max(final, grc_floor(dim_class))
