"""FIG-2 bench: the full landing-zone-selection safety architecture.

Paper artefact: Fig. 2 — core function -> monitor -> decision module,
with the confirm / try-another / abort flow.  Expectation (shape): the
pipeline exercises all three decision outcomes across the test corpus;
confirmed zones are genuinely busy-road-free; rejected candidates
trigger retries before aborting.
"""

from repro.core import DecisionAction
from repro.dataset.classes import busy_road_mask
from repro.eval.reporting import format_table, format_title


def test_fig2_pipeline_flow(benchmark, system, emit):
    pipeline = system.make_pipeline(monitor_enabled=True, rng=0)
    sample = system.test_samples[0]

    result = benchmark(lambda: pipeline.run(sample.image))

    emit("\n" + format_title(
        "FIG-2: Landing pipeline episode flow (core+monitor+decision)"))

    # Aggregate behaviour over the whole test corpus.
    landed = aborted = retried = 0
    road_free = 0
    for s in system.test_samples:
        r = pipeline.run(s.image)
        if r.landed:
            landed += 1
            gt = r.selected_zone.box.extract(s.labels)
            if not busy_road_mask(gt).any():
                road_free += 1
        else:
            aborted += 1
        if r.decision.attempts > 1:
            retried += 1
    emit(format_table(
        ["outcome", "frames"],
        [["confirmed -> go to landing zone", landed],
         ["abort flight (-> FT)", aborted],
         ["episodes with retries", retried],
         ["confirmed zones free of busy road (GT)", road_free]],
        title=f"decision outcomes over {len(system.test_samples)} "
              "unseen frames:"))
    emit("\nexample episode log:")
    for line in result.decision.log:
        emit(f"  - {line}")
    emit(f"timings: {dict((k, round(v, 4)) for k, v in result.timings_s.items())}")

    assert result.decision.action in (DecisionAction.LAND,
                                      DecisionAction.ABORT)
    # Monitor inference and decision bookkeeping are timed separately.
    assert {"monitoring_s", "decision_s"} <= set(result.timings_s)
    assert result.timings_s["decision_s"] >= 0.0
    assert landed + aborted == len(system.test_samples)
    assert landed > 0, "pipeline never confirmed a zone in-distribution"
    # Every confirmed zone must be truly busy-road-free.
    assert road_free == landed
