"""Engine-mode hygiene: process-global engine state is always restored.

``set_conv_engine`` is process-global by design, and four environment
variables (``REPRO_CONV_ENGINE``, ``REPRO_MONITOR_SHARED``,
``REPRO_MONITOR_ADAPTIVE``, ``REPRO_SERVE_WORKERS``) reroute whole
engine families at run time — that is how ``scripts/check.sh`` re-runs
the tier-1 suites under the winograd, shared-context, and adaptive
early-exit engines.  ``REPRO_MONITOR_ADAPTIVE`` is sanctioned for the
same reason the shared toggle is: the certification rerun needs a
process-default switch that flips *every* joint monitoring call
without editing each ``MonitorConfig``, and the read lives at the
single documented site in ``core/monitor.py`` (``adaptive_default``),
consulted per call so tests can monkeypatch it.
``REPRO_SERVE_WORKERS`` is sanctioned as the serving layer's
deployment-time sizing toggle: the broker process is launched by an
operator, not constructed in code, so the worker count needs a
process-default the way the conv engine does — the read lives at the
single documented site in ``serve/broker.py``
(``serve_workers_default``), consulted only when
``ServeConfig.workers`` is unset so explicit configuration always
wins.  The flip side: a test or bench that flips a mode and fails to
restore it silently changes what every *later* test measures, and an
``os.environ`` read scattered outside the sanctioned sites turns the
environment into an undocumented knob surface.

Three rules:

* ``ENG-ENV-READ`` — inside ``src/repro``, ``os.environ``/
  ``os.getenv`` may only be consulted at the sanctioned sites (the
  conv-engine default in ``nn/functional.py``, the shared-context and
  adaptive early-exit toggles in ``core/monitor.py``, the
  trained-system cache root in ``eval/harness.py``, the strict-seed
  switch in ``utils/rng.py``, and the serve worker-count default in
  ``serve/broker.py``).
* ``ENG-ENV-WRITE`` — nobody mutates ``os.environ`` directly; tests
  use ``monkeypatch.setenv`` (auto-restoring) and subprocesses get an
  explicit ``env=`` mapping.
* ``ENG-SET-NO-RESTORE`` — a direct ``set_conv_engine(...)`` call must
  be paired with a restore: the ``conv_engine(...)`` context manager,
  a save/restore via ``get_conv_engine``/``reset_conv_engine`` in the
  same function, or the autouse ``_conv_engine_isolation`` conftest
  fixture that guards the test tree.  (The sanctioned implementation
  sites — ``nn/functional.py`` itself and the ``EngineConfig``
  appliers in ``core/engine.py``/``core/pipeline.py`` — are exempt.)
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.base import (
    BaseChecker,
    CheckContext,
    Rule,
    ScopedVisitor,
    dotted_name,
)

#: The sanctioned ``os.environ`` readers inside ``src/repro``.
SANCTIONED_ENV_READERS = frozenset({
    "src/repro/nn/functional.py",   # REPRO_CONV_ENGINE default mode
    "src/repro/core/monitor.py",    # REPRO_MONITOR_SHARED +
                                    # REPRO_MONITOR_ADAPTIVE toggles
    "src/repro/eval/harness.py",    # REPRO_CACHE weight-cache root
    "src/repro/utils/rng.py",       # REPRO_REQUIRE_SEED strict mode
    "src/repro/serve/broker.py",    # REPRO_SERVE_WORKERS sizing
                                    # default (serve_workers_default)
})

#: Files allowed to call ``set_conv_engine`` without a local restore:
#: the engine's own implementation and the documented knob surface.
SANCTIONED_SETTERS = frozenset({
    "src/repro/nn/functional.py",
    "src/repro/core/engine.py",
    "src/repro/core/pipeline.py",
})

#: Names whose presence in the same function marks a save/restore
#: idiom around a direct ``set_conv_engine`` call.
RESTORE_MARKERS = frozenset({
    "reset_conv_engine", "get_conv_engine", "conv_engine"})

#: Autouse fixture that save/restores the conv engine around every
#: test below its conftest (see ``tests/conftest.py``).
GUARD_FIXTURE = "_conv_engine_isolation"

_ENV_MUTATORS = frozenset({"update", "setdefault", "pop", "clear",
                           "popitem"})

#: Per-root cache of directories guarded by the conftest fixture.
_GUARD_CACHE: dict[Path, frozenset[str]] = {}


def guarded_dirs(root: Path) -> frozenset[str]:
    """Repo-relative directories whose conftest defines the guard."""
    cached = _GUARD_CACHE.get(root)
    if cached is None:
        found = set()
        for conftest in root.glob("**/conftest.py"):
            if any(part in {".git", "__pycache__", ".smoke"}
                   for part in conftest.parts):
                continue
            try:
                text = conftest.read_text()
            except OSError:
                continue
            if f"def {GUARD_FIXTURE}" in text:
                found.add(conftest.parent.relative_to(root).as_posix())
        cached = frozenset(found)
        _GUARD_CACHE[root] = cached
    return cached


class EngineModeChecker(BaseChecker):
    name = "engine-mode-hygiene"
    rules = (
        Rule("ENG-ENV-READ",
             "os.environ consulted outside the sanctioned sites in "
             "src/repro",
             contract="engine-mode certification reruns "
                      "(REPRO_CONV_ENGINE / REPRO_MONITOR_SHARED / "
                      "REPRO_MONITOR_ADAPTIVE, PRs 4-7)"),
        Rule("ENG-ENV-WRITE",
             "direct os.environ mutation (leaks process-wide)",
             contract="engine-mode certification reruns "
                      "(REPRO_CONV_ENGINE / REPRO_MONITOR_SHARED / "
                      "REPRO_MONITOR_ADAPTIVE, PRs 4-7)"),
        Rule("ENG-SET-NO-RESTORE",
             "set_conv_engine without a visible restore",
             contract="conv-engine accuracy contracts (PRs 2 & 4)"),
    )

    def check(self, ctx: CheckContext):
        visitor = _EngineVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings

    @staticmethod
    def is_guarded(ctx: CheckContext) -> bool:
        """Whether the file sits under a conftest guard fixture."""
        dirs = guarded_dirs(ctx.root)
        parts = ctx.rel_path.split("/")[:-1]
        return any("/".join(parts[:i]) in dirs
                   for i in range(len(parts), -1, -1))


class _EngineVisitor(ScopedVisitor):
    def __init__(self, checker: EngineModeChecker, ctx: CheckContext):
        super().__init__()
        self.checker = checker
        self.ctx = ctx
        self.findings = []
        self._fn_stack: list[ast.AST] = []

    def report(self, node, rule_id, message, hint=""):
        self.findings.append(
            self.checker.finding(self.ctx, node, rule_id, message,
                                 hint=hint))

    # ------------------------------------------------------------------
    def _visit_fn(self, node):
        self._fn_stack.append(node)
        try:
            self._visit_scope(node)
        finally:
            self._fn_stack.pop()

    visit_FunctionDef = _visit_fn
    visit_AsyncFunctionDef = _visit_fn

    # -- environment reads --------------------------------------------
    def visit_Attribute(self, node: ast.Attribute):
        name = dotted_name(node, self.ctx.imports)
        if name == "os.environ" \
                and isinstance(node.ctx, ast.Load) \
                and self.ctx.rel_path.startswith("src/repro/") \
                and self.ctx.rel_path \
                not in SANCTIONED_ENV_READERS:
            self.report(
                node, "ENG-ENV-READ",
                "os.environ read outside the sanctioned sites",
                hint="route run-time toggles through the documented "
                     "knob surfaces (EngineConfig, MonitorConfig) or "
                     "add the site to SANCTIONED_ENV_READERS with a "
                     "documented reason")
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript):
        base = dotted_name(node.value, self.ctx.imports)
        if base == "os.environ" \
                and isinstance(node.ctx, (ast.Store, ast.Del)):
            self.report(
                node, "ENG-ENV-WRITE",
                "direct os.environ mutation",
                hint="use pytest's monkeypatch.setenv (auto-restores) "
                     "or pass an explicit env= mapping to the "
                     "subprocess")
        self.generic_visit(node)

    # -- env-mutator calls, getenv, set_conv_engine -------------------
    def visit_Call(self, node: ast.Call):
        name = dotted_name(node.func, self.ctx.imports)
        if name is not None:
            if name == "os.getenv" \
                    and self.ctx.rel_path.startswith("src/repro/") \
                    and self.ctx.rel_path \
                    not in SANCTIONED_ENV_READERS:
                self.report(
                    node, "ENG-ENV-READ",
                    "os.getenv outside the sanctioned sites",
                    hint="route run-time toggles through the "
                         "documented knob surfaces (EngineConfig, "
                         "MonitorConfig)")
            elif name in ("os.putenv", "os.unsetenv"):
                self.report(
                    node, "ENG-ENV-WRITE",
                    f"{name} mutates the process environment",
                    hint="use monkeypatch.setenv or subprocess "
                         "env= mappings")
            elif name.startswith("os.environ.") \
                    and name.rsplit(".", 1)[1] in _ENV_MUTATORS:
                self.report(
                    node, "ENG-ENV-WRITE",
                    f"{name} mutates the process environment",
                    hint="use monkeypatch.setenv or subprocess "
                         "env= mappings")
        if self._is_set_conv_engine(node):
            self._check_set_conv_engine(node)
        self.generic_visit(node)

    def _is_set_conv_engine(self, node: ast.Call) -> bool:
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id == "set_conv_engine":
            return True
        return isinstance(fn, ast.Attribute) \
            and fn.attr == "set_conv_engine"

    def _check_set_conv_engine(self, node: ast.Call) -> None:
        if self.ctx.rel_path in SANCTIONED_SETTERS:
            return
        if self.checker.is_guarded(self.ctx):
            return
        for fn in reversed(self._fn_stack):
            if self._has_restore_marker(fn, node):
                return
        self.report(
            node, "ENG-SET-NO-RESTORE",
            "set_conv_engine flips process-global engine state "
            "without a visible restore",
            hint="prefer `with conv_engine(...)`; or save with "
                 "get_conv_engine() and restore in a finally; or "
                 "run under the autouse _conv_engine_isolation "
                 "conftest fixture")

    @staticmethod
    def _has_restore_marker(fn: ast.AST, call: ast.Call) -> bool:
        for sub in ast.walk(fn):
            if sub is call.func:
                continue
            if isinstance(sub, ast.Name) \
                    and sub.id in RESTORE_MARKERS:
                return True
            if isinstance(sub, ast.Attribute) \
                    and sub.attr in RESTORE_MARKERS:
                return True
        return False
