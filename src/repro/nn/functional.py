"""Low-level differentiable operations for the numpy deep-learning substrate.

The paper's landing-zone selector is a dilated convolutional segmentation
network (MSDnet).  Since no deep-learning framework is available offline,
this module implements the required primitives from scratch:

* dilated / strided 2-D convolution via ``im2col``/``col2im``,
* a layout-aware inference engine (:func:`conv2d_infer`) with blocked
  im2col, buffer reuse and an NHWC option,
* non-overlapping max pooling,
* bilinear and nearest-neighbour resizing with exact adjoints,
* numerically-stable softmax / log-softmax.

All forward functions return ``(output, cache)`` where ``cache`` carries
whatever the matching backward function needs.  Arrays are NCHW unless a
function says otherwise.

Inference conv engine
---------------------
The training path (:func:`conv2d_forward`) materialises the full im2col
matrix because :func:`conv2d_backward` needs it.  Inference does not, so
:func:`conv2d_infer` runs a *blocked* engine instead: patch columns are
materialised one cache-sized row block at a time into a reused scratch
buffer and fed straight to GEMM.  The block geometry depends only on the
per-sample convolution geometry — never on the batch size — so a
``T``-tiled batched forward performs exactly the same per-sample GEMM
calls as ``T`` sequential forwards, which keeps the batched MC-dropout
engine's bit-for-bit contract intact (OpenBLAS GEMM is deterministic per
slice, but *not* across different column splits, so the splits must
match).  Everything is float32-contiguous end to end; see
:func:`set_conv_engine` for the knobs.

Winograd engine and accuracy contracts
--------------------------------------
``mode="winograd"`` runs eligible convolutions (3x3, stride 1,
dilation 1, output at least 2x2) through Winograd F(2x2, 3x3): the
input is cut into overlapping 4x4 tiles, both tiles and filters move to
a transform domain where each 2x2 output patch costs 16 multiplies
instead of 36 (2.25x fewer GEMM flops), and a short inverse transform
brings the result back.  Filter transforms are precomputed once per
weight array and cached (:data:`_WINOGRAD_FILTER_CACHE`).  Ineligible
shapes (1x1/5x5 kernels, strided, dilated, or degenerate sub-2x2
outputs) fall back to the blocked engine transparently.

Accuracy contract: ``reference`` and ``blocked`` (single-block regime)
are *bit-for-bit* identical; ``winograd`` is the first engine mode that
is not — the transform reassociates the float32 arithmetic, so outputs
agree with the reference path only to within a documented tolerance
(see ``tests/nn/test_winograd_equivalence.py`` for the error analysis;
at this repo's layer widths the observed deviation stays below
``~1e-5`` relative to the output scale, certified in the test
tolerances).  What *is* preserved exactly: the batched == sequential
invariant.  The transform-domain contraction runs as one GEMM per
``(sample, transform-coefficient)`` slice whose shape never depends on
the batch size, so a ``T``-tiled batched forward reproduces ``T``
sequential forwards bit for bit — winograd mode composes with the
batched MC-dropout engine exactly like the blocked engine does.

Int8 engine
-----------
``mode="int8"`` runs eligible convolutions quantised: per-channel
symmetric int8 weights (cached per weight array, same invalidation
story as the winograd filter cache), dynamic per-*sample* activation
scales computed on every call, integer accumulation over the existing
blocked-im2col tiling, and dequantisation fused with the conv bias into
one in-place scale/shift over the GEMM output (the shape of the fused
eval batch-norm fold) — the fp32 surface appears in one pass with no
extra full-size intermediate.  Because this numpy build has no BLAS
integer GEMM, the int32 accumulation is carried *exactly* inside the
float32 GEMM over operands holding the integer codes; the eligibility
bound ``C_in*kh*kw <= 1040`` guarantees every partial sum stays an
exactly representable float32 integer (``K * 127^2 < 2^24``), making
the accumulation bit-for-bit the int32 result and the batched ==
sequential / block-size-invariance contracts *exact by construction* —
stronger than winograd's.  Ineligible geometries (1x1 kernels by
default — measured 0.3-0.6x under quantise/dequant overhead — and
over-deep reductions) fall back to blocked bit-identically.  Accuracy
vs the fp32 engines is tolerance-certified by a documented error model
(:mod:`repro.nn.quant`) with an a-priori elementwise bound and a
pinned empirical envelope (``tests/nn/test_int8_equivalence.py``,
observed ~1e-2 max-norm relative per layer at this repo's widths);
decision-level surfaces are zero-flip gated in
``tests/integration/test_int8_certification.py``.

The default mode can be overridden per process with the
``REPRO_CONV_ENGINE`` environment variable (read at import and by
:func:`reset_conv_engine`), which is how CI runs the tier-1 suite once
more under ``winograd`` and once more under ``int8``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

from repro.nn import quant

__all__ = [
    "conv_output_size",
    "im2col",
    "col2im",
    "conv2d_forward",
    "conv2d_backward",
    "conv2d_infer",
    "CONV_ENGINE_MODES",
    "CONV_ENGINE_LAYOUTS",
    "set_conv_engine",
    "get_conv_engine",
    "reset_conv_engine",
    "conv_engine",
    "clear_conv_buffers",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "linear_resize_weights",
    "resize_bilinear_forward",
    "resize_bilinear_backward",
    "resize_nearest_forward",
    "resize_nearest_backward",
    "softmax",
    "log_softmax",
]


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------
def conv_output_size(in_size: int, kernel: int, stride: int, padding: int,
                     dilation: int) -> int:
    """Spatial output size of a convolution along one axis."""
    effective = (kernel - 1) * dilation + 1
    out = (in_size + 2 * padding - effective) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output size {out} <= 0 "
            f"(in={in_size}, kernel={kernel}, stride={stride}, "
            f"padding={padding}, dilation={dilation})")
    return out


def _pad_nchw(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two trailing (spatial) axes of an NCHW array.

    Manual copy into a zero buffer: ~2x cheaper than ``np.pad`` on the
    conv hot path.
    """
    if padding <= 0:
        return x
    n, c, h, w = x.shape
    xp = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=x.dtype)
    xp[:, :, padding:padding + h, padding:padding + w] = x
    return xp


def im2col(x: np.ndarray, kernel: tuple[int, int], stride: int,
           padding: int, dilation: int) -> tuple[np.ndarray, tuple]:
    """Unfold image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel:
        ``(kh, kw)`` kernel extents.

    Returns
    -------
    cols:
        Array of shape ``(N, C * kh * kw, out_h * out_w)``.
    geom:
        Geometry tuple consumed by :func:`col2im`.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding, dilation)
    out_w = conv_output_size(w, kw, stride, padding, dilation)

    xp = _pad_nchw(x, padding)
    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        row0 = i * dilation
        row1 = row0 + stride * out_h
        for j in range(kw):
            col0 = j * dilation
            col1 = col0 + stride * out_w
            cols[:, :, i, j] = xp[:, :, row0:row1:stride, col0:col1:stride]

    geom = (x.shape, kernel, stride, padding, dilation, out_h, out_w)
    return cols.reshape(n, c * kh * kw, out_h * out_w), geom


def col2im(cols: np.ndarray, geom: tuple) -> np.ndarray:
    """Adjoint of :func:`im2col` (scatter-add columns back to an image)."""
    (x_shape, kernel, stride, padding, dilation, out_h, out_w) = geom
    n, c, h, w = x_shape
    kh, kw = kernel
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)

    hp, wp = h + 2 * padding, w + 2 * padding
    xp = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        row0 = i * dilation
        row1 = row0 + stride * out_h
        for j in range(kw):
            col0 = j * dilation
            col1 = col0 + stride * out_w
            xp[:, :, row0:row1:stride, col0:col1:stride] += cols6[:, :, i, j]

    if padding > 0:
        return xp[:, :, padding:padding + h, padding:padding + w]
    return xp


def conv2d_forward(x: np.ndarray, weight: np.ndarray,
                   bias: np.ndarray | None, stride: int = 1,
                   padding: int = 0,
                   dilation: int = 1) -> tuple[np.ndarray, tuple]:
    """2-D convolution forward pass.

    ``x`` is ``(N, C_in, H, W)``; ``weight`` is ``(C_out, C_in, kh, kw)``;
    ``bias`` is ``(C_out,)`` or ``None``.
    """
    c_out, c_in, kh, kw = weight.shape
    if x.shape[1] != c_in:
        raise ValueError(
            f"input has {x.shape[1]} channels, weight expects {c_in}")
    cols, geom = im2col(x, (kh, kw), stride, padding, dilation)
    w2 = weight.reshape(c_out, c_in * kh * kw)
    # (N, C_out, L) = (C_out, K) @ (N, K, L) as a broadcast batched GEMM.
    # np.matmul scales linearly in N here, where the equivalent einsum
    # path degrades sharply for N > 1 — this is the hot path of the
    # batched MC-dropout engine (see repro.segmentation.bayesian).
    out = np.matmul(w2, cols)
    if bias is not None:
        out = out + bias[None, :, None]
    n = x.shape[0]
    out_h, out_w = geom[5], geom[6]
    y = out.reshape(n, c_out, out_h, out_w)
    cache = (cols, geom, weight, bias is not None)
    return y, cache


def conv2d_backward(dy: np.ndarray, cache: tuple
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(dx, dweight, dbias)``; ``dbias`` is ``None`` when the
    forward pass had no bias.
    """
    cols, geom, weight, has_bias = cache
    c_out, c_in, kh, kw = weight.shape
    n = dy.shape[0]
    dy2 = dy.reshape(n, c_out, -1)  # (N, C_out, L)

    dbias = dy2.sum(axis=(0, 2)) if has_bias else None
    # dW = sum_n dy2[n] @ cols[n]^T, again as a batched GEMM.
    dw2 = np.matmul(dy2, cols.transpose(0, 2, 1)).sum(axis=0)
    dweight = dw2.reshape(weight.shape)
    # dcols = W^T @ dy2
    w2 = weight.reshape(c_out, c_in * kh * kw)
    dcols = np.matmul(w2.T, dy2)
    dx = col2im(dcols, geom)
    return dx, dweight, dbias


# ----------------------------------------------------------------------
# Inference conv engine (blocked im2col, buffer reuse, NHWC option)
# ----------------------------------------------------------------------
#: Engine knobs.  ``mode``: "blocked" (default) tiles the im2col matrix
#: into cache-sized row blocks reused from a scratch pool; "reference"
#: materialises the full im2col matrix exactly like the training path;
#: "winograd" routes eligible 3x3/stride-1/dilation-1 convolutions
#: through F(2x2, 3x3) tile transforms (2.25x fewer GEMM flops,
#: tolerance-certified rather than bit-for-bit — see the module
#: docstring) and everything else through the blocked engine.
#: ``layout``: "nchw" (default) or "nhwc" — the NHWC path packs columns
#: channel-minor and contracts against a (kh*kw*C, C_out) weight; its
#: GEMM reduction order differs, so outputs can differ from NCHW in the
#: last ulp (benchmarked in benchmarks/bench_conv_engine.py; NCHW wins
#: at this repo's layer shapes, NHWC is kept as a measured option).
#: The layout knob applies to the blocked engine only; winograd is
#: NCHW-internal and its fallback path always uses blocked/NCHW.
#: ``block_kib``: per-sample im2col block budget in KiB.  The block
#: geometry is derived from per-sample quantities only (K, out_w,
#: itemsize) so batched and sequential forwards split columns
#: identically — the bit-for-bit contract of the batched MC engine.
#: ``int8_min_kernel``: minimum kernel footprint ``kh*kw`` the int8
#: engine accepts; below it the quantise/dequant passes dominate
#: (1x1 convs measured 0.3-0.6x) and the geometry falls back to
#: blocked.  Default 2 — exactly the measured 1x1 exclusion; set 1 to
#: opt 1x1 in (e.g. under a future integer-GEMM backend).
#: "int8" quantises eligible convolutions (per-channel symmetric int8
#: weights, dynamic per-sample activations, exact integer accumulation
#: — see the module docstring) and routes the rest through blocked.
CONV_ENGINE_MODES = ("blocked", "reference", "winograd", "int8")
CONV_ENGINE_LAYOUTS = ("nchw", "nhwc")

_VALID_MODES = CONV_ENGINE_MODES
_VALID_LAYOUTS = CONV_ENGINE_LAYOUTS

#: Environment variable overriding the default engine mode per process
#: (e.g. ``REPRO_CONV_ENGINE=winograd`` re-runs a whole suite on the
#: winograd engine without touching call sites).
CONV_ENGINE_ENV = "REPRO_CONV_ENGINE"

_ENGINE_DEFAULTS = {"mode": "blocked", "layout": "nchw", "block_kib": 384,
                    "int8_min_kernel": 2}
_ENGINE: dict = {}

#: Scratch-buffer pool for blocked im2col, keyed by required capacity
#: class.  Bounded; single-threaded use assumed (the whole substrate
#: is).  Cleared via :func:`clear_conv_buffers`.
_COL_BUFFERS: dict[tuple, np.ndarray] = {}
_COL_BUFFER_CAP = 32


def set_conv_engine(mode: str | None = None, layout: str | None = None,
                    block_kib: int | None = None,
                    int8_min_kernel: int | None = None) -> dict:
    """Configure the inference conv engine; returns the active config."""
    if mode is not None:
        if mode not in _VALID_MODES:
            raise ValueError(f"unknown conv engine mode {mode!r}")
        _ENGINE["mode"] = mode
    if layout is not None:
        if layout not in _VALID_LAYOUTS:
            raise ValueError(f"unknown conv engine layout {layout!r}")
        _ENGINE["layout"] = layout
    if block_kib is not None:
        if int(block_kib) < 1:
            raise ValueError("block_kib must be >= 1")
        _ENGINE["block_kib"] = int(block_kib)
    if int8_min_kernel is not None:
        if int(int8_min_kernel) < 1:
            raise ValueError("int8_min_kernel must be >= 1")
        _ENGINE["int8_min_kernel"] = int(int8_min_kernel)
    return dict(_ENGINE)


def get_conv_engine() -> dict:
    """The active inference-engine configuration (a copy)."""
    return dict(_ENGINE)


def reset_conv_engine() -> dict:
    """Restore the process-default engine configuration.

    The default mode honours the ``REPRO_CONV_ENGINE`` environment
    variable (validated against :data:`CONV_ENGINE_MODES`); everything
    else returns to the built-in defaults.  Called once at import, and
    by test fixtures that must not leak engine state across tests.
    Returns the active configuration (a copy).
    """
    _ENGINE.clear()
    _ENGINE.update(_ENGINE_DEFAULTS)
    env_mode = os.environ.get(CONV_ENGINE_ENV)
    if env_mode:
        if env_mode not in _VALID_MODES:
            raise ValueError(
                f"{CONV_ENGINE_ENV}={env_mode!r} is not a valid conv "
                f"engine mode (choose from {_VALID_MODES})")
        _ENGINE["mode"] = env_mode
    return dict(_ENGINE)


reset_conv_engine()


@contextmanager
def conv_engine(mode: str | None = None, layout: str | None = None,
                block_kib: int | None = None,
                int8_min_kernel: int | None = None):
    """Temporarily reconfigure the inference conv engine."""
    saved = dict(_ENGINE)
    try:
        set_conv_engine(mode=mode, layout=layout, block_kib=block_kib,
                        int8_min_kernel=int8_min_kernel)
        yield dict(_ENGINE)
    finally:
        _ENGINE.update(saved)


class _PerWeightCache:
    """Keyed cache of arrays derived from a weight tensor.

    The shared infrastructure behind every engine that precomputes a
    per-weight transform — the winograd filter transform and the int8
    quantised weights both live on instances of this class.  Entries
    are keyed by ``id(weight)`` and hold a defensive copy of the source
    array, so in-place weight updates (what an optimiser step does) and
    ``id()`` reuse after garbage collection are detected by value
    comparison and recomputed instead of served stale.  Bounded FIFO;
    every instance registers itself so :func:`clear_conv_buffers`
    empties them all through one hook.
    """

    _instances: list["_PerWeightCache"] = []

    def __init__(self, compute, cap: int = 32):
        self._compute = compute
        self._cap = cap
        self._entries: dict[int, tuple[np.ndarray, object]] = {}
        _PerWeightCache._instances.append(self)

    def get(self, weight: np.ndarray):
        key = id(weight)
        hit = self._entries.get(key)
        if hit is not None:
            saved, value = hit
            if saved.shape == weight.shape \
                    and saved.dtype == weight.dtype \
                    and np.array_equal(saved, weight):
                return value
        value = self._compute(weight)
        if len(self._entries) >= self._cap:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = (weight.copy(), value)
        return value

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @classmethod
    def clear_all(cls) -> None:
        for cache in cls._instances:
            cache.clear()


def clear_conv_buffers() -> None:
    """Drop all pooled conv scratch buffers and every cached per-weight
    transform (winograd filter transforms, int8 quantised weights)."""
    _COL_BUFFERS.clear()
    _PerWeightCache.clear_all()


def _col_buffer(capacity: int, dtype, tag: str = "col") -> np.ndarray:
    """A flat scratch array of at least ``capacity`` elements.

    Keyed by the rounded-up capacity so repeated layer geometries reuse
    one allocation instead of paying a multi-MB ``np.empty`` (and the
    page faults behind it) per conv call.  ``tag`` separates pools that
    may be live simultaneously within one conv call (the winograd
    engine holds its tile and product scratch at once; sharing a
    capacity class across them would alias the arrays).
    """
    # Round capacity up to the next power of two so nearby geometries
    # share an entry and the pool stays small.
    cap = 1 << (int(capacity) - 1).bit_length()
    key = (tag, cap, np.dtype(dtype).str)
    buf = _COL_BUFFERS.get(key)
    if buf is None:
        if len(_COL_BUFFERS) >= _COL_BUFFER_CAP:
            _COL_BUFFERS.pop(next(iter(_COL_BUFFERS)))
        buf = np.empty(cap, dtype=dtype)
        _COL_BUFFERS[key] = buf
    return buf


def _conv2d_infer_blocked(x: np.ndarray, weight: np.ndarray,
                          bias: np.ndarray | None, stride: int,
                          padding: int, dilation: int) -> np.ndarray:
    """Blocked im2col + fused GEMM, NCHW.

    Output rows are processed in blocks sized so one *per-sample* im2col
    block stays within ``block_kib`` KiB; each block is packed into a
    pooled scratch buffer and multiplied immediately (the fused path),
    so the full ``(N, K, L)`` column matrix never exists.  A single
    block degenerates to exactly the reference GEMM.
    """
    n, c, h, w = x.shape
    c_out, c_in, kh, kw = weight.shape
    out_h = conv_output_size(h, kh, stride, padding, dilation)
    out_w = conv_output_size(w, kw, stride, padding, dilation)
    k = c_in * kh * kw
    xp = _pad_nchw(x, padding)
    w2 = weight.reshape(c_out, k)

    itemsize = x.dtype.itemsize
    # Per-sample block budget: independent of N by construction (see
    # module docstring — this is what keeps batched == sequential).
    rows = max(1, int(_ENGINE["block_kib"] * 1024 // (k * out_w
                                                      * itemsize)))
    rows = min(rows, out_h)

    if rows == out_h:
        # Single block: pack once into the pooled buffer, one GEMM.
        cols = _col_buffer(n * k * out_h * out_w, x.dtype)[
            :n * k * out_h * out_w].reshape(n, c, kh, kw, out_h, out_w)
        for i in range(kh):
            r0 = i * dilation
            for j in range(kw):
                c0 = j * dilation
                cols[:, :, i, j] = xp[:, :, r0:r0 + stride * out_h:stride,
                                      c0:c0 + stride * out_w:stride]
        out = np.matmul(w2, cols.reshape(n, k, out_h * out_w))
        y = out.reshape(n, c_out, out_h, out_w)
    else:
        y = np.empty((n, c_out, out_h, out_w), dtype=x.dtype)
        flat = _col_buffer(n * k * rows * out_w, x.dtype)
        for r0 in range(0, out_h, rows):
            rb = min(rows, out_h - r0)
            cols = flat[:n * k * rb * out_w].reshape(n, c, kh, kw, rb,
                                                     out_w)
            for i in range(kh):
                a0 = i * dilation + r0 * stride
                for j in range(kw):
                    c0 = j * dilation
                    cols[:, :, i, j] = xp[:, :,
                                          a0:a0 + stride * rb:stride,
                                          c0:c0 + stride * out_w:stride]
            res = np.matmul(w2, cols.reshape(n, k, rb * out_w))
            y[:, :, r0:r0 + rb, :] = res.reshape(n, c_out, rb, out_w)
    if bias is not None:
        y += bias[None, :, None, None]
    return y


def _conv2d_infer_nhwc(x: np.ndarray, weight: np.ndarray,
                       bias: np.ndarray | None, stride: int,
                       padding: int, dilation: int) -> np.ndarray:
    """NHWC-internal convolution (measured alternative layout).

    Packs columns channel-minor — ``(N, L, kh*kw*C)`` — and contracts
    with the weight as ``cols @ (kh*kw*C, C_out)``.  The K-reduction
    order differs from the NCHW engine, so outputs agree only to within
    floating-point reassociation (last ulp).  Takes and returns NCHW;
    the layout is internal.
    """
    n, c, h, w = x.shape
    c_out, c_in, kh, kw = weight.shape
    out_h = conv_output_size(h, kh, stride, padding, dilation)
    out_w = conv_output_size(w, kw, stride, padding, dilation)
    xh = np.ascontiguousarray(x.transpose(0, 2, 3, 1))
    if padding > 0:
        xp = np.zeros((n, h + 2 * padding, w + 2 * padding, c),
                      dtype=x.dtype)
        xp[:, padding:padding + h, padding:padding + w, :] = xh
    else:
        xp = xh
    k = kh * kw * c_in
    cols = _col_buffer(n * out_h * out_w * k, x.dtype)[
        :n * out_h * out_w * k].reshape(n, out_h, out_w, kh, kw, c_in)
    for i in range(kh):
        r0 = i * dilation
        for j in range(kw):
            c0 = j * dilation
            cols[:, :, :, i, j] = xp[:, r0:r0 + stride * out_h:stride,
                                     c0:c0 + stride * out_w:stride]
    w2 = np.ascontiguousarray(weight.transpose(2, 3, 1, 0)).reshape(
        k, c_out)
    out = np.matmul(cols.reshape(n, out_h * out_w, k), w2)
    if bias is not None:
        out += bias
    return np.ascontiguousarray(out.transpose(0, 2, 1)).reshape(
        n, c_out, out_h, out_w)


# ----------------------------------------------------------------------
# Winograd F(2x2, 3x3) engine
# ----------------------------------------------------------------------
#: Filter-transform matrix G of F(2, 3): ``U = G g G^T`` maps a 3x3
#: filter tap into the 4x4 transform domain.  Held in float64 — the
#: (cached, off-hot-path) filter transform is computed at full
#: precision and rounded to the working dtype once.
_WINOGRAD_G = np.array([[1.0, 0.0, 0.0],
                        [0.5, 0.5, 0.5],
                        [0.5, -0.5, 0.5],
                        [0.0, 0.0, 1.0]])

def _winograd_filter_compute(weight: np.ndarray) -> np.ndarray:
    """``(16, C_out, C_in)`` transform-domain filters for 3x3 weights.

    ``U = G g G^T`` per (c_out, c_in) tap, computed in float64 and
    rounded once to the weight dtype, laid out coefficient-major so the
    transform-domain contraction is a contiguous batched GEMM.
    """
    c_out, c_in = weight.shape[:2]
    u64 = _WINOGRAD_G @ weight.astype(np.float64) @ _WINOGRAD_G.T
    u = np.ascontiguousarray(
        u64.transpose(2, 3, 0, 1).reshape(16, c_out, c_in)
        .astype(weight.dtype))
    u.setflags(write=False)
    return u


#: Cached winograd filter transforms: a :class:`_PerWeightCache` over
#: :func:`_winograd_filter_compute` (defensive-copy invalidation on
#: in-place weight updates; cleared by :func:`clear_conv_buffers`).
_WINOGRAD_FILTER_CACHE = _PerWeightCache(_winograd_filter_compute)


def _winograd_filter_transform(weight: np.ndarray) -> np.ndarray:
    """The cached transform of ``weight`` (see
    :data:`_WINOGRAD_FILTER_CACHE`)."""
    return _WINOGRAD_FILTER_CACHE.get(weight)


#: Minimum per-sample tile count for the winograd engine.  Below this
#: the fixed transform overhead (six staged passes over the tile
#: domain) dwarfs the GEMM it accelerates, so small-tile shapes — tiny
#: monitor crops, mostly — fall back to the blocked engine, which is
#: the faster engine there by a wide measured margin.
_WINOGRAD_MIN_TILES = 16


def _winograd_eligible(kh: int, kw: int, stride: int, dilation: int,
                       out_h: int, out_w: int) -> bool:
    """Whether a conv geometry can run on the F(2x2, 3x3) engine.

    Only the canonical 3x3 / stride-1 / dilation-1 case has a Winograd
    form here; degenerate sub-2x2 outputs and small-tile shapes (fewer
    than :data:`_WINOGRAD_MIN_TILES` 2x2 output tiles, where the
    transform overhead cannot amortise) fall back as well.
    """
    if not (kh == 3 and kw == 3 and stride == 1 and dilation == 1
            and out_h >= 2 and out_w >= 2):
        return False
    tiles = ((out_h + 1) // 2) * ((out_w + 1) // 2)
    return tiles >= _WINOGRAD_MIN_TILES


def _conv2d_infer_winograd(x: np.ndarray, weight: np.ndarray,
                           bias: np.ndarray | None,
                           padding: int) -> np.ndarray:
    """Winograd F(2x2, 3x3) convolution (stride 1, dilation 1).

    The padded input is split once into its four row/column *parity
    planes* (``q[pr, pc][i, j] = xpad[2i + pr, 2j + pc]``) so that both
    halves of the tile transform ``V = B^T d B`` — whose matrices hold
    only 0/±1 — become plain adds/subtracts of *contiguous* plane
    slices (strided tile gathers measured ~6x slower on the CI host).
    The channel contraction then runs in the transform domain, where
    each 2x2 output patch costs 16 multiplies instead of im2col's 36,
    and ``Y = A^T M A`` folds the products back onto the interleaved
    output grid.  All scratch lives in the pooled buffers.

    Determinism contract: the contraction is one GEMM per
    ``(transform coefficient, sample)`` pair — ``np.matmul`` with batch
    shape ``(16, N)`` — so every GEMM slice has shape
    ``(C_out, C_in) @ (C_in, P)`` with ``P`` the per-sample tile count,
    never a function of the batch size.  Batched forwards therefore
    reproduce sequential forwards bit for bit by construction, exactly
    like the blocked engine (the batched MC-dropout engine's
    invariant).  Accuracy vs the reference path is tolerance-certified,
    not bit-for-bit — see the module docstring.
    """
    n, c, h, w = x.shape
    c_out = weight.shape[0]
    out_h = h + 2 * padding - 2
    out_w = w + 2 * padding - 2
    th = (out_h + 1) // 2
    tw = (out_w + 1) // 2
    p = th * tw
    dt = x.dtype

    # Parity planes of the padded input, (2, 2, N, C, th+1, tw+1):
    # plane (pr, pc) holds padded pixel (2i+pr, 2j+pc) at (i, j).  Tile
    # (i, j) covers padded rows/cols 2i..2i+3 x 2j..2j+3, i.e. plane
    # entries (i, j) and (i+1, j+1) — one slice shift instead of a
    # strided 4x4 tile gather.
    q = _col_buffer(4 * n * c * (th + 1) * (tw + 1), dt, tag="wg_q")[
        :4 * n * c * (th + 1) * (tw + 1)].reshape(
        2, 2, n, c, th + 1, tw + 1)
    for pr in range(2):
        i0 = (padding - pr + 1) // 2
        i1 = (padding + h - pr - 1) // 2
        r0 = 2 * i0 + pr - padding
        for pc in range(2):
            j0 = (padding - pc + 1) // 2
            j1 = (padding + w - pc - 1) // 2
            s0 = 2 * j0 + pc - padding
            plane = q[pr, pc]
            # Zero only the padding halo (the buffer is pooled, hence
            # dirty): the interior is value-assigned right below, and
            # the halo is at most a row/column strip per side, so this
            # skips a full memory pass over the largest scratch.
            plane[:, :, :i0].fill(0)
            plane[:, :, i1 + 1:].fill(0)
            plane[:, :, i0:i1 + 1, :j0].fill(0)
            plane[:, :, i0:i1 + 1, j1 + 1:].fill(0)
            plane[:, :, i0:i1 + 1, j0:j1 + 1] = x[:, :, r0::2, s0::2]

    # Row half of B^T d B: tile row-coefficients a = 0..3 combine plane
    # rows (i, i+1) of matching parity — all contiguous slices.
    r_ = _col_buffer(8 * n * c * th * (tw + 1), dt, tag="wg_r")[
        :8 * n * c * th * (tw + 1)].reshape(4, 2, n, c, th, tw + 1)
    for pc in range(2):
        q0a, q0b = q[0, pc, :, :, :-1], q[0, pc, :, :, 1:]
        q1a, q1b = q[1, pc, :, :, :-1], q[1, pc, :, :, 1:]
        np.subtract(q0a, q0b, out=r_[0, pc])
        np.add(q1a, q0b, out=r_[1, pc])
        np.subtract(q0b, q1a, out=r_[2, pc])
        np.subtract(q1a, q1b, out=r_[3, pc])

    # Column half, written straight into the GEMM operand layout
    # (16, N, C, P) — coefficient-major so every slot is contiguous.
    v = _col_buffer(16 * n * c * p, dt, tag="wg_v")[
        :16 * n * c * p].reshape(16, n, c, th, tw)
    for a in range(4):
        e0, e1 = r_[a, 0][..., :-1], r_[a, 0][..., 1:]
        o0, o1 = r_[a, 1][..., :-1], r_[a, 1][..., 1:]
        np.subtract(e0, e1, out=v[4 * a + 0])
        np.add(o0, e1, out=v[4 * a + 1])
        np.subtract(e1, o0, out=v[4 * a + 2])
        np.subtract(o0, o1, out=v[4 * a + 3])

    # Transform-domain contraction, batch shape (16, N): one
    # N-independent (C_out, C_in) @ (C_in, P) GEMM per slice (the
    # determinism contract above).
    u = _winograd_filter_transform(weight)
    m = np.matmul(u[:, None], v.reshape(16, n, c, p), out=_col_buffer(
        16 * n * c_out * p, dt, tag="wg_m")[
        :16 * n * c_out * p].reshape(16, n, c_out, p))

    # Inverse transform Y = A^T M A with A^T = [[1,1,1,0],[0,1,-1,-1]]:
    # row half into pooled scratch, column half scattered onto the
    # interleaved output positions.
    mm = m.reshape(16, n, c_out, th, tw)
    s = _col_buffer(8 * n * c_out * p, dt, tag="wg_s")[
        :8 * n * c_out * p].reshape(2, 4, n, c_out, th, tw)
    for b in range(4):
        np.add(mm[b], mm[4 + b], out=s[0, b])
        s[0, b] += mm[8 + b]
        np.subtract(mm[4 + b], mm[8 + b], out=s[1, b])
        s[1, b] -= mm[12 + b]
    y = np.empty((n, c_out, 2 * th, 2 * tw), dtype=dt)
    t = _col_buffer(n * c_out * p, dt, tag="wg_t")[
        :n * c_out * p].reshape(n, c_out, th, tw)
    for r in range(2):
        np.add(s[r, 0], s[r, 1], out=t)
        t += s[r, 2]
        y[:, :, r::2, 0::2] = t
        np.subtract(s[r, 1], s[r, 2], out=t)
        t -= s[r, 3]
        y[:, :, r::2, 1::2] = t
    if (2 * th, 2 * tw) != (out_h, out_w):
        y = np.ascontiguousarray(y[:, :, :out_h, :out_w])
    if bias is not None:
        y += bias[None, :, None, None]
    return y


# ----------------------------------------------------------------------
# Int8 quantised engine
# ----------------------------------------------------------------------
#: Maximum reduction depth ``K = C_in*kh*kw`` the int8 engine accepts.
#: The int32 accumulation is carried *exactly* inside the float32 GEMM
#: (this numpy build has no BLAS integer kernel; a literal int32 matmul
#: measures ~50x slower): products of int8 codes are <= 127^2, so every
#: partial sum stays an exactly representable float32 integer as long
#: as K * 127^2 < 2^24.  Deeper reductions fall back to blocked rather
#: than silently lose exactness (see repro.nn.quant for the full
#: argument).
_INT8_MAX_EXACT_K = (1 << 24) // (127 * 127)   # = 1040

#: Cached per-channel int8 weight quantisations: a
#: :class:`_PerWeightCache` over :func:`repro.nn.quant.quantize_weight`
#: (same invalidation/clearing story as the winograd filter cache).
_INT8_WEIGHT_CACHE = _PerWeightCache(quant.quantize_weight)


def _int8_eligible(c_in: int, kh: int, kw: int) -> bool:
    """Whether a conv geometry can run on the int8 engine.

    Unlike winograd, eligibility does not depend on stride or dilation
    — the quantised GEMM reuses the blocked engine's packing, which
    handles both (dilated 3x3 measured the same int8 overhead as
    dense 3x3).  Two exclusions: kernel footprints below the
    ``int8_min_kernel`` knob (1x1 by default — quantise/dequant passes
    dominate there, measured 0.3-0.6x) and reductions deeper than
    :data:`_INT8_MAX_EXACT_K` (where the exact-accumulation guarantee
    would break).
    """
    if kh * kw < _ENGINE["int8_min_kernel"]:
        return False
    return c_in * kh * kw <= _INT8_MAX_EXACT_K


def _conv2d_infer_int8(x: np.ndarray, weight: np.ndarray,
                       bias: np.ndarray | None, stride: int,
                       padding: int, dilation: int) -> np.ndarray:
    """Quantised convolution: int8 codes, exact accumulation, fused
    dequant.

    Three passes.  (1) *Quantise*: per-sample symmetric absmax scales
    (two reductions, no ``|x|`` temporary), then the codes are written
    into a pooled scratch buffer — float32, but holding exactly the
    integer values ``rint(x / s_a)`` in ``[-127, 127]``.  (2) *GEMM*:
    the code tensor runs through the unmodified blocked-im2col engine
    against the cached float32 copy of the int8 weight codes; by the
    exactness bound gating :func:`_int8_eligible` every partial sum is
    an exact integer, so the result is bit-for-bit the int32
    accumulation regardless of block splits.  (3) *Dequant*: one
    per-``(sample, channel)`` scale and the bias shift are applied in
    place on the GEMM output — the same scale/shift structure as the
    fused eval batch-norm, so the fp32 surface appears in one pass
    with no extra full-size intermediate.

    Contracts: batched == sequential holds bit for bit *by
    construction* — scales are per sample, and exact integer sums are
    immune to the reassociation that makes winograd tolerance-only.
    Accuracy vs the fp32 engines is certified by the a-priori error
    bound of :func:`repro.nn.quant.error_bound` and the pinned envelope
    in ``tests/nn/test_int8_equivalence.py``.
    """
    n = x.shape[0]
    qw = _INT8_WEIGHT_CACHE.get(weight)
    # Per-sample dynamic scales: max of x and of -x instead of a full
    # |x| temporary.
    flat_x = x.reshape(n, -1)
    amax = np.maximum(flat_x.max(axis=1), -flat_x.min(axis=1))
    s_a = np.where(amax > 0, amax * np.float32(1.0 / 127.0),
                   np.float32(1.0))
    inv = np.float32(1.0) / s_a
    # |x| * inv <= 127 * (1 + few ulp) < 127.5, so rint never exceeds
    # the int8 grid — no clip pass needed on the hot path.
    codes = _col_buffer(x.size, x.dtype, tag="i8_act")[
        :x.size].reshape(x.shape)
    np.multiply(x, inv[:, None, None, None], out=codes)
    np.rint(codes, out=codes)
    acc = _conv2d_infer_blocked(codes, qw.gemm, None, stride, padding,
                                dilation)
    acc *= (s_a[:, None] * qw.scale[None, :])[:, :, None, None]
    if bias is not None:
        acc += bias[None, :, None, None]
    return acc


def conv2d_infer(x: np.ndarray, weight: np.ndarray,
                 bias: np.ndarray | None, stride: int = 1,
                 padding: int = 0, dilation: int = 1) -> np.ndarray:
    """Inference-only 2-D convolution on the configured engine.

    Same result contract as :func:`conv2d_forward` but returns only the
    output: no im2col matrix is retained (inference never calls
    backward), the blocked engine reuses pooled scratch buffers, and a
    batch that is a stride-0 broadcast of one sample (the batched MC
    engine tiling an image) is computed once and re-broadcast.
    """
    c_out, c_in, kh, kw = weight.shape
    if x.shape[1] != c_in:
        raise ValueError(
            f"input has {x.shape[1]} channels, weight expects {c_in}")
    if x.shape[0] > 1 and x.strides[0] == 0:
        # Every batch element is the same sample: compute one, broadcast.
        y1 = conv2d_infer(x[:1], weight, bias, stride, padding, dilation)
        return np.broadcast_to(y1, (x.shape[0],) + y1.shape[1:])
    if _ENGINE["mode"] == "reference":
        cols, geom = im2col(x, (kh, kw), stride, padding, dilation)
        out = np.matmul(weight.reshape(c_out, c_in * kh * kw), cols)
        if bias is not None:
            out = out + bias[None, :, None]
        return out.reshape(x.shape[0], c_out, geom[5], geom[6])
    if _ENGINE["mode"] == "winograd":
        out_h = conv_output_size(x.shape[2], kh, stride, padding,
                                 dilation)
        out_w = conv_output_size(x.shape[3], kw, stride, padding,
                                 dilation)
        if _winograd_eligible(kh, kw, stride, dilation, out_h, out_w):
            return _conv2d_infer_winograd(x, weight, bias, padding)
        # Ineligible geometry: transparent blocked/NCHW fallback (the
        # layout knob documents itself as blocked-mode-only).
        return _conv2d_infer_blocked(x, weight, bias, stride, padding,
                                     dilation)
    if _ENGINE["mode"] == "int8":
        if _int8_eligible(c_in, kh, kw):
            return _conv2d_infer_int8(x, weight, bias, stride, padding,
                                      dilation)
        # Ineligible geometry (1x1 footprint / too-deep reduction):
        # bit-identical blocked/NCHW fallback, mirroring winograd.
        return _conv2d_infer_blocked(x, weight, bias, stride, padding,
                                     dilation)
    if _ENGINE["layout"] == "nhwc":
        return _conv2d_infer_nhwc(x, weight, bias, stride, padding,
                                  dilation)
    return _conv2d_infer_blocked(x, weight, bias, stride, padding,
                                 dilation)


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def maxpool2d_forward(x: np.ndarray,
                      kernel: int) -> tuple[np.ndarray, tuple]:
    """Non-overlapping max pooling with ``stride == kernel``.

    The segmentation networks in this library only need non-overlapping
    pooling; restricting to that case permits an exact reshape-based
    implementation.
    """
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(
            f"input spatial size ({h}, {w}) not divisible by pool "
            f"kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    xr = x.reshape(n, c, oh, kernel, ow, kernel)
    y = xr.max(axis=(3, 5))
    # Mask of (first) argmax positions for the backward scatter.
    mask = (xr == y[:, :, :, None, :, None])
    # Break ties: keep only the first max in each window.  The running
    # count fits uint8 for every realistic pool kernel (< 16), keeping
    # the intermediate at 1 byte/element instead of a wide default.
    flat = mask.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, oh, ow, -1)
    count_dtype = np.uint8 if kernel * kernel < 256 else np.intp
    first = np.cumsum(flat, axis=-1, dtype=count_dtype) == 1
    flat &= first
    mask = flat.reshape(n, c, oh, ow, kernel, kernel).transpose(
        0, 1, 2, 4, 3, 5)
    return y, (mask, x.shape, kernel)


def maxpool2d_backward(dy: np.ndarray, cache: tuple) -> np.ndarray:
    """Backward pass of :func:`maxpool2d_forward`."""
    mask, x_shape, kernel = cache
    n, c, h, w = x_shape
    oh, ow = h // kernel, w // kernel
    dxr = mask * dy[:, :, :, None, :, None]
    return dxr.reshape(n, c, h, w)


# ----------------------------------------------------------------------
# Resizing
# ----------------------------------------------------------------------
#: Memoised interpolation matrices, keyed by (in_len, out_len, dtype).
#: Upsample layers rebuild the same tiny matrix every forward; caching
#: removes the ``np.add.at`` scatter from the hot path.  Entries are
#: marked read-only because they are shared.
_RESIZE_W_CACHE: dict[tuple, np.ndarray] = {}
_RESIZE_W_CACHE_CAP = 32


def linear_resize_weights(in_len: int, out_len: int,
                          dtype=np.float32) -> np.ndarray:
    """Dense 1-D linear-interpolation matrix ``W`` with ``y = W @ x``.

    Uses the half-pixel-centre convention (``align_corners=False``).  The
    matrix form makes the adjoint exact (``dx = W.T @ dy``), which keeps
    the bilinear-upsampling layer gradient-checkable.  The default dtype
    is float32 — the substrate's working precision; pass
    ``dtype=np.float64`` explicitly for float64 gradient checking.
    Returned arrays are cached and read-only; copy before mutating.
    """
    if in_len <= 0 or out_len <= 0:
        raise ValueError("lengths must be positive")
    key = (int(in_len), int(out_len), np.dtype(dtype).str)
    cached = _RESIZE_W_CACHE.get(key)
    if cached is not None:
        return cached
    # The fractional coordinates are computed in float64 regardless of
    # the target dtype so the cast to float32 happens once, on the final
    # weights — not on intermediate arithmetic.
    w = np.zeros((out_len, in_len), dtype=np.float64)
    coords = np.clip((np.arange(out_len) + 0.5) * in_len / out_len - 0.5,
                     0, in_len - 1)
    i0 = np.floor(coords).astype(int)
    i1 = np.minimum(i0 + 1, in_len - 1)
    frac = coords - i0
    rows = np.arange(out_len)
    np.add.at(w, (rows, i0), 1.0 - frac)
    np.add.at(w, (rows, i1), frac)
    w = np.ascontiguousarray(w.astype(dtype, copy=False))
    w.setflags(write=False)
    if len(_RESIZE_W_CACHE) >= _RESIZE_W_CACHE_CAP:
        _RESIZE_W_CACHE.pop(next(iter(_RESIZE_W_CACHE)))
    _RESIZE_W_CACHE[key] = w
    return w


def resize_bilinear_forward(x: np.ndarray, out_h: int, out_w: int
                            ) -> tuple[np.ndarray, tuple]:
    """Bilinear resize of NCHW input to ``(out_h, out_w)``.

    Runs as two small GEMMs (``wr @ x @ wc.T``) rather than a 3-operand
    einsum — same contraction, without the per-call path search.
    """
    in_h, in_w = x.shape[-2], x.shape[-1]
    wr = linear_resize_weights(in_h, out_h, dtype=x.dtype)
    wc = linear_resize_weights(in_w, out_w, dtype=x.dtype)
    # y[n,c,i,j] = sum_{h,w} wr[i,h] x[n,c,h,w] wc[j,w]
    y = np.matmul(wr, np.matmul(x, wc.T))
    return y, (wr, wc)


def resize_bilinear_backward(dy: np.ndarray, cache: tuple) -> np.ndarray:
    """Adjoint of :func:`resize_bilinear_forward`."""
    wr, wc = cache
    return np.matmul(wr.T, np.matmul(dy, wc))


def resize_nearest_forward(x: np.ndarray, out_h: int, out_w: int
                           ) -> tuple[np.ndarray, tuple]:
    """Nearest-neighbour resize of NCHW input."""
    in_h, in_w = x.shape[-2], x.shape[-1]
    coords_r = np.clip(np.round((np.arange(out_h) + 0.5) * in_h / out_h
                                - 0.5).astype(int), 0, in_h - 1)
    coords_c = np.clip(np.round((np.arange(out_w) + 0.5) * in_w / out_w
                                - 0.5).astype(int), 0, in_w - 1)
    y = x[..., coords_r[:, None], coords_c[None, :]]
    return np.ascontiguousarray(y), (x.shape, coords_r, coords_c)


def resize_nearest_backward(dy: np.ndarray, cache: tuple) -> np.ndarray:
    """Adjoint of :func:`resize_nearest_forward` (scatter-add)."""
    x_shape, coords_r, coords_c = cache
    dx = np.zeros(x_shape, dtype=dy.dtype)
    rr = coords_r[:, None]
    cc = coords_c[None, :]
    np.add.at(dx, (..., rr, cc), dy)
    return dx


# ----------------------------------------------------------------------
# Softmax
# ----------------------------------------------------------------------
def softmax(x: np.ndarray, axis: int = 1) -> np.ndarray:
    """Numerically stable softmax along ``axis``.

    Floating inputs keep their dtype (float32 stays float32 — the
    substrate's working precision); integer inputs are promoted to
    float32, not float64.
    """
    shifted = x - x.max(axis=axis, keepdims=True)
    if not np.issubdtype(shifted.dtype, np.floating):
        shifted = shifted.astype(np.float32)
    ex = np.exp(shifted, out=shifted)  # reuse the temporary
    ex /= ex.sum(axis=axis, keepdims=True)
    return ex


def log_softmax(x: np.ndarray, axis: int = 1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis`` (dtype-preserving,
    with the same integer-to-float32 rule as :func:`softmax`)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    if not np.issubdtype(shifted.dtype, np.floating):
        shifted = shifted.astype(np.float32)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
