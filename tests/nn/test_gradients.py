"""Finite-difference gradient checks for every layer and composite.

This is the substrate-level assurance argument: the training loop only
optimises the model correctly if every analytic backward pass matches
the true Jacobian.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn.gradcheck import check_module_gradients
from repro.segmentation.msdnet import MSDBlock, MSDNet, MSDNetConfig


def _x(rng, *shape):
    return rng.normal(size=shape)


class TestLayerGradients:
    def test_conv_basic(self, rng):
        check_module_gradients(nn.Conv2d(2, 3, 3, padding=1, rng=0),
                               _x(rng, 2, 2, 5, 5))

    def test_conv_strided(self, rng):
        check_module_gradients(nn.Conv2d(2, 3, 3, stride=2, padding=1,
                                         rng=0),
                               _x(rng, 1, 2, 6, 6))

    def test_conv_dilated(self, rng):
        check_module_gradients(
            nn.Conv2d(2, 2, 3, padding=4, dilation=4, rng=0),
            _x(rng, 1, 2, 9, 9))

    def test_conv_1x1(self, rng):
        check_module_gradients(nn.Conv2d(4, 2, 1, rng=0),
                               _x(rng, 2, 4, 3, 3))

    def test_conv_no_bias(self, rng):
        check_module_gradients(nn.Conv2d(2, 2, 3, padding=1, bias=False,
                                         rng=0),
                               _x(rng, 1, 2, 4, 4))

    def test_batchnorm_training(self, rng):
        check_module_gradients(nn.BatchNorm2d(3), _x(rng, 4, 3, 4, 4))

    def test_batchnorm_eval(self, rng):
        layer = nn.BatchNorm2d(3)
        layer(_x(rng, 4, 3, 5, 5))  # populate running stats
        layer.train(False)
        # In eval mode only gamma/beta have gradients through constants.
        errors = check_module_gradients(layer, _x(rng, 2, 3, 4, 4))
        assert max(errors.values()) <= 1.0
        layer.train(True)

    def test_relu(self, rng):
        # Keep values away from the kink for clean finite differences.
        x = _x(rng, 2, 3, 4, 4)
        x[np.abs(x) < 0.1] += 0.5
        check_module_gradients(nn.ReLU(), x)

    def test_leaky_relu(self, rng):
        x = _x(rng, 2, 2, 3, 3)
        x[np.abs(x) < 0.1] += 0.5
        check_module_gradients(nn.LeakyReLU(0.1), x)

    def test_maxpool(self, rng):
        # Distinct values avoid argmax ties under perturbation.
        x = rng.permutation(64).astype(np.float64).reshape(1, 1, 8, 8)
        check_module_gradients(nn.MaxPool2d(2), x)

    def test_upsample_bilinear(self, rng):
        check_module_gradients(nn.Upsample(2, "bilinear"),
                               _x(rng, 1, 2, 3, 4))

    def test_upsample_nearest(self, rng):
        check_module_gradients(nn.Upsample(3, "nearest"),
                               _x(rng, 1, 2, 3, 3))


class TestCompositeGradients:
    def test_conv_bn_relu_chain(self, rng):
        model = nn.Sequential(
            nn.Conv2d(2, 4, 3, padding=1, rng=0),
            nn.BatchNorm2d(4),
            nn.ReLU())
        check_module_gradients(model, _x(rng, 2, 2, 4, 4))

    def test_encoder_decoder_chain(self, rng):
        model = nn.Sequential(
            nn.Conv2d(2, 4, 3, stride=2, padding=1, rng=0),
            nn.BatchNorm2d(4),
            nn.ReLU(),
            nn.Conv2d(4, 3, 1, rng=1),
            nn.Upsample(2, "bilinear"))
        check_module_gradients(model, _x(rng, 1, 2, 6, 6))

    def test_msd_block(self, rng):
        block = MSDBlock(8, dilations=(1, 2), dropout=0.0, rng=0)
        check_module_gradients(block, _x(rng, 1, 8, 6, 6))

    def test_msd_block_four_branches(self, rng):
        block = MSDBlock(8, dilations=(1, 2, 4, 8), dropout=0.0, rng=0)
        check_module_gradients(block, _x(rng, 1, 8, 10, 10))

    def test_full_msdnet(self, rng):
        config = MSDNetConfig(num_classes=3, base_channels=4,
                              num_blocks=1, dilations=(1, 2),
                              dropout=0.0, downsample_stages=1)
        model = MSDNet(config, rng=0)
        check_module_gradients(model, _x(rng, 1, 3, 6, 6))


class TestGradcheckUtilities:
    def test_numeric_gradient_on_quadratic(self):
        from repro.nn.gradcheck import numeric_gradient
        x = np.array([1.0, 2.0, 3.0])
        grad = numeric_gradient(lambda v: float((v ** 2).sum()), x)
        np.testing.assert_allclose(grad, 2 * x, atol=1e-6)

    def test_mismatch_detected(self, rng):
        """A deliberately broken backward pass must be caught."""

        class Broken(nn.Module):
            def forward(self, x):
                self._x = x
                return x ** 2

            def backward(self, grad):
                return grad * self._x  # wrong: should be 2x

        with pytest.raises(AssertionError, match="gradient check failed"):
            check_module_gradients(Broken(), rng.normal(size=(2, 2)) + 3.0)
