"""Lightweight segmentation model — the paper's embedded-GPU future work.

The conclusion of the paper: "it will be worth investigating other
segmentation models, including lightweight ones in order to be able to
run on on-board GPUs."  This module provides such a model: a slim
encoder-decoder with **no** parallel dilation branches and narrow
trunks, several times cheaper than the scaled MSDnet at some accuracy
cost.  It keeps dropout layers, so the same Monte-Carlo monitor wraps
it unchanged — which is the architectural point: the monitor is
model-agnostic as long as the model exposes stochastic dropout.

``benchmarks/bench_ext_lightweight.py`` measures the latency/quality
trade-off against MSDnet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.utils.rng import ensure_rng

__all__ = ["LightSegNetConfig", "LightSegNet", "build_lightsegnet"]


@dataclass(frozen=True)
class LightSegNetConfig:
    """Hyper-parameters of the lightweight model."""

    num_classes: int = 8
    in_channels: int = 3
    base_channels: int = 8
    dropout: float = 0.5
    downsample_stages: int = 2

    def __post_init__(self):
        if self.base_channels < 1:
            raise ValueError("base_channels must be >= 1")
        if self.downsample_stages < 0:
            raise ValueError("downsample_stages must be >= 0")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")

    @property
    def output_stride(self) -> int:
        return 2 ** self.downsample_stages


class LightSegNet(nn.Module):
    """Slim encoder-decoder: stem -> strided convs -> head -> upsample."""

    def __init__(self, config: LightSegNetConfig | None = None, rng=None):
        super().__init__()
        config = config or LightSegNetConfig()
        rng = ensure_rng(rng)
        self.config = config
        ch = config.base_channels

        layers: list[nn.Module] = [
            nn.Conv2d(config.in_channels, ch, 3, padding=1, rng=rng),
            nn.BatchNorm2d(ch),
            nn.ReLU(),
        ]
        for _ in range(config.downsample_stages):
            layers += [
                nn.Conv2d(ch, ch, 3, stride=2, padding=1, rng=rng),
                nn.BatchNorm2d(ch),
                nn.ReLU(),
            ]
        layers += [
            nn.Conv2d(ch, ch, 3, padding=1, rng=rng),
            nn.BatchNorm2d(ch),
            nn.ReLU(),
            nn.SpatialDropout2d(config.dropout, rng=rng),
            nn.Conv2d(ch, config.num_classes, 1, rng=rng),
        ]
        if config.output_stride > 1:
            layers.append(nn.Upsample(config.output_stride,
                                      mode="bilinear"))
        self.body = nn.Sequential(*layers)
        # Index of the first stochastic (dropout) layer: the boundary of
        # the deterministic-prefix split (see forward_prefix).
        self._prefix_len = next(
            (i for i, layer in enumerate(self.body.layers)
             if isinstance(layer, nn.Dropout)), len(self.body.layers))

    def _check_input(self, x: np.ndarray) -> None:
        stride = self.config.output_stride
        if x.ndim != 4:
            raise ValueError(f"expected NCHW input, got shape {x.shape}")
        if x.shape[2] % stride or x.shape[3] % stride:
            raise ValueError(
                f"input spatial size {x.shape[2:]} must be divisible by "
                f"the output stride {stride}")

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._check_input(x)
        return self.body(x)

    def forward_prefix(self, x: np.ndarray) -> np.ndarray:
        """Everything upstream of the first dropout — deterministic.

        Implements the same split contract as
        :meth:`repro.segmentation.msdnet.MSDNet.forward_prefix`:
        ``forward(x) == forward_suffix(forward_prefix(x))`` with no
        stochastic layer in the prefix, so the batched MC-dropout
        engine computes it once per image instead of once per sample.
        For this architecture the prefix is the entire encoder (stem,
        strided stages and the pre-dropout conv block) — nearly the
        whole network, which is why the split matters even more here
        than for MSDnet (benchmarked in
        ``benchmarks/bench_ext_lightweight.py``).
        """
        self._check_input(x)
        y = x
        for layer in self.body.layers[:self._prefix_len]:
            y = layer(y)
        return y

    def forward_suffix(self, z: np.ndarray) -> np.ndarray:
        """Dropout, classification head and upsampling — the remainder."""
        y = z
        for layer in self.body.layers[self._prefix_len:]:
            y = layer(y)
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.body.backward(grad)

    def predict_probabilities(self, image: np.ndarray) -> np.ndarray:
        """Softmax class scores ``(num_classes, H, W)`` for one image."""
        from repro.segmentation._inference import predict_probabilities
        return predict_probabilities(self, image)

    def predict_labels(self, image: np.ndarray) -> np.ndarray:
        """Arg-max class map ``(H, W)`` for one CHW image (taken on raw
        logits — softmax is monotone — skipping the normalisation)."""
        from repro.segmentation._inference import predict_labels
        return predict_labels(self, image)


def build_lightsegnet(num_classes: int = 8, base_channels: int = 8,
                      dropout: float = 0.5, seed: int = 0) -> LightSegNet:
    """Convenience constructor for the lightweight model."""
    return LightSegNet(LightSegNetConfig(num_classes=num_classes,
                                         base_channels=base_channels,
                                         dropout=dropout), rng=seed)
