"""Procedural urban scene model — the offline substitute for UAVid.

The paper's landing-zone selector is trained on UAVid, 300 high-resolution
oblique urban UAV images with dense 8-class labels.  That imagery cannot
be shipped offline, so this module synthesises urban worlds with the same
label set and the same spatial statistics that matter to emergency
landing: a connected road network, buildings along blocks, parked and
moving cars *on the roads*, pedestrians near buildings and parks, and
open grass areas that constitute legitimate landing zones.

A scene is simultaneously:

* the ground truth for segmentation training/evaluation (via
  :meth:`UrbanScene.label_window`),
* the world model for the mission simulator (touchdown footprints are
  classified against the same grid), and
* the "public database" for the map-based baseline (via
  :attr:`UrbanScene.static_labels`, which lacks dynamic objects — exactly
  the limitation of database-driven landing-site selection the paper's
  related work discusses).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx
import numpy as np
from scipy import ndimage

from repro.dataset import rasterize
from repro.dataset.classes import NUM_CLASSES, UavidClass
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive

__all__ = ["SceneConfig", "UrbanScene", "Car", "Building"]


@dataclass(frozen=True)
class SceneConfig:
    """Parameters of the procedural city.

    Distances are metres.  The defaults give a 256 m x 256 m district at
    0.5 m ground resolution — big enough for a MEDI DELIVERY leg, small
    enough to generate hundreds of scenes in tests.
    """

    size_m: tuple[float, float] = (256.0, 256.0)
    gsd: float = 0.5  # metres per grid cell
    road_spacing_m: float = 64.0
    road_width_m: float = 7.0
    road_jitter_m: float = 8.0
    road_keep_prob: float = 0.9
    sidewalk_width_m: float = 2.5
    building_coverage: float = 0.25
    building_size_m: tuple[float, float] = (10.0, 28.0)
    building_height_m: tuple[float, float] = (6.0, 30.0)
    building_setback_m: float = 3.0
    park_count: int = 2
    park_radius_m: tuple[float, float] = (25.0, 45.0)
    tree_density_per_ha: float = 18.0
    tree_radius_m: tuple[float, float] = (1.5, 4.0)
    tree_height_m: tuple[float, float] = (5.0, 12.0)
    clutter_patch_density: float = 0.08
    static_cars_per_road_km: float = 28.0
    moving_cars_per_road_km: float = 9.0
    car_length_m: float = 4.5
    car_width_m: float = 1.9
    humans_per_ha: float = 4.0

    def __post_init__(self):
        check_positive("gsd", self.gsd)
        check_positive("road_spacing_m", self.road_spacing_m)
        check_positive("road_width_m", self.road_width_m)
        if self.size_m[0] < 2 * self.road_spacing_m or \
                self.size_m[1] < 2 * self.road_spacing_m:
            raise ValueError(
                "scene must span at least two road spacings per axis")

    @property
    def grid_shape(self) -> tuple[int, int]:
        return (int(round(self.size_m[0] / self.gsd)),
                int(round(self.size_m[1] / self.gsd)))

    def m_to_cells(self, metres: float) -> float:
        return metres / self.gsd


@dataclass(frozen=True)
class Car:
    """A car instance (grid coordinates, heading in radians)."""

    row: float
    col: float
    heading: float
    moving: bool


@dataclass(frozen=True)
class Building:
    """A building instance (grid coordinates and height in metres)."""

    top: int
    left: int
    height_cells: int
    width_cells: int
    roof_height_m: float


@dataclass
class UrbanScene:
    """A generated urban world: labels, heights and object inventory."""

    config: SceneConfig
    labels: np.ndarray            # (H, W) int16, final semantic map
    static_labels: np.ndarray     # (H, W) int16, without cars/humans
    height_m: np.ndarray          # (H, W) float32, above-ground height
    cars: list[Car] = field(default_factory=list)
    humans: list[tuple[float, float]] = field(default_factory=list)
    buildings: list[Building] = field(default_factory=list)
    trees: list[tuple[float, float, float]] = field(default_factory=list)
    road_graph: nx.Graph | None = None
    seed: int | None = None

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, config: SceneConfig | None = None,
                 seed=None) -> "UrbanScene":
        """Procedurally generate a scene (deterministic given ``seed``)."""
        config = config or SceneConfig()
        rng = ensure_rng(seed)
        shape = config.grid_shape
        labels = np.full(shape, int(UavidClass.LOW_VEGETATION),
                         dtype=np.int16)
        height = np.zeros(shape, dtype=np.float32)

        cls._paint_clutter_patches(labels, config, rng)
        graph, road_mask = cls._build_road_network(labels, config, rng)
        buildings = cls._place_buildings(labels, height, road_mask,
                                         config, rng)
        trees = cls._place_trees(labels, height, road_mask, config, rng)

        static_labels = labels.copy()

        cars = cls._place_cars(labels, graph, config, rng)
        humans = cls._place_humans(labels, road_mask, config, rng)

        scene = cls(config=config, labels=labels,
                    static_labels=static_labels, height_m=height,
                    cars=cars, humans=humans, buildings=buildings,
                    trees=trees, road_graph=graph,
                    seed=None if seed is None or
                    isinstance(seed, np.random.Generator) else int(seed))
        return scene

    # -- generation stages ---------------------------------------------
    @staticmethod
    def _paint_clutter_patches(labels: np.ndarray, config: SceneConfig,
                               rng: np.random.Generator) -> None:
        """Scatter bare-soil/clutter patches over the vegetation base."""
        h, w = labels.shape
        area_ha = (h * w * config.gsd ** 2) / 1e4
        n_patches = rng.poisson(config.clutter_patch_density * 100 * area_ha)
        for _ in range(int(n_patches)):
            center = (rng.uniform(0, h), rng.uniform(0, w))
            radius = config.m_to_cells(rng.uniform(2.0, 9.0))
            rasterize.draw_disk(labels, center, radius,
                                int(UavidClass.BACKGROUND_CLUTTER))

    @staticmethod
    def _build_road_network(labels: np.ndarray, config: SceneConfig,
                            rng: np.random.Generator
                            ) -> tuple[nx.Graph, np.ndarray]:
        """Create a jittered grid road graph and rasterise it.

        Returns the graph (node attribute ``pos`` in grid coordinates,
        edge attribute ``heading``) and the boolean road mask.
        """
        h, w = labels.shape
        spacing = config.m_to_cells(config.road_spacing_m)
        jitter = config.m_to_cells(config.road_jitter_m)
        n_rows = max(2, int(round(h / spacing)) + 1)
        n_cols = max(2, int(round(w / spacing)) + 1)

        graph = nx.Graph()
        positions: dict[tuple[int, int], tuple[float, float]] = {}
        for i in range(n_rows):
            for j in range(n_cols):
                base_r = i * (h - 1) / (n_rows - 1)
                base_c = j * (w - 1) / (n_cols - 1)
                r = float(np.clip(base_r + rng.uniform(-jitter, jitter),
                                  0, h - 1))
                c = float(np.clip(base_c + rng.uniform(-jitter, jitter),
                                  0, w - 1))
                positions[(i, j)] = (r, c)
                graph.add_node((i, j), pos=(r, c))

        candidate_edges = []
        for i in range(n_rows):
            for j in range(n_cols):
                if i + 1 < n_rows:
                    candidate_edges.append(((i, j), (i + 1, j)))
                if j + 1 < n_cols:
                    candidate_edges.append(((i, j), (i, j + 1)))
        rng.shuffle(candidate_edges)

        # Independently keep each candidate street...
        for u, v in candidate_edges:
            if rng.random() < config.road_keep_prob:
                graph.add_edge(u, v)
        # ...then re-connect any disconnected components through their
        # nearest node pair, so every district has a reachable network.
        components = [list(c) for c in nx.connected_components(graph)]
        while len(components) > 1:
            comp_a = components[0]
            comp_b = components[1]
            best = None
            for a in comp_a:
                for b in comp_b:
                    d = math.dist(positions[a], positions[b])
                    if best is None or d < best[0]:
                        best = (d, a, b)
            graph.add_edge(best[1], best[2])
            components = [list(c) for c in nx.connected_components(graph)]

        width_cells = config.m_to_cells(config.road_width_m)
        sidewalk_cells = config.m_to_cells(config.sidewalk_width_m)
        # Sidewalks first (wider strip), then roads on top.
        for u, v in graph.edges:
            rasterize.draw_thick_line(
                labels, positions[u], positions[v],
                width_cells + 2 * sidewalk_cells,
                int(UavidClass.BACKGROUND_CLUTTER))
        for u, v in graph.edges:
            rasterize.draw_thick_line(labels, positions[u], positions[v],
                                      width_cells, int(UavidClass.ROAD))
            dr = positions[v][0] - positions[u][0]
            dc = positions[v][1] - positions[u][1]
            graph.edges[u, v]["heading"] = math.atan2(dr, dc)
            graph.edges[u, v]["length_cells"] = math.hypot(dr, dc)

        road_mask = labels == int(UavidClass.ROAD)
        return graph, road_mask

    @staticmethod
    def _place_buildings(labels: np.ndarray, height: np.ndarray,
                         road_mask: np.ndarray, config: SceneConfig,
                         rng: np.random.Generator) -> list[Building]:
        """Fill city blocks with axis-aligned buildings."""
        h, w = labels.shape
        setback_cells = config.m_to_cells(config.building_setback_m
                                          + config.sidewalk_width_m
                                          + config.road_width_m / 2.0)
        clearance = ndimage.distance_transform_edt(~road_mask)
        allowed = clearance > setback_cells

        # Reserve park areas: open blocks with no buildings (cities have
        # them, and they are exactly the legitimate landing zones an EL
        # system should find).
        for _ in range(config.park_count):
            pr = rng.uniform(0, h - 1)
            pc = rng.uniform(0, w - 1)
            radius = config.m_to_cells(rng.uniform(*config.park_radius_m))
            park = np.zeros((h, w), dtype=np.int8)
            rasterize.draw_disk(park, (pr, pc), radius, 1)
            allowed &= park == 0

        target_cells = config.building_coverage * allowed.sum()
        placed_cells = 0
        buildings: list[Building] = []
        occupied = np.zeros_like(road_mask)
        attempts = 0
        max_attempts = 4000
        lo, hi = config.building_size_m
        while placed_cells < target_cells and attempts < max_attempts:
            attempts += 1
            bh = int(config.m_to_cells(rng.uniform(lo, hi)))
            bw = int(config.m_to_cells(rng.uniform(lo, hi)))
            top = rng.integers(0, max(1, h - bh))
            left = rng.integers(0, max(1, w - bw))
            patch_allowed = allowed[top:top + bh, left:left + bw]
            patch_occupied = occupied[top:top + bh, left:left + bw]
            if patch_allowed.all() and not patch_occupied.any():
                roof = float(rng.uniform(*config.building_height_m))
                labels[top:top + bh, left:left + bw] = int(
                    UavidClass.BUILDING)
                height[top:top + bh, left:left + bw] = roof
                occupied[top:top + bh, left:left + bw] = True
                buildings.append(Building(int(top), int(left), bh, bw, roof))
                placed_cells += bh * bw
        return buildings

    @staticmethod
    def _place_trees(labels: np.ndarray, height: np.ndarray,
                     road_mask: np.ndarray, config: SceneConfig,
                     rng: np.random.Generator
                     ) -> list[tuple[float, float, float]]:
        """Scatter trees on open ground (never on roads or buildings)."""
        h, w = labels.shape
        area_ha = (h * w * config.gsd ** 2) / 1e4
        n_trees = rng.poisson(config.tree_density_per_ha * area_ha)
        blocked = road_mask | (labels == int(UavidClass.BUILDING))
        trees: list[tuple[float, float, float]] = []
        for _ in range(int(n_trees)):
            r = rng.uniform(0, h - 1)
            c = rng.uniform(0, w - 1)
            if blocked[int(r), int(c)]:
                continue
            radius = config.m_to_cells(rng.uniform(*config.tree_radius_m))
            tree_h = float(rng.uniform(*config.tree_height_m))
            painted = rasterize.draw_disk(labels, (r, c), radius,
                                          int(UavidClass.TREE))
            if painted:
                canopy = np.zeros_like(labels, dtype=bool)
                # Height only where this tree actually painted: redraw on
                # a boolean canvas restricted to the same disk.
                rasterize.draw_disk(canopy.view(np.int8), (r, c), radius, 1)
                height[canopy & (labels == int(UavidClass.TREE))] = tree_h
                trees.append((float(r), float(c), float(radius)))
        return trees

    @staticmethod
    def _place_cars(labels: np.ndarray, graph: nx.Graph,
                    config: SceneConfig,
                    rng: np.random.Generator) -> list[Car]:
        """Park static cars near road edges; put moving cars mid-lane."""
        positions = nx.get_node_attributes(graph, "pos")
        total_len_cells = sum(d["length_cells"]
                              for _, _, d in graph.edges(data=True))
        total_len_km = total_len_cells * config.gsd / 1000.0
        n_static = rng.poisson(config.static_cars_per_road_km * total_len_km)
        n_moving = rng.poisson(config.moving_cars_per_road_km * total_len_km)

        edges = list(graph.edges(data=True))
        weights = np.array([d["length_cells"] for _, _, d in edges])
        if not edges or weights.sum() == 0:
            return []
        probs = weights / weights.sum()

        length_cells = config.m_to_cells(config.car_length_m)
        width_cells = config.m_to_cells(config.car_width_m)
        half_road = config.m_to_cells(config.road_width_m) / 2.0

        cars: list[Car] = []
        for moving in (False, True):
            count = n_moving if moving else n_static
            for _ in range(int(count)):
                idx = rng.choice(len(edges), p=probs)
                u, v, data = edges[idx]
                t = rng.uniform(0.15, 0.85)
                (r0, c0), (r1, c1) = positions[u], positions[v]
                r = r0 + t * (r1 - r0)
                c = c0 + t * (c1 - c0)
                heading = data["heading"]
                if moving:
                    offset = rng.uniform(-0.25, 0.25) * half_road
                else:
                    # Parked close to the kerb on either side.
                    side = rng.choice((-1.0, 1.0))
                    offset = side * (half_road - width_cells * 0.8)
                r += -math.sin(heading - math.pi / 2) * offset
                c += math.cos(heading - math.pi / 2) * offset
                value = int(UavidClass.MOVING_CAR if moving
                            else UavidClass.STATIC_CAR)
                painted = rasterize.draw_oriented_rect(
                    labels, (r, c), length_cells, width_cells, heading,
                    value)
                if painted:
                    cars.append(Car(float(r), float(c), float(heading),
                                    bool(moving)))
        return cars

    @staticmethod
    def _place_humans(labels: np.ndarray, road_mask: np.ndarray,
                      config: SceneConfig,
                      rng: np.random.Generator
                      ) -> list[tuple[float, float]]:
        """Place pedestrians on sidewalks and open ground near roads."""
        h, w = labels.shape
        area_ha = (h * w * config.gsd ** 2) / 1e4
        n_humans = rng.poisson(config.humans_per_ha * area_ha)
        near_road = ndimage.distance_transform_edt(~road_mask) \
            < config.m_to_cells(25.0)
        walkable = ((labels == int(UavidClass.BACKGROUND_CLUTTER))
                    | (labels == int(UavidClass.LOW_VEGETATION)))
        candidates = np.argwhere(walkable & near_road)
        humans: list[tuple[float, float]] = []
        if candidates.size == 0:
            return humans
        radius = max(1.0, config.m_to_cells(0.4))
        for _ in range(int(n_humans)):
            r, c = candidates[rng.integers(0, len(candidates))]
            rasterize.draw_disk(labels, (float(r), float(c)), radius,
                                int(UavidClass.HUMAN))
            humans.append((float(r), float(c)))
        return humans

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def grid_shape(self) -> tuple[int, int]:
        return self.labels.shape

    def _window_indices(self, center_rc: tuple[float, float],
                        shape_px: tuple[int, int], gsd_out: float
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Base-grid sample indices of an output window (nearest)."""
        scale = gsd_out / self.config.gsd
        out_h, out_w = shape_px
        rows = (center_rc[0]
                + (np.arange(out_h) - (out_h - 1) / 2.0) * scale)
        cols = (center_rc[1]
                + (np.arange(out_w) - (out_w - 1) / 2.0) * scale)
        rows = np.clip(np.round(rows).astype(int), 0, self.labels.shape[0] - 1)
        cols = np.clip(np.round(cols).astype(int), 0, self.labels.shape[1] - 1)
        return rows, cols

    def label_window(self, center_rc: tuple[float, float],
                     shape_px: tuple[int, int],
                     gsd_out: float) -> np.ndarray:
        """Ground-truth labels of a camera window at a given GSD."""
        rows, cols = self._window_indices(center_rc, shape_px, gsd_out)
        return self.labels[rows[:, None], cols[None, :]].copy()

    def static_label_window(self, center_rc: tuple[float, float],
                            shape_px: tuple[int, int],
                            gsd_out: float) -> np.ndarray:
        """Like :meth:`label_window` but from the dynamic-free static map."""
        rows, cols = self._window_indices(center_rc, shape_px, gsd_out)
        return self.static_labels[rows[:, None], cols[None, :]].copy()

    def height_window(self, center_rc: tuple[float, float],
                      shape_px: tuple[int, int],
                      gsd_out: float) -> np.ndarray:
        """Above-ground height map of a camera window (for shadows)."""
        rows, cols = self._window_indices(center_rc, shape_px, gsd_out)
        return self.height_m[rows[:, None], cols[None, :]].copy()

    def window_center_bounds(self, shape_px: tuple[int, int],
                             gsd_out: float
                             ) -> tuple[float, float, float, float]:
        """Valid (min_row, max_row, min_col, max_col) window centres."""
        scale = gsd_out / self.config.gsd
        half_h = shape_px[0] * scale / 2.0
        half_w = shape_px[1] * scale / 2.0
        h, w = self.labels.shape
        if 2 * half_h > h or 2 * half_w > w:
            raise ValueError(
                f"window {shape_px}@{gsd_out} m/px does not fit in scene "
                f"{h}x{w}@{self.config.gsd} m/cell")
        return (half_h, h - half_h, half_w, w - half_w)

    def random_window_center(self, shape_px: tuple[int, int],
                             gsd_out: float,
                             rng) -> tuple[float, float]:
        """Uniformly random valid window centre."""
        rng = ensure_rng(rng)
        rmin, rmax, cmin, cmax = self.window_center_bounds(shape_px, gsd_out)
        return (float(rng.uniform(rmin, rmax)),
                float(rng.uniform(cmin, cmax)))

    def class_fractions(self) -> np.ndarray:
        """Per-class pixel fractions of the full scene."""
        counts = np.bincount(self.labels.reshape(-1),
                             minlength=NUM_CLASSES).astype(np.float64)
        return counts / counts.sum()

    def meters_to_cells(self, metres: float) -> float:
        """Convert metres to base-grid cells."""
        return self.config.m_to_cells(metres)
