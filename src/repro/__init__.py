"""repro — reproduction of "Certifying Emergency Landing for Safe Urban UAV"
(Guerin, Delmas, Guiochet; DSN 2021).

Subpackages
-----------
``repro.core``
    The paper's contribution: landing-zone selection, the MC-dropout
    runtime monitor (Eq. 2), the decision module, the full Fig. 2
    pipeline, the streaming episode engine (``EpisodeScheduler``), and
    Tables III/IV as executable requirements.
``repro.scenarios``
    Named scenario registry: scene + imaging conditions + failure +
    wind behind one name (``day_nominal``, ``sunset_ood``, ...), with
    frame-stream, episode and mission-campaign derivations.
``repro.segmentation``
    Scaled MSDnet, training loop, Bayesian (MC-dropout) inference.
``repro.nn``
    Pure-numpy deep-learning substrate (dilated convs, BN, dropout...).
``repro.dataset``
    Procedural urban scenes with the 8 UAVid classes; renderer and
    imaging-condition model (day / sunset / fog...).
``repro.uav``
    MEDI DELIVERY vehicle, ballistics, failure injection, the Fig. 1
    safety switch, Monte-Carlo mission simulation.
``repro.sora``
    Executable SORA v2.0 (GRC/ARC/SAIL/OSO) plus the paper's active-M1
    EL mitigation and Tables I/II hazard artefacts.
``repro.baselines``
    Edge-density, tile-SVM and static-map landing-zone baselines.
``repro.eval``
    Experiment harness, monitor metrics and text reporting.

Quickstart
----------
>>> from repro.eval import build_trained_system
>>> system = build_trained_system()          # trains or loads cached
>>> pipeline = system.make_pipeline()        # the Fig. 2 architecture
>>> result = pipeline.run(system.test_samples[0].image)
>>> result.landed, result.decision.log      # doctest: +SKIP
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
