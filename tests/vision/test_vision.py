"""Tests for the classic-vision substrate (filters, Canny, features)."""

import numpy as np
import pytest

from repro.vision import (
    FEATURE_NAMES,
    box_filter,
    canny,
    gaussian_blur,
    gradient_magnitude,
    hysteresis_threshold,
    non_maximum_suppression,
    sobel_gradients,
    tile_features,
    tile_grid,
    to_grayscale,
)


class TestFilters:
    def test_grayscale_weights(self):
        red = np.zeros((3, 4, 4))
        red[0] = 1.0
        assert to_grayscale(red).mean() == pytest.approx(0.299)

    def test_grayscale_shape_check(self, rng):
        with pytest.raises(ValueError):
            to_grayscale(rng.random((4, 4)))

    def test_blur_preserves_mean(self, rng):
        img = rng.random((16, 16))
        blurred = gaussian_blur(img, 2.0)
        assert blurred.mean() == pytest.approx(img.mean(), abs=0.02)
        assert blurred.std() < img.std()

    def test_blur_sigma_zero_identity(self, rng):
        img = rng.random((8, 8))
        np.testing.assert_array_equal(gaussian_blur(img, 0.0), img)

    def test_sobel_detects_vertical_edge(self):
        img = np.zeros((10, 10))
        img[:, 5:] = 1.0
        grad_r, grad_c = sobel_gradients(img)
        assert np.abs(grad_c).max() > np.abs(grad_r).max()

    def test_gradient_magnitude_nonnegative(self, rng):
        assert (gradient_magnitude(rng.random((8, 8))) >= 0).all()

    def test_box_filter_constant(self):
        img = np.full((10, 10), 3.0)
        np.testing.assert_allclose(box_filter(img, 3), 3.0)

    def test_box_filter_invalid_size(self, rng):
        with pytest.raises(ValueError):
            box_filter(rng.random((5, 5)), 0)


class TestCanny:
    def test_detects_step_edge(self):
        img = np.zeros((32, 32))
        img[:, 16:] = 1.0
        edges = canny(img)
        assert edges[:, 14:18].any()
        # Edge localised: no edges far from the step.
        assert not edges[:, :8].any()
        assert not edges[:, 24:].any()

    def test_constant_image_no_edges(self):
        assert not canny(np.full((16, 16), 0.5)).any()

    def test_edges_are_thin(self):
        img = np.zeros((32, 32))
        img[:, 16:] = 1.0
        edges = canny(img)
        # Non-max suppression keeps the edge at most ~2 px wide.
        assert edges.sum(axis=1).max() <= 3

    def test_threshold_ordering_enforced(self, rng):
        with pytest.raises(ValueError):
            canny(rng.random((8, 8)), low_threshold=0.5,
                  high_threshold=0.1)

    def test_higher_threshold_fewer_edges(self, rng):
        img = rng.random((32, 32))
        low = canny(img, low_threshold=0.02, high_threshold=0.05)
        high = canny(img, low_threshold=0.3, high_threshold=0.6)
        assert high.sum() <= low.sum()

    def test_nms_keeps_peak(self):
        magnitude = np.zeros((5, 5))
        magnitude[2, 2] = 1.0
        grad_r = np.zeros((5, 5))
        grad_c = np.ones((5, 5))
        thin = non_maximum_suppression(magnitude, grad_r, grad_c)
        assert thin[2, 2] == 1.0

    def test_hysteresis_connects_weak_to_strong(self):
        thin = np.zeros((5, 10))
        thin[2, 2:8] = 0.2   # weak chain
        thin[2, 5] = 0.9     # one strong pixel
        edges = hysteresis_threshold(thin, low=0.1, high=0.5)
        assert edges[2, 2:8].all()

    def test_hysteresis_drops_isolated_weak(self):
        thin = np.zeros((5, 5))
        thin[2, 2] = 0.2
        edges = hysteresis_threshold(thin, low=0.1, high=0.5)
        assert not edges.any()


class TestTileFeatures:
    def test_grid_covers_image(self):
        boxes = tile_grid((20, 30), 8)
        covered = np.zeros((20, 30), dtype=int)
        for row, col, h, w in boxes:
            covered[row:row + h, col:col + w] += 1
        np.testing.assert_array_equal(covered, 1)

    def test_grid_invalid_tile(self):
        with pytest.raises(ValueError):
            tile_grid((10, 10), 0)

    def test_feature_matrix_shape(self, rng):
        img = rng.random((3, 16, 24)).astype(np.float32)
        feats, boxes = tile_features(img, 8)
        assert feats.shape == (len(boxes), len(FEATURE_NAMES))
        assert np.isfinite(feats).all()

    def test_excess_green_separates_grass_from_road(self):
        grass = np.zeros((3, 8, 8), dtype=np.float32)
        grass[1] = 0.6
        grass[0] = 0.2
        road = np.full((3, 8, 8), 0.35, dtype=np.float32)
        g_feats, _ = tile_features(grass, 8)
        r_feats, _ = tile_features(road, 8)
        idx = FEATURE_NAMES.index("excess_green")
        assert g_feats[0, idx] > r_feats[0, idx]

    def test_edge_density_feature_responds(self, rng):
        smooth = np.full((3, 16, 16), 0.5, dtype=np.float32)
        stripes = smooth.copy()
        stripes[:, :, ::2] = 0.1
        s_feats, _ = tile_features(smooth, 16)
        t_feats, _ = tile_features(stripes, 16)
        idx = FEATURE_NAMES.index("gradient_energy")
        assert t_feats[0, idx] > s_feats[0, idx]
