"""EXT-LIGHT bench: lightweight model trade-off (the paper's future work).

"...it will be worth investigating other segmentation models, including
lightweight ones in order to be able to run on on-board GPUs."

Trains the slim LightSegNet on the same corpus as the bench MSDnet and
compares parameters, inference latency and segmentation quality, plus —
since PR 2 extended the ``forward_prefix``/``forward_suffix``
deterministic split to LightSegNet — the MC-dropout monitor pass with
and without the prefix split.

Expectations (shape): LightSegNet is several times smaller and faster;
MSDnet is at least as accurate (the multi-scale dilation branches buy
quality); the Bayesian monitor wraps both unchanged; and the prefix
split speeds up the MC pass, because for this architecture the
deterministic prefix is nearly the whole network (only dropout, the 1x1
head and the upsample are stochastic-side).

Full-scale numbers land in ``benchmarks/BENCH_ext_lightweight.json``;
smoke numbers in ``benchmarks/.smoke/`` for the check.sh regression
gate.
"""

import os
import time

import numpy as np
from _bench_utils import best_of as _best_of
from _bench_utils import write_bench_summary

from repro.eval.reporting import format_table, format_title
from repro.segmentation import (
    BayesianSegmenter,
    TrainConfig,
    build_lightsegnet,
    evaluate_model,
    train_model,
)

SMOKE = os.environ.get("BENCH_SMOKE") == "1"


def test_lightweight_tradeoff(benchmark, system, emit):
    light = build_lightsegnet(base_channels=8, seed=4)
    train_model(light, system.train_samples,
                TrainConfig(epochs=20, batch_size=4,
                            learning_rate=3e-3, seed=6))

    def timed_inference(model, image, repeats=5):
        model.eval()
        start = time.perf_counter()
        for _ in range(repeats):
            model.predict_labels(image)
        return (time.perf_counter() - start) / repeats

    image = system.test_samples[0].image

    light_time = benchmark.pedantic(
        lambda: timed_inference(light, image), rounds=1, iterations=1)
    msd_time = timed_inference(system.model, image)

    light_report = evaluate_model(light, system.test_samples)
    msd_report = evaluate_model(system.model, system.test_samples)

    emit("\n" + format_title(
        "EXT-LIGHT: lightweight model vs scaled MSDnet"))
    rows = [
        ["MSDnet (paper architecture)", system.model.num_parameters(),
         f"{msd_time * 1000:.1f}", f"{msd_report.miou:.3f}",
         f"{msd_report.accuracy:.3f}"],
        ["LightSegNet (no dilation branches)", light.num_parameters(),
         f"{light_time * 1000:.1f}", f"{light_report.miou:.3f}",
         f"{light_report.accuracy:.3f}"],
    ]
    emit(format_table(["model", "params", "latency (ms)", "mIoU",
                       "accuracy"], rows))

    # ------------------------------------------------------------------
    # The monitor wraps the lightweight model unchanged — and since
    # PR 2, with the deterministic-prefix split: the encoder runs once
    # per image instead of once per MC sample.
    # ------------------------------------------------------------------
    t = system.config.monitor_samples if SMOKE else 10
    split_seg = BayesianSegmenter(light, num_samples=t, rng=0)
    whole_seg = BayesianSegmenter(light, num_samples=t, rng=0,
                                  prefix_split=False)
    split_s = _best_of(lambda: split_seg.predict_distribution(image))
    whole_s = _best_of(lambda: whole_seg.predict_distribution(image))
    split_speedup = whole_s / split_s

    # Same distribution either way (the split is an optimisation, not a
    # semantic change): compare on a fresh shared seed.
    a = BayesianSegmenter(light, num_samples=t, rng=9)\
        .predict_distribution(image)
    b = BayesianSegmenter(light, num_samples=t, rng=9,
                          prefix_split=False).predict_distribution(image)
    split_bit_for_bit = bool(np.array_equal(a.mean, b.mean)
                             and np.array_equal(a.std, b.std))

    dist = split_seg.predict_distribution(image)
    emit(f"\nMC-dropout on LightSegNet (T={t}): "
         f"whole-net {whole_s * 1000:.2f} ms -> prefix-split "
         f"{split_s * 1000:.2f} ms ({split_speedup:.2f}x), "
         f"bit-for-bit equal: {split_bit_for_bit}")
    emit(f"mean sigma {float(dist.std.mean()):.5f} "
         "(monitor-compatible)")

    summary = {
        "image_shape": list(image.shape),
        "num_samples": t,
        "msdnet_params": system.model.num_parameters(),
        "lightsegnet_params": light.num_parameters(),
        "msdnet_latency_ms": msd_time * 1000,
        "lightsegnet_latency_ms": light_time * 1000,
        "msdnet_miou": msd_report.miou,
        "lightsegnet_miou": light_report.miou,
        "mc_whole_net_ms": whole_s * 1000,
        "mc_prefix_split_ms": split_s * 1000,
        "prefix_split_speedup": split_speedup,
        "prefix_split_bit_for_bit": split_bit_for_bit,
    }
    write_bench_summary("BENCH_ext_lightweight.json", summary,
                        smoke=SMOKE)

    assert light.num_parameters() < system.model.num_parameters() / 2
    assert light_time < msd_time
    assert msd_report.miou >= light_report.miou - 0.02
    assert dist.std.max() > 0.0
    assert split_bit_for_bit, \
        "prefix split changed the LightSegNet MC distribution"
    assert split_speedup >= (0.9 if SMOKE else 1.2), (
        f"prefix split only {split_speedup:.2f}x vs whole-net MC")
