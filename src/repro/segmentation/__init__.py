"""Semantic segmentation: scaled MSDnet, training, Bayesian inference.

The paper's core landing-zone-selection function (a UAVid-trained
MSDnet) and its Monte-Carlo-dropout Bayesian variant used by the runtime
monitor, plus the metrics used to quantify the Fig. 4 result.
"""

from repro.segmentation.bayesian import BayesianSegmenter, PixelDistribution
from repro.segmentation.lightweight import (
    LightSegNet,
    LightSegNetConfig,
    build_lightsegnet,
)
from repro.segmentation.metrics import (
    SegmentationReport,
    confusion_matrix,
    evaluate_predictions,
    iou_per_class,
    mean_iou,
    pixel_accuracy,
)
from repro.segmentation.msdnet import MSDBlock, MSDNet, MSDNetConfig, build_msdnet
from repro.segmentation.train import (
    TrainConfig,
    TrainHistory,
    evaluate_model,
    train_model,
)

__all__ = [
    "LightSegNet",
    "LightSegNetConfig",
    "build_lightsegnet",
    "MSDNet",
    "MSDNetConfig",
    "MSDBlock",
    "build_msdnet",
    "BayesianSegmenter",
    "PixelDistribution",
    "TrainConfig",
    "TrainHistory",
    "train_model",
    "evaluate_model",
    "SegmentationReport",
    "confusion_matrix",
    "evaluate_predictions",
    "iou_per_class",
    "mean_iou",
    "pixel_accuracy",
]
