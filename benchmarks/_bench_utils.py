"""Shared helpers for the benchmark suite.

Importable from any bench file (pytest puts ``benchmarks/`` on
``sys.path`` when collecting them).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
SMOKE_DIR = BENCH_DIR / ".smoke"

#: Version of the ``BENCH_*.json`` summary layout.  Bump when the
#: shared structure changes (key renames, envelope changes), so the
#: perf trajectory stays machine-diffable across PRs.
#:
#: 1 — bare metric dicts (PR 1-4).
#: 2 — every summary carries ``schema_version`` plus a ``host``
#:     fingerprint (PR 5), so numbers from different machines are
#:     never compared as if they came from one box.
SCHEMA_VERSION = 2


def host_fingerprint() -> dict:
    """A small, stable description of the measuring host."""
    return {
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
    }


def best_of(fn, repeats: int = 5) -> float:
    """Minimum wall time of ``fn`` over ``repeats`` runs (after one
    warm-up call) — the honest engine time on a noisy single core."""
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def write_bench_summary(filename: str, summary: dict,
                        smoke: bool) -> Path:
    """Write a bench summary to its canonical location.

    Full-scale numbers go to the tracked trajectory file
    ``benchmarks/<filename>``; smoke numbers go to
    ``benchmarks/.smoke/<filename>`` where the ``scripts/check.sh``
    regression gate (``scripts/bench_gate.py``) picks them up.  The CI
    smoke pass must never clobber the tracked trajectory.

    Every summary is stamped with ``schema_version`` and a ``host``
    fingerprint so the perf trajectory is machine-diffable across PRs
    (a regression on one host and an upgrade of the host look the same
    in a bare number).
    """
    stamped = {"schema_version": SCHEMA_VERSION,
               "host": host_fingerprint()}
    stamped.update(summary)
    if smoke:
        SMOKE_DIR.mkdir(exist_ok=True)
        out = SMOKE_DIR / filename
    else:
        out = BENCH_DIR / filename
    out.write_text(json.dumps(stamped, indent=2) + "\n")
    return out
