"""Tests for the future-work extensions: hybrid LZS and LightSegNet."""

import numpy as np
import pytest

from repro.core import HybridConfig, HybridLandingZoneSelector
from repro.core.landing_zone import LandingZoneConfig
from repro.dataset.classes import UavidClass
from repro.segmentation import (
    BayesianSegmenter,
    LightSegNetConfig,
    TrainConfig,
    build_lightsegnet,
    train_model,
)
from repro.uav.ballistics import DriftModel


def _selector_config():
    return LandingZoneConfig(
        zone_size_m=8.0, gsd_m=1.0,
        drift_model=DriftModel(wind_speed_ms=2.0, gust_factor=1.2,
                               release_height_m=20.0, descent_rate_ms=5.0,
                               position_error_m=1.0, latency_s=0.5,
                               approach_speed_ms=2.0),
        max_candidates=4)


def _map(h=64, w=64, fill=UavidClass.LOW_VEGETATION):
    return np.full((h, w), int(fill), dtype=np.int16)


class TestHybridSelector:
    def test_database_covers_model_blindness(self):
        """Road in the database but missed by the model -> still hazard."""
        hybrid = HybridLandingZoneSelector(
            HybridConfig(selector=_selector_config()))
        predicted = _map()  # the model sees nothing (OOD failure)
        static = _map()
        static[:, :12] = int(UavidClass.ROAD)
        fused = hybrid.fused_hazard_mask(predicted, static)
        assert fused[:, :12].all()

    def test_model_covers_database_blindness(self):
        """A moving car (invisible to the database) stays a hazard."""
        hybrid = HybridLandingZoneSelector(
            HybridConfig(selector=_selector_config(),
                         registration_error_px=0))
        predicted = _map()
        predicted[30, 30] = int(UavidClass.MOVING_CAR)
        static = _map()
        fused = hybrid.fused_hazard_mask(predicted, static)
        assert fused[30, 30]

    def test_union_is_conservative(self):
        """Fused hazards are a superset of each source's hazards."""
        hybrid = HybridLandingZoneSelector(
            HybridConfig(selector=_selector_config(),
                         registration_error_px=0))
        rng = np.random.default_rng(0)
        predicted = rng.integers(0, 8, size=(32, 32)).astype(np.int16)
        static = rng.integers(0, 5, size=(32, 32)).astype(np.int16)
        fused = hybrid.fused_hazard_mask(predicted, static)
        learned = hybrid._learned.unsafe_mask(predicted)
        database = hybrid.database_hazard_mask(static)
        assert (fused >= learned).all()
        assert (fused >= database).all()

    def test_registration_error_dilates(self):
        narrow = HybridLandingZoneSelector(
            HybridConfig(selector=_selector_config(),
                         registration_error_px=0))
        wide = HybridLandingZoneSelector(
            HybridConfig(selector=_selector_config(),
                         registration_error_px=3))
        static = _map()
        static[30:34, 30:34] = int(UavidClass.BUILDING)
        assert wide.database_hazard_mask(static).sum() > \
            narrow.database_hazard_mask(static).sum()

    def test_propose_avoids_both_sources(self):
        hybrid = HybridLandingZoneSelector(
            HybridConfig(selector=_selector_config()))
        predicted = _map()
        predicted[:, 40:] = int(UavidClass.MOVING_CAR)  # live hazard
        static = _map()
        static[:, :12] = int(UavidClass.ROAD)           # database hazard
        candidates = hybrid.propose(predicted, static)
        assert candidates
        best = candidates[0]
        center_col = best.box.center[1]
        assert 12 < center_col < 40

    def test_all_hazard_returns_empty(self):
        hybrid = HybridLandingZoneSelector(
            HybridConfig(selector=_selector_config()))
        assert hybrid.propose(_map(fill=UavidClass.ROAD),
                              _map(fill=UavidClass.ROAD)) == []

    def test_shape_mismatch_raises(self):
        hybrid = HybridLandingZoneSelector(
            HybridConfig(selector=_selector_config()))
        with pytest.raises(ValueError, match="align"):
            hybrid.fused_hazard_mask(_map(32, 32), _map(16, 16))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HybridConfig(registration_error_px=-1)
        with pytest.raises(ValueError):
            HybridConfig(database_classes=())


class TestLightSegNet:
    def test_output_shape(self, rng):
        model = build_lightsegnet(base_channels=4, seed=0)
        x = rng.random((1, 3, 16, 24)).astype(np.float32)
        assert model(x).shape == (1, 8, 16, 24)

    def test_fewer_parameters_than_msdnet(self):
        from repro.segmentation import build_msdnet
        light = build_lightsegnet(base_channels=8, seed=0)
        msd = build_msdnet(base_channels=16, num_blocks=2, seed=0)
        assert light.num_parameters() < msd.num_parameters() / 2

    def test_trains(self):
        from repro.dataset import DatasetConfig, generate_dataset
        samples = generate_dataset(DatasetConfig(
            num_scenes=2, windows_per_scene=3, image_shape=(32, 48),
            seed=41))
        model = build_lightsegnet(base_channels=8, seed=1)
        history = train_model(model, samples,
                              TrainConfig(epochs=5, batch_size=3,
                                          seed=0))
        assert history.final_loss < history.epoch_losses[0]

    def test_monitor_compatible(self, rng):
        """The same Bayesian wrapper must work unchanged."""
        model = build_lightsegnet(base_channels=4, seed=0)
        segmenter = BayesianSegmenter(model, num_samples=4, rng=0)
        image = rng.random((3, 16, 16)).astype(np.float32)
        dist = segmenter.predict_distribution(image)
        assert dist.std.max() > 0.0  # dropout produces MC variance

    def test_stride_validation(self, rng):
        model = build_lightsegnet(base_channels=4, seed=0)
        with pytest.raises(ValueError, match="divisible"):
            model(rng.random((1, 3, 15, 16)).astype(np.float32))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LightSegNetConfig(base_channels=0)
        with pytest.raises(ValueError):
            LightSegNetConfig(dropout=1.0)
