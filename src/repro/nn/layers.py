"""Neural-network layers for the numpy deep-learning substrate.

Includes everything MSDnet needs: dilated convolution, batch
normalisation, ReLU family, dropout with a Monte-Carlo-inference switch
(the mechanism behind the paper's Bayesian runtime monitor), pooling and
bilinear upsampling.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init as init_schemes
from repro.nn.module import Module, Parameter
from repro.utils.rng import ensure_rng

__all__ = [
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "LeakyReLU",
    "Dropout",
    "SpatialDropout2d",
    "MaxPool2d",
    "Upsample",
    "Identity",
    "set_mc_dropout",
    "mc_dropout_enabled",
    "collect_dropout_layers",
]


class Conv2d(Module):
    """2-D convolution with stride, zero padding and dilation.

    Dilation is the defining ingredient of MSDnet's multi-scale blocks:
    parallel branches with dilations 1/2/4/8 observe growing receptive
    fields at constant resolution.
    """

    def __init__(self, in_channels: int, out_channels: int,
                 kernel_size: int = 3, stride: int = 1, padding: int = 0,
                 dilation: int = 1, bias: bool = True, rng=None):
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride,
               dilation) < 1:
            raise ValueError("channels, kernel, stride, dilation must be >=1")
        if padding < 0:
            raise ValueError(f"padding must be >= 0, got {padding}")
        rng = ensure_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.dilation = dilation
        weight_shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init_schemes.he_normal(weight_shape, rng),
                                name="weight")
        self.bias = (Parameter(init_schemes.zeros(out_channels), name="bias")
                     if bias else None)
        self._cache = None

    @staticmethod
    def same_padding(kernel_size: int, dilation: int = 1) -> int:
        """Padding that preserves spatial size at stride 1."""
        return dilation * (kernel_size - 1) // 2

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(
                f"Conv2d expects NCHW input, got shape {np.shape(x)}")
        bias = self.bias.data if self.bias is not None else None
        if self.training:
            y, self._cache = F.conv2d_forward(
                x, self.weight.data, bias, self.stride, self.padding,
                self.dilation)
        else:
            # Inference engine: blocked im2col into pooled scratch
            # buffers, no column matrix retained (backward is a
            # training-mode operation).
            self._cache = None
            y = F.conv2d_infer(
                x, self.weight.data, bias, self.stride, self.padding,
                self.dilation)
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                "backward called before forward (inference-mode "
                "forwards do not retain the im2col cache)")
        dx, dw, db = F.conv2d_backward(grad, self._cache)
        self.weight.grad += dw
        if self.bias is not None:
            self.bias.grad += db
        return dx


class BatchNorm2d(Module):
    """Per-channel batch normalisation with running statistics.

    In eval mode the normalisation uses the running statistics only, so
    it is per-element and batch-size-invariant — a property the batched
    MC-dropout engine (:mod:`repro.segmentation.bayesian`) relies on:
    an image tiled ``T`` times along the batch axis normalises exactly
    as ``T`` single-image forwards.
    """

    def __init__(self, num_channels: int, eps: float = 1e-5,
                 momentum: float = 0.1):
        super().__init__()
        if num_channels < 1:
            raise ValueError("num_channels must be >= 1")
        self.num_channels = num_channels
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(init_schemes.constant(num_channels, 1.0),
                               name="gamma")
        self.beta = Parameter(init_schemes.zeros(num_channels), name="beta")
        self.running_mean = np.zeros(num_channels, dtype=np.float64)
        self.running_var = np.ones(num_channels, dtype=np.float64)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] != self.num_channels:
            raise ValueError(
                f"expected {self.num_channels} channels, got {x.shape[1]}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            m = self.momentum
            self.running_mean = (1 - m) * self.running_mean + m * mean
            self.running_var = (1 - m) * self.running_var + m * var
            inv_std = 1.0 / np.sqrt(var + self.eps)
            x_hat = (x - mean[None, :, None, None]) \
                * inv_std[None, :, None, None]
            y = (self.gamma.data[None, :, None, None] * x_hat
                 + self.beta.data[None, :, None, None])
            self._cache = (x_hat, inv_std, x.shape)
            return y
        # Eval: running statistics are constants, so normalisation and
        # the affine transform fuse into one per-channel scale/shift —
        # two full-size passes (multiply, add) instead of four, no
        # materialised x_hat, and no cache retained (inference never
        # calls backward; see Conv2d).
        mean = self.running_mean.astype(x.dtype)
        var = self.running_var.astype(x.dtype)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        scale = self.gamma.data * inv_std
        shift = self.beta.data - mean * scale
        y = x * scale[None, :, None, None]
        y += shift[None, :, None, None]
        self._cache = None
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                "backward called before forward (inference-mode "
                "forwards do not retain normalisation caches)")
        x_hat, inv_std, x_shape = self._cache
        n, _, h, w = x_shape
        m = n * h * w
        self.beta.grad += grad.sum(axis=(0, 2, 3))
        self.gamma.grad += (grad * x_hat).sum(axis=(0, 2, 3))
        g = grad * self.gamma.data[None, :, None, None]
        sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        dx = (inv_std[None, :, None, None] / m
              * (m * g - sum_g - x_hat * sum_gx))
        return dx


class ReLU(Module):
    """Rectified linear unit.

    Inference forwards run as a single fused ``np.maximum`` pass and
    retain no mask (inference never calls backward; see Conv2d).
    """

    def __init__(self):
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            self._mask = x > 0
            return x * self._mask
        self._mask = None
        return np.maximum(x, 0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(
                "backward called before forward (inference-mode "
                "forwards do not retain the activation mask)")
        return grad * self._mask


class LeakyReLU(Module):
    """Leaky rectified linear unit."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad, self.negative_slope * grad)


class Dropout(Module):
    """Inverted elementwise dropout with a Monte-Carlo-inference switch.

    In standard operation, dropout is active only in training mode.  The
    paper's monitor (Sec. V-B) instead *keeps dropout active at inference
    time* — Monte-Carlo dropout (Gal & Ghahramani, 2016) — so repeated
    stochastic passes sample an approximate posterior.  Setting
    ``mc_mode = True`` (via :func:`set_mc_dropout`) enables exactly that
    behaviour without touching the training flag of other layers.

    Batch contract: the mask is drawn with one ``rng.random(x.shape)``
    call, so every batch element gets an independent mask and — because
    one ``(T, ...)`` draw consumes the generator stream exactly like
    ``T`` successive ``(1, ...)`` draws — a ``T``-tiled batch forward
    reproduces ``T`` sequential forwards bit for bit on the same seed.
    The batched MC-dropout engine is built on this contract.
    """

    def __init__(self, p: float = 0.5, rng=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {p}")
        self.p = p
        self.mc_mode = False
        self.rng = ensure_rng(rng)
        self._mask = None

    def _active(self) -> bool:
        return (self.training or self.mc_mode) and self.p > 0.0

    def _draw_mask(self, shape, dtype) -> np.ndarray:
        """One inverted-dropout mask of ``shape``.

        The mask is built in the input's dtype: a {0, 1/keep}-valued
        float32 array for float32 activations, with 1/keep computed in
        float64 and rounded once — bit-identical to the historical
        float64-mask-then-cast, without the full-size float64
        intermediate and per-forward astype copy.  One ``rng.random``
        call per mask keeps the batch contract (see class docstring).
        """
        keep = 1.0 - self.p
        scale = np.asarray(1.0 / keep, dtype=dtype
                           if np.issubdtype(dtype, np.floating)
                           else np.float32)
        return (self.rng.random(shape) < keep).astype(
            scale.dtype) * scale

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self._active():
            self._mask = None
            return x
        self._mask = self._draw_mask(x.shape, x.dtype)
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        if self._mask.dtype == grad.dtype:
            return grad * self._mask
        return grad * self._mask.astype(grad.dtype)


class SpatialDropout2d(Dropout):
    """Channel dropout: zeroes whole feature maps.

    More effective than elementwise dropout for convolutional features
    (adjacent pixels are correlated), and the variant used between MSD
    blocks in our scaled MSDnet.  The ``(N, C, 1, 1)`` mask draw obeys
    the same per-batch-element independence contract as
    :class:`Dropout`, so batched MC inference stays exact.
    """

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self._active():
            self._mask = None
            return x
        n, c = x.shape[:2]
        # Broadcast view: the (N, C, 1, 1) mask multiplies the full map
        # without ever materialising an (N, C, H, W) mask array.
        self._mask = np.broadcast_to(
            self._draw_mask((n, c, 1, 1), x.dtype), x.shape)
        return x * self._mask


class MaxPool2d(Module):
    """Non-overlapping max pooling (stride equals kernel)."""

    def __init__(self, kernel_size: int = 2):
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.kernel_size = kernel_size
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        y, self._cache = F.maxpool2d_forward(x, self.kernel_size)
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        return F.maxpool2d_backward(grad, self._cache)


class Upsample(Module):
    """Upsample by an integer scale factor (bilinear or nearest)."""

    def __init__(self, scale: int, mode: str = "bilinear"):
        super().__init__()
        if scale < 1:
            raise ValueError("scale must be >= 1")
        if mode not in ("bilinear", "nearest"):
            raise ValueError(f"unknown mode {mode!r}")
        self.scale = scale
        self.mode = mode
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out_h = x.shape[-2] * self.scale
        out_w = x.shape[-1] * self.scale
        if self.mode == "bilinear":
            y, self._cache = F.resize_bilinear_forward(x, out_h, out_w)
        else:
            y, self._cache = F.resize_nearest_forward(x, out_h, out_w)
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        if self.mode == "bilinear":
            return F.resize_bilinear_backward(grad, self._cache)
        return F.resize_nearest_backward(grad, self._cache)


class Identity(Module):
    """No-op layer (useful as a configurable placeholder)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad


def collect_dropout_layers(model: Module) -> list["Dropout"]:
    """All dropout layers of ``model`` in ``modules()`` order.

    The order matters: :func:`set_mc_dropout` seeds layers in this
    order, so callers that cache the list (the Bayesian segmenter's hot
    path does, to skip the attribute-scan walk on every MC pass) get
    the exact seeding stream of an uncached call.
    """
    return [m for m in model.modules() if isinstance(m, Dropout)]


def set_mc_dropout(model: Module, active: bool, rng=None,
                   layers: list["Dropout"] | None = None) -> int:
    """Toggle Monte-Carlo dropout on every dropout layer of ``model``.

    Returns the number of dropout layers affected.  Optionally reseeds
    the layers' generators so an MC session is reproducible.  ``layers``
    may carry a pre-collected :func:`collect_dropout_layers` result to
    skip the module walk (the lists must come from the same model).
    """
    if layers is None:
        layers = collect_dropout_layers(model)
    rng = ensure_rng(rng) if rng is not None else None
    for module in layers:
        module.mc_mode = active
        if rng is not None:
            module.rng = np.random.default_rng(
                int(rng.integers(0, 2**63 - 1)))
    return len(layers)


def mc_dropout_enabled(model: Module) -> bool:
    """True if any dropout layer of ``model`` is in MC mode."""
    return any(isinstance(m, Dropout) and m.mc_mode
               for m in model.modules())
