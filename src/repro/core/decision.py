"""The Decision Module (DM) of the Fig. 2 safety architecture.

"If the monitor confirms the proposed zone, then the DM will trigger
landing execution.  If the zone is rejected by the monitor, the DM will
either request a new trial or abort the flight if an additional trial
cannot be safely performed."

Aborting hands control back to the safety switch, which engages Flight
Termination.  Whether "an additional trial can be safely performed" is
governed by an attempt budget and a time budget (each Bayesian pass
costs seconds — the Sec. V-B latency constraint — while the vehicle is
falling back on degraded control).

Speculative check-ahead
-----------------------
The retry loop is adaptive (stop at the first confirmed zone), which
made it inherently sequential: candidate ``i+1`` is only monitored
after candidate ``i`` is rejected.  With ``speculative_k > 1`` the DM
instead monitors the next ``k`` ranked candidates as *one* jointly
seeded stacked Bayesian pass (``RuntimeMonitor.check_zones``) and
consumes the verdicts in rank order — the batched engine amortises the
model forwards, so when the top candidate is rejected the runner-up's
verdict is already paid for.  Consumption semantics are identical to
the sequential loop: budgets are decremented per *consumed* verdict,
verdicts past the first acceptance are discarded, and the batch size is
clamped so no candidate is ever speculated that the sequential loop
could not have afforded.  Given the same per-candidate verdicts, both
paths produce bit-for-bit identical :class:`Decision` objects (tested
in ``tests/core/test_speculative_decision.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.landing_zone import ZoneCandidate
from repro.core.monitor import ZoneVerdict
from repro.utils.validation import check_positive

__all__ = ["DecisionAction", "DecisionConfig", "Decision", "DecisionModule"]


class DecisionAction(Enum):
    """Terminal actions of the decision module."""

    LAND = "go to landing zone"
    ABORT = "abort flight"


@dataclass(frozen=True)
class DecisionConfig:
    """Budgets bounding the retry loop."""

    max_attempts: int = 3
    time_budget_s: float = 20.0
    seconds_per_attempt: float = 5.0  # Sec. V-B: ~5 s per 1024x1024 crop
    #: Number of ranked candidates monitored per joint Bayesian pass.
    #: 1 (default) is the paper's strictly sequential confirm/retry
    #: loop; k > 1 enables speculative check-ahead (see the module
    #: docstring) when the caller supplies a ``check_zones`` batch
    #: callable.
    speculative_k: int = 1

    def __post_init__(self):
        check_positive("max_attempts", self.max_attempts)
        check_positive("time_budget_s", self.time_budget_s)
        check_positive("seconds_per_attempt", self.seconds_per_attempt)
        check_positive("speculative_k", self.speculative_k)


@dataclass
class Decision:
    """Outcome of one decision episode."""

    action: DecisionAction
    zone: ZoneCandidate | None
    verdicts: list[ZoneVerdict] = field(default_factory=list)
    attempts: int = 0
    elapsed_s: float = 0.0
    log: list[str] = field(default_factory=list)

    @property
    def landed(self) -> bool:
        return self.action is DecisionAction.LAND


class DecisionModule:
    """Iterates candidates through the monitor under budget constraints."""

    def __init__(self, config: DecisionConfig | None = None):
        self.config = config or DecisionConfig()

    # ------------------------------------------------------------------
    # Budget bookkeeping shared by the sequential and speculative paths
    # ------------------------------------------------------------------
    def _block_reason(self, decision: Decision) -> str | None:
        """Log line explaining why the next check cannot run, if so."""
        cfg = self.config
        if decision.attempts >= cfg.max_attempts:
            return (f"attempt budget ({cfg.max_attempts}) exhausted "
                    "-> abort flight")
        if decision.elapsed_s + cfg.seconds_per_attempt > \
                cfg.time_budget_s:
            return (f"time budget ({cfg.time_budget_s:.0f}s) exhausted "
                    "-> abort flight")
        return None

    def _affordable_checks(self, decision: Decision) -> int:
        """How many further checks the budgets allow, simulated with
        exactly the sequential loop's float accumulation so both paths
        agree at budget boundaries."""
        cfg = self.config
        attempts = decision.attempts
        elapsed = decision.elapsed_s
        count = 0
        while attempts < cfg.max_attempts and \
                elapsed + cfg.seconds_per_attempt <= cfg.time_budget_s:
            attempts += 1
            elapsed += cfg.seconds_per_attempt
            count += 1
        return count

    def _consume(self, decision: Decision, candidate: ZoneCandidate,
                 verdict: ZoneVerdict) -> bool:
        """Book one verdict against the budgets; True when it lands."""
        decision.attempts += 1
        decision.elapsed_s += self.config.seconds_per_attempt
        decision.verdicts.append(verdict)
        if verdict.accepted:
            decision.action = DecisionAction.LAND
            decision.zone = candidate
            decision.log.append(
                f"zone #{candidate.rank} confirmed "
                f"(unsafe fraction {verdict.unsafe_fraction:.3f}) "
                "-> go to landing zone")
            return True
        decision.log.append(
            f"zone #{candidate.rank} rejected "
            f"(unsafe fraction {verdict.unsafe_fraction:.3f}) "
            "-> try another candidate")
        return False

    # ------------------------------------------------------------------
    def decide(self, candidates: list[ZoneCandidate],
               check_zone, check_zones=None) -> Decision:
        """Run the confirm/retry/abort loop.

        Parameters
        ----------
        candidates:
            Ranked zone candidates from the core function.  Candidates
            that fail the drift buffer are skipped outright (they are
            unsafe by construction, no need to spend a Bayesian pass).
        check_zone:
            Callable ``ZoneCandidate -> ZoneVerdict`` (the monitor);
            pass ``None`` to accept the best buffered candidate without
            monitoring (the unmonitored ablation).
        check_zones:
            Optional callable ``list[ZoneCandidate] ->
            list[ZoneVerdict]`` verifying several candidates in one
            batched Bayesian pass.  Used (and required) when
            ``config.speculative_k > 1``; ignored otherwise.
        """
        cfg = self.config
        decision = Decision(action=DecisionAction.ABORT, zone=None)

        viable = [c for c in candidates if c.meets_buffer()]
        skipped = len(candidates) - len(viable)
        if skipped:
            decision.log.append(
                f"skipped {skipped} candidate(s) failing the drift buffer")
        if not viable:
            decision.log.append("no viable candidate -> abort flight")
            return decision

        if check_zone is None and check_zones is None:
            decision.action = DecisionAction.LAND
            decision.zone = viable[0]
            decision.attempts = 1
            decision.log.append(
                "monitor disabled: accepting best candidate unchecked")
            return decision

        if cfg.speculative_k > 1 and check_zones is None:
            # Surface the misconfiguration instead of silently running
            # sequential monitoring the caller did not ask for.
            raise ValueError(
                f"speculative_k={cfg.speculative_k} requires a "
                "check_zones batch callable")

        if cfg.speculative_k > 1 and check_zones is not None:
            self._decide_speculative(decision, viable, check_zones)
        else:
            if check_zone is None:
                # Only a batch callable was supplied but speculation is
                # off: run it one candidate at a time (bit-identical to
                # a per-zone monitor by the check_zones contract).
                def check_zone(candidate, _batch=check_zones):
                    return _batch([candidate])[0]
            self._decide_sequential(decision, viable, check_zone)

        if decision.action is DecisionAction.ABORT and \
                not any("abort" in line for line in decision.log):
            decision.log.append("all candidates rejected -> abort flight")
        return decision

    def _decide_sequential(self, decision: Decision, viable: list,
                           check_zone) -> None:
        """One monitor pass per candidate, in rank order."""
        for candidate in viable:
            reason = self._block_reason(decision)
            if reason is not None:
                decision.log.append(reason)
                return
            if self._consume(decision, candidate, check_zone(candidate)):
                return

    def _decide_speculative(self, decision: Decision, viable: list,
                            check_zones) -> None:
        """Check-ahead batches of up to ``speculative_k`` candidates.

        Each batch is clamped to what the budgets can still afford, so
        no candidate is monitored that the sequential loop would have
        refused; verdicts are consumed in rank order and any computed
        past the first acceptance are discarded — making the resulting
        :class:`Decision` identical to the sequential path's given the
        same per-candidate verdicts.
        """
        idx = 0
        while idx < len(viable):
            reason = self._block_reason(decision)
            if reason is not None:
                decision.log.append(reason)
                return
            k = min(self.config.speculative_k,
                    self._affordable_checks(decision),
                    len(viable) - idx)
            batch = viable[idx:idx + k]
            verdicts = list(check_zones(batch))
            if len(verdicts) != len(batch):
                raise ValueError(
                    f"check_zones returned {len(verdicts)} verdicts "
                    f"for {len(batch)} candidates")
            # Speculation is transparent in the decision record: the
            # log lines match the sequential loop's exactly, so the
            # equivalence tests can compare whole Decision objects.
            for candidate, verdict in zip(batch, verdicts):
                if self._consume(decision, candidate, verdict):
                    return
            idx += k
