"""Hazard analysis artefacts: Table I (severity) and Table II (outcomes).

The paper extends Belcastro et al.'s hazard analysis with a severity
analysis of ground-risk outcomes.  This module encodes both tables
verbatim and provides the touchdown classifier that the mission
simulator uses to *measure* outcome frequencies — turning the paper's
asserted severities into observable simulation events.

Table I — severity scale::

    1  Negligible   - No effect
    2  Minor        - Slight injury or damage to the drone
    3  Serious      - Important injury or damage to critical
                      infrastructures, environment
    4  Major        - Single fatal injury
    5  Catastrophic - Multiple fatal injuries

Table II — main ground risks::

    R1  UAV causes accident involving ground vehicles         severity 5
    R2  UAV injures people on ground                          severity 4
    R3  Post-crash fire threatening wildlife and environment  severity 3
    R4  UAV collides with infrastructure                      severity 3
    R5  UAV crashes into parked ground vehicle                severity 2
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, IntEnum

import numpy as np

from repro.dataset.classes import UavidClass

__all__ = [
    "Severity",
    "SEVERITY_DESCRIPTIONS",
    "GroundRiskOutcome",
    "OUTCOME_TABLE",
    "TouchdownAssessment",
    "classify_touchdown",
    "FIRE_ENERGY_THRESHOLD_J",
]


class Severity(IntEnum):
    """Table I severity ratings."""

    NEGLIGIBLE = 1
    MINOR = 2
    SERIOUS = 3
    MAJOR = 4
    CATASTROPHIC = 5


SEVERITY_DESCRIPTIONS = {
    Severity.NEGLIGIBLE: "Negligible - No effect",
    Severity.MINOR: "Minor - Slight injury or damage to the drone",
    Severity.SERIOUS: ("Serious - Important injury or damage to critical "
                       "infrastructures, environment"),
    Severity.MAJOR: "Major - Single fatal injury",
    Severity.CATASTROPHIC: "Catastrophic - Multiple fatal injuries",
}


class GroundRiskOutcome(Enum):
    """Table II hazardous outcomes."""

    R1_GROUND_VEHICLE_ACCIDENT = "R1"
    R2_PERSON_INJURED = "R2"
    R3_POST_CRASH_FIRE = "R3"
    R4_INFRASTRUCTURE_COLLISION = "R4"
    R5_PARKED_VEHICLE_CRASH = "R5"


@dataclass(frozen=True)
class OutcomeSpec:
    """One row of Table II."""

    outcome: GroundRiskOutcome
    description: str
    severity: Severity


#: Table II, exactly as printed in the paper.
OUTCOME_TABLE: tuple[OutcomeSpec, ...] = (
    OutcomeSpec(GroundRiskOutcome.R1_GROUND_VEHICLE_ACCIDENT,
                "UAV causes accident involving ground vehicles",
                Severity.CATASTROPHIC),
    OutcomeSpec(GroundRiskOutcome.R2_PERSON_INJURED,
                "UAV injures people on ground", Severity.MAJOR),
    OutcomeSpec(GroundRiskOutcome.R3_POST_CRASH_FIRE,
                "Post-crash fire that threatens wildlife and environment",
                Severity.SERIOUS),
    OutcomeSpec(GroundRiskOutcome.R4_INFRASTRUCTURE_COLLISION,
                "UAV collides with infrastructure (Building, bridge, "
                "power lines / sub-station, etc.)", Severity.SERIOUS),
    OutcomeSpec(GroundRiskOutcome.R5_PARKED_VEHICLE_CRASH,
                "UAV crashes into parked ground vehicle", Severity.MINOR),
)

_OUTCOME_SEVERITY = {spec.outcome: spec.severity for spec in OUTCOME_TABLE}

#: Impact energies above this are assumed able to start a post-crash
#: fire in vegetation (battery rupture); a parachuted touchdown is below.
FIRE_ENERGY_THRESHOLD_J = 500.0


@dataclass(frozen=True)
class TouchdownAssessment:
    """Classified consequence of one touchdown."""

    outcome: GroundRiskOutcome | None
    severity: Severity
    mitigated_by_parachute: bool

    @property
    def fatal(self) -> bool:
        """True when the outcome can involve fatalities (severity >= 4)."""
        return self.severity >= Severity.MAJOR


def classify_touchdown(footprint_labels: np.ndarray,
                       parachute_deployed: bool,
                       impact_energy_j: float) -> TouchdownAssessment:
    """Classify a touchdown footprint into a Table II outcome.

    Parameters
    ----------
    footprint_labels:
        Ground-truth class ids under the touchdown footprint.
    parachute_deployed:
        Whether the impact was under canopy.  Per Section III-D (M2
        discussion), a parachute reduces the severity of injuring a
        person (R2) from Major to Minor, but does *not* mitigate the
        busy-road outcome (R1): "a landing on a busy road could still
        cause fatal accidents".
    impact_energy_j:
        Impact kinetic energy, used for the post-crash-fire outcome.

    Returns the worst outcome realised by the footprint.
    """
    labels = np.asarray(footprint_labels).reshape(-1)
    present = set(int(v) for v in np.unique(labels))

    def has(cls: UavidClass) -> bool:
        return int(cls) in present

    # R1: reaching a road surface, or striking a moving car, can always
    # cause a multi-fatality traffic accident (paper Sec. IV-A) —
    # parachute or not.
    if has(UavidClass.MOVING_CAR) or has(UavidClass.ROAD):
        return TouchdownAssessment(
            GroundRiskOutcome.R1_GROUND_VEHICLE_ACCIDENT,
            Severity.CATASTROPHIC, mitigated_by_parachute=False)

    # R2: striking a person.  Effective M2 mitigation (parachute)
    # reduces severity 4 -> 2.
    if has(UavidClass.HUMAN):
        severity = Severity.MINOR if parachute_deployed else Severity.MAJOR
        return TouchdownAssessment(GroundRiskOutcome.R2_PERSON_INJURED,
                                   severity,
                                   mitigated_by_parachute=parachute_deployed)

    # R4: infrastructure collision.
    if has(UavidClass.BUILDING):
        return TouchdownAssessment(
            GroundRiskOutcome.R4_INFRASTRUCTURE_COLLISION,
            Severity.SERIOUS, mitigated_by_parachute=False)

    # R5: parked vehicle.
    if has(UavidClass.STATIC_CAR):
        return TouchdownAssessment(
            GroundRiskOutcome.R5_PARKED_VEHICLE_CRASH,
            Severity.MINOR, mitigated_by_parachute=False)

    # R3: a high-energy impact into vegetation can ignite.
    vegetation = has(UavidClass.TREE) or has(UavidClass.LOW_VEGETATION)
    if vegetation and impact_energy_j >= FIRE_ENERGY_THRESHOLD_J:
        return TouchdownAssessment(GroundRiskOutcome.R3_POST_CRASH_FIRE,
                                   Severity.SERIOUS,
                                   mitigated_by_parachute=False)

    return TouchdownAssessment(None, Severity.NEGLIGIBLE,
                               mitigated_by_parachute=parachute_deployed)
