"""Committed baseline of grandfathered findings.

A baseline entry matches on ``(path, rule, stripped line text)`` —
*not* on line numbers — so edits elsewhere in a file never invalidate
a grandfathered finding, while editing the flagged line itself (the
moment to fix it properly) does.  Entries carry counts: two identical
violations on textually identical lines need two entries' worth of
budget.

The committed file lives at ``scripts/repro_lint_baseline.json`` and
is maintained exclusively with ``python -m repro.analysis
--update-baseline`` — never by hand, and never to quiet a *new*
finding (new code gets fixed or an inline justified suppression).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_RELPATH"]

DEFAULT_BASELINE_RELPATH = "scripts/repro_lint_baseline.json"


class Baseline:
    """In-memory view of the baseline file's entry budget."""

    def __init__(self, entries: Counter | None = None):
        self._budget: Counter = Counter(entries or {})

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        budget: Counter = Counter()
        for entry in data.get("entries", []):
            key = (entry["path"], entry["rule"], entry["text"])
            budget[key] += int(entry.get("count", 1))
        return cls(budget)

    @staticmethod
    def write(path: Path, findings: list[tuple[Finding, str]]) -> None:
        """Serialise ``(finding, line_text)`` pairs as the new baseline."""
        budget: Counter = Counter(
            f.baseline_key(text) for f, text in findings)
        entries = [
            {"path": p, "rule": r, "text": t, "count": n}
            for (p, r, t), n in sorted(budget.items())
        ]
        path.write_text(json.dumps(
            {"comment": "grandfathered repro-lint findings; maintained "
                        "by `python -m repro.analysis "
                        "--update-baseline`, never by hand",
             "entries": entries}, indent=2) + "\n")

    # ------------------------------------------------------------------
    def absorb(self, finding: Finding, line_text: str) -> bool:
        """Consume baseline budget for ``finding`` if an entry matches."""
        key = finding.baseline_key(line_text)
        if self._budget.get(key, 0) > 0:
            self._budget[key] -= 1
            return True
        return False

    def __len__(self) -> int:
        return sum(n for n in self._budget.values() if n > 0)
