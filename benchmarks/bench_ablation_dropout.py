"""EXT-DROPOUT bench: the effect of the MC-dropout rate.

The paper uses "a dropout rate of 0.5 for all relevant MSDnet layers".
This ablation varies the rate at inference time on the same trained
model and measures the sigma signal the monitor relies on.

Expectation (shape): sigma grows with the dropout rate (more parameter
noise); rate 0.0 gives zero sigma (no Bayesian signal at all, i.e. the
monitor degenerates to thresholding the point estimate); the paper's
0.5 yields a clearly non-degenerate uncertainty signal.
"""

import numpy as np

from repro.eval.reporting import format_table, format_title
from repro.nn.layers import Dropout
from repro.segmentation.bayesian import BayesianSegmenter

RATES = [0.0, 0.1, 0.25, 0.5]


def _set_dropout_rate(model, rate: float) -> None:
    for module in model.modules():
        if isinstance(module, Dropout):
            module.p = rate


def test_dropout_rate_ablation(benchmark, system, emit):
    image = system.ood_samples()[0].image
    original = system.config.model_dropout

    def sweep():
        results = {}
        for rate in RATES:
            _set_dropout_rate(system.model, rate)
            segmenter = BayesianSegmenter(system.model, num_samples=10,
                                          rng=0)
            dist = segmenter.predict_distribution(image)
            results[rate] = float(dist.std.mean())
        _set_dropout_rate(system.model, original)
        return results

    sigmas = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit("\n" + format_title(
        "EXT-DROPOUT: mean sigma vs MC-dropout rate (OOD frame)"))
    rows = [[rate, f"{sigmas[rate]:.5f}",
             "  <- paper (0.5)" if rate == 0.5 else ""]
            for rate in RATES]
    emit(format_table(["dropout rate", "mean sigma", ""], rows))

    assert sigmas[0.0] == 0.0
    values = [sigmas[r] for r in RATES]
    assert values == sorted(values)
    assert sigmas[0.5] > 1e-4
