"""Optimisers and learning-rate schedules for the numpy substrate."""

from __future__ import annotations

import math

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "CosineLR"]


class Optimizer:
    """Base optimiser over a list of :class:`Parameter`."""

    def __init__(self, params: list[Parameter], lr: float):
        params = list(params)
        if not params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = params
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0, nesterov: bool = False):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = grad + self.momentum * v if self.nesterov else v
            else:
                update = grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) with decoupled weight decay option."""

    def __init__(self, params, lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError("eps must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.betas = (b1, b2)
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            grad = p.grad
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                # AdamW-style decoupled decay.
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiply the optimiser's learning rate by ``gamma`` every N steps."""

    def __init__(self, optimizer: Optimizer, step_size: int,
                 gamma: float = 0.1):
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self._count = 0

    def step(self) -> float:
        """Advance one step; returns the (possibly updated) lr."""
        self._count += 1
        decays = self._count // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma ** decays)
        return self.optimizer.lr


class CosineLR:
    """Cosine-annealed learning rate over a fixed horizon."""

    def __init__(self, optimizer: Optimizer, total_steps: int,
                 min_lr: float = 0.0):
        if total_steps < 1:
            raise ValueError("total_steps must be >= 1")
        if min_lr < 0:
            raise ValueError("min_lr must be non-negative")
        self.optimizer = optimizer
        self.total_steps = total_steps
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self._count = 0

    def step(self) -> float:
        """Advance one step; returns the (possibly updated) lr."""
        self._count = min(self._count + 1, self.total_steps)
        frac = self._count / self.total_steps
        lr = (self.min_lr + (self.base_lr - self.min_lr)
              * 0.5 * (1.0 + math.cos(math.pi * frac)))
        self.optimizer.lr = lr
        return lr
