"""Synthetic aerial-imagery substrate (the offline UAVid substitute).

Procedural urban scenes with the eight UAVid classes, a physically
plausible renderer (shadows, textures, per-instance car colours) and a
parametric imaging-condition model that reproduces the paper's
in-distribution vs out-of-distribution (sunset) evaluation protocol.
"""

from repro.dataset.classes import (
    BUSY_ROAD_CLASSES,
    CLASS_NAMES,
    HIGH_RISK_CLASSES,
    NUM_CLASSES,
    PALETTE,
    UavidClass,
    busy_road_mask,
    class_mask,
)
from repro.dataset.conditions import (
    ALL_CONDITIONS,
    BRIGHT_DAY,
    DAY,
    FOG,
    NIGHT,
    OOD_CONDITIONS,
    OVERCAST,
    SUNSET,
    TRAINING_CONDITIONS,
    ImagingConditions,
    by_name,
)
from repro.dataset.generator import (
    DatasetConfig,
    SegmentationSample,
    class_frequencies,
    generate_dataset,
    generate_scene_samples,
    iterate_minibatches,
    reshoot_under_condition,
    split_by_scene,
    stack_batch,
)
from repro.dataset.render import BASE_COLORS, render_labels, render_scene_window
from repro.dataset.scene import Building, Car, SceneConfig, UrbanScene

__all__ = [
    "UavidClass",
    "NUM_CLASSES",
    "BUSY_ROAD_CLASSES",
    "HIGH_RISK_CLASSES",
    "PALETTE",
    "CLASS_NAMES",
    "busy_road_mask",
    "class_mask",
    "ImagingConditions",
    "DAY",
    "BRIGHT_DAY",
    "OVERCAST",
    "SUNSET",
    "NIGHT",
    "FOG",
    "TRAINING_CONDITIONS",
    "OOD_CONDITIONS",
    "ALL_CONDITIONS",
    "by_name",
    "SceneConfig",
    "UrbanScene",
    "Car",
    "Building",
    "render_labels",
    "render_scene_window",
    "BASE_COLORS",
    "SegmentationSample",
    "DatasetConfig",
    "generate_dataset",
    "generate_scene_samples",
    "reshoot_under_condition",
    "split_by_scene",
    "stack_batch",
    "iterate_minibatches",
    "class_frequencies",
]
