"""The Decision Module (DM) of the Fig. 2 safety architecture.

"If the monitor confirms the proposed zone, then the DM will trigger
landing execution.  If the zone is rejected by the monitor, the DM will
either request a new trial or abort the flight if an additional trial
cannot be safely performed."

Aborting hands control back to the safety switch, which engages Flight
Termination.  Whether "an additional trial can be safely performed" is
governed by an attempt budget and a time budget (each Bayesian pass
costs seconds — the Sec. V-B latency constraint — while the vehicle is
falling back on degraded control).

Speculative check-ahead
-----------------------
The retry loop is adaptive (stop at the first confirmed zone), which
made it inherently sequential: candidate ``i+1`` is only monitored
after candidate ``i`` is rejected.  With ``speculative_k > 1`` the DM
instead monitors the next ``k`` ranked candidates as *one* jointly
seeded stacked Bayesian pass (``RuntimeMonitor.check_zones``) and
consumes the verdicts in rank order — the batched engine amortises the
model forwards, so when the top candidate is rejected the runner-up's
verdict is already paid for.  Consumption semantics are identical to
the sequential loop: budgets are decremented per *consumed* verdict,
verdicts past the first acceptance are discarded, and the batch size is
clamped so no candidate is ever speculated that the sequential loop
could not have afforded.  Given the same per-candidate verdicts, both
paths produce bit-for-bit identical :class:`Decision` objects (tested
in ``tests/core/test_speculative_decision.py``).

Speculative batches are also what the *shared-context* monitor feeds
on: the ``k`` pending crops of one batch overlap heavily (neighbouring
ranked zones plus their context margins), so
``RuntimeMonitor.check_zones(..., shared=True)`` and the episode
engine's ``monitor_batching="shared"`` cluster them into union windows
and segment each window once.  Nothing changes on this side of the
contract — the cursor hands out rank-ordered batches clamped to the
budgets and consumes rank-ordered verdicts, however the monitor chose
to share pixels while producing them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.landing_zone import ZoneCandidate
from repro.core.monitor import ZoneVerdict
from repro.utils.validation import check_positive

__all__ = ["DecisionAction", "DecisionConfig", "Decision",
           "DecisionCursor", "DecisionModule"]


class DecisionAction(Enum):
    """Terminal actions of the decision module."""

    LAND = "go to landing zone"
    ABORT = "abort flight"


@dataclass(frozen=True)
class DecisionConfig:
    """Budgets bounding the retry loop.

    Attributes
    ----------
    max_attempts:
        Maximum candidate zones tried before the episode aborts.
    time_budget_s:
        Wall-clock budget for the whole decision episode; attempts
        stop once the *projected* time of the next attempt would
        exceed it.
    seconds_per_attempt:
        Modelled cost of one monitored attempt (Sec. V-B: ~5 s per
        1024x1024 crop), used to project the next attempt's finish
        time against ``time_budget_s``.
    speculative_k:
        Number of ranked candidates monitored per joint Bayesian
        pass.  1 (default) is the paper's strictly sequential
        confirm/retry loop; k > 1 enables speculative check-ahead
        (see the module docstring) when the caller supplies a
        ``check_zones`` batch callable.
    """

    max_attempts: int = 3
    time_budget_s: float = 20.0
    seconds_per_attempt: float = 5.0  # Sec. V-B: ~5 s per 1024x1024 crop
    #: Number of ranked candidates monitored per joint Bayesian pass.
    #: 1 (default) is the paper's strictly sequential confirm/retry
    #: loop; k > 1 enables speculative check-ahead (see the module
    #: docstring) when the caller supplies a ``check_zones`` batch
    #: callable.
    speculative_k: int = 1

    def __post_init__(self):
        check_positive("max_attempts", self.max_attempts)
        check_positive("time_budget_s", self.time_budget_s)
        check_positive("seconds_per_attempt", self.seconds_per_attempt)
        check_positive("speculative_k", self.speculative_k)


@dataclass
class Decision:
    """Outcome of one decision episode."""

    action: DecisionAction
    zone: ZoneCandidate | None
    verdicts: list[ZoneVerdict] = field(default_factory=list)
    attempts: int = 0
    elapsed_s: float = 0.0
    log: list[str] = field(default_factory=list)

    @property
    def landed(self) -> bool:
        return self.action is DecisionAction.LAND


class DecisionCursor:
    """Incremental view of one decision episode.

    The confirm/retry/abort loop, opened up: instead of the decision
    module calling the monitor itself, a cursor *asks* for the next
    batch of candidates to check (:meth:`next_batch`, clamped to what
    the budgets still afford) and is *fed* the resulting verdicts in
    rank order (:meth:`feed`).  :class:`DecisionModule.decide` drives a
    cursor synchronously; the streaming episode engine
    (:class:`repro.core.engine.EpisodeScheduler`) drives one cursor per
    concurrent episode so it can verify the pending zones of *many*
    episodes in one jointly seeded Bayesian pass.  Both drivers produce
    bit-for-bit identical :class:`Decision` objects given the same
    per-candidate verdicts — every budget rule and log line lives here,
    once.
    """

    def __init__(self, module: "DecisionModule",
                 candidates: list[ZoneCandidate]):
        self.module = module
        self.decision = Decision(action=DecisionAction.ABORT, zone=None)
        self._done = False
        self._idx = 0
        self._viable = [c for c in candidates if c.meets_buffer()]
        skipped = len(candidates) - len(self._viable)
        if skipped:
            self.decision.log.append(
                f"skipped {skipped} candidate(s) failing the drift buffer")
        if not self._viable:
            self.decision.log.append("no viable candidate -> abort flight")
            self._done = True

    @property
    def done(self) -> bool:
        """True once the episode reached a terminal land/abort state."""
        return self._done

    def accept_unmonitored(self) -> None:
        """The unmonitored ablation: take the best buffered candidate."""
        if self._done:
            return
        self.decision.action = DecisionAction.LAND
        self.decision.zone = self._viable[0]
        self.decision.attempts = 1
        self.decision.log.append(
            "monitor disabled: accepting best candidate unchecked")
        self._done = True

    def next_batch(self, k: int = 1) -> list[ZoneCandidate]:
        """Up to ``k`` candidates the budgets still afford, in rank order.

        Returns ``[]`` when the episode is terminal — either a verdict
        already landed/aborted it, or the budgets block the next check
        (which is logged here, exactly like the synchronous loop).
        Every candidate handed out MUST be fed back via :meth:`feed`.
        """
        if self._done:
            return []
        if self._idx >= len(self._viable):
            # Out of candidates: the loop ends without a budget log
            # line, exactly like the synchronous for-loop does.
            self._done = True
            return []
        reason = self.module._block_reason(self.decision)
        if reason is not None:
            self.decision.log.append(reason)
            self._done = True
            return []
        k = min(max(int(k), 1),
                self.module._affordable_checks(self.decision),
                len(self._viable) - self._idx)
        batch = self._viable[self._idx:self._idx + k]
        self._idx += k
        return batch

    def feed(self, checked: list[tuple[ZoneCandidate, ZoneVerdict]]
             ) -> bool:
        """Consume verdicts in rank order; True when the episode landed.

        Consumption semantics match the sequential loop exactly:
        budgets are decremented per consumed verdict and any verdicts
        past the first acceptance are discarded.
        """
        for candidate, verdict in checked:
            if self._done:
                break
            if self.module._consume(self.decision, candidate, verdict):
                self._done = True
                return True
        return self.decision.action is DecisionAction.LAND

    def finalize(self) -> Decision:
        """Close the episode and return the final :class:`Decision`."""
        self._done = True
        if self.decision.action is DecisionAction.ABORT and \
                not any("abort" in line for line in self.decision.log):
            self.decision.log.append(
                "all candidates rejected -> abort flight")
        return self.decision


class DecisionModule:
    """Iterates candidates through the monitor under budget constraints."""

    def __init__(self, config: DecisionConfig | None = None):
        self.config = config or DecisionConfig()

    # ------------------------------------------------------------------
    # Budget bookkeeping shared by the sequential and speculative paths
    # ------------------------------------------------------------------
    def _block_reason(self, decision: Decision) -> str | None:
        """Log line explaining why the next check cannot run, if so."""
        cfg = self.config
        if decision.attempts >= cfg.max_attempts:
            return (f"attempt budget ({cfg.max_attempts}) exhausted "
                    "-> abort flight")
        if decision.elapsed_s + cfg.seconds_per_attempt > \
                cfg.time_budget_s:
            return (f"time budget ({cfg.time_budget_s:.0f}s) exhausted "
                    "-> abort flight")
        return None

    def _affordable_checks(self, decision: Decision) -> int:
        """How many further checks the budgets allow, simulated with
        exactly the sequential loop's float accumulation so both paths
        agree at budget boundaries."""
        cfg = self.config
        attempts = decision.attempts
        elapsed = decision.elapsed_s
        count = 0
        while attempts < cfg.max_attempts and \
                elapsed + cfg.seconds_per_attempt <= cfg.time_budget_s:
            attempts += 1
            elapsed += cfg.seconds_per_attempt
            count += 1
        return count

    def _consume(self, decision: Decision, candidate: ZoneCandidate,
                 verdict: ZoneVerdict) -> bool:
        """Book one verdict against the budgets; True when it lands."""
        decision.attempts += 1
        decision.elapsed_s += self.config.seconds_per_attempt
        decision.verdicts.append(verdict)
        if verdict.accepted:
            decision.action = DecisionAction.LAND
            decision.zone = candidate
            decision.log.append(
                f"zone #{candidate.rank} confirmed "
                f"(unsafe fraction {verdict.unsafe_fraction:.3f}) "
                "-> go to landing zone")
            return True
        decision.log.append(
            f"zone #{candidate.rank} rejected "
            f"(unsafe fraction {verdict.unsafe_fraction:.3f}) "
            "-> try another candidate")
        return False

    # ------------------------------------------------------------------
    def decide(self, candidates: list[ZoneCandidate],
               check_zone, check_zones=None) -> Decision:
        """Run the confirm/retry/abort loop.

        Parameters
        ----------
        candidates:
            Ranked zone candidates from the core function.  Candidates
            that fail the drift buffer are skipped outright (they are
            unsafe by construction, no need to spend a Bayesian pass).
        check_zone:
            Callable ``ZoneCandidate -> ZoneVerdict`` (the monitor);
            pass ``None`` to accept the best buffered candidate without
            monitoring (the unmonitored ablation).
        check_zones:
            Optional callable ``list[ZoneCandidate] ->
            list[ZoneVerdict]`` verifying several candidates in one
            batched Bayesian pass.  Used (and required) when
            ``config.speculative_k > 1``; ignored otherwise.
        """
        cfg = self.config
        cursor = DecisionCursor(self, candidates)
        if cursor.done:
            return cursor.finalize()

        if check_zone is None and check_zones is None:
            cursor.accept_unmonitored()
            return cursor.finalize()

        if cfg.speculative_k > 1 and check_zones is None:
            # Surface the misconfiguration instead of silently running
            # sequential monitoring the caller did not ask for.
            raise ValueError(
                f"speculative_k={cfg.speculative_k} requires a "
                "check_zones batch callable")

        if cfg.speculative_k > 1:
            # Speculative check-ahead: batches of up to speculative_k
            # candidates per jointly seeded monitor pass, clamped by
            # the cursor so no candidate is monitored that the
            # sequential loop would have refused.  Speculation is
            # transparent in the decision record (identical log lines),
            # so equivalence tests compare whole Decision objects.
            while True:
                batch = cursor.next_batch(cfg.speculative_k)
                if not batch:
                    break
                verdicts = list(check_zones(batch))
                if len(verdicts) != len(batch):
                    raise ValueError(
                        f"check_zones returned {len(verdicts)} verdicts "
                        f"for {len(batch)} candidates")
                cursor.feed(list(zip(batch, verdicts)))
        else:
            if check_zone is None:
                # Only a batch callable was supplied but speculation is
                # off: run it one candidate at a time (bit-identical to
                # a per-zone monitor by the check_zones contract).
                def check_zone(candidate, _batch=check_zones):
                    return _batch([candidate])[0]
            # The paper's strictly sequential confirm/retry loop: one
            # monitor pass per candidate, in rank order.
            while True:
                batch = cursor.next_batch(1)
                if not batch:
                    break
                cursor.feed([(batch[0], check_zone(batch[0]))])
        return cursor.finalize()
