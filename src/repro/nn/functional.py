"""Low-level differentiable operations for the numpy deep-learning substrate.

The paper's landing-zone selector is a dilated convolutional segmentation
network (MSDnet).  Since no deep-learning framework is available offline,
this module implements the required primitives from scratch:

* dilated / strided 2-D convolution via ``im2col``/``col2im``,
* non-overlapping max pooling,
* bilinear and nearest-neighbour resizing with exact adjoints,
* numerically-stable softmax / log-softmax.

All forward functions return ``(output, cache)`` where ``cache`` carries
whatever the matching backward function needs.  Arrays are NCHW.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "conv_output_size",
    "im2col",
    "col2im",
    "conv2d_forward",
    "conv2d_backward",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "linear_resize_weights",
    "resize_bilinear_forward",
    "resize_bilinear_backward",
    "resize_nearest_forward",
    "resize_nearest_backward",
    "softmax",
    "log_softmax",
]


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------
def conv_output_size(in_size: int, kernel: int, stride: int, padding: int,
                     dilation: int) -> int:
    """Spatial output size of a convolution along one axis."""
    effective = (kernel - 1) * dilation + 1
    out = (in_size + 2 * padding - effective) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output size {out} <= 0 "
            f"(in={in_size}, kernel={kernel}, stride={stride}, "
            f"padding={padding}, dilation={dilation})")
    return out


def im2col(x: np.ndarray, kernel: tuple[int, int], stride: int,
           padding: int, dilation: int) -> tuple[np.ndarray, tuple]:
    """Unfold image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel:
        ``(kh, kw)`` kernel extents.

    Returns
    -------
    cols:
        Array of shape ``(N, C * kh * kw, out_h * out_w)``.
    geom:
        Geometry tuple consumed by :func:`col2im`.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding, dilation)
    out_w = conv_output_size(w, kw, stride, padding, dilation)

    if padding > 0:
        # Manual zero-pad: ~2x cheaper than np.pad on this hot path.
        xp = np.zeros((n, c, h + 2 * padding, w + 2 * padding),
                      dtype=x.dtype)
        xp[:, :, padding:padding + h, padding:padding + w] = x
    else:
        xp = x

    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        row0 = i * dilation
        row1 = row0 + stride * out_h
        for j in range(kw):
            col0 = j * dilation
            col1 = col0 + stride * out_w
            cols[:, :, i, j] = xp[:, :, row0:row1:stride, col0:col1:stride]

    geom = (x.shape, kernel, stride, padding, dilation, out_h, out_w)
    return cols.reshape(n, c * kh * kw, out_h * out_w), geom


def col2im(cols: np.ndarray, geom: tuple) -> np.ndarray:
    """Adjoint of :func:`im2col` (scatter-add columns back to an image)."""
    (x_shape, kernel, stride, padding, dilation, out_h, out_w) = geom
    n, c, h, w = x_shape
    kh, kw = kernel
    cols6 = cols.reshape(n, c, kh, kw, out_h, out_w)

    hp, wp = h + 2 * padding, w + 2 * padding
    xp = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        row0 = i * dilation
        row1 = row0 + stride * out_h
        for j in range(kw):
            col0 = j * dilation
            col1 = col0 + stride * out_w
            xp[:, :, row0:row1:stride, col0:col1:stride] += cols6[:, :, i, j]

    if padding > 0:
        return xp[:, :, padding:padding + h, padding:padding + w]
    return xp


def conv2d_forward(x: np.ndarray, weight: np.ndarray,
                   bias: np.ndarray | None, stride: int = 1,
                   padding: int = 0,
                   dilation: int = 1) -> tuple[np.ndarray, tuple]:
    """2-D convolution forward pass.

    ``x`` is ``(N, C_in, H, W)``; ``weight`` is ``(C_out, C_in, kh, kw)``;
    ``bias`` is ``(C_out,)`` or ``None``.
    """
    c_out, c_in, kh, kw = weight.shape
    if x.shape[1] != c_in:
        raise ValueError(
            f"input has {x.shape[1]} channels, weight expects {c_in}")
    cols, geom = im2col(x, (kh, kw), stride, padding, dilation)
    w2 = weight.reshape(c_out, c_in * kh * kw)
    # (N, C_out, L) = (C_out, K) @ (N, K, L) as a broadcast batched GEMM.
    # np.matmul scales linearly in N here, where the equivalent einsum
    # path degrades sharply for N > 1 — this is the hot path of the
    # batched MC-dropout engine (see repro.segmentation.bayesian).
    out = np.matmul(w2, cols)
    if bias is not None:
        out = out + bias[None, :, None]
    n = x.shape[0]
    out_h, out_w = geom[5], geom[6]
    y = out.reshape(n, c_out, out_h, out_w)
    cache = (cols, geom, weight, bias is not None)
    return y, cache


def conv2d_backward(dy: np.ndarray, cache: tuple
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(dx, dweight, dbias)``; ``dbias`` is ``None`` when the
    forward pass had no bias.
    """
    cols, geom, weight, has_bias = cache
    c_out, c_in, kh, kw = weight.shape
    n = dy.shape[0]
    dy2 = dy.reshape(n, c_out, -1)  # (N, C_out, L)

    dbias = dy2.sum(axis=(0, 2)) if has_bias else None
    # dW = sum_n dy2[n] @ cols[n]^T, again as a batched GEMM.
    dw2 = np.matmul(dy2, cols.transpose(0, 2, 1)).sum(axis=0)
    dweight = dw2.reshape(weight.shape)
    # dcols = W^T @ dy2
    w2 = weight.reshape(c_out, c_in * kh * kw)
    dcols = np.matmul(w2.T, dy2)
    dx = col2im(dcols, geom)
    return dx, dweight, dbias


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def maxpool2d_forward(x: np.ndarray,
                      kernel: int) -> tuple[np.ndarray, tuple]:
    """Non-overlapping max pooling with ``stride == kernel``.

    The segmentation networks in this library only need non-overlapping
    pooling; restricting to that case permits an exact reshape-based
    implementation.
    """
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(
            f"input spatial size ({h}, {w}) not divisible by pool "
            f"kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    xr = x.reshape(n, c, oh, kernel, ow, kernel)
    y = xr.max(axis=(3, 5))
    # Mask of (first) argmax positions for the backward scatter.
    mask = (xr == y[:, :, :, None, :, None])
    # Break ties: keep only the first max in each window.
    flat = mask.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, oh, ow, -1)
    first = np.cumsum(flat, axis=-1) == 1
    flat &= first
    mask = flat.reshape(n, c, oh, ow, kernel, kernel).transpose(
        0, 1, 2, 4, 3, 5)
    return y, (mask, x.shape, kernel)


def maxpool2d_backward(dy: np.ndarray, cache: tuple) -> np.ndarray:
    """Backward pass of :func:`maxpool2d_forward`."""
    mask, x_shape, kernel = cache
    n, c, h, w = x_shape
    oh, ow = h // kernel, w // kernel
    dxr = mask * dy[:, :, :, None, :, None]
    return dxr.reshape(n, c, h, w)


# ----------------------------------------------------------------------
# Resizing
# ----------------------------------------------------------------------
def linear_resize_weights(in_len: int, out_len: int,
                          dtype=np.float64) -> np.ndarray:
    """Dense 1-D linear-interpolation matrix ``W`` with ``y = W @ x``.

    Uses the half-pixel-centre convention (``align_corners=False``).  The
    matrix form makes the adjoint exact (``dx = W.T @ dy``), which keeps
    the bilinear-upsampling layer gradient-checkable.
    """
    if in_len <= 0 or out_len <= 0:
        raise ValueError("lengths must be positive")
    w = np.zeros((out_len, in_len), dtype=dtype)
    coords = np.clip((np.arange(out_len) + 0.5) * in_len / out_len - 0.5,
                     0, in_len - 1)
    i0 = np.floor(coords).astype(int)
    i1 = np.minimum(i0 + 1, in_len - 1)
    frac = coords - i0
    rows = np.arange(out_len)
    np.add.at(w, (rows, i0), 1.0 - frac)
    np.add.at(w, (rows, i1), frac)
    return w


def resize_bilinear_forward(x: np.ndarray, out_h: int, out_w: int
                            ) -> tuple[np.ndarray, tuple]:
    """Bilinear resize of NCHW input to ``(out_h, out_w)``."""
    in_h, in_w = x.shape[-2], x.shape[-1]
    wr = linear_resize_weights(in_h, out_h, dtype=x.dtype)
    wc = linear_resize_weights(in_w, out_w, dtype=x.dtype)
    # y[n,c,i,j] = sum_{h,w} wr[i,h] x[n,c,h,w] wc[j,w]
    y = np.einsum("ih,nchw,jw->ncij", wr, x, wc, optimize=True)
    return y, (wr, wc)


def resize_bilinear_backward(dy: np.ndarray, cache: tuple) -> np.ndarray:
    """Adjoint of :func:`resize_bilinear_forward`."""
    wr, wc = cache
    return np.einsum("ih,ncij,jw->nchw", wr, dy, wc, optimize=True)


def resize_nearest_forward(x: np.ndarray, out_h: int, out_w: int
                           ) -> tuple[np.ndarray, tuple]:
    """Nearest-neighbour resize of NCHW input."""
    in_h, in_w = x.shape[-2], x.shape[-1]
    coords_r = np.clip(np.round((np.arange(out_h) + 0.5) * in_h / out_h
                                - 0.5).astype(int), 0, in_h - 1)
    coords_c = np.clip(np.round((np.arange(out_w) + 0.5) * in_w / out_w
                                - 0.5).astype(int), 0, in_w - 1)
    y = x[..., coords_r[:, None], coords_c[None, :]]
    return np.ascontiguousarray(y), (x.shape, coords_r, coords_c)


def resize_nearest_backward(dy: np.ndarray, cache: tuple) -> np.ndarray:
    """Adjoint of :func:`resize_nearest_forward` (scatter-add)."""
    x_shape, coords_r, coords_c = cache
    dx = np.zeros(x_shape, dtype=dy.dtype)
    rr = coords_r[:, None]
    cc = coords_c[None, :]
    np.add.at(dx, (..., rr, cc), dy)
    return dx


# ----------------------------------------------------------------------
# Softmax
# ----------------------------------------------------------------------
def softmax(x: np.ndarray, axis: int = 1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True)
    if not np.issubdtype(shifted.dtype, np.floating):
        shifted = shifted.astype(np.float64)
    ex = np.exp(shifted, out=shifted)  # reuse the temporary
    ex /= ex.sum(axis=axis, keepdims=True)
    return ex


def log_softmax(x: np.ndarray, axis: int = 1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
