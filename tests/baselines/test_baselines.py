"""Tests for the baseline landing-zone-selection methods."""

import numpy as np
import pytest

from repro.baselines import (
    EdgeDensityLZS,
    LinearSVM,
    StaticMapLZS,
    TileClassifierLZS,
    dominant_tile_labels,
    top_zones_from_score_map,
)
from repro.dataset import (
    DAY,
    DatasetConfig,
    UavidClass,
    UrbanScene,
    generate_dataset,
)
from repro.vision.features import tile_grid


@pytest.fixture(scope="module")
def samples():
    return generate_dataset(DatasetConfig(num_scenes=3,
                                          windows_per_scene=4,
                                          image_shape=(48, 64), seed=17))


@pytest.fixture(scope="module")
def scene():
    return UrbanScene.generate(seed=23)


class TestZoneProposalHelper:
    def test_method_tag_attached(self):
        score = np.ones((20, 20))
        props = top_zones_from_score_map(score, 4, 2, "test_method")
        assert all(p.method == "test_method" for p in props)

    def test_scores_descending(self, rng):
        props = top_zones_from_score_map(rng.random((30, 30)), 4, 4, "m")
        scores = [p.score for p in props]
        assert scores == sorted(scores, reverse=True)


class TestLinearSVM:
    def test_separable_data(self, rng):
        x0 = rng.normal(loc=-2.0, size=(50, 3))
        x1 = rng.normal(loc=+2.0, size=(50, 3))
        x = np.vstack([x0, x1])
        y = np.array([0] * 50 + [1] * 50)
        svm = LinearSVM(2, epochs=200, seed=0).fit(x, y)
        assert svm.accuracy(x, y) > 0.95

    def test_three_classes(self, rng):
        centers = np.array([[-3, 0], [3, 0], [0, 4]])
        x = np.vstack([rng.normal(loc=c, scale=0.5, size=(30, 2))
                       for c in centers])
        y = np.repeat([0, 1, 2], 30)
        svm = LinearSVM(3, epochs=300, seed=0).fit(x, y)
        assert svm.accuracy(x, y) > 0.9

    def test_decision_function_shape(self, rng):
        x = rng.normal(size=(20, 4))
        y = rng.integers(0, 3, 20)
        svm = LinearSVM(3, epochs=10, seed=0).fit(x, y)
        assert svm.decision_function(x).shape == (20, 3)

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError, match="not fitted"):
            LinearSVM(2).predict(rng.normal(size=(3, 2)))

    def test_label_validation(self, rng):
        x = rng.normal(size=(10, 2))
        with pytest.raises(ValueError, match="outside"):
            LinearSVM(2).fit(x, np.full(10, 5))

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            LinearSVM(2).fit(rng.normal(size=10), np.zeros(10, dtype=int))


class TestEdgeDensity:
    def test_prefers_smooth_region(self):
        # Left half: heavy texture; right half: flat.
        img = np.full((3, 40, 60), 0.5, dtype=np.float32)
        rng = np.random.default_rng(0)
        img[:, :, :30] += rng.normal(0, 0.3, size=(3, 40, 30)) \
            .astype(np.float32)
        img = np.clip(img, 0, 1)
        props = EdgeDensityLZS().propose(img, num_candidates=1)
        assert props
        assert props[0].box.col >= 25  # zone in the flat half

    def test_density_map_range(self, samples):
        density = EdgeDensityLZS().edge_density_map(samples[0].image)
        assert density.min() >= 0.0 and density.max() <= 1.0

    def test_proposals_on_real_frames(self, samples):
        props = EdgeDensityLZS().propose(samples[0].image, 3)
        assert 1 <= len(props) <= 3


class TestTileClassifier:
    @pytest.fixture(scope="class")
    def fitted(self, samples):
        return TileClassifierLZS().fit(samples[:8])

    def test_tile_accuracy_beats_chance(self, fitted, samples):
        acc = fitted.tile_accuracy(samples[8:])
        assert acc > 0.5  # 8-class chance is 0.125

    def test_predicted_map_shape(self, fitted, samples):
        tile_map = fitted.predicted_tile_map(samples[0].image)
        assert tile_map.shape == samples[0].image.shape[1:]

    def test_propose_returns_zones(self, fitted, samples):
        props = fitted.propose(samples[0].image, 3)
        assert len(props) >= 0  # may be empty if everything unsafe
        for p in props:
            assert p.method == "tile_svm"

    def test_unfitted_raises(self, samples):
        with pytest.raises(RuntimeError, match="not fitted"):
            TileClassifierLZS().propose(samples[0].image)

    def test_dominant_tile_labels(self):
        labels = np.zeros((8, 8), dtype=np.int64)
        labels[:, 4:] = int(UavidClass.ROAD)
        boxes = tile_grid((8, 8), 4)
        doms = dominant_tile_labels(labels, 4, boxes)
        assert set(doms) == {0, int(UavidClass.ROAD)}

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError, match="no training samples"):
            TileClassifierLZS().fit([])


class TestStaticMap:
    def test_avoids_static_hazards(self, scene):
        lzs = StaticMapLZS()
        props = lzs.propose(scene, (256, 256), (64, 96), 1.0, 3)
        static = scene.static_label_window((256, 256), (64, 96), 1.0)
        for p in props:
            crop = p.box.extract(static)
            assert not (crop == int(UavidClass.ROAD)).any()
            assert not (crop == int(UavidClass.BUILDING)).any()

    def test_blind_to_dynamic_objects(self, scene):
        """The selector never sees cars/humans — by construction."""
        lzs = StaticMapLZS()
        window = scene.static_label_window((256, 256), (64, 96), 1.0)
        present = set(np.unique(window))
        assert int(UavidClass.MOVING_CAR) not in present
        assert int(UavidClass.HUMAN) not in present

    def test_risk_map_weights(self, scene):
        lzs = StaticMapLZS()
        window = scene.static_label_window((256, 256), (32, 32), 1.0)
        risk = lzs.risk_map(window)
        road = window == int(UavidClass.ROAD)
        if road.any():
            assert risk[road].min() == 1.0

    def test_all_hazard_window_returns_empty(self):
        lzs = StaticMapLZS()
        all_road = np.full((32, 32), int(UavidClass.ROAD), dtype=np.int16)
        assert lzs.propose_from_window(all_road) == []
