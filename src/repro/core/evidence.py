"""Evidence bundles for the compliance engine.

Tables III and IV of the paper define *criteria*; an applicant claims a
level by presenting *evidence*.  This module is the typed record of that
evidence, populated either by hand (declarations, third-party sign-off)
or programmatically from validation campaigns run with the evaluation
harness — which is the point of the reproduction: integrity/assurance
levels become computable from measured system behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["EvidenceBundle"]


@dataclass(frozen=True)
class EvidenceBundle:
    """Everything an applicant can put on the table.

    ``None`` for a float field means "not measured" — criteria needing
    that measurement then fail (no benefit of the doubt for a safety
    case).
    """

    # --- declarations -------------------------------------------------
    declared_integrity: bool = False

    # --- integrity measurements (Table III) ----------------------------
    #: Fraction of accepted zones whose ground truth contained a
    #: high-risk area (Low-1: must be ~0).
    unsafe_zone_rate: float | None = None
    #: Zone-acceptance safety measured under the operation's own
    #: conditions (Low-2: "effective under the conditions of the
    #: operation" — city, altitude, time of day).
    in_context_unsafe_rate: float | None = None
    #: Medium-1: selection accounts for failures / meteorology /
    #: latency / behaviour / performance — realised by the drift-buffer
    #: clearance model.
    drift_buffer_applied: bool = False
    failure_allowance_applied: bool = False

    # --- assurance measurements (Table IV) -----------------------------
    #: Medium-1: supporting evidence from testing on (public) datasets
    #: and in-context testing.
    tested_on_heldout_dataset: bool = False
    tested_in_context: bool = False
    #: Medium-2: in-context video data recorded and verified by the
    #: applicable authority.
    video_data_verified: bool = False
    #: Medium-3: safety monitoring of complex CV/ML functions in place.
    runtime_monitor_in_place: bool = False
    #: Measured monitor quality (extension beyond the paper's
    #: qualitative result; not required by Table IV but reported).
    monitor_error_coverage: float | None = None
    #: High-1: competent third party validated the claims.
    third_party_validated: bool = False
    #: High-2: names of external conditions the method was validated
    #: under (lighting, weather).
    conditions_validated: frozenset[str] = field(default_factory=frozenset)

    # ------------------------------------------------------------------
    def with_updates(self, **changes) -> "EvidenceBundle":
        """Functional update (bundles are immutable)."""
        return replace(self, **changes)

    def summary_lines(self) -> list[str]:
        """Human-readable dump used by examples and benches."""
        def fmt(value):
            if isinstance(value, frozenset):
                return "{" + ", ".join(sorted(value)) + "}"
            if isinstance(value, float):
                return f"{value:.4f}"
            return str(value)

        lines = []
        for name in self.__dataclass_fields__:
            lines.append(f"{name:28s} {fmt(getattr(self, name))}")
        return lines
