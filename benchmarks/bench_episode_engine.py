"""EXT-ENGINE bench: the streaming episode engine vs the sequential loop.

Extension benchmark for the multi-episode workload shape the related
work evaluates on (continuous streams under named conditions): a fleet
of concurrent scenario episodes — nominal and OOD, from the registry —
runs through ``EpisodeScheduler`` and is compared against the paper's
status quo, one ``LandingPipeline.run`` call per frame.

Measured modes:

* **exact** — cross-episode batched core segmentation, per-episode
  seeded monitoring; must be *bit-for-bit* identical to the sequential
  loop (asserted, gated).
* **joint** — additionally verifies the pending zone checks of all
  episodes in jointly seeded stacked Bayesian passes (the headline
  multi-episode throughput number, gated).
* **workers=2** — whole episode frames sharded over the persistent
  fork-worker pool (``repro.serve.pool``, fork once + shared-memory
  frames — timed at steady state, one scheduler per bench); must
  be bit-for-bit identical to the sequential loop on any worker count
  (asserted, gated).  A second *scaling* row runs ``workers=N`` with
  ``N`` matched to the host's core count; its speedup tracks the cores
  by design, so the regression gate only gates it on multi-core hosts
  (``min_cores`` baseline spec in ``smoke_baselines.json``).
* **shared vs joint** — a second, overlap-heavy fleet (the
  ``dense_zones_*`` presets, monitor crops sized to the conservative
  drift buffer per Fig. 2) compares ``monitor_batching="shared"`` —
  union-crop planning plus temporal stem reuse — against the PR 3
  joint pass.  The headline number is the *monitor-pass* speedup (the
  stage the engines differ in; core segmentation is identical and
  gated elsewhere), plus seeded-reproducibility as a hard contract.
* **adaptive early exit** — the same dense fleet re-runs the joint and
  shared engines with ``MonitorConfig.adaptive`` on: the sequential
  stopping rule halts each window's MC pass once the certified bound
  proves the remaining samples cannot flip any member verdict.  The
  gated number is the joint monitor-pass speedup (adaptive vs full-T)
  plus seeded reproducibility; per-mode samples-used records land in
  the summary.  Cross-stream bit-equality with the full-T engines is
  *not* asserted here — like the shared planner, adaptive sampling is
  a stream-changing mode, and its zero-flip claims are certified on
  the pinned workloads in ``tests/integration``.

The fleet runs at the multi-stream scale (48x64 frames — many
lightweight streams per server); full mode adds the native full-frame
stream workload for the record.  The EL-scale drift buffer keeps the
episodes monitor-active, i.e. frames actually reach per-zone Bayesian
checks, which is where the engine's joint batching earns its keep.
"""

from __future__ import annotations

import os
from dataclasses import replace

import numpy as np

from _bench_utils import write_bench_summary
from repro.core import EngineConfig, EpisodeScheduler, LandingPipeline
from repro.eval.reporting import format_table, format_title
from repro.scenarios import scenario_sweep
from repro.uav.ballistics import DriftModel

BENCH_SMOKE = os.environ.get("BENCH_SMOKE") == "1"

#: The fleet: nominal + OOD streams from the registry.
SCENARIOS = ("day_nominal", "overcast_nominal", "sunset_ood",
             "night_ood", "fog_ood", "night_fog")
#: The overlap-heavy fleet the shared-context engine is measured on.
DENSE_SCENARIOS = ("dense_zones_hover", "dense_zones_drift")
STREAM_SHAPE = (48, 64)
STREAMS_PER_SCENARIO = 2 if BENCH_SMOKE else 3
DENSE_STREAMS_PER_SCENARIO = 3 if BENCH_SMOKE else 9
FRAMES_PER_STREAM = 3 if BENCH_SMOKE else 4
REPEATS = 3 if BENCH_SMOKE else 5
#: Ranked candidates per speculative joint pass in the dense fleet
#: (shared-context sharing needs several pending crops per frame).
DENSE_SPECULATIVE_K = 3


def _stream_drift_model() -> DriftModel:
    """Drift buffer matched to the multi-stream camera scale.

    Chosen so a healthy share of frames clears the buffer and reaches
    the monitor — the EL regime whose throughput this bench is about.
    """
    return DriftModel(wind_speed_ms=2.0, gust_factor=1.2,
                      release_height_m=18.0, descent_rate_ms=6.0,
                      position_error_m=1.0, latency_s=0.3,
                      approach_speed_ms=3.0)


def _fleet(system, shape):
    episodes = [
        spec.with_camera(shape).episode_request(i, FRAMES_PER_STREAM)
        for spec in scenario_sweep(*SCENARIOS)
        for i in range(STREAMS_PER_SCENARIO)
    ]
    base = system.pipeline_config()
    config = replace(base, selector=replace(
        base.selector, drift_model=_stream_drift_model()))
    return episodes, config


def _dense_fleet(system, shape):
    """The overlap-heavy fleet: dense-zone streams, Fig. 2 crops.

    The monitor crop is "the candidate zone plus its drift buffer"
    (Fig. 2); sizing the context margin to the *conservative* drift
    buffer of the stream drift model makes neighbouring candidate
    crops overlap heavily — the workload union-crop planning exists
    for.  Both engines under comparison run the same configuration, so
    the comparison is engine-only.
    """
    drift = _stream_drift_model()
    episodes = [
        spec.with_camera(shape).episode_request(i, FRAMES_PER_STREAM)
        for spec in scenario_sweep(*DENSE_SCENARIOS)
        for i in range(DENSE_STREAMS_PER_SCENARIO)
    ]
    base = system.pipeline_config()
    margin = max(1, int(round(
        drift.required_clearance_m(conservative=True)
        / system.config.dataset.gsd)))
    config = replace(
        base,
        selector=replace(base.selector, drift_model=drift),
        monitor=replace(base.monitor, context_margin_px=margin))
    return episodes, config


def _sequential(model, config, episodes):
    """The status quo: one pipeline per episode, one run() per frame."""
    out = []
    for ep in episodes:
        pipeline = LandingPipeline(model, config, rng=ep.seed)
        out.append([pipeline.run(frame) for frame in ep.frames])
    return out


def _results_equal(a, b) -> bool:
    """Bit-for-bit comparison of two per-frame pipeline results."""
    if not np.array_equal(a.predicted_labels, b.predicted_labels):
        return False
    da, db = a.decision, b.decision
    if (da.action is not db.action or da.attempts != db.attempts
            or da.log != db.log or len(a.verdicts) != len(b.verdicts)):
        return False
    return all(
        va.accepted == vb.accepted
        and va.unsafe_fraction == vb.unsafe_fraction
        and np.array_equal(va.distribution.mean, vb.distribution.mean)
        and np.array_equal(va.distribution.std, vb.distribution.std)
        for va, vb in zip(a.verdicts, b.verdicts))


def _episodes_equal(engine_out, reference) -> bool:
    return all(
        len(er.results) == len(ref)
        and all(_results_equal(fa, fb)
                for fa, fb in zip(er.results, ref))
        for er, ref in zip(engine_out, reference))


def _measure_modes(model, config, episodes):
    """Wall times + equality contracts for every engine mode.

    One timing round runs every mode back to back and the minimum per
    mode wins, so slow drift of the (noisy, single-core) bench host
    cannot favour whichever mode happened to run first.
    """
    reference = _sequential(model, config, episodes)
    checks = sum(len(r.verdicts) for ep in reference for r in ep)

    exact_out = EpisodeScheduler(model, config).run(episodes)
    exact_ok = _episodes_equal(exact_out, reference)

    import time

    # One persistent sharded scheduler for the whole measurement: the
    # workers row times the steady-state pool (fork once, reuse every
    # run), which is the serving regime — not the fork-per-call cost
    # the persistent pool was built to remove.
    with EpisodeScheduler(model, config,
                          engine=EngineConfig(workers=2)) as sharded:
        workers_ok = _episodes_equal(sharded.run(episodes), reference)

        modes = {
            "sequential": lambda: _sequential(model, config, episodes),
            "exact": lambda: EpisodeScheduler(model, config).run(
                episodes),
            "joint": lambda: EpisodeScheduler(
                model, config,
                engine=EngineConfig(monitor_batching="joint"),
                rng=0).run(episodes),
            "workers2": lambda: sharded.run(episodes),
        }
        times = {}
        for name, fn in modes.items():
            fn()  # warm-up
            times[name] = float("inf")
        for _ in range(REPEATS):
            for name, fn in modes.items():
                start = time.perf_counter()
                fn()
                times[name] = min(times[name],
                                  time.perf_counter() - start)
    return times, checks, exact_ok, workers_ok


def _decision_fingerprint(result):
    zone = result.decision.zone
    return (result.decision.action, result.decision.attempts,
            tuple(v.accepted for v in result.verdicts),
            None if zone is None else
            (zone.box.row, zone.box.col, zone.box.height,
             zone.box.width))


def _monitor_pass_s(out) -> float:
    """Total wall time inside stacked monitor passes for a run."""
    return sum(r.timings_s["monitoring_s"]
               for ep in out for r in ep.results)


def _measure_workers_scaling(model, config, episodes, seq: float):
    """The ``workers=N`` scaling row, N matched to the host cores.

    The speedup tracks the core count by design: ~0.6x on a 1-core
    host (fork/IPC overhead with no parallelism to buy back), scaling
    with cores elsewhere — which is why ``smoke_baselines.json`` gates
    it behind a ``min_cores`` spec instead of unconditionally.
    """
    import time

    n = max(2, os.cpu_count() or 1)
    best = float("inf")
    with EpisodeScheduler(model, config,
                          engine=EngineConfig(workers=n)) as sched:
        sched.run(episodes)  # warm-up (forks the persistent pool)
        for _ in range(REPEATS):
            start = time.perf_counter()
            sched.run(episodes)
            best = min(best, time.perf_counter() - start)
    return {"workers": n, "t_ms": round(best * 1e3, 3),
            "speedup": round(seq / best, 3)}


def _samples_record(stats: dict, budget: int) -> dict:
    """Per-mode samples-used record for the summary (schema v2).

    Full-T modes report the trivial record (every window consumes the
    whole budget); adaptive modes report the scheduler's aggregated
    ``last_adaptive_stats`` with the samples-used histogram keyed by
    strings so the record is JSON-stable.
    """
    if not stats["windows"]:
        return {"adaptive": False, "samples_per_window": budget}
    return {
        "adaptive": True,
        "windows": stats["windows"],
        "early_exits": stats["early_exits"],
        "fallbacks": stats["fallbacks"],
        "samples_used": stats["samples_used"],
        "samples_budget": stats["samples_budget"],
        "samples_saved_frac": round(
            1.0 - stats["samples_used"] / stats["samples_budget"], 3),
        "histogram": {str(k): v for k, v in
                      sorted(stats["samples_histogram"].items())},
    }


def _measure_dense_shared(model, config, episodes):
    """Shared-context vs PR 3 joint pass on the overlap-heavy fleet.

    The compared quantity is the *monitor-pass* wall time (the sum of
    each frame's ``monitoring_s`` — both engines attribute exactly the
    wall time spent inside stacked Bayesian passes), because that is
    the stage the two engines implement differently; end-to-end wall
    time is recorded alongside.  Seeded reproducibility of the shared
    engine is asserted as a hard contract.

    Two adaptive rows run the same fleet with the early-exit stopping
    rule on (``MonitorConfig.adaptive``); the joint row is the gated
    adaptive-vs-full-T comparison.  Every adaptive repeat must produce
    the same decision fingerprints (seeded reproducibility).
    """
    import time

    adaptive_config = replace(
        config, monitor=replace(config.monitor, adaptive=True))
    joint_engine = EngineConfig(monitor_batching="joint",
                                speculative_k=DENSE_SPECULATIVE_K)
    shared_engine = EngineConfig(monitor_batching="shared",
                                 speculative_k=DENSE_SPECULATIVE_K)
    setups = {
        "joint": (joint_engine, config),
        "shared": (shared_engine, config),
        "shared_no_reuse": (EngineConfig(
            monitor_batching="shared",
            speculative_k=DENSE_SPECULATIVE_K, temporal_reuse=False),
            config),
        "joint_adaptive": (joint_engine, adaptive_config),
        "shared_adaptive": (shared_engine, adaptive_config),
    }
    walls = {name: float("inf") for name in setups}
    passes = {name: float("inf") for name in setups}
    samples: dict = {}
    fingerprints: dict = {}
    adaptive_reproducible = True
    for name, (engine, cfg) in setups.items():  # warm-up
        EpisodeScheduler(model, cfg, engine=engine, rng=0).run(
            episodes)
    for _ in range(REPEATS):
        for name, (engine, cfg) in setups.items():
            scheduler = EpisodeScheduler(model, cfg, engine=engine,
                                         rng=0)
            start = time.perf_counter()
            out = scheduler.run(episodes)
            walls[name] = min(walls[name],
                              time.perf_counter() - start)
            passes[name] = min(passes[name], _monitor_pass_s(out))
            samples[name] = _samples_record(
                scheduler.last_adaptive_stats, cfg.monitor.num_samples)
            fps = [_decision_fingerprint(r)
                   for ep in out for r in ep.results]
            if name.endswith("_adaptive"):
                if name in fingerprints and fingerprints[name] != fps:
                    adaptive_reproducible = False
            fingerprints[name] = fps

    scheduler = EpisodeScheduler(model, config, engine=shared_engine,
                                 rng=0)
    out_a = scheduler.run(episodes)
    stats = dict(scheduler.last_shared_stats)
    out_b = EpisodeScheduler(model, config, engine=shared_engine,
                             rng=0).run(episodes)
    reproducible = all(
        _decision_fingerprint(ra) == _decision_fingerprint(rb)
        for ea, eb in zip(out_a, out_b)
        for ra, rb in zip(ea.results, eb.results))
    return (walls, passes, stats, reproducible, samples,
            adaptive_reproducible)


def test_episode_engine_throughput(system, emit):
    episodes, config = _fleet(system, STREAM_SHAPE)
    frames = sum(len(ep.frames) for ep in episodes)
    times, checks, exact_ok, workers_ok = _measure_modes(
        system.model, config, episodes)
    seq = times["sequential"]

    summary = {
        "scenarios": list(SCENARIOS),
        "episodes": len(episodes),
        "frames": frames,
        "monitor_checks": checks,
        "cpu_count": os.cpu_count(),
        "t_sequential_ms": round(seq * 1e3, 3),
        "t_exact_ms": round(times["exact"] * 1e3, 3),
        "t_joint_ms": round(times["joint"] * 1e3, 3),
        "t_workers2_ms": round(times["workers2"] * 1e3, 3),
        "speedup_exact": round(seq / times["exact"], 3),
        "speedup_joint": round(seq / times["joint"], 3),
        "speedup_workers2": round(seq / times["workers2"], 3),
        "exact_bit_for_bit": bool(exact_ok),
        "workers_bit_for_bit": bool(workers_ok),
    }

    summary["workers_scaling"] = _measure_workers_scaling(
        system.model, config, episodes, seq)
    summary["speedup_workers_scaled"] = \
        summary["workers_scaling"]["speedup"]

    # ------------------------------------------------------------------
    # Shared-context engine on the overlap-heavy fleet
    # ------------------------------------------------------------------
    episodes_d, config_d = _dense_fleet(system, STREAM_SHAPE)
    (walls, passes, shared_stats, reproducible, samples,
     adaptive_reproducible) = _measure_dense_shared(
        system.model, config_d, episodes_d)
    summary["dense"] = {
        "scenarios": list(DENSE_SCENARIOS),
        "episodes": len(episodes_d),
        "speculative_k": DENSE_SPECULATIVE_K,
        "context_margin_px": config_d.monitor.context_margin_px,
        "t_joint_ms": round(walls["joint"] * 1e3, 3),
        "t_shared_ms": round(walls["shared"] * 1e3, 3),
        "t_joint_adaptive_ms": round(
            walls["joint_adaptive"] * 1e3, 3),
        "t_shared_adaptive_ms": round(
            walls["shared_adaptive"] * 1e3, 3),
        "pass_joint_ms": round(passes["joint"] * 1e3, 3),
        "pass_shared_ms": round(passes["shared"] * 1e3, 3),
        "pass_shared_no_reuse_ms": round(
            passes["shared_no_reuse"] * 1e3, 3),
        "pass_joint_adaptive_ms": round(
            passes["joint_adaptive"] * 1e3, 3),
        "pass_shared_adaptive_ms": round(
            passes["shared_adaptive"] * 1e3, 3),
        "shared_stats": shared_stats,
        "samples": samples,
    }
    summary["speedup_shared_vs_joint_pass"] = round(
        passes["joint"] / passes["shared"], 3)
    summary["speedup_shared_vs_joint_wall"] = round(
        walls["joint"] / walls["shared"], 3)
    summary["shared_seeded_reproducible"] = bool(reproducible)
    # The gated adaptive number: early-exit vs full-T on the joint
    # monitor pass (the engines are otherwise identical, so the ratio
    # isolates the stopping rule).  The shared ratio is recorded for
    # the record — stem reuse already amortises most of the pass, so
    # adaptive sampling buys little on top of it.
    summary["speedup_adaptive_vs_full_t"] = round(
        passes["joint"] / passes["joint_adaptive"], 3)
    summary["speedup_adaptive_shared_pass"] = round(
        passes["shared"] / passes["shared_adaptive"], 3)
    summary["adaptive_seeded_reproducible"] = bool(
        adaptive_reproducible)

    if not BENCH_SMOKE:
        # Native full-frame streams, for the record (the multi-stream
        # fleet above is the gated workload).
        shape = system.config.dataset.image_shape
        episodes_ff, config_ff = _fleet(system, shape)
        times_ff, checks_ff, _, _ = _measure_modes(
            system.model, config_ff, episodes_ff)
        summary["full_frame"] = {
            "shape": list(shape),
            "monitor_checks": checks_ff,
            "t_sequential_ms": round(times_ff["sequential"] * 1e3, 3),
            "t_joint_ms": round(times_ff["joint"] * 1e3, 3),
            "speedup_joint": round(
                times_ff["sequential"] / times_ff["joint"], 3),
        }

    out = write_bench_summary("BENCH_episode_engine.json", summary,
                              smoke=BENCH_SMOKE)

    emit("\n" + format_title(
        "EXT-ENGINE: streaming episode engine throughput"))
    emit(format_table(
        ["mode", "wall ms", "speedup", "frames/s"],
        [[name, f"{t * 1e3:.1f}", f"{seq / t:.2f}x",
          f"{frames / t:.0f}"]
         for name, t in times.items()],
        title=f"{len(episodes)} concurrent scenario episodes x "
              f"{FRAMES_PER_STREAM} frames at "
              f"{STREAM_SHAPE[0]}x{STREAM_SHAPE[1]} "
              f"({checks} monitor checks):"))
    emit(f"\nexact bit-for-bit vs sequential loop: {exact_ok}; "
         f"workers=2 bit-for-bit: {workers_ok}")
    ws = summary["workers_scaling"]
    emit(f"workers={ws['workers']} scaling row: {ws['speedup']:.2f}x "
         f"on {summary['cpu_count']}-core host (tracks cores; gated "
         "only on multi-core hosts)")
    dense = summary["dense"]
    emit(f"dense fleet ({dense['episodes']} overlap-heavy streams, "
         f"k={dense['speculative_k']}, crop margin "
         f"{dense['context_margin_px']}px): monitor pass joint "
         f"{dense['pass_joint_ms']:.0f} -> shared "
         f"{dense['pass_shared_ms']:.0f} ms "
         f"({summary['speedup_shared_vs_joint_pass']:.2f}x; "
         f"no stem reuse {dense['pass_shared_no_reuse_ms']:.0f} ms), "
         f"wall {summary['speedup_shared_vs_joint_wall']:.2f}x")
    st = dense["shared_stats"]
    emit(f"  union planning: {st['zone_checks']} zone checks -> "
         f"{st['union_windows']} windows ({st['merged_windows']} "
         f"merged); stem cache {st['stem_hits']} hits / "
         f"{st['stem_misses']} misses")
    ad = dense["samples"]["joint_adaptive"]
    emit(f"adaptive early exit (joint pass): "
         f"{dense['pass_joint_ms']:.0f} -> "
         f"{dense['pass_joint_adaptive_ms']:.0f} ms "
         f"({summary['speedup_adaptive_vs_full_t']:.2f}x); samples "
         f"{ad['samples_used']}/{ad['samples_budget']} "
         f"({ad['early_exits']}/{ad['windows']} windows exited early, "
         f"{ad['fallbacks']} full-T fallbacks)")
    emit(f"  samples-used histogram: {ad['histogram']}; shared pass "
         f"{summary['speedup_adaptive_shared_pass']:.2f}x (recorded, "
         f"not gated — stem reuse already amortises the pass)")
    if "full_frame" in summary:
        ff = summary["full_frame"]
        emit(f"full-frame streams {ff['shape']}: joint "
             f"{ff['speedup_joint']:.2f}x "
             f"({ff['t_sequential_ms']:.0f} -> "
             f"{ff['t_joint_ms']:.0f} ms)")
    emit(f"summary -> {out}")

    # Hard contracts: the exact engine and the sharded engine ARE the
    # sequential loop, and the shared engine is seeded-reproducible.
    assert exact_ok, "exact engine diverged from the sequential loop"
    assert workers_ok, "worker sharding diverged from the sequential loop"
    assert summary["shared_seeded_reproducible"], (
        "shared-context engine is not seeded-reproducible")
    # The joint engine must actually pay off on the fleet workload;
    # floors are conservative so machine noise cannot flake CI (the
    # measured numbers are tracked by the regression gate instead).
    floor = 1.05 if BENCH_SMOKE else 1.3
    assert summary["speedup_joint"] >= floor, (
        f"joint engine speedup {summary['speedup_joint']:.2f}x "
        f"below floor {floor}x")
    # The shared engine must beat the PR 3 joint pass on the
    # overlap-heavy fleet's monitor stage.
    shared_floor = 1.05 if BENCH_SMOKE else 1.3
    assert summary["speedup_shared_vs_joint_pass"] >= shared_floor, (
        f"shared-context monitor pass speedup "
        f"{summary['speedup_shared_vs_joint_pass']:.2f}x below floor "
        f"{shared_floor}x")
    # Adaptive early exit: seeded-reproducible, and must pay off on
    # the joint monitor pass (same conservative floors as above).
    assert summary["adaptive_seeded_reproducible"], (
        "adaptive early-exit engine is not seeded-reproducible")
    adaptive_floor = 1.05 if BENCH_SMOKE else 1.3
    assert summary["speedup_adaptive_vs_full_t"] >= adaptive_floor, (
        f"adaptive monitor pass speedup "
        f"{summary['speedup_adaptive_vs_full_t']:.2f}x below floor "
        f"{adaptive_floor}x")
