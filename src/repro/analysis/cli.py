"""Command-line front end: ``python -m repro.analysis``.

Usage::

    python -m repro.analysis [--strict] [--baseline PATH]
                             [--update-baseline] [--list-rules]
                             [--root DIR] [paths ...]

Default paths are the repo tree (``src benchmarks examples tests
scripts``).  Without ``--strict`` the run is advisory (findings are
printed, exit 0); with ``--strict`` any active — non-suppressed,
non-baselined — finding exits 1, which is how ``scripts/check.sh``
fails fast at diff time before the test suite runs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import (
    Baseline,
    DEFAULT_BASELINE_RELPATH,
)
from repro.analysis.runner import (
    DEFAULT_PATHS,
    all_checkers,
    lint_tree,
)

__all__ = ["main"]


def _list_rules() -> int:
    print("repro-lint rules (suppress inline with "
          "`# repro-lint: disable=RULE  <why>`):\n")
    for checker in all_checkers():
        print(f"{checker.name}:")
        for rule in checker.rules:
            print(f"  {rule.id:<22s} {rule.summary}")
            if rule.contract:
                print(f"  {'':<22s} protects: {rule.contract}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter enforcing the "
                    "repro's certification contracts.")
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any active finding")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: "
                             f"{DEFAULT_BASELINE_RELPATH} when it "
                             "exists)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to grandfather "
                             "the current findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--no-hints", action="store_true",
                        help="omit remediation hints")
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules()

    root = Path(args.root).resolve()
    baseline_path = Path(args.baseline) if args.baseline \
        else root / DEFAULT_BASELINE_RELPATH
    baseline = Baseline.load(baseline_path)

    result = lint_tree(root, paths=args.paths or None,
                       baseline=baseline)

    if args.update_baseline:
        pairs = []
        for finding in result.active + result.baselined:
            try:
                lines = (root / finding.path).read_text().splitlines()
                text = lines[finding.line - 1] \
                    if 0 < finding.line <= len(lines) else ""
            except OSError:
                text = ""
            pairs.append((finding, text))
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        Baseline.write(baseline_path, pairs)
        print(f"baseline updated: {len(pairs)} entr"
              f"{'y' if len(pairs) == 1 else 'ies'} -> "
              f"{baseline_path}")
        return 0

    for finding in result.active:
        print(finding.format(show_hint=not args.no_hints))
    summary = (f"repro-lint: {len(result.active)} finding(s) "
               f"({len(result.baselined)} baselined, "
               f"{len(result.suppressed)} suppressed) "
               f"across {result.files} file(s)")
    print(summary, file=sys.stderr)
    if args.strict and result.active:
        return 1
    return 0
