"""Canny edge detector, implemented from scratch on scipy/numpy.

Reference [11] of the paper (Mejias & Fitzgerald, 2013) selects
emergency-landing sites as areas with *low edge concentration* in a
Canny edge map.  This module provides the detector for that baseline:
Gaussian smoothing, Sobel gradients, quantised non-maximum suppression
and double-threshold hysteresis.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.vision.filters import gaussian_blur, sobel_gradients

__all__ = ["canny", "non_maximum_suppression", "hysteresis_threshold"]


def non_maximum_suppression(magnitude: np.ndarray, grad_r: np.ndarray,
                            grad_c: np.ndarray) -> np.ndarray:
    """Thin edges: keep pixels that are local maxima along the gradient.

    Directions are quantised to 0/45/90/135 degrees, the standard
    discrete Canny formulation.
    """
    h, w = magnitude.shape
    angle = np.rad2deg(np.arctan2(grad_r, grad_c)) % 180.0

    padded = np.pad(magnitude, 1, mode="constant")
    center = padded[1:-1, 1:-1]

    def shifted(dr: int, dc: int) -> np.ndarray:
        return padded[1 + dr:h + 1 + dr, 1 + dc:w + 1 + dc]

    # Neighbour pairs per quantised direction.
    east_west = (shifted(0, 1), shifted(0, -1))
    ne_sw = (shifted(-1, 1), shifted(1, -1))
    north_south = (shifted(-1, 0), shifted(1, 0))
    nw_se = (shifted(-1, -1), shifted(1, 1))

    sector0 = (angle < 22.5) | (angle >= 157.5)
    sector45 = (angle >= 22.5) & (angle < 67.5)
    sector90 = (angle >= 67.5) & (angle < 112.5)
    sector135 = (angle >= 112.5) & (angle < 157.5)

    keep = np.zeros_like(magnitude, dtype=bool)
    for sector, (n1, n2) in ((sector0, east_west), (sector45, ne_sw),
                             (sector90, north_south), (sector135, nw_se)):
        keep |= sector & (center >= n1) & (center >= n2)
    return np.where(keep, magnitude, 0.0)


def hysteresis_threshold(thin: np.ndarray, low: float,
                         high: float) -> np.ndarray:
    """Double-threshold hysteresis: weak edges survive only when
    8-connected to a strong edge."""
    if low > high:
        raise ValueError(f"low threshold {low} exceeds high {high}")
    strong = thin >= high
    weak = thin >= low
    if not strong.any():
        return np.zeros_like(thin, dtype=bool)
    # Label weak components; keep those containing a strong pixel.
    structure = np.ones((3, 3), dtype=bool)
    labels, n_labels = ndimage.label(weak, structure=structure)
    if n_labels == 0:
        return np.zeros_like(thin, dtype=bool)
    strong_labels = np.unique(labels[strong])
    strong_labels = strong_labels[strong_labels != 0]
    return np.isin(labels, strong_labels)


def canny(image: np.ndarray, sigma: float = 1.4,
          low_threshold: float = 0.05,
          high_threshold: float = 0.15) -> np.ndarray:
    """Full Canny pipeline on a 2-D image in [0, 1].

    Thresholds are expressed as fractions of the maximum gradient
    magnitude, making the detector exposure-invariant.
    Returns a boolean edge mask.
    """
    if image.ndim != 2:
        raise ValueError(f"expected 2-D image, got shape {image.shape}")
    if not 0 <= low_threshold <= high_threshold:
        raise ValueError("thresholds must satisfy 0 <= low <= high")
    smoothed = gaussian_blur(image, sigma)
    grad_r, grad_c = sobel_gradients(smoothed)
    magnitude = np.hypot(grad_r, grad_c)
    peak = magnitude.max()
    # Guard against float noise on (near-)constant images: gradients of
    # order machine-epsilon are not edges.
    if peak <= 1e-9:
        return np.zeros_like(image, dtype=bool)
    thin = non_maximum_suppression(magnitude, grad_r, grad_c)
    return hysteresis_threshold(thin, low_threshold * peak,
                                high_threshold * peak)
