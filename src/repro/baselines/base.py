"""Common interface and helpers for baseline landing-zone selectors.

The paper's related-work section groups prior landing-zone-selection
(LZS) methods into three families: public-database methods, high-
altitude camera methods (edge density, tile classification) and
low-altitude methods.  The baselines in this package implement one
representative per implementable family so the benchmark harness can
compare their unsafe-zone acceptance against the paper's monitored
segmentation approach.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.geometry import Box
from repro.utils.selection import greedy_peak_boxes

__all__ = ["ZoneProposal", "top_zones_from_score_map"]


@dataclass(frozen=True)
class ZoneProposal:
    """A candidate landing zone proposed by some LZS method.

    ``score`` is method-specific but always "higher is better".
    """

    box: Box
    score: float
    method: str


def top_zones_from_score_map(score_map: np.ndarray, zone_size: int,
                             num_candidates: int, method: str,
                             border_margin: int = 0
                             ) -> list[ZoneProposal]:
    """Greedy non-maximum suppression over a dense score map.

    Thin wrapper over :func:`repro.utils.selection.greedy_peak_boxes`
    that tags each selected box with the proposing method's name.
    """
    pairs = greedy_peak_boxes(score_map, zone_size, num_candidates,
                              border_margin=border_margin)
    return [ZoneProposal(box=box, score=score, method=method)
            for box, score in pairs]
