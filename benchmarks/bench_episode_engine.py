"""EXT-ENGINE bench: the streaming episode engine vs the sequential loop.

Extension benchmark for the multi-episode workload shape the related
work evaluates on (continuous streams under named conditions): a fleet
of concurrent scenario episodes — nominal and OOD, from the registry —
runs through ``EpisodeScheduler`` and is compared against the paper's
status quo, one ``LandingPipeline.run`` call per frame.

Measured modes:

* **exact** — cross-episode batched core segmentation, per-episode
  seeded monitoring; must be *bit-for-bit* identical to the sequential
  loop (asserted, gated).
* **joint** — additionally verifies the pending zone checks of all
  episodes in jointly seeded stacked Bayesian passes (the headline
  multi-episode throughput number, gated).
* **workers=2** — whole episode frames sharded over a fork pool; must
  be bit-for-bit identical to the sequential loop on any worker count
  (asserted, gated).  Its *speedup* is recorded for information only:
  it tracks the host's core count (near or below 1x on the single-core
  CI box, scaling with cores elsewhere).

The fleet runs at the multi-stream scale (48x64 frames — many
lightweight streams per server); full mode adds the native full-frame
stream workload for the record.  The EL-scale drift buffer keeps the
episodes monitor-active, i.e. frames actually reach per-zone Bayesian
checks, which is where the engine's joint batching earns its keep.
"""

from __future__ import annotations

import os
from dataclasses import replace

import numpy as np

from _bench_utils import write_bench_summary
from repro.core import EngineConfig, EpisodeScheduler, LandingPipeline
from repro.eval.reporting import format_table, format_title
from repro.scenarios import scenario_sweep
from repro.uav.ballistics import DriftModel

BENCH_SMOKE = os.environ.get("BENCH_SMOKE") == "1"

#: The fleet: nominal + OOD streams from the registry.
SCENARIOS = ("day_nominal", "overcast_nominal", "sunset_ood",
             "night_ood", "fog_ood", "night_fog")
STREAM_SHAPE = (48, 64)
STREAMS_PER_SCENARIO = 2 if BENCH_SMOKE else 3
FRAMES_PER_STREAM = 3 if BENCH_SMOKE else 4
REPEATS = 3 if BENCH_SMOKE else 5


def _stream_drift_model() -> DriftModel:
    """Drift buffer matched to the multi-stream camera scale.

    Chosen so a healthy share of frames clears the buffer and reaches
    the monitor — the EL regime whose throughput this bench is about.
    """
    return DriftModel(wind_speed_ms=2.0, gust_factor=1.2,
                      release_height_m=18.0, descent_rate_ms=6.0,
                      position_error_m=1.0, latency_s=0.3,
                      approach_speed_ms=3.0)


def _fleet(system, shape):
    episodes = [
        spec.with_camera(shape).episode_request(i, FRAMES_PER_STREAM)
        for spec in scenario_sweep(*SCENARIOS)
        for i in range(STREAMS_PER_SCENARIO)
    ]
    base = system.pipeline_config()
    config = replace(base, selector=replace(
        base.selector, drift_model=_stream_drift_model()))
    return episodes, config


def _sequential(model, config, episodes):
    """The status quo: one pipeline per episode, one run() per frame."""
    out = []
    for ep in episodes:
        pipeline = LandingPipeline(model, config, rng=ep.seed)
        out.append([pipeline.run(frame) for frame in ep.frames])
    return out


def _results_equal(a, b) -> bool:
    """Bit-for-bit comparison of two per-frame pipeline results."""
    if not np.array_equal(a.predicted_labels, b.predicted_labels):
        return False
    da, db = a.decision, b.decision
    if (da.action is not db.action or da.attempts != db.attempts
            or da.log != db.log or len(a.verdicts) != len(b.verdicts)):
        return False
    return all(
        va.accepted == vb.accepted
        and va.unsafe_fraction == vb.unsafe_fraction
        and np.array_equal(va.distribution.mean, vb.distribution.mean)
        and np.array_equal(va.distribution.std, vb.distribution.std)
        for va, vb in zip(a.verdicts, b.verdicts))


def _episodes_equal(engine_out, reference) -> bool:
    return all(
        len(er.results) == len(ref)
        and all(_results_equal(fa, fb)
                for fa, fb in zip(er.results, ref))
        for er, ref in zip(engine_out, reference))


def _measure_modes(model, config, episodes):
    """Wall times + equality contracts for every engine mode.

    One timing round runs every mode back to back and the minimum per
    mode wins, so slow drift of the (noisy, single-core) bench host
    cannot favour whichever mode happened to run first.
    """
    reference = _sequential(model, config, episodes)
    checks = sum(len(r.verdicts) for ep in reference for r in ep)

    exact_out = EpisodeScheduler(model, config).run(episodes)
    exact_ok = _episodes_equal(exact_out, reference)
    workers_out = EpisodeScheduler(
        model, config, engine=EngineConfig(workers=2)).run(episodes)
    workers_ok = _episodes_equal(workers_out, reference)

    import time

    modes = {
        "sequential": lambda: _sequential(model, config, episodes),
        "exact": lambda: EpisodeScheduler(model, config).run(episodes),
        "joint": lambda: EpisodeScheduler(
            model, config,
            engine=EngineConfig(monitor_batching="joint"),
            rng=0).run(episodes),
        "workers2": lambda: EpisodeScheduler(
            model, config,
            engine=EngineConfig(workers=2)).run(episodes),
    }
    times = {}
    for name, fn in modes.items():
        fn()  # warm-up
        times[name] = float("inf")
    for _ in range(REPEATS):
        for name, fn in modes.items():
            start = time.perf_counter()
            fn()
            times[name] = min(times[name],
                              time.perf_counter() - start)
    return times, checks, exact_ok, workers_ok


def test_episode_engine_throughput(system, emit):
    episodes, config = _fleet(system, STREAM_SHAPE)
    frames = sum(len(ep.frames) for ep in episodes)
    times, checks, exact_ok, workers_ok = _measure_modes(
        system.model, config, episodes)
    seq = times["sequential"]

    summary = {
        "scenarios": list(SCENARIOS),
        "episodes": len(episodes),
        "frames": frames,
        "monitor_checks": checks,
        "cpu_count": os.cpu_count(),
        "t_sequential_ms": round(seq * 1e3, 3),
        "t_exact_ms": round(times["exact"] * 1e3, 3),
        "t_joint_ms": round(times["joint"] * 1e3, 3),
        "t_workers2_ms": round(times["workers2"] * 1e3, 3),
        "speedup_exact": round(seq / times["exact"], 3),
        "speedup_joint": round(seq / times["joint"], 3),
        "speedup_workers2": round(seq / times["workers2"], 3),
        "exact_bit_for_bit": bool(exact_ok),
        "workers_bit_for_bit": bool(workers_ok),
    }

    if not BENCH_SMOKE:
        # Native full-frame streams, for the record (the multi-stream
        # fleet above is the gated workload).
        shape = system.config.dataset.image_shape
        episodes_ff, config_ff = _fleet(system, shape)
        times_ff, checks_ff, _, _ = _measure_modes(
            system.model, config_ff, episodes_ff)
        summary["full_frame"] = {
            "shape": list(shape),
            "monitor_checks": checks_ff,
            "t_sequential_ms": round(times_ff["sequential"] * 1e3, 3),
            "t_joint_ms": round(times_ff["joint"] * 1e3, 3),
            "speedup_joint": round(
                times_ff["sequential"] / times_ff["joint"], 3),
        }

    out = write_bench_summary("BENCH_episode_engine.json", summary,
                              smoke=BENCH_SMOKE)

    emit("\n" + format_title(
        "EXT-ENGINE: streaming episode engine throughput"))
    emit(format_table(
        ["mode", "wall ms", "speedup", "frames/s"],
        [[name, f"{t * 1e3:.1f}", f"{seq / t:.2f}x",
          f"{frames / t:.0f}"]
         for name, t in times.items()],
        title=f"{len(episodes)} concurrent scenario episodes x "
              f"{FRAMES_PER_STREAM} frames at "
              f"{STREAM_SHAPE[0]}x{STREAM_SHAPE[1]} "
              f"({checks} monitor checks):"))
    emit(f"\nexact bit-for-bit vs sequential loop: {exact_ok}; "
         f"workers=2 bit-for-bit: {workers_ok}")
    if "full_frame" in summary:
        ff = summary["full_frame"]
        emit(f"full-frame streams {ff['shape']}: joint "
             f"{ff['speedup_joint']:.2f}x "
             f"({ff['t_sequential_ms']:.0f} -> "
             f"{ff['t_joint_ms']:.0f} ms)")
    emit(f"summary -> {out}")

    # Hard contracts: the exact engine and the sharded engine ARE the
    # sequential loop.
    assert exact_ok, "exact engine diverged from the sequential loop"
    assert workers_ok, "worker sharding diverged from the sequential loop"
    # The joint engine must actually pay off on the fleet workload;
    # floors are conservative so machine noise cannot flake CI (the
    # measured numbers are tracked by the regression gate instead).
    floor = 1.05 if BENCH_SMOKE else 1.3
    assert summary["speedup_joint"] >= floor, (
        f"joint engine speedup {summary['speedup_joint']:.2f}x "
        f"below floor {floor}x")
