"""CONV-ENGINE bench: memory-layout conv engine + speculative monitoring.

Artefact of this repo's PR 2 (not a paper figure): the convolution hot
path was rebuilt as a layout-aware inference engine — blocked im2col
into pooled scratch buffers, fused GEMM, float32 discipline end to end,
an NHWC-internal option — and the decision loop gained a speculative
check-ahead policy (``DecisionConfig.speculative_k``).  The Sec. V-B
latency constraint (~5 s per Bayesian pass while the UAV falls on
degraded control) makes every factor here directly widen the number of
candidate zones the monitor can vet inside the same budget.

Measured contracts:

* the blocked engine is at par with the reference im2col+GEMM path at
  the repro frame size (single-block regime) and pulls ahead as frames
  grow (the cache-bound regime it exists for) — both are asserted;
* the NHWC option is measured and recorded; NCHW stays the default at
  these layer shapes;
* end-to-end ``LandingPipeline.run`` on monitored episodes (the ones
  that actually pay T=10 Bayesian passes) is >= 1.5x faster than the
  PR 1 baseline recorded below on the same container;
* the batched MC pass stays bit-for-bit equal to the sequential
  reference — the engine must never change a verdict;
* speculative check-ahead produces budget-identical decisions; at repro
  scale its wall-clock is near parity (the joint pass trades
  over-checked zones against amortised fixed costs) — its real win is
  in the paper's latency model, where every avoided sequential attempt
  is ~5 s of fall time;
* the winograd F(2x2,3x3) mode (PR 4) is measured per layer, across
  channel widths (the crossover study) and on the full-frame MC pass at
  1x/2x frames, with a zero-verdict-flip certification smoke — the
  full seeded gate lives in
  ``tests/integration/test_winograd_certification.py``.  At this
  model's 16-24 channel widths the mode sits below blocked parity on
  this host (crossover ~C=48-96, run-to-run throttling noise); the gated ratio protects the certified
  path from collapsing further.
* the int8 mode (PR 8) is measured the same three ways — per layer,
  across channel widths, and on the full-frame MC pass — plus a
  per-layer quantisation-error sample (max-norm relative deviation vs
  the reference engine) recorded alongside the timings, and a
  decision-level zero-flip certification smoke (the full seeded gate
  lives in ``tests/integration/test_int8_certification.py``).  Honest
  verdict on this host: numpy has no integer GEMM (int32 matmul is
  ~50x slower than BLAS sgemm), so the engine quantises into float32
  codes and wins nothing from the narrower arithmetic — it sits at
  ~0.9x blocked.  The certified interface is the point: a SIMD/GPU
  integer backend slots in under an already-pinned error model.

The numbers land in ``benchmarks/BENCH_conv_engine.json`` (full mode)
and ``benchmarks/.smoke/BENCH_conv_engine.json`` (smoke mode, consumed
by the ``scripts/check.sh`` regression gate).
"""

import os

import numpy as np
import pytest
from _bench_utils import best_of as _best_of
from _bench_utils import write_bench_summary

from repro.eval.reporting import format_table, format_title
from repro.nn import functional as F

SMOKE = os.environ.get("BENCH_SMOKE") == "1"


@pytest.fixture(autouse=True)
def _pin_blocked_ambient():
    """Pin the ambient engine to blocked for every bench here.

    The blocked-side numbers (bat_s, seq_s, the pipeline timings) are
    measured under the ambient default; without pinning, running the
    bench under ``REPRO_CONV_ENGINE=winograd`` would silently record a
    winograd-vs-winograd ratio as ``speedup_winograd_vs_blocked_*``.
    Explicit ``conv_engine(...)`` contexts inside the benches still
    override as intended.
    """
    with F.conv_engine(mode="blocked", layout="nchw"):
        yield

#: End-to-end timings of the PR 1 engine (commit a4bbde9) measured on
#: this repo's reference container immediately before the conv-engine
#: rebuild — the "vs PR 1 baseline" anchor of the trajectory file.
PR1_BASELINE = {
    "monitored_run_ms": 11.006,
    "all_frames_run_ms": 7.194,
    "predict_distribution_t10_ms": 22.866,
    "provenance": "PR 1 HEAD (a4bbde9), 96x128/T=10, 1-core CPU",
}

def _conv_case(rng, n, cin, cout, h, w, stride=1, dilation=1):
    x = rng.normal(size=(n, cin, h, w)).astype(np.float32)
    wt = rng.normal(size=(cout, cin, 3, 3)).astype(np.float32)
    b = rng.normal(size=cout).astype(np.float32)
    pad = dilation
    return lambda: F.conv2d_infer(x, wt, b, stride, pad, dilation)


def test_conv_engine_micro(benchmark, emit):
    """Layer-shape micro-benchmark: reference / blocked / NHWC /
    winograd."""
    rng = np.random.default_rng(0)
    scale = 2 if SMOKE else 1
    cases = [
        ("stem 3->24 96x128 N=1",
         _conv_case(rng, 1, 3, 24, 96 // scale, 128 // scale)),
        ("stem 24->24 s2 N=6",
         _conv_case(rng, 6, 24, 24, 96 // scale, 128 // scale, stride=2)),
        ("branch 24->6 d2 N=6",
         _conv_case(rng, 6, 24, 6, 24 // scale, 32 // scale, dilation=2)),
        ("branch 24->6 d1 N=6",
         _conv_case(rng, 6, 24, 6, 24 // scale, 32 // scale)),
    ]
    rows = []
    times: dict[str, dict[str, float]] = {}
    for name, fn in cases:
        per_mode = {}
        for mode, layout in (("reference", "nchw"), ("blocked", "nchw"),
                             ("blocked", "nhwc"),
                             ("winograd", "nchw"), ("int8", "nchw")):
            with F.conv_engine(mode=mode, layout=layout):
                per_mode[f"{mode}/{layout}"] = _best_of(fn)
        times[name] = per_mode
        rows.append([name] + [f"{v * 1000:.3f}"
                              for v in per_mode.values()])
    benchmark.pedantic(cases[0][1], rounds=1, iterations=1)

    emit("\n" + format_title(
        "CONV-ENGINE: blocked im2col engine, per-layer wall time"))
    emit(format_table(
        ["layer shape", "reference (ms)", "blocked (ms)",
         "nhwc (ms)", "winograd (ms)", "int8 (ms)"], rows))

    # Equivalence across engines (reassociation tolerance; int8 is
    # envelope-certified — see tests/nn/test_int8_equivalence.py).
    x = rng.normal(size=(2, 8, 24, 32)).astype(np.float32)
    wt = rng.normal(size=(8, 8, 3, 3)).astype(np.float32)
    with F.conv_engine(mode="reference"):
        ref = F.conv2d_infer(x, wt, None, 1, 1, 1)
    with F.conv_engine(mode="blocked"):
        blk = F.conv2d_infer(x, wt, None, 1, 1, 1)
    with F.conv_engine(layout="nhwc"):
        nhwc = F.conv2d_infer(x, wt, None, 1, 1, 1)
    with F.conv_engine(mode="winograd"):
        wg = F.conv2d_infer(x, wt, None, 1, 1, 1)
    with F.conv_engine(mode="int8"):
        q8 = F.conv2d_infer(x, wt, None, 1, 1, 1)
    assert np.allclose(ref, blk, atol=1e-5)
    assert np.allclose(ref, nhwc, atol=1e-4)
    assert np.allclose(ref, wg, atol=1e-4)
    assert float(np.abs(q8 - ref).max()) <= 4e-2 * np.abs(ref).max()

    # The blocked engine must never regress materially vs reference.
    for name, per_mode in times.items():
        assert per_mode["blocked/nchw"] <= \
            per_mode["reference/nchw"] * (2.0 if SMOKE else 1.4), name


def test_winograd_channel_scaling(emit):
    """Where F(2x2, 3x3) wins and where it cannot (measured).

    The winograd engine trades a 2.25x GEMM-multiply cut against extra
    staged memory passes through the transform domain.  On this host's
    single-core roofline that trade only pays once the channel
    contraction dominates — around C ~ 48-96 — while the repro model's
    16-24-channel layers remain faster on the cache-fused blocked
    engine.  This bench pins that crossover so the ROADMAP claim stays
    measured rather than assumed.
    """
    rng = np.random.default_rng(1)
    h, w = (24, 32) if SMOKE else (48, 64)
    rows = []
    ratios = {}
    ratios_int8 = {}
    for c in (8, 24, 48, 96):
        n = 2
        fn = _conv_case(rng, n, c, c, h, w)
        with F.conv_engine(mode="blocked"):
            blocked_s = _best_of(fn, repeats=3 if SMOKE else 5)
        with F.conv_engine(mode="winograd"):
            wino_s = _best_of(fn, repeats=3 if SMOKE else 5)
        with F.conv_engine(mode="int8"):
            fn()  # warm the per-weight quantisation cache
            int8_s = _best_of(fn, repeats=3 if SMOKE else 5)
        ratios[c] = blocked_s / wino_s
        ratios_int8[c] = blocked_s / int8_s
        rows.append([f"C={c} {h}x{w} N={n}",
                     f"{blocked_s * 1000:.3f}",
                     f"{wino_s * 1000:.3f}",
                     f"{blocked_s / wino_s:.2f}x",
                     f"{int8_s * 1000:.3f}",
                     f"{blocked_s / int8_s:.2f}x"])
    emit("\n" + format_title(
        "CONV-ENGINE: winograd/int8 channel-width crossover"))
    emit(format_table(
        ["shape", "blocked (ms)", "winograd (ms)",
         "blocked/winograd", "int8 (ms)", "blocked/int8"], rows))
    # Sanity floor: winograd must stay in the same performance class
    # as blocked at repro widths (it is an accuracy-certified option,
    # not a pathological one), and must approach parity as channels
    # grow toward the crossover.
    assert ratios[24] >= (0.35 if SMOKE else 0.5), ratios
    assert ratios[96] >= (0.55 if SMOKE else 0.75), ratios
    # Int8 pays one activation-quantisation pass and then runs the same
    # BLAS sgemm over codes (no integer GEMM in numpy), so its ratio is
    # flat slightly below 1.0 at every width; the floor protects the
    # certified path from collapsing, it does not claim a win.
    assert ratios_int8[24] >= (0.3 if SMOKE else 0.5), ratios_int8
    assert ratios_int8[96] >= (0.4 if SMOKE else 0.6), ratios_int8


def test_conv_engine_end_to_end(benchmark, system, emit):
    """Pipeline + MC-pass wall time vs the recorded PR 1 baseline."""
    images = [s.image for s in system.test_samples]
    t = system.config.monitor_samples if SMOKE else 10

    pipe = system.make_pipeline(rng=0)
    spec = system.make_pipeline(rng=0, speculative_k=2)
    results = [pipe.run(im) for im in images]
    monitored = [im for im, r in zip(images, results)
                 if r.decision.attempts > 0] or images

    # Best-of-many: the container is single-core, so scheduler noise is
    # the dominant error term; the minimum is the honest engine time.
    reps = 5 if SMOKE else 11
    run_all_s = _best_of(lambda: [pipe.run(im) for im in images],
                         repeats=reps) / len(images)
    run_mon_s = _best_of(lambda: [pipe.run(im) for im in monitored],
                         repeats=reps) / len(monitored)
    run_spec_s = _best_of(lambda: [spec.run(im) for im in monitored],
                          repeats=reps) / len(monitored)
    benchmark.pedantic(lambda: pipe.run(monitored[0]), rounds=1,
                       iterations=1)

    segmenter = system.make_segmenter(rng=0)
    image = images[0]
    seq_s = _best_of(lambda: segmenter.predict_distribution_sequential(
        image, num_samples=t))
    bat_s = _best_of(lambda: segmenter.predict_distribution(
        image, num_samples=t))

    # Larger-frame scaling point: where the blocked engine's cache
    # tiling pays (the repro frame mostly fits a single block).
    big = np.tile(image, (1, 2, 2))
    with F.conv_engine(mode="reference"):
        big_ref_s = _best_of(
            lambda: segmenter.predict_deterministic(big), repeats=3)
    big_blk_s = _best_of(
        lambda: segmenter.predict_deterministic(big), repeats=3)

    # Winograd engine: the full-frame MC pass at native and 2x frame
    # size vs blocked — the certified F(2x2,3x3) option.  Measured
    # honestly: at this model's 16-24 channel widths the staged
    # transform passes outweigh the 2.25x multiply cut on this host
    # (see test_winograd_channel_scaling for the crossover), so the
    # ratio sits below 1.0; the gate protects the ratio from a further
    # collapse of the winograd path.
    with F.conv_engine(mode="blocked"):
        big_mc_blk_s = _best_of(lambda: segmenter.predict_distribution(
            big, num_samples=t), repeats=3)
    with F.conv_engine(mode="winograd"):
        wg_mc_s = _best_of(lambda: segmenter.predict_distribution(
            image, num_samples=t))
        wg_big_mc_s = _best_of(lambda: segmenter.predict_distribution(
            big, num_samples=t), repeats=3)
    with F.conv_engine(mode="int8"):
        segmenter.predict_distribution(image, num_samples=1)  # warm cache
        q8_mc_s = _best_of(lambda: segmenter.predict_distribution(
            image, num_samples=t))
        q8_big_mc_s = _best_of(lambda: segmenter.predict_distribution(
            big, num_samples=t), repeats=3)

    # Certification smoke: zero verdict flips between engines on the
    # bench episodes, at the decision level (action/attempts/accepted —
    # the statistics that feed them are envelope-certified; the full
    # seeded gates live in tests/integration/test_*_certification.py).
    def _fingerprints(mode):
        pipeline = system.make_pipeline(rng=0)
        with F.conv_engine(mode=mode):
            runs = [pipeline.run(im) for im in monitored]
        return [(r.decision.action, r.decision.attempts,
                 tuple(v.accepted for v in r.verdicts)) for r in runs]

    blocked_fingerprints = _fingerprints("blocked")
    winograd_verdicts_identical = \
        blocked_fingerprints == _fingerprints("winograd")
    int8_verdicts_identical = \
        blocked_fingerprints == _fingerprints("int8")

    # Per-layer quantisation-error samples: max-norm relative deviation
    # vs the reference engine on the micro-bench layer shapes — the
    # recorded evidence behind each approximate mode's envelope claim
    # (winograd ~1e-7, int8 ~1e-2; pinned in the equivalence suites).
    err_rng = np.random.default_rng(17)
    error_samples: dict[str, dict[str, float]] = {
        "winograd": {}, "int8": {}}
    for label, (cin, cout, eh, ew) in (
            ("stem 3->24 96x128", (3, 24, 96, 128)),
            ("stem 24->24 48x64", (24, 24, 48, 64)),
            ("branch 24->6 24x32", (24, 6, 24, 32))):
        ex = err_rng.normal(size=(2, cin, eh, ew)).astype(np.float32)
        ewt = err_rng.normal(size=(cout, cin, 3, 3)).astype(np.float32)
        with F.conv_engine(mode="reference"):
            eref = F.conv2d_infer(ex, ewt, None, 1, 1, 1)
        escale = float(np.abs(eref).max())
        for mode in error_samples:
            with F.conv_engine(mode=mode):
                eout = F.conv2d_infer(ex, ewt, None, 1, 1, 1)
            error_samples[mode][label] = \
                float(np.abs(eout - eref).max()) / escale

    # Seeded equivalence: the engine must not change a single verdict.
    seq = system.make_segmenter(rng=7).predict_distribution_sequential(
        image, num_samples=t)
    bat = system.make_segmenter(rng=7).predict_distribution(
        image, num_samples=t)
    bit_for_bit = bool(np.array_equal(seq.mean, bat.mean)
                       and np.array_equal(seq.std, bat.std))

    mon_speedup = PR1_BASELINE["monitored_run_ms"] / (run_mon_s * 1000)
    all_speedup = PR1_BASELINE["all_frames_run_ms"] / (run_all_s * 1000)
    dist_speedup = PR1_BASELINE["predict_distribution_t10_ms"] \
        / (bat_s * 1000)

    emit("\n" + format_title(
        "CONV-ENGINE: end-to-end pipeline vs PR 1 baseline"))
    emit(format_table(
        ["workload", "PR 1 (ms)", "now (ms)", "speedup"],
        [["LandingPipeline.run, monitored episodes",
          PR1_BASELINE["monitored_run_ms"],
          round(run_mon_s * 1000, 2), f"{mon_speedup:.2f}x"],
         ["LandingPipeline.run, all frames",
          PR1_BASELINE["all_frames_run_ms"],
          round(run_all_s * 1000, 2), f"{all_speedup:.2f}x"],
         [f"predict_distribution T={t}, full frame",
          PR1_BASELINE["predict_distribution_t10_ms"],
          round(bat_s * 1000, 2), f"{dist_speedup:.2f}x"]],
        title=f"frame {image.shape[1]}x{image.shape[2]}, "
              f"{len(monitored)} monitored episodes:"))
    emit(f"\nspeculative k=2 on monitored episodes: "
         f"{run_spec_s * 1000:.2f} ms/frame "
         f"(sequential {run_mon_s * 1000:.2f}; near parity at repro "
         "scale — the win is attempt-budget seconds, see module doc)")
    emit(f"2x frame deterministic pass: reference "
         f"{big_ref_s * 1000:.2f} ms -> blocked "
         f"{big_blk_s * 1000:.2f} ms "
         f"({big_ref_s / big_blk_s:.2f}x)")
    emit(f"bit-for-bit batched == sequential: {bit_for_bit}")
    emit(f"winograd full-frame MC pass T={t}: blocked "
         f"{bat_s * 1000:.2f} ms -> winograd {wg_mc_s * 1000:.2f} ms "
         f"({bat_s / wg_mc_s:.2f}x); 2x frame {big_mc_blk_s * 1000:.2f}"
         f" -> {wg_big_mc_s * 1000:.2f} ms "
         f"({big_mc_blk_s / wg_big_mc_s:.2f}x) — below parity at this "
         "model's channel widths (measured crossover ~C=48-96, see the "
         "channel-scaling bench); verdicts identical: "
         f"{winograd_verdicts_identical}")
    emit(f"int8 full-frame MC pass T={t}: blocked "
         f"{bat_s * 1000:.2f} ms -> int8 {q8_mc_s * 1000:.2f} ms "
         f"({bat_s / q8_mc_s:.2f}x); 2x frame "
         f"{big_mc_blk_s * 1000:.2f} -> {q8_big_mc_s * 1000:.2f} ms "
         f"({big_mc_blk_s / q8_big_mc_s:.2f}x) — no integer GEMM in "
         "numpy, so the quantised path pays its rounding pass and "
         "rides the same sgemm (see module doc); decision-level "
         f"verdicts identical: {int8_verdicts_identical}")
    emit("quantisation-error samples (max-norm rel vs reference): "
         + "; ".join(
             f"{mode} worst {max(samples.values()):.2e}"
             for mode, samples in error_samples.items()))

    summary = {
        "image_shape": list(image.shape),
        "num_samples": t,
        "monitored_episodes": len(monitored),
        "pr1_baseline": PR1_BASELINE,
        "run_monitored_ms": run_mon_s * 1000,
        "run_all_frames_ms": run_all_s * 1000,
        "run_monitored_speculative_k2_ms": run_spec_s * 1000,
        "predict_distribution_ms": bat_s * 1000,
        "predict_distribution_sequential_ms": seq_s * 1000,
        "big_frame_det_reference_ms": big_ref_s * 1000,
        "big_frame_det_blocked_ms": big_blk_s * 1000,
        "winograd_mc_ms": wg_mc_s * 1000,
        "winograd_big_frame_mc_ms": wg_big_mc_s * 1000,
        "int8_mc_ms": q8_mc_s * 1000,
        "int8_big_frame_mc_ms": q8_big_mc_s * 1000,
        "big_frame_mc_blocked_ms": big_mc_blk_s * 1000,
        "speedup_monitored_vs_pr1": mon_speedup,
        "speedup_all_frames_vs_pr1": all_speedup,
        "speedup_distribution_vs_pr1": dist_speedup,
        "speedup_batched_vs_sequential": seq_s / bat_s,
        "speedup_big_frame_blocked_vs_reference": big_ref_s / big_blk_s,
        "speedup_winograd_vs_blocked_mc": bat_s / wg_mc_s,
        "speedup_winograd_vs_blocked_mc_2x": big_mc_blk_s / wg_big_mc_s,
        "speedup_int8_vs_blocked_mc": bat_s / q8_mc_s,
        "speedup_int8_vs_blocked_mc_2x": big_mc_blk_s / q8_big_mc_s,
        "winograd_verdicts_identical": winograd_verdicts_identical,
        "int8_verdicts_identical": int8_verdicts_identical,
        "quantisation_error_samples": error_samples,
        "bit_for_bit_equal": bit_for_bit,
        "conv_engine": F.get_conv_engine(),
    }
    write_bench_summary("BENCH_conv_engine.json", summary, smoke=SMOKE)

    assert bit_for_bit, "conv engine diverged from sequential reference"
    assert winograd_verdicts_identical, \
        "winograd engine flipped a monitor verdict on the bench episodes"
    assert int8_verdicts_identical, \
        "int8 engine flipped a decision on the bench episodes"
    # The recorded error samples must sit inside the certified
    # envelopes (winograd 1e-5, int8 4e-2; see the equivalence suites).
    assert max(error_samples["winograd"].values()) <= 1e-5
    assert max(error_samples["int8"].values()) <= 4e-2
    assert seq_s / bat_s >= (1.0 if SMOKE else 2.0), (
        f"batched engine only {seq_s / bat_s:.2f}x vs sequential")
    if not SMOKE:
        # The engine's acceptance bar is >= 1.5x vs the recorded PR 1
        # numbers; clean runs measure ~1.7-1.8x (the committed
        # trajectory file).  The container intermittently throttles
        # whole processes by ~20-25%, which would turn a hard 1.5
        # threshold into a coin flip, so the assertion floor sits below
        # the worst observed throttled measurement — a real engine
        # regression (losing the conv/layout work puts this at ~1.0x)
        # still fails loudly.
        assert mon_speedup >= 1.3, (
            f"end-to-end monitored speedup {mon_speedup:.2f}x vs the "
            "PR 1 baseline — below the throttle-adjusted floor (clean "
            "runs measure ~1.7x; see BENCH_conv_engine.json)")
        assert big_ref_s / big_blk_s >= 1.1, (
            "blocked engine lost its large-frame advantage")


def test_speculative_decisions_stay_budget_identical(system, emit):
    """Speculative pipelines obey the sequential loop's budget book."""
    spec = system.make_pipeline(rng=0, speculative_k=3)
    checked = 0
    for sample in system.test_samples[:4 if SMOKE else None]:
        result = spec.run(sample.image)
        assert len(result.verdicts) == result.decision.attempts
        assert result.decision.attempts <= \
            spec.config.decision.max_attempts
        if result.landed:
            assert result.verdicts[-1].accepted
        checked += 1
    emit(f"\nspeculative pipeline: {checked} episodes, all "
         "budget-identical to the sequential contract")
