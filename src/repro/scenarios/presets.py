"""The named scenario presets (the registry's contents).

Nominal presets cover the training conditions; OOD presets reproduce
the Fig. 4 distribution shifts (sunset being the paper's case); failure
presets add the Belcastro-style events the Fig. 1 safety switch reacts
to.  ``night_fog`` composes two shifts into a condition harsher than
either — the kind of compounding the Table IV High-2 sweep is meant to
cover.

These presets (and registry sweeps over them) are the ONE sanctioned
way for benches, examples and mission campaigns to obtain imaging
conditions and failure events; hand-assembled
``ImagingConditions``/``FailureEvent`` literals belong only here and in
tests.
"""

from __future__ import annotations

from repro.dataset.conditions import (
    BRIGHT_DAY,
    DAY,
    FOG,
    NIGHT,
    OVERCAST,
    SUNSET,
    ImagingConditions,
)
from repro.scenarios.spec import (
    FailureProfile,
    ScenarioSpec,
    register_scenario,
)
from repro.uav.failures import FailureType

__all__ = [
    "NIGHT_FOG",
    "CALM_CLEAR",
    "NAV_COMM_LOSS",
    "MOTOR_FAILURE_T3",
    "NOMINAL_SCENARIOS",
    "OOD_SCENARIOS",
    "FAILURE_SCENARIOS",
    "DENSE_ZONE_SCENARIOS",
]

#: Compound shift: night lighting *and* haze (beyond any single preset).
NIGHT_FOG = ImagingConditions(
    name="night_fog", brightness=0.24, contrast=0.45,
    color_cast=(0.75, 0.82, 1.12), fog=0.4, blur_sigma=1.0,
    noise_sigma=0.05, shadow_strength=0.0)

#: The paper's canonical EL trigger, staggered across a campaign.
NAV_COMM_LOSS = FailureProfile(
    failure=FailureType.NAVIGATION_AND_COMM_LOSS,
    time_s=4.0, stagger_s=1.0, stagger_cycle=10)

#: Early propulsion loss: the safety switch answers with FT, so EL
#: policies are never consulted — the contrast case to NAV_COMM_LOSS.
MOTOR_FAILURE_T3 = FailureProfile(
    failure=FailureType.MOTOR_FAILURE, time_s=3.0)

#: Calm clear air for survey/hover work (in-distribution lighting,
#: sensor noise off — the rendered stream is limited only by texture
#: seeding, which the dense-zone presets make per-episode).
CALM_CLEAR = ImagingConditions(name="calm_clear", noise_sigma=0.0)


def _nominal(name: str, conditions, description: str) -> ScenarioSpec:
    return register_scenario(ScenarioSpec(
        name=name, description=description, conditions=conditions,
        tags=("nominal", "in_distribution")))


def _ood(name: str, conditions, description: str) -> ScenarioSpec:
    return register_scenario(ScenarioSpec(
        name=name, description=description, conditions=conditions,
        tags=("ood",)))


#: In-distribution streams under each training condition.
NOMINAL_SCENARIOS = (
    _nominal("day_nominal", DAY,
             "midday delivery overflight, no failure"),
    _nominal("bright_day_nominal", BRIGHT_DAY,
             "slightly over-exposed midday stream"),
    _nominal("overcast_nominal", OVERCAST,
             "diffuse overcast light, soft shadows"),
)

#: Out-of-distribution streams (the Fig. 4b family and beyond).
OOD_SCENARIOS = (
    _ood("sunset_ood", SUNSET,
         "the paper's OOD case: golden-hour cast, long shadows"),
    _ood("night_ood", NIGHT,
         "severe low-light shift"),
    _ood("fog_ood", FOG,
         "haze veil with optical blur"),
    _ood("night_fog", NIGHT_FOG,
         "compound shift: night lighting plus fog"),
)

#: Overlap-heavy monitoring workloads: many closely ranked candidate
#: zones whose stride-padded crops share pixels — the streams the
#: shared-context monitor engine (``monitor_batching="shared"``, see
#: ``repro.core.engine``) is benchmarked and certified on.
DENSE_ZONE_SCENARIOS = (
    register_scenario(ScenarioSpec(
        name="dense_zones_hover",
        description="calm hover survey: zero wind and per-episode "
                    "texture seeding, so every frame re-sees "
                    "bit-identical pixels (temporal stem reuse) and "
                    "neighbouring candidate crops overlap heavily "
                    "(union-crop sharing)",
        conditions=CALM_CLEAR, wind_speed_ms=0.0, static_texture=True,
        tags=("nominal", "dense_zones"))),
    register_scenario(ScenarioSpec(
        name="dense_zones_drift",
        description="slow survey drift: the same overlap-heavy zone "
                    "layout sliding under a 2 m/s wind — exercises "
                    "the union planner under motion and the drift_px "
                    "shift hint",
        conditions=CALM_CLEAR, wind_speed_ms=2.0,
        wind_direction_rad=0.0, static_texture=True,
        tags=("nominal", "dense_zones"))),
)

#: Failure-injection campaigns (scene + conditions + failure + wind).
FAILURE_SCENARIOS = (
    register_scenario(ScenarioSpec(
        name="nav_comm_loss_delivery",
        description="MEDI DELIVERY route; navigation+communication "
                    "loss mid-flight -> EL engaged (the paper's "
                    "canonical trigger)",
        conditions=DAY, failure=NAV_COMM_LOSS,
        tags=("failure", "el"))),
    register_scenario(ScenarioSpec(
        name="motor_failure_descent",
        description="propulsion loss early in the route -> immediate "
                    "flight termination, EL unavailable",
        conditions=DAY, failure=MOTOR_FAILURE_T3,
        tags=("failure",))),
    register_scenario(ScenarioSpec(
        name="sunset_nav_loss",
        description="nav+comm loss during a sunset flight: the "
                    "monitored EL pipeline must catch OOD "
                    "segmentation errors while the clock runs",
        conditions=SUNSET, failure=NAV_COMM_LOSS,
        tags=("failure", "el", "ood"))),
)
