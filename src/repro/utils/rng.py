"""Seeded random-number-generator helpers.

Every stochastic component in this library takes either an integer seed or
a :class:`numpy.random.Generator`.  Centralising the coercion here keeps
experiments reproducible: the same seed always produces the same scene,
the same rendered image, the same Monte-Carlo dropout masks and the same
mission outcomes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn", "derive_seed"]

# Arbitrary odd constant used to decorrelate derived seed streams.
_MIX = 0x9E3779B97F4A7C15


def ensure_rng(seed_or_rng=None) -> np.random.Generator:
    """Coerce ``seed_or_rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed_or_rng:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, or an
        existing :class:`numpy.random.Generator` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if seed_or_rng is None:
        return np.random.default_rng()
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if isinstance(seed_or_rng, (int, np.integer)):
        return np.random.default_rng(int(seed_or_rng))
    raise TypeError(
        "expected None, int or numpy.random.Generator, got "
        f"{type(seed_or_rng).__name__}"
    )


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    The children are seeded from the parent stream, so a component that
    spawns sub-generators remains reproducible while its children stay
    statistically independent.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(base_seed: int, *streams: int) -> int:
    """Derive a deterministic child seed from a base seed and stream ids.

    Used when a component needs a stable per-item seed (e.g. per-scene,
    per-window) without consuming draws from a shared generator.
    """
    h = (int(base_seed) * 2 + 1) & 0xFFFFFFFFFFFFFFFF
    for s in streams:
        h ^= (int(s) + _MIX + ((h << 6) & 0xFFFFFFFFFFFFFFFF) + (h >> 2))
        h &= 0xFFFFFFFFFFFFFFFF
    return h % (2**63 - 1)
