"""The runtime monitor: Eq. (2), ``mu + 3*sigma <= tau`` per road class.

Sec. V-B of the paper: EL is safety-critical, so misclassifying a busy
road as something else can be catastrophic.  The monitor therefore
*over-approximates* the road category: a pixel is accepted as safe only
when the upper edge of its 99.7% confidence interval — posterior mean
plus three posterior standard deviations, estimated by Monte-Carlo
dropout — stays below the threshold ``tau`` for **each of the three
UAVid classes that make up the busy-road category**.  With 8 classes
the paper picks ``tau = 0.125``, "to make sure that the road score is
lower than a random guess".

Following Fig. 2, the monitor runs on *sub-images* (the candidate zone
plus its drift buffer), not on the full frame — the full-frame Bayesian
pass would be prohibitively slow in an emergency (Sec. V-B timing,
reproduced in ``benchmarks/bench_sec5_timing.py``).

All Bayesian passes run on the segmenter's batched MC-dropout engine
(``T`` tiles per forward; see :mod:`repro.segmentation.bayesian`).
:meth:`RuntimeMonitor.check_zones` verifies several candidate zones in
one call: by default each zone keeps its own dropout seeding, so the
verdicts are bit-for-bit identical to ``N`` separate
:meth:`RuntimeMonitor.check_zone` calls; with ``joint=True`` the crops
are stride-padded to a common shape and verified in a single jointly
seeded ``(zones * T)``-batched pass — still seeded-reproducible, but on
a different (documented) RNG stream.  The joint pass is how the
decision module's speculative check-ahead
(``DecisionConfig.speculative_k > 1``, see :mod:`repro.core.decision`)
vets the top-k ranked candidates in one go.

Shared-context monitoring
-------------------------
Neighbouring candidate zones crop overlapping pixels (each crop is the
zone plus context margin plus stride padding), yet the joint pass above
still re-segments every crop from scratch.  ``check_zones(...,
shared=True)`` instead *plans union windows*: the pending crops are
greedily clustered into stride-aligned union windows
(:meth:`RuntimeMonitor.plan_union_windows`; a crop joins a window while
``union_area <= overlap_budget * sum(member_areas)``), **one** jointly
seeded Bayesian pass runs per union window
(:meth:`repro.segmentation.bayesian.BayesianSegmenter
.predict_distribution_ragged`), and each zone's per-pixel mean/std
moments are *sliced* out of its window's stacked moments — so K
overlapping zones cost one segmentation of their union instead of K
crops.  Moment slicing is exact per pixel, but the dropout masks are
drawn over window activations instead of per-crop activations, so
merged-window verdicts sit on a different (documented, seeded) RNG
stream.  A union window containing a **single** zone is that zone's
natural crop box untouched: a single-box shared call reproduces
:meth:`RuntimeMonitor.check_zone` bit for bit, and a merge-free plan
over one common crop shape reproduces the joint pass bit for bit —
sharing only ever changes results through *merged* windows (tested in
``tests/core/test_union_geometry.py``, certified system-level in
``tests/integration/test_shared_context_certification.py`` following
the PR 4 template).  ``REPRO_MONITOR_SHARED=1`` reroutes
every ``joint=True`` call through the shared-context planner — the
environment toggle ``scripts/check.sh`` uses to re-run the
monitor-touching suites under this mode.

Adaptive early-exit monitoring (sequential testing)
---------------------------------------------------
Every mode above pays all ``T`` MC samples per zone even when Eq. (2)
is statistically decided after a handful.  With
``MonitorConfig.adaptive`` (or ``REPRO_MONITOR_ADAPTIVE=1``) the
monitor instead samples in rounds of ``adaptive_check_every`` on the
segmenter's adaptive engine
(:meth:`repro.segmentation.bayesian.BayesianSegmenter
.predict_distribution_adaptive`) and stops a zone's pass as soon as a
sequential confidence bound proves that **no outcome of the remaining
samples can flip the verdict**: each pixel's remaining samples are
assumed inside a predictive interval ``mu_t -/+ adaptive_margin *
(sigma_t + floor)`` (clipped to ``[0, 1]``), and the exact extrema of
the completed ``mu_T + s * sigma_T`` over that box are evaluated by
vertex enumeration (the statistic is coordinate-wise convex, so the
box maximum sits on a vertex with ``k`` remaining samples at the top
edge and ``r - k`` at the bottom).  A zone exits early only when the
bound certifies the Eq. (2) / ``max_unsafe_fraction`` outcome *and*
the current ``t``-sample verdict already agrees with it; a shared
union window exits only when every member zone is decided.  Worst
case the pass runs all ``T`` samples, so the certified envelope is
one-sided.  Early exit truncates the mask stream (a stream change,
like shared mode), so adaptive mode is certified with the PR 5
package — ROI moment envelope plus Fig. 4 / safety-book / campaign
zero-flip gates (``tests/integration/test_adaptive_certification.py``)
— never by bit-pinning.  ``adaptive_margin=0`` disables the stopping
rule entirely and routes through the unchanged full-``T`` paths,
bit for bit.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.dataset.classes import BUSY_ROAD_CLASSES, NUM_CLASSES
from repro.segmentation.bayesian import BayesianSegmenter, PixelDistribution
from repro.utils.geometry import Box
from repro.utils.validation import check_image_chw, check_probability

__all__ = ["MonitorConfig", "ZoneVerdict", "UnionWindow",
           "RuntimeMonitor", "pad_span", "shared_context_default",
           "adaptive_default"]

#: Environment toggle: ``REPRO_MONITOR_SHARED=1`` makes every
#: ``joint=True`` monitoring path run through the shared-context
#: union-crop planner instead of the per-crop joint pass.
_SHARED_ENV = "REPRO_MONITOR_SHARED"

#: Environment toggle: ``REPRO_MONITOR_ADAPTIVE=1`` makes every
#: monitoring path run in adaptive early-exit mode (sequential
#: stopping rule; see the module docstring).
_ADAPTIVE_ENV = "REPRO_MONITOR_ADAPTIVE"

#: Additive floor (probability units) on the assumed predictive
#: interval half-width ``adaptive_margin * (sigma_t + floor)``: a
#: pixel whose first samples happen to agree exactly has a zero
#: sample-sigma, and a zero-width interval would certify on no
#: evidence.  0.02 keeps confidently-safe pixels decidable at the
#: paper's T=10 / tau=0.125 operating point while never assuming the
#: remaining samples are an exact replay.
_ADAPTIVE_WIDTH_FLOOR = 0.02


def shared_context_default() -> bool:
    """Whether ``joint`` monitoring defaults to shared-context mode.

    Read per call (not at import), so test suites and
    ``scripts/check.sh`` can flip the mode for a whole process without
    re-importing.
    """
    return os.environ.get(_SHARED_ENV, "") == "1"


def adaptive_default() -> bool:
    """Whether monitoring defaults to adaptive early-exit mode.

    Read per call, exactly like :func:`shared_context_default`, so
    ``scripts/check.sh`` can re-run whole suites under the adaptive
    engine without re-importing.  Composes with the shared toggle:
    both set means shared-context planning with per-window adaptive
    sampling.
    """
    return os.environ.get(_ADAPTIVE_ENV, "") == "1"


def pad_span(start: int, extent: int, limit: int, stride: int,
             want: int | None = None) -> tuple[int, int]:
    """Grow one axis span to a stride-aligned window inside the frame.

    The segmentation model needs spatial extents divisible by its
    output ``stride``; this is the single home of the alignment
    arithmetic used by every crop-window and union-window computation.
    Returns ``(lo, span)`` with ``span % stride == 0``, ``span >= 1``
    stride, and ``[lo, lo + span)`` inside ``[0, limit)``, grown
    symmetrically around ``[start, start + extent)`` where the frame
    allows.  ``want`` forces the exact span (already stride-aligned, at
    most ``limit``); spans that cannot fit are centred/trimmed exactly
    as the natural path trims them.
    """
    if limit < stride:
        raise ValueError(
            f"frame extent {limit} is smaller than the model's "
            f"output stride {stride}; the Bayesian monitor "
            "cannot run on this frame")
    if want is None:
        need = (-extent) % stride
    else:
        if want % stride or want > limit:
            raise ValueError(
                f"target span {want} must be stride-aligned "
                f"({stride}) and fit the frame extent {limit}")
        if extent >= want:
            # The grown crop exceeds the target span (the frame
            # itself was not stride-divisible, so every natural
            # span got trimmed below the grown extent): centre a
            # want-sized window on it, exactly as the natural
            # path effectively does when it trims.
            lo = max(0, start + (extent - want) // 2)
            lo = min(lo, limit - want)
            return lo, want
        need = want - extent
    lo = max(0, start - need // 2)
    hi = min(limit, lo + extent + need)
    lo = max(0, hi - (extent + need))
    span = hi - lo
    span -= span % stride
    # A degenerate zero-extent span (tiny crop in a tiny frame)
    # would produce an empty crop and crash the model; clamp to
    # one full stride instead.
    if span == 0:
        span = stride
        lo = min(lo, limit - stride)
    return lo, span


@dataclass(frozen=True)
class MonitorConfig:
    """Parameters of the conservative monitor rule.

    Attributes
    ----------
    tau:
        Per-pixel probability threshold of Eq. (2); a pixel is unsafe
        when the lower confidence bound of its busy-road probability
        exceeds ``tau``.  Default ``1/NUM_CLASSES`` (0.125), the
        paper's choice.
    sigma_multiplier:
        Width of the confidence bound in standard deviations — the
        "3 sigma" of Eq. (2).
    num_samples:
        MC-dropout forward passes per monitored zone (paper: 10).
    road_classes:
        Class indices pooled into the busy-road probability mass.
    max_unsafe_fraction:
        A zone is accepted iff its unsafe-pixel fraction is at or
        below this; 0.0 reproduces the paper's zero-tolerance rule.
    context_margin_px:
        Extra context (pixels, pre-stride-alignment) added around
        each zone crop before segmentation.
    overlap_budget:
        Shared-context union planning: a crop joins a union window
        only while ``union_area <= overlap_budget *
        sum(member_crop_areas)``.  The default of 1.0 means a merged
        window never segments more pixels than its member crops would
        separately — merging is a pure win (overlap pixels computed
        once, fewer forwards); raise it to trade extra pixels for
        fewer, larger passes.
    adaptive:
        Run every monitoring pass in adaptive early-exit mode: a
        sequential stopping rule halts a zone's MC pass as soon as a
        confidence bound proves no outcome of the remaining samples
        can flip the Eq. (2) / ``max_unsafe_fraction`` verdict (worst
        case: all ``num_samples``, so the certified envelope is
        one-sided).  ``REPRO_MONITOR_ADAPTIVE=1`` upgrades ``False``
        at call time, mirroring the shared-context toggle.  Early
        exit changes the mask stream, so adaptive results are
        moment-envelope certified, not bit-pinned; exits are further
        gated to ``t >= num_samples / 3`` so running estimates are
        never certified on a sliver of the budget.
    adaptive_check_every:
        Checkpoint cadence of the adaptive engine, in samples: the
        stopping rule is evaluated every this many samples per
        still-active zone.  ``>= num_samples`` degenerates to one
        full-budget round — bit-for-bit the non-adaptive stream.
    adaptive_margin:
        Width multiplier of the predictive interval the stopping rule
        assumes for each remaining sample (half-width
        ``adaptive_margin * (sigma_t + 0.02)``, clipped to [0, 1]).
        Larger is more conservative (later exits); ``0`` disables the
        stopping rule entirely and routes through the unchanged
        full-``num_samples`` paths bit for bit — the certified
        reference.
    """

    tau: float = 1.0 / NUM_CLASSES  # 0.125, the paper's choice
    sigma_multiplier: float = 3.0   # the "3 sigma" of Eq. (2)
    num_samples: int = 10           # MC-dropout passes (paper: 10)
    road_classes: tuple = BUSY_ROAD_CLASSES
    max_unsafe_fraction: float = 0.0  # zone accepted iff <= this
    context_margin_px: int = 2      # extra context around the crop
    #: Shared-context union planning: a crop joins a union window only
    #: while ``union_area <= overlap_budget * sum(member_crop_areas)``.
    #: The default of 1.0 means a merged window never segments more
    #: pixels than its member crops would separately — merging is a
    #: pure win (overlap pixels computed once, fewer forwards); raise
    #: it to trade extra pixels for fewer, larger passes.
    overlap_budget: float = 1.0
    #: Adaptive early-exit mode (sequential stopping rule); the
    #: ``REPRO_MONITOR_ADAPTIVE=1`` toggle upgrades ``False`` per call.
    adaptive: bool = False
    adaptive_check_every: int = 2   # stopping-rule cadence, in samples
    adaptive_margin: float = 1.0    # interval width; 0 disables exits

    def __post_init__(self):
        check_probability("tau", self.tau)
        check_probability("max_unsafe_fraction", self.max_unsafe_fraction)
        if self.sigma_multiplier < 0:
            raise ValueError("sigma_multiplier must be non-negative")
        if self.num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        if not self.road_classes:
            raise ValueError("road_classes must not be empty")
        if self.overlap_budget <= 0:
            raise ValueError("overlap_budget must be positive")
        if self.adaptive_check_every < 1:
            raise ValueError("adaptive_check_every must be >= 1")
        if self.adaptive_margin < 0:
            raise ValueError("adaptive_margin must be non-negative")


@dataclass(frozen=True)
class ZoneVerdict:
    """The monitor's verdict on one candidate zone."""

    accepted: bool
    unsafe_fraction: float
    unsafe_mask: np.ndarray = field(repr=False)
    box: Box
    num_samples: int
    distribution: PixelDistribution = field(repr=False)

    @property
    def num_unsafe_pixels(self) -> int:
        return int(self.unsafe_mask.sum())


@dataclass(frozen=True)
class UnionWindow:
    """One planned union window of a shared-context monitoring pass.

    ``box`` is the stride-aligned window in frame coordinates;
    ``members`` are indices into the planned zone list whose natural
    crop boxes the window contains (a single-member window *is* that
    zone's natural crop box).
    """

    box: Box
    members: tuple[int, ...]

    @property
    def is_single(self) -> bool:
        return len(self.members) == 1


class RuntimeMonitor:
    """Checks candidate landing zones with the Bayesian model."""

    def __init__(self, segmenter: BayesianSegmenter,
                 config: MonitorConfig | None = None):
        self.segmenter = segmenter
        self.config = config or MonitorConfig()
        #: Adaptive-mode observability, mirroring the episode engine's
        #: ``last_shared_stats``: accumulated across adaptive passes
        #: until :meth:`reset_adaptive_stats`.  One entry per
        #: *segmentation unit* (crop or union window):
        #: ``samples_histogram`` maps samples-consumed -> unit count,
        #: ``early_exits``/``fallbacks`` split units by whether the
        #: stopping rule fired before the full budget, and
        #: ``samples_used``/``samples_budget`` give the aggregate
        #: saving ratio.
        self.last_adaptive_stats = self._empty_adaptive_stats()

    # ------------------------------------------------------------------
    # Adaptive-mode plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _empty_adaptive_stats() -> dict:
        return {"windows": 0, "early_exits": 0, "fallbacks": 0,
                "samples_used": 0, "samples_budget": 0,
                "samples_histogram": {}}

    def reset_adaptive_stats(self) -> None:
        """Zero the accumulated :attr:`last_adaptive_stats`."""
        self.last_adaptive_stats = self._empty_adaptive_stats()

    def _record_adaptive(self, samples_used) -> None:
        budget = int(self.config.num_samples)
        stats = self.last_adaptive_stats
        for used in samples_used:
            used = int(used)
            stats["windows"] += 1
            stats["samples_used"] += used
            stats["samples_budget"] += budget
            hist = stats["samples_histogram"]
            hist[used] = hist.get(used, 0) + 1
            if used < budget:
                stats["early_exits"] += 1
            else:
                stats["fallbacks"] += 1

    def _adaptive_active(self) -> bool:
        """Whether monitoring passes run the adaptive engine.

        ``adaptive_margin == 0`` means the stopping rule can never
        fire, so the call routes through the unchanged full-``T``
        paths instead — keeping the disabled configuration bit-for-bit
        the certified reference stream.  Duck-typed segmenter
        substitutes without the adaptive engine (test doubles) also
        fall back to the exact paths.
        """
        cfg = self.config
        return (cfg.adaptive or adaptive_default()) \
            and cfg.adaptive_margin > 0 \
            and hasattr(self.segmenter, "predict_distribution_adaptive")

    def _zone_decided(self, distribution: PixelDistribution,
                      roi: Box) -> bool:
        """The sequential stopping rule for one zone (see module docs).

        ``distribution`` is the running ``t``-sample moment snapshot of
        the zone's crop (or union window); ``roi`` is the zone's
        region of interest within it.  Returns ``True`` when no
        completion of the remaining ``T - t`` samples — each assumed
        inside the clipped predictive interval ``mu -/+
        adaptive_margin * (sigma + floor)`` per pixel — can flip the
        Eq. (2) / ``max_unsafe_fraction`` verdict, *and* the current
        ``t``-sample verdict already matches that certified outcome.

        The completed statistic ``U = mu_T + s * sigma_T`` is, per
        pixel, coordinate-wise convex in each remaining sample (its
        variance is a nonnegative quadratic in each coordinate, so
        ``sqrt`` of it is convex), hence its box maximum sits on a
        vertex; by exchangeability the vertices reduce to ``k``
        remaining samples at the top edge and ``r - k`` at the bottom,
        enumerated exactly.  The minimum is bounded below by
        ``min(mu_T) + s * min(sigma_T)`` over the box.
        """
        cfg = self.config
        t = int(distribution.num_samples)
        budget = int(cfg.num_samples)
        r = budget - t
        if r <= 0:
            return True
        # Never certify on a sliver of evidence: the running sigma of
        # fewer than two samples is degenerate, and exits before a
        # third of the budget would let the moment snapshot drift far
        # from the full-T estimate (the certified moment envelope is
        # measured under this floor).
        if t < 2 or 3 * t < budget:
            return False
        road = [int(cls) for cls in cfg.road_classes]
        mu = roi.extract(distribution.mean)[road]
        sd = roi.extract(distribution.std)[road]
        if mu.size == 0:
            # Degenerate ROI: the verdict is the constant
            # unsafe_fraction = 1.0, which no sample can change.
            return True
        s = cfg.sigma_multiplier
        tau = cfg.tau
        limit = cfg.max_unsafe_fraction
        point_unsafe = (mu + s * sd > tau).any(axis=0)
        point_accept = float(point_unsafe.mean()) <= limit

        width = cfg.adaptive_margin * (sd + _ADAPTIVE_WIDTH_FLOOR)
        lo = np.clip(mu - width, 0.0, 1.0)
        hi = np.clip(mu + width, 0.0, 1.0)
        acc = mu * t                       # running sample sum
        acc_sq = (sd * sd + mu * mu) * t   # running sum of squares
        # Exact box maximum of U by vertex enumeration over k.
        ks = np.arange(r + 1, dtype=np.intp).reshape(-1, 1, 1, 1)
        mean_k = (acc + ks * hi + (r - ks) * lo) / budget
        sq_k = (acc_sq + ks * hi * hi + (r - ks) * lo * lo) / budget
        upper = mean_k + s * np.sqrt(
            np.maximum(sq_k - mean_k ** 2, 0.0))
        may_unsafe = (upper.max(axis=0) > tau).any(axis=0)
        if float(may_unsafe.mean()) <= limit:
            # Even if every not-provably-safe pixel ends unsafe the
            # zone is accepted; exit once the running verdict agrees.
            return point_accept
        # Lower bound on U: min mean plus s times a sigma lower bound.
        mean_lo = (acc + r * lo) / budget
        mean_hi = (acc + r * hi) / budget
        var_lb = np.maximum(
            (acc_sq + r * lo * lo) / budget - mean_hi ** 2, 0.0)
        must_unsafe = (mean_lo + s * np.sqrt(var_lb) > tau).any(axis=0)
        if float(must_unsafe.mean()) > limit:
            # Even if every uncertain pixel ends safe the zone is
            # rejected; exit once the running verdict agrees.
            return not point_accept
        return False

    # ------------------------------------------------------------------
    def unsafe_pixels(self, distribution: PixelDistribution) -> np.ndarray:
        """Apply Eq. (2) to a pixel distribution.

        A pixel is *unsafe* when ``mu_k + s * sigma_k > tau`` for any
        busy-road class ``k`` — the complement of the paper's safety
        condition, which requires the inequality to hold "for the three
        UAVid categories that make up the busy road category".
        """
        return self.unsafe_from_upper(
            distribution.upper_confidence(self.config.sigma_multiplier))

    def unsafe_from_upper(self, upper: np.ndarray) -> np.ndarray:
        """Eq. (2)'s threshold rule on upper-confidence scores.

        ``upper`` is ``(..., C, H, W)`` — a single crop or a stack of
        crops (the episode engine's joint pass evaluates the rule over
        all stacked crops at once).  The single home of the rule: any
        change here reaches every monitoring path.
        """
        cfg = self.config
        unsafe = np.zeros(upper.shape[:-3] + upper.shape[-2:],
                          dtype=bool)
        for cls in cfg.road_classes:
            unsafe |= upper[..., int(cls), :, :] > cfg.tau
        return unsafe

    def _model_stride(self) -> int:
        return int(getattr(
            getattr(self.segmenter.model, "config", None),
            "output_stride", 1))

    def _padded_spans(self, image: np.ndarray, box: Box,
                      target: tuple[int, int] | None = None
                      ) -> tuple[Box, Box]:
        """Stride-aligned crop window for ``box`` — geometry only.

        The segmentation model needs spatial sizes divisible by its
        output stride; the crop window is grown symmetrically (within
        frame bounds) until that holds.  Returns the crop box and the
        region of interest *within the crop* corresponding to the
        original box, without extracting any pixels.

        ``target`` forces the crop to exact ``(height, width)`` spans
        (already stride-aligned, at most the frame size) — used by
        :meth:`check_zones` with ``joint=True`` to bring several crops
        to a common shape for one stacked Bayesian pass.
        """
        cfg = self.config
        h, w = image.shape[1:]
        grown = box.expand(cfg.context_margin_px).clip_to(h, w)
        stride = self._model_stride()

        th, tw = target if target is not None else (None, None)
        r0, rh = pad_span(grown.row, grown.height, h, stride, th)
        c0, cw = pad_span(grown.col, grown.width, w, stride, tw)
        crop_box = Box(r0, c0, rh, cw)
        roi = Box(box.row - r0, box.col - c0, box.height, box.width)
        roi = roi.clip_to(rh, cw)
        return crop_box, roi

    def _stride_padded_crop(self, image: np.ndarray, box: Box,
                            target: tuple[int, int] | None = None
                            ) -> tuple[np.ndarray, Box]:
        """:meth:`_padded_spans` plus the pixel extraction."""
        crop_box, roi = self._padded_spans(image, box, target)
        return crop_box.extract(image), roi

    # ------------------------------------------------------------------
    # Shared-context union-crop planning
    # ------------------------------------------------------------------
    def _aligned_union(self, a: Box, b: Box, h: int, w: int) -> Box:
        """Stride-aligned bounding window of two crop boxes, in-frame."""
        stride = self._model_stride()
        row = min(a.row, b.row)
        col = min(a.col, b.col)
        height = max(a.bottom, b.bottom) - row
        width = max(a.right, b.right) - col
        r0, rh = pad_span(row, height, h, stride)
        c0, cw = pad_span(col, width, w, stride)
        return Box(r0, c0, rh, cw)

    def plan_union_windows(self, image_shape: tuple[int, int],
                           crop_boxes: list[Box]) -> list[UnionWindow]:
        """Cluster natural crop boxes into stride-aligned union windows.

        Greedy merge in input (rank) order: each crop joins the first
        existing window whose stride-aligned union with it satisfies
        ``union_area <= overlap_budget * sum(member_crop_areas)`` and
        still contains every member crop (a union near the frame edge
        of a non-stride-divisible frame can be forced to trim below its
        bounding box — such a merge is rejected rather than letting a
        member stick out).  Unmerged crops become single-member windows
        that are *exactly* their natural crop box, which is what makes
        the single-zone shared pass bit-for-bit equal to the per-zone
        pass.  Geometry only — no pixels are touched.
        """
        h, w = int(image_shape[0]), int(image_shape[1])
        budget = self.config.overlap_budget
        # Mutable accumulation: [window_box, member_ids, member_area_sum]
        windows: list[list] = []
        for idx, crop in enumerate(crop_boxes):
            placed = False
            for wnd in windows:
                area_sum = wnd[2] + crop.area
                merged = self._aligned_union(wnd[0], crop, h, w)
                if merged.area > budget * area_sum:
                    continue
                if not (merged.contains_box(wnd[0])
                        and merged.contains_box(crop)):
                    continue
                wnd[0] = merged
                wnd[1].append(idx)
                wnd[2] = area_sum
                placed = True
                break
            if not placed:
                windows.append([crop, [idx], crop.area])
        return [UnionWindow(box=box, members=tuple(members))
                for box, members, _ in windows]

    def _window_zone_rois(self, windows: list[UnionWindow],
                          spans) -> list[list[Box]]:
        """Per-window member-zone ROI boxes in *window* coordinates.

        ``spans[idx]`` is the ``(crop_box, roi)`` pair of zone ``idx``
        (ROI relative to its natural crop); composing with the
        window offset gives the box :meth:`_zone_decided` needs to
        read a zone out of its window's moment snapshot.
        """
        rois: list[list[Box]] = []
        for wnd in windows:
            per_window = []
            for idx in wnd.members:
                crop_box, roi = spans[idx]
                per_window.append(
                    Box(crop_box.row - wnd.box.row + roi.row,
                        crop_box.col - wnd.box.col + roi.col,
                        roi.height, roi.width))
            rois.append(per_window)
        return rois

    def _adaptive_window_pass(self, crops, member_rois: list[list[Box]],
                              max_batch: int | None, bases=None
                              ) -> list[PixelDistribution]:
        """One adaptive pass over windows, each gating on its members.

        A window drops out of the remaining sampling rounds only when
        :meth:`_zone_decided` holds for **every** member zone ROI in
        ``member_rois[i]`` — the engine-level contract for shared
        union windows.  Records :attr:`last_adaptive_stats`; also the
        entry point the episode engine's joint/shared waves use
        (``bases`` carries reused deterministic-stem activations).
        """
        cfg = self.config
        distributions, used = \
            self.segmenter.predict_distribution_adaptive(
                crops, num_samples=cfg.num_samples,
                max_batch=max_batch,
                check_every=cfg.adaptive_check_every,
                decide=lambda i, snap: all(
                    self._zone_decided(snap, roi)
                    for roi in member_rois[i]),
                bases=bases)
        self._record_adaptive(used)
        return distributions

    def _check_zones_shared(self, image: np.ndarray, boxes: list[Box],
                            max_batch: int | None) -> list[ZoneVerdict]:
        """The shared-context joint pass (see the module docstring).

        Natural crop spans are planned into union windows; one jointly
        seeded ragged Bayesian pass covers all windows (mask stream:
        window-major, sample-minor, in planning order); each zone's
        mean/std moments and Eq. (2) mask are sliced out of its
        window's per-pixel maps.
        """
        from repro.segmentation.bayesian import PixelDistribution

        spans = [self._padded_spans(image, box) for box in boxes]
        windows = self.plan_union_windows(
            image.shape[1:], [crop_box for crop_box, _ in spans])
        crops = [wnd.box.extract(image).astype(np.float32)
                 for wnd in windows]
        if self._adaptive_active():
            distributions = self._adaptive_window_pass(
                crops, self._window_zone_rois(windows, spans),
                max_batch)
        else:
            distributions = self.segmenter.predict_distribution_ragged(
                crops, num_samples=self.config.num_samples,
                max_batch=max_batch)
        verdicts: list[ZoneVerdict | None] = [None] * len(boxes)
        sig = self.config.sigma_multiplier
        for wnd, dist in zip(windows, distributions):
            unsafe = self.unsafe_from_upper(dist.upper_confidence(sig))
            for idx in wnd.members:
                crop_box, roi = spans[idx]
                rel = Box(crop_box.row - wnd.box.row,
                          crop_box.col - wnd.box.col,
                          crop_box.height, crop_box.width)
                sliced = PixelDistribution(
                    mean=rel.extract(dist.mean),
                    std=rel.extract(dist.std),
                    num_samples=dist.num_samples)
                verdicts[idx] = self._verdict_from_unsafe(
                    rel.extract(unsafe), sliced, boxes[idx], roi)
        return verdicts

    def _verdict(self, distribution: PixelDistribution, box: Box,
                 roi: Box) -> ZoneVerdict:
        """Turn a crop distribution into the zone's accept/reject."""
        return self._verdict_from_unsafe(
            self.unsafe_pixels(distribution), distribution, box, roi)

    def _verdict_from_unsafe(self, unsafe_crop: np.ndarray,
                             distribution: PixelDistribution, box: Box,
                             roi: Box) -> ZoneVerdict:
        """Accept/reject from a precomputed Eq. (2) crop mask.

        The single home of the acceptance condition; the episode
        engine's joint pass calls this with masks it evaluated over a
        whole crop stack at once.
        """
        unsafe_zone = roi.extract(unsafe_crop)
        fraction = float(unsafe_zone.mean()) if unsafe_zone.size else 1.0
        accepted = fraction <= self.config.max_unsafe_fraction
        return ZoneVerdict(accepted=accepted, unsafe_fraction=fraction,
                           unsafe_mask=unsafe_zone, box=box,
                           num_samples=distribution.num_samples,
                           distribution=distribution)

    def check_zone(self, image: np.ndarray, box: Box,
                   max_batch: int | None = None) -> ZoneVerdict:
        """Run the Bayesian pass on the zone crop and return a verdict.

        This is the "Monitor" box of Fig. 2: image cropping -> Bayesian
        SS model -> mean and std segmentations -> zone confirmation.
        The pass runs on the batched engine (all ``T`` MC samples in
        chunked batched forwards; ``max_batch`` overrides the
        segmenter's chunk size).
        """
        check_image_chw("image", image)
        if box.is_empty():
            raise ValueError("cannot check an empty zone box")
        crop, roi = self._stride_padded_crop(image, box)
        cfg = self.config
        if self._adaptive_active():
            # Single-crop adaptive rounds consume the exact sequential
            # mask stream, so a pass that never exits early is
            # bit-for-bit the non-adaptive call.
            distributions, used = \
                self.segmenter.predict_distribution_adaptive(
                    [crop], num_samples=cfg.num_samples,
                    max_batch=max_batch,
                    check_every=cfg.adaptive_check_every,
                    decide=lambda _i, snap: self._zone_decided(
                        snap, roi))
            self._record_adaptive(used)
            return self._verdict(distributions[0], box, roi)
        distribution = self.segmenter.predict_distribution(
            crop, num_samples=cfg.num_samples,
            max_batch=max_batch)
        return self._verdict(distribution, box, roi)

    def check_zones(self, image: np.ndarray, boxes,
                    joint: bool = False,
                    shared: bool | None = None,
                    max_batch: int | None = None) -> list[ZoneVerdict]:
        """Verify several candidate zones in one batched call.

        With ``joint=False`` (default) every zone keeps its own dropout
        seeding, so the verdicts are bit-for-bit identical to calling
        :meth:`check_zone` once per box in order — each zone still gets
        the ``T``-fold batched forward.  With ``joint=True`` all crops
        are stride-padded to a common shape (growing within the frame,
        so every crop still shows real context) and verified in a
        single jointly seeded ``(len(boxes) * T)``-batched Bayesian
        pass — seeded and reproducible, but its mask stream — and the
        extra context smaller crops gain — mean the verdicts can differ
        marginally from per-zone calls.  Exactly identical crop windows
        inside a joint pass (duplicate candidate boxes, or distinct
        boxes whose padded windows coincide) are segmented once and
        share one distribution: identical pixels get identical moments
        (no numerical approximation, and re-checking the same pixels
        is deliberately idempotent), though duplicates therefore share
        one MC estimate rather than drawing independent ones, and when
        duplicates are present the joint mask stream is consumed at
        the deduplicated positions — the joint stream is documented
        per release, never a cross-version contract.

        ``shared=True`` (implies joint) runs the shared-context
        union-crop planner instead: overlapping crops are merged into
        stride-aligned union windows, one jointly seeded pass per
        window, per-zone moments sliced from the window stack (see the
        module docstring).  ``shared=None`` (default) resolves from the
        ``REPRO_MONITOR_SHARED`` environment toggle for ``joint=True``
        calls and stays off otherwise.
        """
        check_image_chw("image", image)
        boxes = list(boxes)
        for box in boxes:
            if box.is_empty():
                raise ValueError("cannot check an empty zone box")
        if not boxes:
            return []
        if shared is None:
            shared = joint and shared_context_default()
        if shared:
            return self._check_zones_shared(image, boxes, max_batch)
        if not joint:
            return [self.check_zone(image, box, max_batch=max_batch)
                    for box in boxes]

        # First pass computes only the natural spans (no pixel copies);
        # the single extraction happens at the common target shape.
        spans = [self._padded_spans(image, box) for box in boxes]
        th = max(crop_box.height for crop_box, _ in spans)
        tw = max(crop_box.width for crop_box, _ in spans)
        targets = [self._padded_spans(image, box, target=(th, tw))
                   for box in boxes]
        # Identical (crop_box, target) windows crop identical pixels;
        # segment each distinct window once (first-occurrence order
        # keeps the pass seeded-deterministic) and fan the shared
        # distribution back out to every zone that uses the window.
        order: dict[Box, int] = {}
        for crop_box, _ in targets:
            order.setdefault(crop_box, len(order))
        crops = [crop_box.extract(image).astype(np.float32)
                 for crop_box in order]
        cfg = self.config
        if self._adaptive_active():
            # A deduplicated window is decided only when *every* zone
            # reading its distribution is decided.
            users: list[list[Box]] = [[] for _ in order]
            for _box, (crop_box, roi) in zip(boxes, targets):
                users[order[crop_box]].append(roi)
            distributions, used = \
                self.segmenter.predict_distribution_adaptive(
                    crops, num_samples=cfg.num_samples,
                    max_batch=max_batch,
                    check_every=cfg.adaptive_check_every,
                    decide=lambda i, snap: all(
                        self._zone_decided(snap, roi)
                        for roi in users[i]))
            self._record_adaptive(used)
        else:
            distributions = self.segmenter.predict_distribution_stack(
                np.stack(crops), num_samples=cfg.num_samples,
                max_batch=max_batch)
        return [self._verdict(distributions[order[crop_box]], box, roi)
                for box, (crop_box, roi) in zip(boxes, targets)]

    def full_frame_unsafe(self, image: np.ndarray) -> np.ndarray:
        """Eq. (2) evaluated over the whole frame.

        Used by the Fig. 4 evaluation (how much of the road area the
        monitor flags) and by the timing benchmark — *not* by the
        pipeline, which only monitors candidate crops.
        """
        check_image_chw("image", image)
        h, w = image.shape[1:]
        crop, roi = self._stride_padded_crop(image, Box(0, 0, h, w))
        distribution = self.segmenter.predict_distribution(
            crop, num_samples=self.config.num_samples)
        return roi.extract(self.unsafe_pixels(distribution))
