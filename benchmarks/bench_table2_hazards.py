"""TABLE-II bench: the ground-risk outcome table, plus measured frequencies.

Paper artefact: Table II — outcomes R1..R5 with severities 5,4,3,3,2.
Expectation: exact rows; additionally, a Monte-Carlo mission campaign
(with blind flight termination, i.e. no EL) must actually *realise*
outcomes from this table, with R1 present — the hazard the paper's EL
exists to mitigate.
"""

from dataclasses import replace

from repro.eval.reporting import format_table, format_title
from repro.scenarios import campaign_inputs, get_scenario
from repro.sora import OUTCOME_TABLE, Severity
from repro.uav import run_campaign

EXPECTED_SEVERITIES = {"R1": 5, "R2": 4, "R3": 3, "R4": 3, "R5": 2}


def test_table2_rows_exact(benchmark, emit):
    rows = benchmark(lambda: [
        [spec.outcome.value, spec.description, int(spec.severity)]
        for spec in OUTCOME_TABLE])

    emit("\n" + format_title("TABLE-II: Main ground risks (paper Table II)"))
    emit(format_table(["id", "hazardous outcome", "severity"], rows))

    assert {row[0]: row[2] for row in rows} == EXPECTED_SEVERITIES


def test_table2_outcomes_realised_in_simulation(benchmark, emit):
    """Outcome frequencies measured over blind-FT missions."""
    spec = get_scenario("nav_comm_loss_delivery")
    spec = spec.with_failure(replace(spec.failure, time_s=3.0,
                                     stagger_cycle=8))
    scenes, failures, config = campaign_inputs(spec, 24,
                                               scene_seed_base=3000)

    def campaign():
        return run_campaign(scenes, failures, config=config,
                            el_policy=None, seed=11)

    stats = benchmark.pedantic(campaign, rounds=1, iterations=1)

    rows = [[outcome, count]
            for outcome, count in sorted(stats.outcome_counts.items())]
    rows.append(["none (severity 1)",
                 stats.severity_counts.get(Severity.NEGLIGIBLE, 0)])
    emit(format_table(
        ["outcome", "missions"],
        rows, title="\nmeasured outcome frequencies "
                    "(24 blind-FT missions, no EL):"))

    assert stats.num_missions == 24
    # Blind termination over a city must produce at least one Table-II
    # outcome; every realised outcome must come from the table.
    table_ids = {spec.outcome.value for spec in OUTCOME_TABLE}
    assert stats.outcome_counts, "no hazardous outcome realised"
    assert set(stats.outcome_counts) <= table_ids
