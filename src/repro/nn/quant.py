"""Int8 quantisation for the inference conv engine: scales, casts, error model.

The ``"int8"`` conv engine mode (:func:`repro.nn.functional.conv2d_infer`)
approximates the float32 convolution

    y[n, c] = sum_k x[n, k] * w[c, k] + b[c]

by per-channel symmetric weight quantisation and dynamic per-sample
activation quantisation:

    w[c, k]  ~=  s_w[c] * q_w[c, k]      q_w in [-127, 127]   (static, cached)
    x[n, k]  ~=  s_a[n] * q_a[n, k]      q_a in [-127, 127]   (per forward)

    y_hat[n, c] = s_a[n] * s_w[c] * sum_k q_a[n, k] * q_w[c, k] + b[c]

The scales are *symmetric absmax* scales (``s = absmax / 127``; the code
``-128`` is never produced), so zero maps to zero exactly and the dequant
step is a single per-``(sample, channel)`` multiply — the same
scale/shift structure the fused eval batch-norm already applies, which is
what lets the engine fold dequantisation and bias into one in-place pass
over the GEMM output.

Exact int32 accumulation, carried in float32
--------------------------------------------
This numpy build has no BLAS integer GEMM — a literal int32 ``matmul``
runs ~50x slower than the float32 BLAS path on the CI host.  The engine
therefore performs the integer accumulation *inside the float32 GEMM*,
over operands that hold exactly the integer codes: every elementwise
product of two codes is at most ``127^2``, and every partial sum of
``K = C_in*kh*kw`` such products stays below ``K * 127^2``.  As long as

    K * 127^2  <  2^24     (float32 integer-exactness threshold)

every intermediate is an exactly representable float32 integer and the
accumulation is *bit-for-bit the int32 result*, independent of GEMM
blocking or summation order.  Geometries beyond that depth
(``K > 1040``) are ineligible and fall back to the blocked engine.  This
is why the int8 engine's batched == sequential contract is exact *by
construction* — reassociation cannot change an exact integer sum —
rather than certified-by-tolerance like winograd's.

Quantisation error model
------------------------
Writing ``x = s_a q_a + e_a`` and ``w = s_w q_w + e_w`` with rounding
errors ``|e_a| <= s_a * r`` and ``|e_w| <= s_w * r`` (``r`` barely above
1/2: round-to-nearest contributes 1/2, the float32 scale multiply adds a
few ulp — :data:`ROUND_SLACK` = 0.51 covers both), the output error of
one conv reduction of depth ``K`` is

    |y - y_hat| = |sum_k (x w - s_a s_w q_a q_w)|
                = |sum_k (s_a q_a e_w + s_w q_w e_a + e_a e_w)|
               <=  K * s_a * s_w * (2 * 127 * r + r^2)      (~ K * s * 130)

plus float32 rounding of the final dequant multiply and bias add, which
is relative to the output and covered by a ``1e-5 * |y|`` term.  This
*a-priori* bound is what :func:`error_bound` returns and what
``tests/nn/test_int8_equivalence.py`` asserts elementwise; the empirical
max-norm deviation at this repo's layer shapes sits near ``1e-2``
relative to the output scale (recorded per layer by
``benchmarks/bench_conv_engine.py``), certified with headroom by the
pinned envelope in the same test module.

Everything here is scale computation on weights/activations — the hot
quantise/GEMM/dequant passes live in :mod:`repro.nn.functional`.  Weight
scales are computed in float64 and cast once (the same off-hot-path
full-precision island as the winograd filter transform); the canonical
``np.int8`` code arrays are the deliberate, documented exception to the
fp32 firewall (see ``INT8_ISLANDS`` in
:mod:`repro.analysis.checkers.fp32`).
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

__all__ = [
    "QMAX",
    "ROUND_SLACK",
    "QuantizedWeight",
    "saturating_int8",
    "weight_scales",
    "quantize_weight",
    "activation_scales",
    "quantize_activation",
    "error_bound",
]

#: Largest magnitude a symmetric int8 code takes: codes live in
#: ``[-127, 127]`` (the asymmetric ``-128`` is never produced, so
#: negating a quantised tensor is always representable).
QMAX = 127.0

#: Per-element rounding slack of one quantisation, in units of the
#: scale: 1/2 from round-to-nearest plus a few float32 ulp from the
#: scale multiply (see the module error model).
ROUND_SLACK = 0.51


class QuantizedWeight(NamedTuple):
    """A per-channel symmetric int8 quantisation of a conv weight.

    ``q`` holds the canonical int8 codes; ``gemm`` holds *exactly the
    same integer values* widened to float32 — the operand the engine
    feeds to BLAS so the int32 accumulation runs exactly (module
    docstring).  Both are read-only views of one quantisation:
    ``gemm == q`` elementwise by construction.
    """

    q: np.ndarray        #: ``(C_out, C_in, kh, kw)`` int8 codes.
    gemm: np.ndarray     #: same shape/values, float32, BLAS operand.
    scale: np.ndarray    #: ``(C_out,)`` float32 per-channel scales.


def saturating_int8(values: np.ndarray) -> np.ndarray:
    """Round to nearest and saturate to the symmetric int8 grid.

    The clip runs *before* the integer cast — a plain ``astype(np.int8)``
    of an out-of-range float wraps modulo 256, which is exactly the
    silent-corruption mode a saturating cast exists to prevent.
    """
    return np.clip(np.rint(values), -QMAX, QMAX).astype(np.int8)


def weight_scales(weight: np.ndarray) -> np.ndarray:
    """Per-output-channel symmetric absmax scales, float64.

    All-zero channels get scale 1.0 (their codes are all zero either
    way; a zero scale would poison the dequant multiply with NaN).
    """
    c_out = weight.shape[0]
    absmax = np.abs(weight.astype(np.float64).reshape(c_out, -1)).max(axis=1)
    return np.where(absmax > 0.0, absmax / QMAX, 1.0)


def quantize_weight(weight: np.ndarray) -> QuantizedWeight:
    """Quantise a ``(C_out, C_in, kh, kw)`` conv weight per channel.

    Off the hot path (cached per weight array by the engine): scales and
    codes are computed in float64 and cast once, like the winograd
    filter transform.  Returned arrays are read-only — they are shared
    through the cache.
    """
    s64 = weight_scales(weight)
    codes = weight.astype(np.float64)
    codes /= s64[:, None, None, None]
    q = saturating_int8(codes)
    gemm = q.astype(np.float32)
    scale = s64.astype(np.float32)
    for arr in (q, gemm, scale):
        arr.setflags(write=False)
    return QuantizedWeight(q=q, gemm=gemm, scale=scale)


def activation_scales(x: np.ndarray) -> np.ndarray:
    """Per-sample symmetric absmax scales of an NCHW batch, float32.

    Per *sample* — never per batch — so a ``T``-tiled batched forward
    quantises each sample exactly as a sequential forward would: the
    engine's batched == sequential contract depends on this granularity.
    """
    n = x.shape[0]
    flat = x.reshape(n, -1)
    amax = np.maximum(flat.max(axis=1), -flat.min(axis=1))
    return np.where(amax > 0, amax * np.float32(1.0 / QMAX),
                    np.float32(1.0))


def quantize_activation(x: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Reference dynamic activation quantisation: ``(codes, scales)``.

    Returns int8 codes and per-sample float32 scales.  The engine's hot
    path computes the same values into a pooled float32 scratch buffer
    (:func:`repro.nn.functional._conv2d_infer_int8`); this reference
    form exists for tests and for inspecting a quantisation.
    """
    s = activation_scales(x)
    inv = np.float32(1.0) / s
    codes = saturating_int8(x * inv[:, None, None, None])
    return codes, s


def error_bound(k: int, act_scale: np.ndarray, weight_scale: np.ndarray,
                y_ref: np.ndarray) -> np.ndarray:
    """A-priori elementwise bound on ``|y_int8 - y_fp32|``.

    ``k`` is the reduction depth ``C_in*kh*kw``; ``act_scale`` is
    ``(N,)``, ``weight_scale`` is ``(C_out,)``, ``y_ref`` the float32
    reference output the bound is anchored to (its magnitude carries
    the final-rounding term).  Derivation in the module docstring.
    """
    per_pair = 2.0 * QMAX * ROUND_SLACK + ROUND_SLACK * ROUND_SLACK
    grid = (act_scale.astype(np.float64)[:, None]
            * weight_scale.astype(np.float64)[None, :])
    bound = grid * (float(k) * per_pair)
    return bound[:, :, None, None] + 1e-5 * np.abs(
        y_ref.astype(np.float64))
