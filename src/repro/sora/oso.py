"""Operational Safety Objectives (OSO) allocation — SORA v2.0 Table 6.

Each SAIL requests the 24 OSOs at a robustness level: O (optional),
L (low), M (medium) or H (high).  The paper's point in Sec. III-D is
that SAIL V "requests all the OSOs and most of them at a high level of
integrity and assurance", which makes certification prohibitively
expensive — the quantitative shape reproduced by
:func:`oso_level_counts`.

The table below is transcribed from SORA v2.0 Table 6.  (Transcription
note: the reproduction's claims only rely on the *aggregate* hardness
profile per SAIL, which is robust to single-cell deviations.)
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.sora.sail import SAIL

__all__ = ["OsoLevel", "Oso", "OSO_TABLE", "oso_requirements", "oso_level_counts"]


class OsoLevel(IntEnum):
    """Requested robustness of one OSO at a given SAIL."""

    OPTIONAL = 0
    LOW = 1
    MEDIUM = 2
    HIGH = 3

    @property
    def letter(self) -> str:
        return {0: "O", 1: "L", 2: "M", 3: "H"}[int(self)]


@dataclass(frozen=True)
class Oso:
    """One Operational Safety Objective with its per-SAIL levels."""

    number: int
    description: str
    levels: tuple[OsoLevel, ...]  # indexed by SAIL I..VI

    def __post_init__(self):
        if len(self.levels) != 6:
            raise ValueError(
                f"OSO #{self.number} needs 6 levels, got {len(self.levels)}")

    def level_for(self, sail: SAIL) -> OsoLevel:
        return self.levels[int(sail) - 1]


_O = OsoLevel.OPTIONAL
_L = OsoLevel.LOW
_M = OsoLevel.MEDIUM
_H = OsoLevel.HIGH

#: SORA v2.0 Table 6 (levels for SAIL I..VI).
OSO_TABLE: tuple[Oso, ...] = (
    Oso(1, "Ensure the operator is competent and/or proven",
        (_O, _L, _M, _H, _H, _H)),
    Oso(2, "UAS manufactured by competent and/or proven entity",
        (_O, _O, _L, _M, _H, _H)),
    Oso(3, "UAS maintained by competent and/or proven entity",
        (_L, _L, _M, _M, _H, _H)),
    Oso(4, "UAS developed to authority recognized design standards",
        (_O, _O, _O, _L, _M, _H)),
    Oso(5, "UAS is designed considering system safety and reliability",
        (_O, _O, _L, _M, _H, _H)),
    Oso(6, "C3 link performance is appropriate for the operation",
        (_O, _L, _L, _M, _H, _H)),
    Oso(7, "Inspection of the UAS (product inspection) to ensure "
           "consistency with the ConOps",
        (_L, _L, _M, _M, _H, _H)),
    Oso(8, "Operational procedures are defined, validated and adhered "
           "to (technical issue with the UAS)",
        (_L, _M, _H, _H, _H, _H)),
    Oso(9, "Remote crew trained and current and able to control the "
           "abnormal situation (technical issue with the UAS)",
        (_L, _L, _M, _M, _H, _H)),
    Oso(10, "Safe recovery from a technical issue",
        (_L, _L, _M, _M, _H, _H)),
    Oso(11, "Procedures are in-place to handle the deterioration of "
            "external systems supporting UAS operation",
        (_L, _M, _H, _H, _H, _H)),
    Oso(12, "The UAS is designed to manage the deterioration of "
            "external systems supporting UAS operation",
        (_L, _L, _M, _M, _H, _H)),
    Oso(13, "External services supporting UAS operations are adequate "
            "to the operation",
        (_L, _L, _M, _H, _H, _H)),
    Oso(14, "Operational procedures are defined, validated and adhered "
            "to (human error)",
        (_L, _M, _H, _H, _H, _H)),
    Oso(15, "Remote crew trained and current and able to control the "
            "abnormal situation (human error)",
        (_L, _L, _M, _M, _H, _H)),
    Oso(16, "Multi crew coordination",
        (_L, _L, _M, _M, _H, _H)),
    Oso(17, "Remote crew is fit to operate",
        (_L, _L, _M, _M, _H, _H)),
    Oso(18, "Automatic protection of the flight envelope from human "
            "error",
        (_O, _O, _L, _M, _H, _H)),
    Oso(19, "Safe recovery from human error",
        (_O, _O, _L, _M, _M, _H)),
    Oso(20, "A human factors evaluation has been performed and the HMI "
            "found appropriate for the mission",
        (_O, _L, _L, _M, _M, _H)),
    Oso(21, "Operational procedures are defined, validated and adhered "
            "to (adverse operating conditions)",
        (_L, _M, _H, _H, _H, _H)),
    Oso(22, "The remote crew is trained to identify critical "
            "environmental conditions and to avoid them",
        (_L, _L, _M, _M, _M, _H)),
    Oso(23, "Environmental conditions for safe operations defined, "
            "measurable and adhered to",
        (_L, _L, _M, _M, _H, _H)),
    Oso(24, "UAS designed and qualified for adverse environmental "
            "conditions",
        (_O, _O, _M, _H, _H, _H)),
)


def oso_requirements(sail: SAIL) -> dict[int, OsoLevel]:
    """Requested level of every OSO at the given SAIL."""
    return {oso.number: oso.level_for(sail) for oso in OSO_TABLE}


def oso_level_counts(sail: SAIL) -> dict[OsoLevel, int]:
    """How many OSOs are requested at each level for a SAIL.

    Reproduces the paper's qualitative claim: at SAIL V, no OSO is
    optional and most are High.
    """
    counts = {level: 0 for level in OsoLevel}
    for oso in OSO_TABLE:
        counts[oso.level_for(sail)] += 1
    return counts
