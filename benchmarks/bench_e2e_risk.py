"""EXT-E2E bench: end-to-end ground risk with and without EL.

Extension quantifying the paper's integrity argument: Monte-Carlo MEDI
DELIVERY missions with navigation+communication loss, comparing

* **FT only** — blind parachute descent (no EL capability),
* **EL + monitor** — the full Fig. 2 pipeline as the landing policy.

Expectation (shape): EL reduces the probability of severe outcomes
(severity >= 4, i.e. potential fatalities) relative to blind flight
termination — the risk reduction that justifies EL as an active-M1
mitigation in Table III.
"""

from dataclasses import replace

from repro.eval.reporting import format_table, format_title
from repro.scenarios import campaign_inputs, get_scenario
from repro.sora import Severity
from repro.uav import run_campaign

NUM_MISSIONS = 24

#: Registry scenario supplying scenes, failure schedule and conditions;
#: the failure onset is re-staggered to this bench's published pattern.
SCENARIO = "nav_comm_loss_delivery"


def test_e2e_ground_risk(benchmark, system, emit):
    spec = get_scenario(SCENARIO).with_camera((96, 128), 1.0)
    spec = spec.with_failure(replace(spec.failure, time_s=3.0,
                                     stagger_cycle=9))
    scenes, failures, config = campaign_inputs(spec, NUM_MISSIONS,
                                               scene_seed_base=5000)
    policy = system.make_pipeline(monitor_enabled=True,
                                  rng=0).as_mission_policy()

    def campaigns():
        blind = run_campaign(scenes, failures, config=config,
                             el_policy=None, seed=9)
        monitored = run_campaign(scenes, failures, config=config,
                                 el_policy=policy, seed=9)
        return blind, monitored

    blind, monitored = benchmark.pedantic(campaigns, rounds=1,
                                          iterations=1)

    emit("\n" + format_title(
        f"EXT-E2E: ground risk over {NUM_MISSIONS} missions with "
        "nav+comm loss"))
    rows = []
    for name, stats in (("FT only (no EL)", blind),
                        ("EL + monitor (Fig. 2)", monitored)):
        sev = [stats.severity_counts.get(s, 0) for s in Severity]
        rows.append([name, *sev, f"{stats.severe_fraction():.2f}",
                     f"{stats.mean_severity():.2f}"])
    emit(format_table(
        ["strategy", "sev1", "sev2", "sev3", "sev4", "sev5",
         "P(severe)", "mean severity"], rows))
    emit(f"\nEL attempts: {monitored.el_attempts}, aborts (-> FT): "
         f"{monitored.el_aborts}")

    assert blind.num_missions == monitored.num_missions == NUM_MISSIONS
    # EL must not increase severe-outcome probability, and should
    # reduce (or at least not worsen) the mean severity.
    assert monitored.severe_fraction() <= blind.severe_fraction()
    assert monitored.mean_severity() <= blind.mean_severity() + 1e-9
    # EL was actually exercised.
    assert monitored.el_attempts > 0
