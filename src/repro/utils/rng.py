"""Seeded random-number-generator helpers.

Every stochastic component in this library takes either an integer seed or
a :class:`numpy.random.Generator`.  Centralising the coercion here keeps
experiments reproducible: the same seed always produces the same scene,
the same rendered image, the same Monte-Carlo dropout masks and the same
mission outcomes.

Setting ``REPRO_REQUIRE_SEED=1`` turns the one nondeterministic escape
hatch — ``ensure_rng(None)`` — into an error, so CI and certification
runs can prove no component fell back to an unseeded stream.  The
static side of the same contract is the ``rng-discipline`` lint rules
(``python -m repro.analysis --list-rules``), which ban global-state
``np.random.*`` calls everywhere and bare ``default_rng()`` outside
this module.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["ensure_rng", "spawn", "derive_seed"]

#: When this env variable is ``"1"``, ``ensure_rng(None)`` raises
#: instead of returning an OS-entropy generator.
_REQUIRE_SEED_ENV = "REPRO_REQUIRE_SEED"

# Arbitrary odd constant used to decorrelate derived seed streams.
_MIX = 0x9E3779B97F4A7C15


def ensure_rng(seed_or_rng=None) -> np.random.Generator:
    """Coerce ``seed_or_rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed_or_rng:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, or an
        existing :class:`numpy.random.Generator` (returned unchanged).

    Returns
    -------
    numpy.random.Generator

    Raises
    ------
    RuntimeError
        If ``seed_or_rng`` is ``None`` while ``REPRO_REQUIRE_SEED=1``
        — strict mode for runs that must prove end-to-end seeding.
    """
    if seed_or_rng is None:
        if os.environ.get(_REQUIRE_SEED_ENV) == "1":
            raise RuntimeError(
                f"{_REQUIRE_SEED_ENV}=1: ensure_rng(None) is "
                "forbidden in strict seeding mode — pass an explicit "
                "seed or a numpy.random.Generator")
        return np.random.default_rng()
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if isinstance(seed_or_rng, (int, np.integer)):
        return np.random.default_rng(int(seed_or_rng))
    raise TypeError(
        "expected None, int or numpy.random.Generator, got "
        f"{type(seed_or_rng).__name__}"
    )


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    The children are seeded from the parent stream, so a component that
    spawns sub-generators remains reproducible while its children stay
    statistically independent.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(base_seed: int, *streams: int) -> int:
    """Derive a deterministic child seed from a base seed and stream ids.

    Used when a component needs a stable per-item seed (e.g. per-scene,
    per-window) without consuming draws from a shared generator.
    """
    h = (int(base_seed) * 2 + 1) & 0xFFFFFFFFFFFFFFFF
    for s in streams:
        h ^= (int(s) + _MIX + ((h << 6) & 0xFFFFFFFFFFFFFFFF) + (h >> 2))
        h &= 0xFFFFFFFFFFFFFFFF
    return h % (2**63 - 1)
