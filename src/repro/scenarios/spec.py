"""Scenario specifications: one name for scene + imaging + failure + wind.

What the paper evaluates frame-by-frame, related work runs as *streams
under named conditions*: continuous video episodes at sunset, in fog, at
night, with a failure striking mid-flight (Guerin et al., "Evaluation of
Runtime Monitoring for UAV Emergency Landing"; Tovanche-Picon et al.,
"Visual-based Safe Landing for UAVs in Populated Areas").  A
:class:`ScenarioSpec` composes everything such a workload needs — scene
generation, :class:`~repro.dataset.conditions.ImagingConditions`,
failure profile, wind, camera geometry and frame-stream length — behind
a single registered name, so benches, examples and mission campaigns
*name* scenarios instead of hand-assembling conditions and failure
events.

The registry (:func:`register_scenario` / :func:`get_scenario`) holds
the named presets defined in :mod:`repro.scenarios.presets`; sweep
helpers (:func:`scenario_sweep`, :func:`list_scenarios`) drive the
Table IV High-2 requirement ("validated under a wide range of external
conditions") across whole scenario families.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.dataset.conditions import DAY, ImagingConditions
from repro.dataset.generator import SegmentationSample
from repro.dataset.render import render_scene_window
from repro.dataset.scene import SceneConfig, UrbanScene
from repro.uav.failures import FailureEvent, FailureType
from repro.utils.rng import derive_seed, ensure_rng
from repro.utils.validation import check_positive

__all__ = [
    "FailureProfile",
    "ScenarioSpec",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "list_scenarios",
    "scenario_sweep",
]


@dataclass(frozen=True)
class FailureProfile:
    """A deterministic failure schedule for campaign missions.

    Mission ``i`` of a campaign gets its failure at ``time_s + (i %
    stagger_cycle) * stagger_s`` — the staggered-onset pattern the
    Monte-Carlo benches use so one scenario still exercises failures at
    several route positions.
    """

    failure: FailureType
    time_s: float = 4.0
    stagger_s: float = 1.0
    stagger_cycle: int = 1

    def __post_init__(self):
        if self.time_s < 0:
            raise ValueError("failure time must be non-negative")
        if self.stagger_s < 0:
            raise ValueError("stagger_s must be non-negative")
        check_positive("stagger_cycle", self.stagger_cycle)

    def event(self, index: int = 0) -> FailureEvent:
        """The :class:`FailureEvent` of campaign mission ``index``."""
        offset = (int(index) % self.stagger_cycle) * self.stagger_s
        return FailureEvent(failure=self.failure,
                            time_s=self.time_s + offset)

    def events(self, count: int) -> list[FailureEvent]:
        """The failure schedule of a ``count``-mission campaign."""
        return [self.event(i) for i in range(count)]


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything one named episode workload is made of.

    A scenario binds together what used to be scattered across
    ``dataset/conditions.py`` (imaging), ``uav/failures.py`` (failure
    injection), ``uav/mission.py`` (wind, camera) and ad-hoc harness
    code (scene seeds, frame counts).  From a spec you can derive

    * frame-stream episodes for the episode engine
      (:meth:`frame_stream`, :meth:`episode_request`),
    * Monte-Carlo mission campaign inputs (:meth:`scenes`,
      :meth:`failure_events`, :meth:`mission_config`), and
    * dataset shifts (:attr:`conditions` feeds
      :func:`repro.dataset.generator.reshoot_under_condition`).
    """

    name: str
    description: str = ""
    conditions: ImagingConditions = DAY
    failure: FailureProfile | None = None
    wind_speed_ms: float = 4.0
    wind_direction_rad: float = 0.8
    camera_shape_px: tuple[int, int] = (96, 128)
    camera_gsd_m: float = 1.0
    num_frames: int = 4
    scene_config: SceneConfig = field(default_factory=SceneConfig)
    seed: int = 0
    tags: tuple[str, ...] = ()
    #: Derive the rendering RNG once per *episode* instead of once per
    #: frame: surface texture and sensor noise then repeat exactly from
    #: frame to frame, so a hovering (zero-wind) stream re-sees
    #: bit-identical pixels — the static-scene workload the episode
    #: engine's temporal stem reuse is built for.  Default ``False``
    #: keeps the historical per-frame streams byte-identical.
    static_texture: bool = False

    def __post_init__(self):
        if not self.name:
            raise ValueError("scenario name must not be empty")
        check_positive("num_frames", self.num_frames)
        check_positive("camera_gsd_m", self.camera_gsd_m)
        if self.wind_speed_ms < 0:
            raise ValueError("wind_speed_ms must be non-negative")

    # ------------------------------------------------------------------
    # Derived variants
    # ------------------------------------------------------------------
    def with_camera(self, shape_px: tuple[int, int],
                    gsd_m: float | None = None) -> "ScenarioSpec":
        """The same scenario re-shot at a different camera geometry.

        Benches and tests use this to match a scenario to their trained
        system's scale (e.g. the 48x64 CI-scale model).
        """
        return replace(self, camera_shape_px=tuple(shape_px),
                       camera_gsd_m=(gsd_m if gsd_m is not None
                                     else self.camera_gsd_m))

    def with_failure(self, failure: FailureProfile | None
                     ) -> "ScenarioSpec":
        """The same scenario with a different failure profile."""
        return replace(self, failure=failure)

    # ------------------------------------------------------------------
    # Scene / mission derivation
    # ------------------------------------------------------------------
    def scene_seed(self, index: int = 0,
                   seed_base: int | None = None) -> int:
        """Deterministic per-episode/mission scene seed."""
        if seed_base is not None:
            return int(seed_base) + int(index)
        return derive_seed(self.seed, 11, index)

    def scene(self, index: int = 0,
              seed_base: int | None = None) -> UrbanScene:
        """The procedural district of episode/mission ``index``."""
        return UrbanScene.generate(self.scene_config,
                                   seed=self.scene_seed(index, seed_base))

    def scenes(self, count: int,
               seed_base: int | None = None) -> list[UrbanScene]:
        """One scene per campaign mission."""
        return [self.scene(i, seed_base) for i in range(count)]

    def failure_event(self, index: int = 0) -> FailureEvent | None:
        """The failure striking episode/mission ``index`` (or None)."""
        if self.failure is None:
            return None
        return self.failure.event(index)

    def failure_events(self, count: int) -> list[FailureEvent | None]:
        """The campaign failure schedule (``None`` = uneventful)."""
        return [self.failure_event(i) for i in range(count)]

    def mission_config(self, **overrides):
        """A :class:`repro.uav.mission.MissionConfig` for this scenario.

        Imaging conditions, wind and camera geometry come from the
        spec; any remaining mission parameter can be overridden by
        keyword.
        """
        from repro.uav.mission import MissionConfig  # mission is a consumer
        kwargs = dict(conditions=self.conditions,
                      wind_speed_ms=self.wind_speed_ms,
                      wind_direction_rad=self.wind_direction_rad,
                      camera_shape_px=self.camera_shape_px,
                      camera_gsd_m=self.camera_gsd_m)
        kwargs.update(overrides)
        return MissionConfig(**kwargs)

    # ------------------------------------------------------------------
    # Frame streams (episode-engine workloads)
    # ------------------------------------------------------------------
    def frame_stream(self, index: int = 0,
                     num_frames: int | None = None
                     ) -> list[SegmentationSample]:
        """Render one episode's labelled camera-frame stream.

        The camera starts at a random valid window centre and drifts
        with the scenario wind between frames (clamped to the scene),
        so consecutive frames overlap like a continuous video stream.
        Fully determined by ``(spec, index)``.
        """
        n = int(num_frames) if num_frames is not None else self.num_frames
        check_positive("num_frames", n)
        scene = self.scene(index)
        rng = ensure_rng(derive_seed(self.seed, 23, index))
        rmin, rmax, cmin, cmax = scene.window_center_bounds(
            self.camera_shape_px, self.camera_gsd_m)
        row = float(rng.uniform(rmin, rmax))
        col = float(rng.uniform(cmin, cmax))
        # Wind drift per frame, in scene cells (1 s between frames).
        scale = self.wind_speed_ms / scene.config.gsd
        drow = scale * math.sin(self.wind_direction_rad)
        dcol = scale * math.cos(self.wind_direction_rad)
        samples = []
        for k in range(n):
            render_rng = np.random.default_rng(
                derive_seed(self.seed, 29, index) if self.static_texture
                else derive_seed(self.seed, 29, index, k))
            image, labels = render_scene_window(
                scene, (row, col), self.camera_shape_px,
                self.camera_gsd_m, self.conditions, rng=render_rng)
            samples.append(SegmentationSample(
                image=image, labels=labels.astype(np.int16),
                condition=self.conditions.name,
                scene_seed=self.scene_seed(index),
                center=(row, col), gsd=self.camera_gsd_m))
            row = float(np.clip(row + drow, rmin, rmax))
            col = float(np.clip(col + dcol, cmin, cmax))
        return samples

    def episode_seed(self, index: int = 0) -> int:
        """The per-episode monitor RNG seed."""
        return derive_seed(self.seed, 31, index)

    def drift_px(self) -> tuple[int, int]:
        """Expected per-frame image drift in camera pixels.

        The wind moves the window centre by ``wind / scene_gsd`` cells
        per frame (see :meth:`frame_stream`); on the rendered frame
        that is a content shift of ``wind / camera_gsd`` pixels along
        the wind direction.  Rounded to integers — the shared-context
        engine treats it as a shift *hint* and verifies candidate
        windows by exact pixel comparison.
        """
        dr = self.wind_speed_ms * math.sin(self.wind_direction_rad) \
            / self.camera_gsd_m
        dc = self.wind_speed_ms * math.cos(self.wind_direction_rad) \
            / self.camera_gsd_m
        return (int(round(dr)), int(round(dc)))

    def episode_request(self, index: int = 0,
                        num_frames: int | None = None):
        """An :class:`repro.core.engine.EpisodeRequest` for this spec."""
        from repro.core.engine import EpisodeRequest  # engine is a consumer
        frames = [s.image for s in self.frame_stream(index, num_frames)]
        return EpisodeRequest(frames=frames,
                              seed=self.episode_seed(index),
                              name=f"{self.name}#{index}",
                              drift_px=self.drift_px())


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec,
                      overwrite: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the global registry (returns it for chaining)."""
    if not overwrite and spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {scenario_names()}"
        ) from None


def scenario_names() -> list[str]:
    """All registered scenario names, in registration order."""
    return list(_REGISTRY)


def list_scenarios(tag: str | None = None) -> list[ScenarioSpec]:
    """Registered scenarios, optionally filtered by tag."""
    specs = list(_REGISTRY.values())
    if tag is None:
        return specs
    return [s for s in specs if tag in s.tags]


def scenario_sweep(*names: str) -> list[ScenarioSpec]:
    """Resolve several scenario names at once (sweep helper)."""
    return [get_scenario(name) for name in names]
