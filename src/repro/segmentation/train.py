"""Training loop for the segmentation model.

Trains the scaled MSDnet on the synthetic corpus with class-weighted
cross-entropy (rare classes — cars, humans — are exactly the ones the
safety case is about).  Deliberately small and deterministic: the
benchmark harness trains a model from scratch and caches the weights.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import nn
from repro.dataset.generator import (
    SegmentationSample,
    class_frequencies,
    iterate_minibatches,
    stack_batch,
)
from repro.segmentation.metrics import SegmentationReport, evaluate_predictions
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive

__all__ = ["TrainConfig", "TrainHistory", "train_model", "evaluate_model"]


@dataclass(frozen=True)
class TrainConfig:
    """Optimisation hyper-parameters."""

    epochs: int = 30
    batch_size: int = 4
    learning_rate: float = 2e-3
    weight_decay: float = 1e-5
    class_weight_power: float = 0.5
    use_cosine_schedule: bool = True
    seed: int = 0
    log_every: int = 0  # 0 disables stdout logging

    def __post_init__(self):
        check_positive("epochs", self.epochs)
        check_positive("batch_size", self.batch_size)
        check_positive("learning_rate", self.learning_rate)


@dataclass
class TrainHistory:
    """Loss trajectory and bookkeeping from a training run."""

    losses: list[float] = field(default_factory=list)
    epoch_losses: list[float] = field(default_factory=list)
    wall_time_s: float = 0.0
    steps: int = 0

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


def train_model(model: nn.Module, samples: list[SegmentationSample],
                config: TrainConfig | None = None) -> TrainHistory:
    """Train ``model`` in place on ``samples``; returns the history."""
    config = config or TrainConfig()
    if not samples:
        raise ValueError("no training samples provided")
    rng = ensure_rng(config.seed)

    freq = class_frequencies(samples)
    weights = nn.class_weights_from_frequencies(
        freq, power=config.class_weight_power)

    optimizer = nn.Adam(model.parameters(), lr=config.learning_rate,
                        weight_decay=config.weight_decay)
    steps_per_epoch = max(1, (len(samples) + config.batch_size - 1)
                          // config.batch_size)
    scheduler = (nn.CosineLR(optimizer,
                             total_steps=config.epochs * steps_per_epoch)
                 if config.use_cosine_schedule else None)

    history = TrainHistory()
    model.train(True)
    start = time.perf_counter()
    for epoch in range(config.epochs):
        epoch_losses = []
        for x, y in iterate_minibatches(samples, config.batch_size,
                                        rng=rng, epochs=1):
            logits = model.forward(x)
            loss, grad = nn.softmax_cross_entropy(
                logits, y, class_weights=weights)
            model.zero_grad()
            model.backward(grad)
            optimizer.step()
            if scheduler is not None:
                scheduler.step()
            epoch_losses.append(loss)
            history.losses.append(loss)
            history.steps += 1
        mean_loss = float(np.mean(epoch_losses))
        history.epoch_losses.append(mean_loss)
        if config.log_every and (epoch + 1) % config.log_every == 0:
            elapsed = time.perf_counter() - start
            print(f"epoch {epoch + 1:3d}/{config.epochs}  "
                  f"loss {mean_loss:.4f}  ({elapsed:.1f}s)")
    history.wall_time_s = time.perf_counter() - start
    model.eval()
    return history


def evaluate_model(model: nn.Module, samples: list[SegmentationSample],
                   num_classes: int = 8,
                   batch_size: int = 4) -> SegmentationReport:
    """Deterministic evaluation of ``model`` over ``samples``."""
    if not samples:
        raise ValueError("no evaluation samples provided")
    model.eval()

    def prediction_pairs():
        for start in range(0, len(samples), batch_size):
            chunk = samples[start:start + batch_size]
            x, y = stack_batch(chunk)
            logits = model.forward(x)
            preds = logits.argmax(axis=1)
            for i in range(len(chunk)):
                yield preds[i], y[i]

    return evaluate_predictions(prediction_pairs(), num_classes)
