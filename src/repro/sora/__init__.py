"""Executable SORA v2.0 framework plus the paper's EL extension.

Encodes the public decision tables the paper applies by hand — intrinsic
GRC (Table 2), mitigations (Table 3), SAIL (Table 5), OSO allocation
(Table 6) — together with the paper's own artefacts: the Table I
severity scale, the Table II ground-risk outcomes, and Emergency Landing
as an "active M1" mitigation whose robustness combines the proposed
integrity (Table III) and assurance (Table IV) levels.
"""

# NOTE: hazard must be imported before assessment (see the import-cycle
# discussion in DESIGN.md: uav.mission depends on sora.hazard, while
# sora.assessment depends on uav.vehicle/ballistics leaf modules).
from repro.sora.hazard import (
    FIRE_ENERGY_THRESHOLD_J,
    OUTCOME_TABLE,
    SEVERITY_DESCRIPTIONS,
    GroundRiskOutcome,
    Severity,
    TouchdownAssessment,
    classify_touchdown,
)
from repro.sora.grc import (
    GRC_TABLE,
    MAX_SPECIFIC_GRC,
    OperationalScenario,
    OutOfSoraScopeError,
    UasDimensionClass,
    dimension_class,
    intrinsic_grc,
)
from repro.sora.arc import (
    ARC,
    AirspaceEnvironment,
    apply_strategic_arc_mitigation,
    initial_arc,
)
from repro.sora.mitigations import (
    GRC_ADJUSTMENT,
    Mitigation,
    MitigationType,
    RobustnessLevel,
    apply_mitigations,
    el_mitigation,
    grc_floor,
)
from repro.sora.sail import SAIL, CertifiedCategoryError, determine_sail
from repro.sora.oso import (
    OSO_TABLE,
    Oso,
    OsoLevel,
    oso_level_counts,
    oso_requirements,
)
from repro.sora.assessment import (
    OperationSpec,
    SoraAssessment,
    assess,
    assess_medi_delivery,
    medi_delivery_spec,
)

__all__ = [
    "Severity",
    "SEVERITY_DESCRIPTIONS",
    "GroundRiskOutcome",
    "OUTCOME_TABLE",
    "TouchdownAssessment",
    "classify_touchdown",
    "FIRE_ENERGY_THRESHOLD_J",
    "OperationalScenario",
    "UasDimensionClass",
    "dimension_class",
    "intrinsic_grc",
    "GRC_TABLE",
    "MAX_SPECIFIC_GRC",
    "OutOfSoraScopeError",
    "ARC",
    "AirspaceEnvironment",
    "initial_arc",
    "apply_strategic_arc_mitigation",
    "RobustnessLevel",
    "MitigationType",
    "Mitigation",
    "GRC_ADJUSTMENT",
    "el_mitigation",
    "apply_mitigations",
    "grc_floor",
    "SAIL",
    "determine_sail",
    "CertifiedCategoryError",
    "Oso",
    "OsoLevel",
    "OSO_TABLE",
    "oso_requirements",
    "oso_level_counts",
    "OperationSpec",
    "SoraAssessment",
    "assess",
    "assess_medi_delivery",
    "medi_delivery_spec",
]
