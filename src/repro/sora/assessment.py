"""Full SORA assessment driver — reproduces Section III-D computationally.

Given an operation specification (vehicle, scenario, airspace, claimed
mitigations) this module computes intrinsic GRC, final GRC, ARC, SAIL
and the OSO allocation, i.e. the complete paper walk-through:

* MEDI DELIVERY intrinsic GRC **6** (1 m span but 8.23 kJ -> 3 m column,
  BVLOS populated),
* initial/residual ARC **ARC-c** (below 500 ft, urban, uncontrolled),
* final GRC **6** with a medium-robustness ERP (M3), **7** without,
* SAIL **V** (or **VI** without M3), all 24 OSOs requested,
* and, per Section IV, the effect of claiming EL as an active-M1
  mitigation at a given integrity/assurance robustness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sora.arc import ARC, AirspaceEnvironment, initial_arc
from repro.sora.grc import (
    OperationalScenario,
    UasDimensionClass,
    dimension_class,
    intrinsic_grc,
)
from repro.sora.mitigations import (
    Mitigation,
    MitigationType,
    RobustnessLevel,
    apply_mitigations,
    el_mitigation,
)
from repro.sora.oso import OsoLevel, oso_level_counts, oso_requirements
from repro.sora.sail import SAIL, determine_sail
from repro.uav.ballistics import free_fall_speed, kinetic_energy
from repro.uav.vehicle import MEDI_DELIVERY, VehicleParams

__all__ = [
    "OperationSpec",
    "SoraAssessment",
    "assess",
    "medi_delivery_spec",
    "assess_medi_delivery",
]


@dataclass(frozen=True)
class OperationSpec:
    """Everything the SORA needs to know about an operation."""

    vehicle: VehicleParams
    scenario: OperationalScenario
    airspace: AirspaceEnvironment
    mitigations: tuple[Mitigation, ...] = ()

    def ballistic_energy_j(self) -> float:
        """Typical kinetic energy used for the GRC dimension class.

        The paper computes it from the rounded ballistic speed
        (48.5 m/s -> 8.23 kJ); we keep full precision — both land in
        the same (3 m / < 34 kJ) band.
        """
        speed = free_fall_speed(self.vehicle.cruise_height_m)
        return kinetic_energy(self.vehicle.mtow_kg, speed)


@dataclass(frozen=True)
class SoraAssessment:
    """Result of a SORA application."""

    spec: OperationSpec
    dimension: UasDimensionClass
    ballistic_speed_ms: float
    ballistic_energy_j: float
    intrinsic_grc: int
    final_grc: int
    initial_arc: ARC
    residual_arc: ARC
    sail: SAIL
    oso_levels: dict[int, OsoLevel] = field(repr=False, default_factory=dict)

    def oso_counts(self) -> dict[OsoLevel, int]:
        """Number of OSOs requested at each robustness level."""
        return oso_level_counts(self.sail)

    def summary_lines(self) -> list[str]:
        """Human-readable assessment summary (used by examples/benches)."""
        counts = self.oso_counts()
        mitigation_text = ", ".join(
            f"{m.type.value}@{m.robustness.name}"
            for m in self.spec.mitigations) or "none"
        return [
            f"operation:        {self.spec.vehicle.name}, "
            f"{self.spec.scenario.value}",
            f"ballistic speed:  {self.ballistic_speed_ms:.1f} m/s",
            f"kinetic energy:   {self.ballistic_energy_j / 1000.0:.2f} kJ",
            f"dimension class:  {self.dimension.name}",
            f"intrinsic GRC:    {self.intrinsic_grc}",
            f"mitigations:      {mitigation_text}",
            f"final GRC:        {self.final_grc}",
            f"ARC:              {self.residual_arc}",
            f"SAIL:             {self.sail}",
            f"OSO profile:      "
            f"{counts[OsoLevel.HIGH]} high, {counts[OsoLevel.MEDIUM]} "
            f"medium, {counts[OsoLevel.LOW]} low, "
            f"{counts[OsoLevel.OPTIONAL]} optional",
        ]


def assess(spec: OperationSpec) -> SoraAssessment:
    """Run the complete SORA process on ``spec``."""
    energy = spec.ballistic_energy_j()
    speed = free_fall_speed(spec.vehicle.cruise_height_m)
    dim = dimension_class(spec.vehicle.span_m, energy)
    grc0 = intrinsic_grc(spec.scenario, dim)
    grc = apply_mitigations(grc0, list(spec.mitigations), dim)
    arc0 = initial_arc(spec.airspace)
    # The paper's corridor provides containment, not ARC reduction.
    arc = arc0
    sail = determine_sail(grc, arc)
    return SoraAssessment(
        spec=spec, dimension=dim, ballistic_speed_ms=speed,
        ballistic_energy_j=energy, intrinsic_grc=grc0, final_grc=grc,
        initial_arc=arc0, residual_arc=arc, sail=sail,
        oso_levels=oso_requirements(sail))


def medi_delivery_spec(
        mitigations: tuple[Mitigation, ...] = ()) -> OperationSpec:
    """The paper's case study: BVLOS urban delivery below 500 ft."""
    return OperationSpec(
        vehicle=MEDI_DELIVERY,
        scenario=OperationalScenario.BVLOS_POPULATED,
        airspace=AirspaceEnvironment(max_height_ft=400.0,
                                     controlled_airspace=False,
                                     over_urban=True,
                                     near_aerodrome=False,
                                     atypical_segregated=False),
        mitigations=mitigations)


def assess_medi_delivery(
        with_m3: bool = True,
        el_integrity: RobustnessLevel | None = None,
        el_assurance: RobustnessLevel | None = None) -> SoraAssessment:
    """Assess MEDI DELIVERY as in Sections III-D and IV.

    Parameters
    ----------
    with_m3:
        Claim a medium-robustness Emergency Response Plan (the paper's
        "M3 with medium robustness"); without it the final GRC takes the
        +1 missing-ERP penalty.
    el_integrity, el_assurance:
        When both given, additionally claim EL as an active-M1
        mitigation with those Table III / Table IV levels (the paper's
        Section IV proposal).
    """
    mitigations: list[Mitigation] = []
    if with_m3:
        mitigations.append(Mitigation(MitigationType.M3_ERP,
                                      RobustnessLevel.MEDIUM))
    if (el_integrity is None) != (el_assurance is None):
        raise ValueError(
            "claiming EL requires both an integrity and an assurance level")
    if el_integrity is not None and el_assurance is not None:
        mitigations.append(el_mitigation(el_integrity, el_assurance))
    return assess(medi_delivery_spec(tuple(mitigations)))
