"""The complete Fig. 2 safety architecture, assembled.

``LandingPipeline`` wires together the four boxes of the paper's
landing-zone-selection architecture:

1. **Core function** — the standard (deterministic) MSDnet segments the
   full frame and the selector proposes clearance-ranked zones.
2. **Monitor** — the Bayesian MSDnet re-examines each proposed zone crop
   with the conservative Eq. (2) rule.
3. **Decision module** — confirm -> land; reject -> retry; budgets
   exhausted -> abort (flight termination).

``run`` executes one full episode on a camera frame and reports every
intermediate artefact (segmentation, candidates, verdicts, timings) so
benches and the mission simulator can introspect the behaviour.  The
reported ``timings_s`` separate ``monitoring_s`` (wall time spent
inside per-zone Bayesian passes) from ``decision_s`` (the decision
module's own bookkeeping around them).

``LandingPipeline`` is the *single-episode facade* over the streaming
episode engine: multi-episode workloads run through
:class:`repro.core.engine.EpisodeScheduler`, which drives these same
stage implementations (``_finish_episode`` and the decision cursor)
across many concurrent frame streams with cross-episode batching and
optional worker sharding.  The engine's performance knobs live in one
place, :class:`repro.core.engine.EngineConfig`, which can be handed to
this class via ``engine=``.

``run_batch`` predates the engine and is deprecated: it serves one
multi-frame episode with a batched core segmentation, which
``EpisodeScheduler.run_frames`` reproduces bit for bit (same seeded
monitor stream) while also handling many concurrent episodes.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.decision import Decision, DecisionConfig, DecisionModule
from repro.core.landing_zone import (
    LandingZoneConfig,
    LandingZoneSelector,
    ZoneCandidate,
)
from repro.core.monitor import MonitorConfig, RuntimeMonitor, ZoneVerdict
from repro.segmentation.bayesian import BayesianSegmenter
from repro.utils.validation import check_image_chw

__all__ = ["PipelineConfig", "PipelineResult", "LandingPipeline"]


@dataclass(frozen=True)
class PipelineConfig:
    """Configuration of the full landing pipeline."""

    selector: LandingZoneConfig = field(default_factory=LandingZoneConfig)
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    decision: DecisionConfig = field(default_factory=DecisionConfig)
    monitor_enabled: bool = True


@dataclass
class PipelineResult:
    """Everything one pipeline episode produced."""

    decision: Decision
    predicted_labels: np.ndarray = field(repr=False)
    candidates: list[ZoneCandidate] = field(default_factory=list)
    verdicts: list[ZoneVerdict] = field(default_factory=list)
    timings_s: dict[str, float] = field(default_factory=dict)

    @property
    def landed(self) -> bool:
        return self.decision.landed

    @property
    def selected_zone(self) -> ZoneCandidate | None:
        return self.decision.zone


class LandingPipeline:
    """End-to-end landing-zone selection with runtime monitoring."""

    def __init__(self, model, config: PipelineConfig | None = None,
                 rng=None, engine=None):
        """``model`` is a trained segmentation network (MSDNet).

        ``engine`` optionally carries a
        :class:`repro.core.engine.EngineConfig`, the single documented
        home of the performance knobs (batched-forward chunk size,
        speculative check-ahead, conv-engine mode); it is applied here
        so single-episode and engine-scheduled runs share one config
        path.
        """
        self.config = config or PipelineConfig()
        max_batch = None
        # ``None`` defers to the REPRO_MONITOR_SHARED environment
        # toggle at call time; an explicit shared engine forces the
        # union-crop planner for the speculative joint passes.
        self._shared_checks: bool | None = None
        if engine is not None:
            engine.apply_conv_engine()
            self.config = engine.pipeline_config(self.config)
            max_batch = engine.max_batch
            if engine.monitor_batching == "shared":
                self._shared_checks = True
        self.model = model
        kwargs = {} if max_batch is None else {"max_batch": max_batch}
        self.segmenter = BayesianSegmenter(
            model, num_samples=self.config.monitor.num_samples, rng=rng,
            **kwargs)
        self.selector = LandingZoneSelector(self.config.selector)
        self.monitor = RuntimeMonitor(self.segmenter, self.config.monitor)
        self.decision_module = DecisionModule(self.config.decision)

    # ------------------------------------------------------------------
    def run(self, image: np.ndarray) -> PipelineResult:
        """One full episode: segment -> propose -> verify -> decide."""
        check_image_chw("image", image)
        t0 = time.perf_counter()
        # The core function only needs the arg-max class map; the
        # labels path skips the full-frame softmax (same labels —
        # softmax is monotone).
        labels = self.segmenter.predict_labels(image)
        segmentation_s = time.perf_counter() - t0
        return self._finish_episode(image, labels, segmentation_s)

    def run_batch(self, images) -> list[PipelineResult]:
        """Run one episode per frame, sharing one batched segmentation.

        .. deprecated:: PR 3
            Superseded by the streaming episode engine:
            ``EpisodeScheduler(model, config).run_frames(images,
            seed=...)`` reproduces this bit for bit and scales to many
            concurrent episodes.  Kept as a working alias for existing
            call sites.

        The core function segments all frames in chunked batched
        forwards (``segmentation_s`` reports the amortised per-frame
        share); monitoring and decisions then run per frame in order,
        so results match ``[run(f) for f in images]`` exactly.
        """
        warnings.warn(
            "LandingPipeline.run_batch is deprecated; use "
            "repro.core.engine.EpisodeScheduler.run_frames (bit-for-bit "
            "identical) or EpisodeScheduler.run for multi-episode "
            "workloads", DeprecationWarning, stacklevel=2)
        images = list(images)
        if not images:
            return []
        t0 = time.perf_counter()
        labels = self.segmenter.predict_labels_batch(images)
        segmentation_s = (time.perf_counter() - t0) / len(images)
        return [
            self._finish_episode(image, labels[i], segmentation_s)
            for i, image in enumerate(images)
        ]

    def _finish_episode(self, image: np.ndarray, labels: np.ndarray,
                        segmentation_s: float) -> PipelineResult:
        """Selection, monitoring and decision on a segmented frame."""
        timings: dict[str, float] = {"segmentation_s": segmentation_s}

        t0 = time.perf_counter()
        candidates = self.selector.propose(labels)
        timings["selection_s"] = time.perf_counter() - t0

        monitoring_s = 0.0

        def check(candidate: ZoneCandidate) -> ZoneVerdict:
            nonlocal monitoring_s
            t1 = time.perf_counter()
            verdict = self.monitor.check_zone(image, candidate.box)
            monitoring_s += time.perf_counter() - t1
            return verdict

        def check_batch(batch: list[ZoneCandidate]) -> list[ZoneVerdict]:
            # The speculative joint pass: all crops in one jointly
            # seeded stacked Bayesian pass.  A single-candidate batch
            # degenerates to the per-zone seeding, i.e. check_zone.
            # With a shared engine (or REPRO_MONITOR_SHARED=1) the
            # pass runs through the union-crop planner instead.
            nonlocal monitoring_s
            t1 = time.perf_counter()
            out = self.monitor.check_zones(
                image, [c.box for c in batch], joint=True,
                shared=self._shared_checks)
            monitoring_s += time.perf_counter() - t1
            return out

        speculative = (self.config.monitor_enabled
                       and self.config.decision.speculative_k > 1)
        t0 = time.perf_counter()
        decision = self.decision_module.decide(
            candidates,
            check if self.config.monitor_enabled else None,
            check_zones=check_batch if speculative else None)
        loop_s = time.perf_counter() - t0
        # monitoring_s: wall time inside the per-zone Bayesian passes;
        # decision_s: the decision module's own bookkeeping around them.
        timings["monitoring_s"] = monitoring_s
        timings["decision_s"] = max(loop_s - monitoring_s, 0.0)

        # decision.verdicts holds exactly the consumed verdicts (the
        # speculative path discards over-checked ones), so monitored
        # episodes have len(verdicts) == decision.attempts.  The
        # unmonitored ablation records one attempt with no verdict.
        return PipelineResult(decision=decision, predicted_labels=labels,
                              candidates=candidates,
                              verdicts=list(decision.verdicts),
                              timings_s=timings)

    # ------------------------------------------------------------------
    def as_mission_policy(self):
        """Adapter for :func:`repro.uav.mission.simulate_mission`.

        Returns a callable mapping a camera frame to the confirmed zone
        centre in window pixels, or ``None`` when the pipeline aborts —
        which the mission simulator escalates to Flight Termination.
        """
        def policy(image: np.ndarray):
            result = self.run(image)
            if result.landed and result.selected_zone is not None:
                return result.selected_zone.center_px
            return None

        return policy
