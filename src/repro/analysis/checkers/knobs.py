"""Knob-surface drift: every config field is documented where promised.

``EngineConfig`` is sold (module docstring, README, ROADMAP) as *the*
one documented home of the engine/monitor performance knobs, with
``MonitorConfig`` and ``DecisionConfig`` carrying the paper-semantics
parameters.  A field added to one of these dataclasses without a
docstring entry and a README mention is a knob users cannot discover —
exactly the drift that accumulates one innocent PR at a time.

Two rules, checked against the *live* class definitions:

* ``KNOB-DOCSTRING`` — a config field does not appear in its class
  docstring.
* ``KNOB-README`` — a config field does not appear anywhere in the
  repo-root ``README.md``.

Fields are the class's annotated assignments; leading-underscore names
are private and exempt.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.base import BaseChecker, CheckContext, Rule

#: The knob surfaces under contract: class name -> repo-relative file.
CONFIG_CLASSES = {
    "EngineConfig": "src/repro/core/engine.py",
    "MonitorConfig": "src/repro/core/monitor.py",
    "DecisionConfig": "src/repro/core/decision.py",
    "ServeConfig": "src/repro/serve/broker.py",
}

#: Per-root cache of the README text ('' when absent).
_README_CACHE: dict[Path, str] = {}


def _readme_text(root: Path) -> str:
    text = _README_CACHE.get(root)
    if text is None:
        path = root / "README.md"
        text = path.read_text() if path.exists() else ""
        _README_CACHE[root] = text
    return text


class KnobSurfaceChecker(BaseChecker):
    name = "knob-surface"
    rules = (
        Rule("KNOB-DOCSTRING",
             "config field missing from its class docstring",
             contract="EngineConfig as the single documented knob "
                      "surface (PR 3)"),
        Rule("KNOB-README",
             "config field missing from the README",
             contract="EngineConfig as the single documented knob "
                      "surface (PR 3)"),
    )

    def check(self, ctx: CheckContext):
        for node in ctx.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            expected = CONFIG_CLASSES.get(node.name)
            if expected is None or ctx.rel_path != expected:
                continue
            yield from self._check_class(ctx, node)

    def _check_class(self, ctx: CheckContext, node: ast.ClassDef):
        fields = [
            (stmt, stmt.target.id)
            for stmt in node.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and not stmt.target.id.startswith("_")
        ]
        docstring = ast.get_docstring(node) or ""
        readme = _readme_text(ctx.root)
        for stmt, field in fields:
            pattern = rf"\b{re.escape(field)}\b"
            if not re.search(pattern, docstring):
                yield self.finding(
                    ctx, stmt, "KNOB-DOCSTRING",
                    f"{node.name}.{field} is not documented in the "
                    "class docstring",
                    hint="add the field to the docstring's "
                         "Attributes section — the class is the "
                         "single documented knob surface")
            if readme and not re.search(pattern, readme):
                yield self.finding(
                    ctx, stmt, "KNOB-README",
                    f"{node.name}.{field} is not mentioned in "
                    "README.md",
                    hint="add the knob to the README configuration "
                         "table (see 'Static analysis & invariants')")
