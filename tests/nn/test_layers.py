"""Tests for nn layers: shapes, modes, and the MC-dropout switch."""

import numpy as np
import pytest

from repro import nn


class TestConv2dLayer:
    def test_same_padding_preserves_size(self, rng):
        layer = nn.Conv2d(3, 4, 3, padding=nn.Conv2d.same_padding(3),
                          rng=0)
        y = layer(rng.normal(size=(1, 3, 8, 8)))
        assert y.shape == (1, 4, 8, 8)

    def test_same_padding_dilated(self, rng):
        pad = nn.Conv2d.same_padding(3, dilation=4)
        layer = nn.Conv2d(2, 2, 3, padding=pad, dilation=4, rng=0)
        y = layer(rng.normal(size=(1, 2, 16, 16)))
        assert y.shape == (1, 2, 16, 16)

    def test_stride_halves(self, rng):
        layer = nn.Conv2d(2, 2, 3, stride=2, padding=1, rng=0)
        assert layer(rng.normal(size=(1, 2, 8, 8))).shape == (1, 2, 4, 4)

    def test_no_bias(self):
        layer = nn.Conv2d(2, 3, 3, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            nn.Conv2d(0, 3, 3)
        with pytest.raises(ValueError):
            nn.Conv2d(2, 3, 3, padding=-1)

    def test_backward_before_forward_raises(self):
        layer = nn.Conv2d(2, 3, 3, rng=0)
        with pytest.raises(RuntimeError, match="before forward"):
            layer.backward(np.zeros((1, 3, 4, 4)))

    def test_deterministic_init_with_seed(self):
        a = nn.Conv2d(3, 4, 3, rng=42)
        b = nn.Conv2d(3, 4, 3, rng=42)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestBatchNorm:
    def test_normalizes_in_training(self, rng):
        layer = nn.BatchNorm2d(3)
        x = rng.normal(5.0, 3.0, size=(4, 3, 8, 8))
        y = layer(x)
        np.testing.assert_allclose(y.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)
        np.testing.assert_allclose(y.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_converge(self, rng):
        layer = nn.BatchNorm2d(2, momentum=0.5)
        for _ in range(20):
            layer(rng.normal(2.0, 1.0, size=(8, 2, 4, 4)))
        np.testing.assert_allclose(layer.running_mean, 2.0, atol=0.2)

    def test_eval_uses_running_stats(self, rng):
        layer = nn.BatchNorm2d(2)
        for _ in range(10):
            layer(rng.normal(size=(8, 2, 4, 4)))
        layer.train(False)
        x = rng.normal(size=(1, 2, 4, 4))
        y1 = layer(x)
        y2 = layer(x)
        np.testing.assert_array_equal(y1, y2)

    def test_channel_mismatch_raises(self, rng):
        layer = nn.BatchNorm2d(3)
        with pytest.raises(ValueError, match="channels"):
            layer(rng.normal(size=(1, 2, 4, 4)))


class TestActivations:
    def test_relu(self):
        layer = nn.ReLU()
        y = layer(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(y, [[0.0, 2.0]])
        dx = layer.backward(np.ones((1, 2)))
        np.testing.assert_array_equal(dx, [[0.0, 1.0]])

    def test_leaky_relu(self):
        layer = nn.LeakyReLU(0.1)
        y = layer(np.array([[-2.0, 4.0]]))
        np.testing.assert_allclose(y, [[-0.2, 4.0]])


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = nn.Dropout(0.5, rng=0)
        layer.train(False)
        # float32 input passes through bit-identically; the __call__
        # boundary converts other float dtypes to float32 first.
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        np.testing.assert_array_equal(layer(x), x)
        x64 = rng.normal(size=(2, 3, 4, 4))
        np.testing.assert_array_equal(layer(x64),
                                      x64.astype(np.float32))

    def test_training_drops_and_rescales(self, rng):
        layer = nn.Dropout(0.5, rng=0)
        x = np.ones((1, 1, 100, 100))
        y = layer(x)
        assert (y == 0).any()
        # Inverted dropout: survivors are scaled by 1/keep.
        assert y.max() == pytest.approx(2.0)
        assert y.mean() == pytest.approx(1.0, abs=0.1)

    def test_mc_mode_stochastic_in_eval(self, rng):
        layer = nn.Dropout(0.5, rng=0)
        layer.train(False)
        layer.mc_mode = True
        x = np.ones((1, 1, 32, 32))
        y1, y2 = layer(x), layer(x)
        assert not np.array_equal(y1, y2)

    def test_zero_rate_identity(self, rng):
        layer = nn.Dropout(0.0)
        x = rng.normal(size=(2, 4)).astype(np.float32)
        np.testing.assert_array_equal(layer(x), x)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)
        with pytest.raises(ValueError):
            nn.Dropout(-0.1)

    def test_spatial_dropout_kills_whole_channels(self):
        layer = nn.SpatialDropout2d(0.5, rng=0)
        x = np.ones((1, 64, 6, 6))
        y = layer(x)
        per_channel = y.reshape(64, -1)
        # Every channel is either fully zero or fully scaled.
        for ch in per_channel:
            assert (ch == 0).all() or (ch == ch[0]).all()

    def test_set_mc_dropout_toggles_all(self):
        model = nn.Sequential(nn.Conv2d(2, 4, 3, padding=1, rng=0),
                              nn.Dropout(0.5), nn.ReLU(),
                              nn.SpatialDropout2d(0.3))
        count = nn.set_mc_dropout(model, True)
        assert count == 2
        assert nn.mc_dropout_enabled(model)
        nn.set_mc_dropout(model, False)
        assert not nn.mc_dropout_enabled(model)


class TestUpsampleAndPool:
    def test_upsample_shapes(self, rng):
        for mode in ("bilinear", "nearest"):
            layer = nn.Upsample(2, mode=mode)
            y = layer(rng.normal(size=(1, 3, 4, 5)))
            assert y.shape == (1, 3, 8, 10)

    def test_upsample_invalid_mode(self):
        with pytest.raises(ValueError, match="mode"):
            nn.Upsample(2, mode="cubic")

    def test_maxpool_layer(self, rng):
        layer = nn.MaxPool2d(2)
        assert layer(rng.normal(size=(1, 2, 8, 8))).shape == (1, 2, 4, 4)

    def test_identity(self, rng):
        layer = nn.Identity()
        x = rng.normal(size=(3, 3)).astype(np.float32)
        np.testing.assert_array_equal(layer(x), x)
        np.testing.assert_array_equal(layer.backward(x), x)


class TestSequential:
    def test_forward_chains(self, rng):
        model = nn.Sequential(nn.Conv2d(2, 4, 3, padding=1, rng=0),
                              nn.ReLU(),
                              nn.Conv2d(4, 3, 1, rng=1))
        y = model(rng.normal(size=(1, 2, 6, 6)))
        assert y.shape == (1, 3, 6, 6)

    def test_len_getitem_append(self):
        model = nn.Sequential(nn.ReLU())
        assert len(model) == 1
        model.append(nn.Identity())
        assert len(model) == 2
        assert isinstance(model[0], nn.ReLU)

    def test_rejects_non_module(self):
        with pytest.raises(TypeError):
            nn.Sequential(lambda x: x)

    def test_parameters_collected_recursively(self):
        model = nn.Sequential(nn.Conv2d(2, 4, 3, rng=0),
                              nn.BatchNorm2d(4),
                              nn.Sequential(nn.Conv2d(4, 2, 1, rng=1)))
        # conv(w,b) + bn(gamma,beta) + inner conv(w,b)
        assert len(model.parameters()) == 6

    def test_named_parameters_unique(self):
        model = nn.Sequential(nn.Conv2d(2, 4, 3, rng=0),
                              nn.BatchNorm2d(4))
        names = [n for n, _ in model.named_parameters()]
        assert len(names) == len(set(names))

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5), nn.BatchNorm2d(2))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())
