"""FIG-3 bench: the UAVid-substitute dataset and its label statistics.

Paper artefact: Fig. 3 — an example UAVid image with dense 8-class
labels.  Expectation (shape): generated frames carry all eight classes
across the corpus, with UAVid-like rank statistics: built ground
(roads/buildings/vegetation) dominates, cars are rare, humans rarest.
"""

from repro.dataset import (
    CLASS_NAMES,
    DatasetConfig,
    NUM_CLASSES,
    UavidClass,
    class_frequencies,
    generate_dataset,
)
from repro.eval.reporting import format_table, format_title


def test_fig3_dataset_statistics(benchmark, emit):
    config = DatasetConfig(num_scenes=4, windows_per_scene=6,
                           image_shape=(96, 128), seed=29)

    samples = benchmark.pedantic(lambda: generate_dataset(config),
                                 rounds=1, iterations=1)

    freq = class_frequencies(samples)
    emit("\n" + format_title(
        "FIG-3: Synthetic UAVid-substitute class distribution"))
    rows = [[CLASS_NAMES[c], f"{freq[int(c)] * 100:.2f}%"]
            for c in UavidClass]
    emit(format_table(["class", "pixel share"], rows))
    emit(f"\ncorpus: {len(samples)} frames of "
         f"{config.image_shape[0]}x{config.image_shape[1]} px at "
         f"{config.gsd} m/px")

    assert len(samples) == 24
    # All eight classes appear somewhere in the corpus.
    assert (freq > 0).sum() == NUM_CLASSES
    # UAVid-like ranks.
    assert freq[int(UavidClass.LOW_VEGETATION)] > \
        freq[int(UavidClass.MOVING_CAR)]
    assert freq[int(UavidClass.ROAD)] > freq[int(UavidClass.STATIC_CAR)]
    assert freq[int(UavidClass.HUMAN)] == freq.min()
    assert freq[int(UavidClass.BUILDING)] > 0.02
    # Images are proper normalised float RGB.
    image = samples[0].image
    assert image.min() >= 0.0 and image.max() <= 1.0
