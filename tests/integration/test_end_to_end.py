"""End-to-end integration tests: the paper's claims on a trained system.

These tests exercise the full stack — procedural scenes, rendering,
trained MSDnet, landing pipeline, monitor, mission simulation, SORA
compliance — and assert the *shape* of the paper's results (who wins,
in which direction), not absolute numbers.
"""

import numpy as np
import pytest

from repro.core import achieved_robustness, EvidenceBundle
from repro.dataset import SUNSET, UavidClass, busy_road_mask
from repro.eval import (
    fig4_experiment,
    zone_acceptance_experiment,
)
from repro.segmentation import evaluate_model
from repro.sora import RobustnessLevel, Severity, assess_medi_delivery
from repro.uav import (
    FailureEvent,
    FailureType,
    Maneuver,
    MissionConfig,
    simulate_mission,
)
from repro.dataset.scene import UrbanScene


@pytest.fixture(scope="module")
def fig4(tiny_system):
    return fig4_experiment(tiny_system, condition=SUNSET, max_frames=4)


class TestFig4Shape:
    """The paper's headline qualitative result, as inequalities."""

    def test_model_good_in_distribution(self, fig4):
        assert fig4["in_distribution"]["accuracy"] > 0.6

    def test_model_degrades_ood(self, fig4):
        assert fig4["ood"]["miou"] < fig4["in_distribution"]["miou"]
        assert fig4["ood"]["accuracy"] < \
            fig4["in_distribution"]["accuracy"]

    def test_model_misses_more_road_ood(self, fig4):
        assert fig4["ood"]["model_miss_rate"] > \
            fig4["in_distribution"]["model_miss_rate"]

    def test_monitor_catches_part_of_ood_misses(self, fig4):
        """'the monitor seems able to trigger warnings for a large part
        of the road areas that was not covered by the core model'"""
        assert fig4["ood"]["monitor_catch_rate"] > 0.1

    def test_monitor_not_perfect_ood(self, fig4):
        """'many regions containing roads are missed by the monitor'
        — the paper's admitted limitation must reproduce too."""
        assert fig4["ood"]["residual_miss_rate"] > 0.0

    def test_false_alarms_bounded(self, fig4):
        assert fig4["in_distribution"]["false_alarm_rate"] < 0.6


class TestZoneAcceptanceShape:
    def test_monitored_never_accepts_road_zone(self, tiny_system):
        result = zone_acceptance_experiment(
            tiny_system, tiny_system.test_samples, monitor_enabled=True)
        assert result["road_unsafe_accepted"] == 0

    def test_monitor_reduces_ood_unsafe_acceptance(self, tiny_system):
        ood = tiny_system.ood_samples(SUNSET)
        monitored = zone_acceptance_experiment(tiny_system, ood,
                                               monitor_enabled=True)
        unmonitored = zone_acceptance_experiment(tiny_system, ood,
                                                 monitor_enabled=False)
        assert monitored["road_unsafe_accepted"] <= \
            unmonitored["road_unsafe_accepted"]
        # The monitor must also reduce acceptance overall OOD (it
        # cannot be *more* permissive than no monitor).
        assert monitored["landed"] <= unmonitored["landed"]


class TestMissionIntegration:
    def test_el_mission_with_trained_pipeline(self, tiny_system):
        scene = UrbanScene.generate(seed=77)
        policy = tiny_system.make_pipeline(
            monitor_enabled=True).as_mission_policy()
        config = MissionConfig(camera_shape_px=(48, 64),
                               camera_gsd_m=1.0)
        failure = FailureEvent(FailureType.NAVIGATION_AND_COMM_LOSS, 5.0)
        result = simulate_mission(scene, config=config, failure=failure,
                                  el_policy=policy, rng=3)
        assert result.el_attempted
        assert result.final_maneuver in (Maneuver.EMERGENCY_LANDING,
                                         Maneuver.FLIGHT_TERMINATION)
        assert result.severity in list(Severity)

    def test_landed_zone_ground_truth_checked(self, tiny_system):
        """When the monitored pipeline lands, the accepted zone's
        ground truth must be road-free (on in-distribution imagery)."""
        pipeline = tiny_system.make_pipeline(monitor_enabled=True, rng=0)
        for sample in tiny_system.test_samples:
            result = pipeline.run(sample.image)
            if result.landed:
                gt = result.selected_zone.box.extract(sample.labels)
                assert not busy_road_mask(gt).any()


class TestCertificationIntegration:
    def test_validation_results_feed_sora(self, tiny_system):
        """The full certification loop: measure -> evidence -> Tables
        III/IV -> robustness -> SORA credit."""
        held_out = zone_acceptance_experiment(
            tiny_system, tiny_system.test_samples, monitor_enabled=True)
        evidence = EvidenceBundle(
            declared_integrity=True,
            unsafe_zone_rate=held_out["road_accept_rate"],
            in_context_unsafe_rate=held_out["road_accept_rate"],
            drift_buffer_applied=True,
            failure_allowance_applied=True,
            tested_on_heldout_dataset=True,
            tested_in_context=True,
            video_data_verified=True,
            runtime_monitor_in_place=True,
            conditions_validated=frozenset({"day"}),
        )
        robustness = achieved_robustness(evidence)
        assert robustness >= RobustnessLevel.MEDIUM

        with_el = assess_medi_delivery(with_m3=True,
                                       el_integrity=robustness,
                                       el_assurance=robustness)
        without = assess_medi_delivery(with_m3=True)
        assert with_el.final_grc < without.final_grc
        assert int(with_el.sail) <= int(without.sail)


class TestDeterminism:
    def test_pipeline_run_reproducible(self, tiny_system):
        image = tiny_system.test_samples[0].image
        results = []
        for _ in range(2):
            pipeline = tiny_system.make_pipeline(monitor_enabled=True,
                                                 rng=9)
            results.append(pipeline.run(image))
        assert results[0].landed == results[1].landed
        assert len(results[0].candidates) == len(results[1].candidates)
        for a, b in zip(results[0].candidates, results[1].candidates):
            assert a.box == b.box

    def test_fig4_experiment_reproducible(self, tiny_system):
        a = fig4_experiment(tiny_system, max_frames=2)
        b = fig4_experiment(tiny_system, max_frames=2)
        assert a["in_distribution"]["miou"] == \
            pytest.approx(b["in_distribution"]["miou"])
