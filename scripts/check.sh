#!/usr/bin/env bash
# Full verification gate: tier-1 tests plus a fast benchmark smoke pass.
#
#   scripts/check.sh           # tier-1 pytest + bench smoke (CI default)
#   scripts/check.sh --full    # additionally run the full-scale benches
#
# BENCH_SMOKE=1 makes every bench run against the tiny (48x64) trained
# system shared with the test suite, so the whole script finishes in
# well under a minute once the weight caches are warm.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== static analysis (repro-lint, strict) =="
# First stage by design: the AST linter fails in seconds on a
# certification-contract violation (global-state RNG, float64 on the
# inference path, unrestored engine flips, fork-task global writes,
# undocumented knobs) before any test runs.
python -m repro.analysis --strict

echo
echo "== tier-1 tests =="
python -m pytest tests -q -x

echo
echo "== tier-1 smoke under the winograd conv engine =="
# The winograd engine is tolerance-certified, not bit-for-bit; the
# certification harness plus the conv-adjacent suites must also hold
# with winograd as the process-default engine (REPRO_CONV_ENGINE is
# honoured by nn.functional.reset_conv_engine at import).  Smoke form:
# the suites that actually exercise convolution end to end.
REPRO_CONV_ENGINE=winograd python -m pytest \
    tests/nn tests/segmentation tests/core tests/integration -q -x

echo
echo "== tier-1 smoke under the int8 conv engine =="
# The quantised engine's envelope is ~1e-2 (vs winograd's ~1e-5), so
# this stage is the strongest ambient-engine soak: every conv-adjacent
# suite — the decision-level certification harness included — must
# hold with int8 as the process-default engine.
REPRO_CONV_ENGINE=int8 python -m pytest \
    tests/nn tests/segmentation tests/core tests/integration -q -x

echo
echo "== tier-1 monitor suites under the shared-context engine =="
# Shared-context monitoring (union-crop planning + temporal stem
# reuse) is the second non-bit-exact mode; REPRO_MONITOR_SHARED=1
# reroutes every joint monitoring path through the union planner
# (repro.core.monitor honours it per call), so the monitor-touching
# suites — certification harness included — must also hold with the
# shared engine as the process default.
REPRO_MONITOR_SHARED=1 python -m pytest \
    tests/core tests/segmentation tests/integration -q -x

echo
echo "== tier-1 monitor suites under the adaptive early-exit engine =="
# Adaptive-T early-exit monitoring is the third non-bit-exact mode:
# REPRO_MONITOR_ADAPTIVE=1 turns the certified sequential stopping
# rule on for every monitoring path (repro.core.monitor honours it per
# call), so the monitor-touching suites — certification harness
# included — must also hold with adaptive sampling as the process
# default.
REPRO_MONITOR_ADAPTIVE=1 python -m pytest \
    tests/core tests/integration -q -x

echo
echo "== serving self-check + fault drill (repro.serve doctor) =="
# The doctor exercises the serving stack end to end on the tiny
# trained system: fork availability, shared-memory frame round trip,
# broker admission/drain, typed overload shedding, and the fault
# drill — a worker is SIGKILLed mid-wave (supervision must respawn it
# and recover bit-for-bit) and a respawn-exhausted pool must degrade
# onto the inline path through the circuit breaker with the ledger
# balanced.  It exits 1 on any failed check, so a broken serving or
# recovery path dies here before the bench pass.
python -m repro.serve.doctor --system tiny

echo
echo "== benchmark smoke (BENCH_SMOKE=1) =="
# bench_*.py does not match pytest's default test-file glob; explicit
# paths collect regardless.  Smoke summaries land in benchmarks/.smoke/
# for the regression gate below; start from a clean slate so the gate
# can never pass on stale output from a previous run.
rm -rf benchmarks/.smoke
BENCH_SMOKE=1 python -m pytest benchmarks/bench_*.py -q -x --benchmark-disable

echo
echo "== bench regression gate =="
# Compares the fresh smoke numbers against committed baselines
# (benchmarks/smoke_baselines.json); >25% regression on a gated
# speedup ratio, or a flipped bit-for-bit contract, fails the build.
python scripts/bench_gate.py

echo
echo "== example smoke runs =="
# Examples rot silently unless CI executes them; REPRO_SMOKE=1 points
# them at the tiny trained system shared with the test suite.
REPRO_SMOKE=1 python examples/quickstart.py > /dev/null
echo "quickstart.py ok"
REPRO_SMOKE=1 python examples/medi_delivery_mission.py > /dev/null
echo "medi_delivery_mission.py ok"

if [[ "${1:-}" == "--full" ]]; then
    echo
    echo "== full-scale benchmarks =="
    python -m pytest benchmarks/bench_*.py -q -x
fi
