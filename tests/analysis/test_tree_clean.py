"""Whole-tree smoke: the repo itself lints clean, and the linter
actually bites when the guarded invariants are reintroduced."""

import textwrap
from pathlib import Path

from repro.analysis import lint_source, lint_tree
from repro.analysis.baseline import (
    Baseline,
    DEFAULT_BASELINE_RELPATH,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_tree_has_zero_active_findings():
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_RELPATH)
    result = lint_tree(REPO_ROOT, baseline=baseline)
    assert result.files > 100  # the walk really covered the tree
    details = "\n".join(f.format(show_hint=False)
                        for f in result.active)
    assert not result.active, f"repro-lint findings:\n{details}"


def test_reintroduced_global_seed_is_caught():
    # The acceptance scenario: a global np.random.seed anywhere in the
    # tree must fail `python -m repro.analysis --strict` (check.sh's
    # first stage).
    result = lint_source(
        "import numpy as np\nnp.random.seed(1234)\n",
        "src/repro/nn/injected.py", REPO_ROOT)
    assert any(f.rule == "RNG-GLOBAL-STATE" for f in result.active)


def test_reintroduced_dtypeless_zeros_is_caught():
    result = lint_source(
        "import numpy as np\nbuf = np.zeros((8, 8))\n",
        "src/repro/nn/injected.py", REPO_ROOT)
    assert any(f.rule == "FP32-DTYPELESS" for f in result.active)


def test_fp32_islands_still_exist():
    # Every allowlisted float64 island must still resolve to a real
    # file (and, when scoped, a real qualname) — otherwise the
    # allowlist rots into a blanket hole.
    from repro.analysis.checkers.fp32 import FLOAT64_ISLANDS

    for path, prefix, _why in FLOAT64_ISLANDS:
        target = REPO_ROOT / path
        assert target.exists(), f"island file vanished: {path}"
        if prefix is not None:
            head = prefix.split(".")[0]
            text = target.read_text()
            assert (f"def {head}" in text or f"class {head}" in text), \
                f"island qualname vanished: {path}::{prefix}"


def test_sanctioned_env_reader_list_matches_tree():
    # The engine-mode allowlist names exactly the files that actually
    # read the environment inside src/repro.
    from repro.analysis.checkers.engine_mode import (
        SANCTIONED_ENV_READERS,
    )

    for rel in SANCTIONED_ENV_READERS:
        path = REPO_ROOT / rel
        assert path.exists(), f"sanctioned reader vanished: {rel}"
        text = path.read_text()
        assert "os.environ" in text or "os.getenv" in text, \
            f"{rel} no longer reads the environment — drop it from " \
            "SANCTIONED_ENV_READERS"


def test_require_seed_documented_in_rng_rule():
    # Satellite contract: the linter's RNG rule points at the runtime
    # strict mode and vice versa.
    from repro.analysis.checkers import rng as rng_checker

    assert "REPRO_REQUIRE_SEED" in (rng_checker.__doc__ or "")
    rng_module = REPO_ROOT / "src/repro/utils/rng.py"
    assert "rng-discipline" in rng_module.read_text()


def test_adaptive_toggle_documented_in_engine_mode_rule():
    # Satellite contract (PR 7): the adaptive early-exit toggle is a
    # sanctioned environment read, and the checker module says so —
    # with the monitor module pointing back at the knob surface.
    from repro.analysis.checkers import engine_mode

    assert "REPRO_MONITOR_ADAPTIVE" in (engine_mode.__doc__ or "")
    monitor_module = REPO_ROOT / "src/repro/core/monitor.py"
    assert "REPRO_MONITOR_ADAPTIVE" in monitor_module.read_text()


def test_serve_workers_toggle_documented_in_engine_mode_rule():
    # Satellite contract (PR 9): the serving layer's worker-count
    # toggle is a sanctioned environment read, the checker module
    # documents the justification, and the broker module is the single
    # read site (with ServeConfig as the explicit override).
    from repro.analysis.checkers import engine_mode

    assert "REPRO_SERVE_WORKERS" in (engine_mode.__doc__ or "")
    assert "src/repro/serve/broker.py" in \
        engine_mode.SANCTIONED_ENV_READERS
    broker_module = REPO_ROOT / "src/repro/serve/broker.py"
    assert "REPRO_SERVE_WORKERS" in broker_module.read_text()


def test_env_read_outside_serve_broker_still_flagged():
    # Mirror of the allowlist extension: the same read one file over
    # is still a finding — the sanction covers broker.py only.
    source = "import os\nWORKERS = os.environ.get('X', '1')\n"
    flagged = lint_source(source, "src/repro/serve/pool.py", REPO_ROOT)
    assert any(f.rule == "ENG-ENV-READ" for f in flagged.active)
    sanctioned = lint_source(source, "src/repro/serve/broker.py",
                             REPO_ROOT)
    assert not any(f.rule == "ENG-ENV-READ"
                   for f in sanctioned.active)


def test_check_sh_runs_strict_lint_first():
    script = (REPO_ROOT / "scripts" / "check.sh").read_text()
    lint_pos = script.find("python -m repro.analysis --strict")
    pytest_pos = script.find("python -m pytest")
    assert lint_pos != -1, "check.sh does not run the linter"
    assert pytest_pos == -1 or lint_pos < pytest_pos, \
        "the lint stage must run before the test suite"


def test_example_suppression_parses():
    # The documented suppression idiom keeps working end to end.
    source = textwrap.dedent(
        """
        import numpy as np
        # repro-lint: disable=RNG-UNSEEDED  interactive demo path
        rng = np.random.default_rng()
        """)
    result = lint_source(source, "examples/demo.py", REPO_ROOT)
    assert not result.active
    assert any(f.rule == "RNG-UNSEEDED" for f in result.suppressed)
