"""Persistent fork-worker pool behind ``EpisodeScheduler(workers=N)``.

This replaces the fork-per-call ``multiprocessing.Pool`` the engine
used to build inside every ``run()``: that design paid fork + model
pickling per wavefront (the ROADMAP measured ``workers=2`` at 0.72x),
parked the model in a module global (``_WORKER_MODEL``) that was only
cleared on the happy path, and threw away all monitor statistics.

The persistent pool fixes the economics and the hygiene:

* **Workers fork once** per pool.  The model, pipeline config and
  engine config travel to the children as inherited copy-on-write
  memory at fork time — shipped once, never pickled again.
* **Frames travel through shared memory** (:class:`repro.serve.shm.
  FrameRing`): the per-task message is a tiny ticket + RNG state, and
  the worker reads the frame as a zero-copy numpy view.  The ring
  segment itself is inherited at fork, so ring-slot tasks never even
  re-attach.
* **Determinism is unchanged**: every task carries its episode's
  monitor RNG state and returns the advanced state, exactly like the
  old pool, so ``workers=N`` stays bit-for-bit identical to inline for
  any worker count.
* **Observability round-trips**: each reply carries the episode's
  adaptive-monitor stats so the scheduler can merge them — the old
  pool silently reported nothing.
* **Deterministic lifecycle**: ``close()`` (also via context manager)
  sends shutdown sentinels, joins the workers with a bounded timeout
  and an escalation ladder (join -> terminate -> kill), and unlinks
  the shared segment.  No module-global model reference exists at all.

**Transport: one private pipe per worker.**  Tasks and replies travel
over a per-worker duplex :func:`multiprocessing.Pipe`, never a shared
``multiprocessing.Queue``.  Shared queues synchronise their readers
and writers with locks held *inside the worker processes*; a worker
SIGKILLed while its queue feeder holds the shared write lock leaves
that lock held forever and silently wedges every surviving sibling —
an unsupervisable failure (all processes look alive).  With private
pipes, a dying worker can only tear its own channel, and the tear
*is* the death signal: the parent's ``connection.wait`` wakes on EOF
immediately.  The parent dispatches one task per idle worker and
backlogs the rest, so it always knows exactly which task each worker
holds — supervision needs no worker-side cooperation.

**Supervision.**  A dead or hung worker is an operational fact, not a
protocol violation:

* a **dead worker** (SIGKILL, OOM, crash) is respawned — capped
  exponential backoff, at most ``max_respawns`` per pool — and the
  task it was holding is resubmitted under a bumped *attempt* number.
  Replies already buffered in the dead worker's pipe are drained
  first (a reply outlives its writer until EOF), stale attempts are
  discarded, and because tasks are pure functions of ``(frame,
  rng_state)`` the re-executed task's reply is bit-for-bit the one
  the dead worker would have produced.
* a task that misses the **collect deadline** fails with a typed
  :class:`~repro.serve.faults.CheckTimedOut` and its worker is killed
  (a hung task cannot be cancelled any other way) and replaced; the
  task's ring ticket is reclaimed.
* when the respawn budget is exhausted the pool reclaims every
  in-flight ticket and raises :class:`~repro.serve.faults.
  WorkerPoolError` — callers (the broker's circuit breaker) degrade
  to the bit-identical inline path.

Workers are daemonic, so an abandoned pool cannot outlive its parent
even if ``close()`` is never called.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection

from repro.serve.faults import CheckTimedOut, WorkerPoolError
from repro.serve.shm import FrameRing, attach_frame, detach_frame

__all__ = ["PersistentWorkerPool", "fork_available"]

_SHUTDOWN = None
_JOIN_TIMEOUT_S = 5.0
_COLLECT_POLL_S = 0.05
#: Capped exponential backoff between respawns: base * 2**n, capped.
_BACKOFF_BASE_S = 0.05
_BACKOFF_MAX_S = 1.0
#: Grace for a killed hung worker to actually exit before respawning.
_KILL_JOIN_S = 2.0


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in mp.get_all_start_methods()


def _pool_worker(worker_id, incarnation, conn, stale_conns,
                 ring_shm, model, config, engine, fault_plan):
    """Worker loop: one pipeline built at startup, then task -> reply.

    ``model``/``config``/``engine`` arrive by fork inheritance — this
    function runs only in the child, and all mutable state lives in
    locals (fork-task purity: no module-level writes).

    ``conn`` is this worker's private end of its task/reply pipe;
    ``stale_conns`` are the parent-side connection objects inherited
    at fork, closed immediately so a sibling's death yields EOF in the
    parent (an inherited copy of a pipe end would keep it open).

    Task: ``(index, attempt, ticket, rng_state)``.  Reply: ``(index,
    attempt, result, new_rng_state, adaptive_stats)`` on success, or
    ``(index, attempt, exc, None, None)`` — the parent re-raises
    instead of hanging.
    """
    from repro.core.pipeline import LandingPipeline
    from repro.serve.chaos import apply_fault

    for stale in stale_conns:
        try:
            stale.close()
        except OSError:
            pass
    pipeline = LandingPipeline(model, config, rng=0, engine=engine)
    segments = {ring_shm.name: ring_shm}
    started = 0
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break  # parent is gone
        if task is _SHUTDOWN:
            break
        index, attempt, ticket, rng_state = task
        fault = None
        if fault_plan is not None:
            fault = fault_plan.fault_for(worker_id, incarnation, started)
        started += 1
        try:
            if fault is not None:
                apply_fault(fault)  # may never return (kill/hang)
            frame = attach_frame(ticket, segments)
            pipeline.segmenter.rng.bit_generator.state = rng_state
            pipeline.monitor.reset_adaptive_stats()
            result = pipeline.run(frame)
            del frame  # drop the buffer export before any segment close
            detach_frame(ticket, segments)
            reply = (
                index,
                attempt,
                result,
                pipeline.segmenter.rng.bit_generator.state,
                dict(pipeline.monitor.last_adaptive_stats),
            )
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            reply = (index, attempt, exc, None, None)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break  # parent is gone


@dataclass
class _Inflight:
    """Parent-side record of one submitted, unanswered task."""

    attempt: int
    ticket: object
    rng_state: object
    submitted_at: float
    corrupt: bool = False


class PersistentWorkerPool:
    """A fixed set of long-lived, supervised fork workers.

    Construction forks ``workers`` daemon processes that each build one
    :class:`~repro.core.pipeline.LandingPipeline` from the inherited
    ``(model, config, engine)`` and then serve tasks over a private
    pipe until ``close()``.  ``submit`` parks the frame in the
    shared-memory ring and dispatches (or backlogs) a ticket;
    ``collect`` gathers replies (in completion order — callers key on
    the submitted index), recycles the ring slots, and supervises
    worker liveness while it waits (see the module docstring for the
    respawn/deadline/reclamation contract).  ``stats`` counts
    ``worker_deaths``, ``respawns``, ``resubmitted``,
    ``tasks_timed_out`` and ``tickets_reclaimed``.

    The pool snapshots the process state at fork, which is exactly what
    the model-shipped-once contract wants; if the parent mutates the
    model or flips the global conv engine afterwards, build a new pool.
    Respawned workers fork from the parent's *current* state under the
    same assumption.
    """

    def __init__(self, model, config, engine, workers: int,
                 ring_slots: int | None = None,
                 max_respawns: int | None = None,
                 fault_plan=None,
                 join_timeout_s: float | None = None):
        if workers < 1:
            raise ValueError(f"PersistentWorkerPool needs workers >= 1, got {workers}")
        if not fork_available():
            raise RuntimeError(
                "PersistentWorkerPool requires the 'fork' start method; "
                "check repro.serve.pool.fork_available() first"
            )
        self.workers = int(workers)
        self.max_respawns = (max_respawns if max_respawns is not None
                             else getattr(engine, "max_respawns", 3))
        self._join_timeout_s = (join_timeout_s if join_timeout_s is not None
                                else _JOIN_TIMEOUT_S)
        self._ctx = mp.get_context("fork")
        self._model = model
        self._config = config
        self._engine = engine
        self._fault_plan = fault_plan
        slots = ring_slots if ring_slots is not None else max(16, 4 * self.workers)
        self._ring = FrameRing(slots=slots)
        self._inflight: dict[int, _Inflight] = {}
        self._backlog: deque[int] = deque()
        self._replies: deque[tuple[int, tuple]] = deque()
        self._submits = 0
        self._closed = False
        self._failed = False
        self.stats: dict[str, int] = {
            "worker_deaths": 0,
            "respawns": 0,
            "resubmitted": 0,
            "tasks_timed_out": 0,
            "tickets_reclaimed": 0,
        }
        self._incarnations = [0] * self.workers
        self._assigned: list[int | None] = [None] * self.workers
        self._conns: list = [None] * self.workers
        self._procs: list = [None] * self.workers
        for w in range(self.workers):
            self._start_worker(w)

    def _start_worker(self, worker_id: int) -> None:
        """Fork one worker on a fresh private pipe.

        Sequenced strictly as pipe -> fork -> close child end, so no
        process ever inherits another's *child* pipe end; the parent
        ends it does inherit are closed first thing in the worker.
        """
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        self._conns[worker_id] = parent_conn
        stale = [c for c in self._conns if c is not None]
        proc = self._ctx.Process(
            target=_pool_worker,
            args=(worker_id, self._incarnations[worker_id],
                  child_conn, stale, self._ring.segment, self._model,
                  self._config, self._engine, self._fault_plan),
            daemon=True,
            name=(f"repro-serve-worker-{worker_id}"
                  f".{self._incarnations[worker_id]}"),
        )
        self._procs[worker_id] = proc
        self._assigned[worker_id] = None
        proc.start()
        child_conn.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, index: int, frame, rng_state) -> None:
        """Park ``frame`` in shared memory and dispatch one task."""
        if self._closed:
            raise WorkerPoolError("closed", "submit after close()")
        if self._failed:
            raise WorkerPoolError(
                "respawn_budget_exhausted",
                "pool gave up after repeated worker deaths")
        ticket = self._ring.put(frame)
        corrupt = (self._fault_plan is not None
                   and self._fault_plan.corrupts_submit(self._submits))
        self._submits += 1
        self._inflight[index] = _Inflight(
            attempt=0, ticket=ticket, rng_state=rng_state,
            submitted_at=time.monotonic(), corrupt=corrupt)
        self._backlog.append(index)
        self._dispatch()

    def collect(self, count: int, deadline_s: float | None = None) -> list:
        """Return ``count`` outcomes ``(index, result, rng_state, stats)``.

        Replies are returned in completion order — callers key on the
        submitted index.  All ``count`` outcomes are drained (and their
        ring slots recycled) before any failure is re-raised, so one
        failing task cannot strand the others' replies.  While waiting
        the pool supervises: a dead worker's pipe EOF wakes the wait
        immediately, the worker is respawned (its task resubmitted,
        answered bit-for-bit by the replacement), and with
        ``deadline_s`` set, a task older than the deadline gets its
        hung worker killed and is counted as a typed timeout.  Raises
        ``RuntimeError`` for a task that failed in its worker,
        :class:`CheckTimedOut` when any task timed out, and
        :class:`WorkerPoolError` when supervision ran out of respawn
        budget (all in-flight tickets reclaimed first).
        """
        out = []
        failure = None
        timed_out = 0
        while len(out) + timed_out < count:
            if self._replies:
                worker_id, reply = self._replies.popleft()
                index, attempt, payload, rng_state, stats = reply
                entry = self._inflight.get(index)
                if entry is None or entry.attempt != attempt:
                    continue  # stale reply from a superseded attempt
                del self._inflight[index]
                self._ring.release(entry.ticket)
                if self._assigned[worker_id] == index:
                    self._assigned[worker_id] = None
                self._dispatch()
                if rng_state is None and isinstance(payload, BaseException):
                    if failure is None:
                        failure = (index, payload)
                    out.append(None)  # placeholder: counted, not returned
                else:
                    out.append((index, payload, rng_state, stats))
                continue
            try:
                self._pump(deadline_s)
                timed_out += self._expire(deadline_s)
            except WorkerPoolError:
                self._failed = True
                self._reclaim_inflight()
                raise
        out = [o for o in out if o is not None]
        if failure is not None:
            raise RuntimeError(
                f"episode frame task {failure[0]} failed in worker: {failure[1]!r}"
            ) from failure[1]
        if timed_out:
            raise CheckTimedOut(deadline_s * 1000.0, scope="task")
        return out

    def _pump(self, deadline_s: float | None) -> None:
        """Wait briefly for pipe activity; drain replies, reap deaths."""
        ready = mp_connection.wait(
            [c for c in self._conns if c is not None and not c.closed],
            timeout=self._poll_s(deadline_s))
        for conn in ready:
            worker_id = self._conns.index(conn)
            try:
                while conn.poll(0):
                    self._replies.append((worker_id, conn.recv()))
            except Exception:  # noqa: BLE001 - EOF or a write torn by
                # SIGKILL mid-pickle; either way the channel is dead
                # and respawn + resubmit is the safe response.
                self._handle_death(worker_id)
        if not ready:
            # Nothing moved: belt-and-braces liveness sweep (a worker
            # that died before its pipe ever carried data still EOFs,
            # but is_alive() is authoritative and free).
            for worker_id, proc in enumerate(self._procs):
                if not proc.is_alive():
                    self._handle_death(worker_id)

    def _handle_death(self, worker_id: int,
                      unexpected: bool = True) -> None:
        """Reap + respawn worker ``worker_id``; rescue its task."""
        proc = self._procs[worker_id]
        proc.join(timeout=_KILL_JOIN_S)
        if unexpected:
            self.stats["worker_deaths"] += 1
        lost = self._assigned[worker_id]
        try:
            self._conns[worker_id].close()
        except OSError:
            pass
        self._respawn(worker_id)
        entry = self._inflight.get(lost) if lost is not None else None
        answered = any(r[0] == lost and r[1] == entry.attempt
                       for _, r in self._replies) if entry else False
        if entry is not None and not answered:
            # The reply died with the worker: resubmit under the next
            # attempt number (stale replies are discarded by tag).
            entry.attempt += 1
            self._backlog.appendleft(lost)
            self.stats["resubmitted"] += 1
        self._dispatch()

    def _respawn(self, worker_id: int) -> None:
        """Replace worker ``worker_id`` (capped exponential backoff)."""
        if self.stats["respawns"] >= self.max_respawns:
            raise WorkerPoolError(
                "respawn_budget_exhausted",
                f"{self.stats['respawns']} respawns already spent "
                f"(max_respawns={self.max_respawns})")
        backoff = min(_BACKOFF_BASE_S * (2 ** self.stats["respawns"]),
                      _BACKOFF_MAX_S)
        time.sleep(backoff)
        self._incarnations[worker_id] += 1
        self._start_worker(worker_id)
        self.stats["respawns"] += 1

    def _dispatch(self) -> None:
        """Hand backlogged tasks to idle workers, one task each."""
        for worker_id in range(self.workers):
            if not self._backlog:
                return
            if self._assigned[worker_id] is not None:
                continue
            if not self._procs[worker_id].is_alive():
                continue  # death handled on its pipe's EOF
            index = None
            while self._backlog:
                candidate = self._backlog.popleft()
                if candidate in self._inflight:
                    index = candidate
                    break  # expired/cancelled entries just drop out
            if index is None:
                return
            entry = self._inflight[index]
            wire_ticket = entry.ticket
            if entry.corrupt and entry.attempt == 0:
                from repro.serve.chaos import corrupt_ticket

                wire_ticket = corrupt_ticket(entry.ticket)
            try:
                self._conns[worker_id].send(
                    (index, entry.attempt, wire_ticket,
                     entry.rng_state))
            except (BrokenPipeError, OSError):
                self._backlog.appendleft(index)
                continue  # the pipe's EOF will surface the death
            self._assigned[worker_id] = index

    def _poll_s(self, deadline_s: float | None) -> float:
        """Poll interval: short, and never sleeping past a deadline."""
        poll = _COLLECT_POLL_S
        if deadline_s is not None and self._inflight:
            now = time.monotonic()
            nearest = min(e.submitted_at for e in self._inflight.values())
            poll = min(poll, max(nearest + deadline_s - now, 0.005))
        return poll

    def _expire(self, deadline_s: float | None) -> int:
        """Fail tasks past the deadline; kill the workers holding them."""
        if deadline_s is None:
            return 0
        now = time.monotonic()
        expired = [index for index, entry in self._inflight.items()
                   if now - entry.submitted_at > deadline_s]
        for index in expired:
            entry = self._inflight.pop(index)
            if self._ring.reclaim(entry.ticket):
                self.stats["tickets_reclaimed"] += 1
            self.stats["tasks_timed_out"] += 1
            if index in self._assigned:
                # A hung task cannot be cancelled; kill its worker and
                # respawn.  (A task still in the backlog just ages out
                # — _dispatch skips entries no longer in flight.)
                worker_id = self._assigned.index(index)
                proc = self._procs[worker_id]
                if proc.is_alive():
                    proc.kill()
                self._handle_death(worker_id, unexpected=False)
        return len(expired)

    def _reclaim_inflight(self) -> None:
        """Recycle every in-flight ticket (fault/abort paths)."""
        for entry in self._inflight.values():
            if self._ring.reclaim(entry.ticket):
                self.stats["tickets_reclaimed"] += 1
        self._inflight.clear()
        self._backlog.clear()

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Shut workers down deterministically and unlink shared memory.

        Bounded: each worker gets ``join_timeout_s`` to drain its
        sentinel, then the escalation ladder runs — ``terminate()``
        (SIGTERM), another bounded join, then ``kill()`` (SIGKILL,
        which nothing can ignore).  A hung worker can therefore never
        wedge ``EpisodeScheduler.close()`` or the ``weakref.finalize``
        backstop.
        """
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(_SHUTDOWN)
            except (BrokenPipeError, OSError, ValueError):
                pass  # worker already dead / pipe torn
        for proc in self._procs:
            proc.join(timeout=self._join_timeout_s)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=self._join_timeout_s)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=self._join_timeout_s)
        self._reclaim_inflight()
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._ring.close()

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
