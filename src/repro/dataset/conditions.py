"""Imaging-condition model: the distribution-shift mechanism.

The paper's key qualitative result (Fig. 4) contrasts an in-distribution
UAVid test image with an out-of-distribution sunset video frame on which
the segmentation model fails and the Bayesian monitor must catch the
errors.  Conditions here parameterise that shift: training uses the
daylight presets; evaluation can switch to sunset/night/fog, which move
the imagery off the training manifold exactly as in the paper (different
lighting, colour cast, shadow geometry, sensor noise).

Table IV High-2 ("validated under a wide range of external conditions")
is exercised by sweeping these presets.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ImagingConditions",
    "DAY",
    "BRIGHT_DAY",
    "OVERCAST",
    "SUNSET",
    "NIGHT",
    "FOG",
    "TRAINING_CONDITIONS",
    "OOD_CONDITIONS",
    "ALL_CONDITIONS",
    "by_name",
]


@dataclass(frozen=True)
class ImagingConditions:
    """Rendering-time imaging parameters.

    Attributes
    ----------
    brightness, contrast, gamma:
        Global tone controls applied to the reflectance image.
    color_cast:
        Per-channel multiplier; a warm cast ``(>1, ~1, <1)`` reproduces
        golden-hour/sunset illumination.
    fog:
        Fraction of haze blending toward a grey veil (0 disables).
    noise_sigma:
        Additive Gaussian sensor noise.
    blur_sigma:
        Optical blur in pixels (0 disables).
    sun_azimuth_deg:
        Direction shadows are cast toward (degrees, image convention).
    sun_elevation_deg:
        Sun height; low elevations cast long shadows.
    shadow_strength:
        How dark cast shadows are (0 disables shadows entirely).
    """

    name: str
    brightness: float = 1.0
    contrast: float = 1.0
    gamma: float = 1.0
    color_cast: tuple[float, float, float] = (1.0, 1.0, 1.0)
    fog: float = 0.0
    noise_sigma: float = 0.01
    blur_sigma: float = 0.0
    sun_azimuth_deg: float = 315.0
    sun_elevation_deg: float = 55.0
    shadow_strength: float = 0.35

    def __post_init__(self):
        if not 0.0 <= self.fog <= 1.0:
            raise ValueError(f"fog must be in [0, 1], got {self.fog}")
        if self.noise_sigma < 0 or self.blur_sigma < 0:
            raise ValueError("noise/blur sigmas must be non-negative")
        if not 1.0 <= self.sun_elevation_deg <= 90.0:
            raise ValueError("sun elevation must be in [1, 90] degrees")
        if not 0.0 <= self.shadow_strength <= 1.0:
            raise ValueError("shadow_strength must be in [0, 1]")


#: Nominal midday training condition.
DAY = ImagingConditions(name="day")

#: Slightly over-exposed midday — still in-distribution.
BRIGHT_DAY = ImagingConditions(name="bright_day", brightness=1.12,
                               contrast=1.05, shadow_strength=0.4)

#: Diffuse overcast light: soft shadows, mild desaturation.
OVERCAST = ImagingConditions(name="overcast", brightness=0.9,
                             contrast=0.85, shadow_strength=0.1,
                             color_cast=(0.97, 0.98, 1.02))

#: The paper's out-of-distribution case (Fig. 4b): a sunset frame with a
#: strong warm cast, long shadows and reduced contrast.
SUNSET = ImagingConditions(name="sunset", brightness=0.72, contrast=0.68,
                           gamma=1.12, color_cast=(1.32, 0.92, 0.62),
                           sun_elevation_deg=9.0, shadow_strength=0.6,
                           noise_sigma=0.02)

#: Severe low-light shift (beyond the paper; used for condition sweeps).
NIGHT = ImagingConditions(name="night", brightness=0.22, contrast=0.55,
                          color_cast=(0.75, 0.82, 1.12),
                          noise_sigma=0.05, shadow_strength=0.0)

#: Haze/fog shift (beyond the paper; used for condition sweeps).
FOG = ImagingConditions(name="fog", brightness=0.95, contrast=0.6,
                        fog=0.45, blur_sigma=1.0, shadow_strength=0.08,
                        noise_sigma=0.015)

#: Conditions the segmentation model is trained on (in-distribution).
TRAINING_CONDITIONS: tuple[ImagingConditions, ...] = (
    DAY, BRIGHT_DAY, OVERCAST)

#: Conditions held out of training (out-of-distribution shifts).
OOD_CONDITIONS: tuple[ImagingConditions, ...] = (SUNSET, NIGHT, FOG)

ALL_CONDITIONS: tuple[ImagingConditions, ...] = (
    TRAINING_CONDITIONS + OOD_CONDITIONS)


def by_name(name: str) -> ImagingConditions:
    """Look up a preset condition by its name."""
    for cond in ALL_CONDITIONS:
        if cond.name == name:
            return cond
    raise KeyError(f"unknown imaging condition {name!r}; known: "
                   f"{[c.name for c in ALL_CONDITIONS]}")
