"""Asyncio admission broker: many clients, one episode engine.

:class:`ServeBroker` is the front door of the serving layer.  Clients
submit zone checks (``await broker.check_zone(image, box)``) or whole
episode steps (``await broker.run_episode(frames, seed=...)``) from any
number of concurrent coroutines; the broker micro-batches everything
that arrives within a short **admission window** (a few milliseconds)
into one *wave* and feeds the wave to a single shared
:class:`repro.core.engine.EpisodeScheduler` — zone checks as one
jointly seeded stacked pass (:meth:`EpisodeScheduler.check_zones_wave`),
episode steps as one ``scheduler.run`` — so concurrency buys stacked
batched forwards instead of contention.

**Backpressure is explicit and typed.**  The admission queue is
bounded (``ServeConfig.queue_depth``); a request that arrives while
the queue is full is shed immediately with :class:`AdmissionRejected`
(``reason="queue_full"``), and a request after shutdown began gets
``reason="shutdown"``.  A safety check is never silently dropped or
partially answered: every admitted request's future resolves with a
verdict, an episode result, or the wave's exception, and
:meth:`ServeBroker.stop` drains all in-flight checks before returning.

Waves execute on a dedicated single worker thread so the event loop
stays responsive for admission while numpy crunches; multi-core scaling
comes from the scheduler's persistent worker pool
(``ServeConfig.workers`` / ``REPRO_SERVE_WORKERS``), not from thread
fan-out.

**Fault tolerance.**  Execution-time faults get the same
no-silent-drop treatment as admission (see :mod:`repro.serve.faults`):

* ``deadline_ms`` arms per-request deadlines on the monotonic clock —
  a request that misses its deadline resolves with a typed
  :class:`~repro.serve.faults.CheckTimedOut` whose ``verdict`` is a
  conservative *reject* for zone checks (fail safe, never open).
* A wave that dies in the worker pool (:class:`~repro.serve.faults.
  WorkerPoolError`, i.e. worker deaths past the respawn budget) is
  re-run on the **bit-identical inline path** — the engine's sharding
  contract guarantees ``workers=N`` equals ``workers=1``, so degraded
  answers are the same answers, just slower.
* A :class:`~repro.serve.breaker.CircuitBreaker` counts consecutive
  pool faults: after ``breaker_threshold`` of them the pool path is
  bypassed entirely (every episode wave runs degraded) until
  ``breaker_cooldown_s`` elapses, then a half-open probe re-forks the
  pool and closes the breaker on success.

``broker.stats`` extends the ledger accordingly: ``timed_out``,
``pool_faults``, ``degraded_waves``, ``breaker_opens``, ``respawns``,
``worker_deaths`` and ``tasks_resubmitted``.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.engine import (
    _MONITOR_BATCHING,
    EngineConfig,
    EpisodeRequest,
    EpisodeScheduler,
)
from repro.serve.breaker import CircuitBreaker
from repro.serve.faults import (
    CheckTimedOut,
    WorkerPoolError,
    conservative_reject,
)
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "AdmissionRejected",
    "ServeBroker",
    "ServeConfig",
    "serve_workers_default",
]

#: Admission-queue sentinel that tells the broker loop to drain + exit.
_SHUTDOWN = object()


def serve_workers_default() -> int | None:
    """Worker count requested via ``REPRO_SERVE_WORKERS``, or None.

    The serving layer's deployment-time sizing toggle (sanctioned env
    read site, mirroring ``REPRO_CONV_ENGINE``): ``ServeConfig`` reads
    it only when its ``workers`` field is left unset, so explicit
    configuration always wins.
    """
    raw = os.environ.get("REPRO_SERVE_WORKERS", "").strip()
    if not raw:
        return None
    value = int(raw)
    if value < 1:
        raise ValueError(
            f"REPRO_SERVE_WORKERS must be >= 1, got {raw!r}")
    return value


class AdmissionRejected(RuntimeError):
    """Typed backpressure rejection — the shed half of the contract.

    Raised synchronously at submission time, never after a request was
    admitted, so a client always knows whether its safety check is in
    flight.  ``reason`` is ``"queue_full"`` (admission queue at
    ``queue_depth``) or ``"shutdown"`` (broker stopping/stopped);
    ``queue_depth`` echoes the configured bound.
    """

    def __init__(self, reason: str, queue_depth: int):
        super().__init__(
            f"request rejected at admission ({reason}, "
            f"queue_depth={queue_depth}) — resubmit or back off")
        self.reason = reason
        self.queue_depth = queue_depth


@dataclass(frozen=True)
class ServeConfig:
    """Admission-control and backend knobs of :class:`ServeBroker`.

    Attributes
    ----------
    admission_window_ms:
        How long (milliseconds) the broker keeps collecting requests
        into the current wave after the first one arrives.  Default
        2.0 — a couple of milliseconds buys most of the stacking win
        (a stacked pass amortises per-forward overhead) while staying
        far below a frame interval; ``0`` serves every request the
        moment it is dequeued (no batching, lowest latency).
    queue_depth:
        Bound of the admission queue — the *explicit backpressure*
        knob.  A request arriving while ``queue_depth`` requests are
        already waiting is shed with a typed
        :class:`AdmissionRejected` (``reason="queue_full"``) instead
        of queueing unboundedly or being dropped silently.  Default
        64.
    max_wave:
        Cap on requests admitted into one wave, whatever the window
        collects.  Default 32 — matches the joint pass's measured
        chunk sweet spot (``EngineConfig.joint_max_batch``); larger
        waves only grow per-wave latency without stacking better.
    monitor_batching:
        ``EngineConfig.monitor_batching`` for the broker's scheduler
        when it runs single-process: ``"joint"`` (default; episode
        steps share the stacked-pass machinery), ``"shared"`` or
        ``"exact"``.  Ignored when the resolved worker count is > 1 —
        worker sharding requires exact mode, so the broker switches to
        it (zone-check waves always run jointly stacked either way,
        via :meth:`EpisodeScheduler.check_zones_wave`).
    workers:
        Persistent worker processes for the backing scheduler
        (``EngineConfig.workers``).  ``None`` (default) defers to the
        ``REPRO_SERVE_WORKERS`` environment toggle and falls back to
        ``1``; an explicit value always wins.  See
        :attr:`ServeBroker.effective_workers` for the degree actually
        achieved on this platform.
    deadline_ms:
        Per-request deadline in milliseconds on the monotonic clock,
        measured from admission.  ``None`` (default) disables
        deadlines.  A request that cannot be answered in time resolves
        with a typed :class:`~repro.serve.faults.CheckTimedOut` —
        carrying a conservative *reject* verdict for zone checks — so
        a timed-out safety check fails safe, never open and never
        silently.  The deadline is threaded down into
        ``EngineConfig.deadline_ms`` so the pool can kill and replace
        a worker hung on a task.
    breaker_threshold:
        Consecutive pool faults (worker-pool failures or pool-path
        timeouts) that trip the circuit breaker into degraded mode.
        Default 3.
    breaker_cooldown_s:
        Seconds the breaker stays open before a half-open recovery
        probe is allowed back onto the pool path.  Default 30.
    """

    admission_window_ms: float = 2.0
    queue_depth: int = 64
    max_wave: int = 32
    monitor_batching: str = "joint"
    workers: int | None = None
    deadline_ms: float | None = None
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 30.0

    def __post_init__(self):
        if self.admission_window_ms < 0:
            raise ValueError(
                f"admission_window_ms must be >= 0, "
                f"got {self.admission_window_ms}")
        check_positive("queue_depth", self.queue_depth)
        check_positive("max_wave", self.max_wave)
        if self.monitor_batching not in _MONITOR_BATCHING:
            raise ValueError(
                f"monitor_batching must be one of {_MONITOR_BATCHING}, "
                f"got {self.monitor_batching!r}")
        if self.workers is not None:
            check_positive("workers", self.workers)
        if self.deadline_ms is not None:
            check_positive("deadline_ms", self.deadline_ms)
        check_positive("breaker_threshold", self.breaker_threshold)
        check_non_negative("breaker_cooldown_s",
                           self.breaker_cooldown_s)

    def resolved_workers(self) -> int:
        """The worker count after the environment fallback."""
        if self.workers is not None:
            return self.workers
        return serve_workers_default() or 1

    def engine_config(self, base: EngineConfig | None = None) -> EngineConfig:
        """``base`` rewritten for this serve configuration.

        Worker sharding requires ``monitor_batching="exact"`` (the
        engine validates this), so a multi-worker broker always runs
        its scheduler in exact mode; otherwise the broker's
        ``monitor_batching`` choice is applied.
        """
        from dataclasses import replace

        base = base if base is not None else EngineConfig()
        if self.deadline_ms is not None:
            # The pool enforces the same bound per task, so a worker
            # hung on a request is killed instead of outliving it.
            base = replace(base, deadline_ms=self.deadline_ms)
        workers = self.resolved_workers()
        if workers > 1:
            return replace(base, workers=workers,
                           monitor_batching="exact")
        return replace(base, workers=1,
                       monitor_batching=self.monitor_batching)


@dataclass
class _Pending:
    """One admitted request waiting in the broker queue."""

    kind: str  # "zone" | "episode"
    payload: object
    future: asyncio.Future = field(repr=False)
    admitted_at: float = 0.0  # monotonic clock; deadline anchor


class ServeBroker:
    """Micro-batching admission broker over one episode scheduler.

    Usage::

        async with ServeBroker(model, config=pipeline_config) as broker:
            verdict = await broker.check_zone(image, box)
            episode = await broker.run_episode(frames, seed=7)

    Construction builds the backing :class:`EpisodeScheduler` from
    ``serve.engine_config(engine)``; ``start``/``stop`` (or the async
    context manager) run the admission loop.  ``stats`` counts
    admissions, typed rejections, waves and served checks — the
    no-silent-drop ledger the serve bench audits.
    """

    def __init__(self, model, config=None, engine: EngineConfig | None = None,
                 serve: ServeConfig | None = None, rng=None):
        self.serve = serve or ServeConfig()
        self.scheduler = EpisodeScheduler(
            model, config=config, engine=self.serve.engine_config(engine),
            rng=rng)
        self.stats: dict[str, int] = {
            "admitted": 0,
            "rejected_queue_full": 0,
            "rejected_shutdown": 0,
            "waves": 0,
            "max_wave": 0,
            "zone_checks": 0,
            "episode_steps": 0,
            "wave_errors": 0,
            "timed_out": 0,
            "pool_faults": 0,
            "degraded_waves": 0,
            "breaker_opens": 0,
            "respawns": 0,
            "worker_deaths": 0,
            "tasks_resubmitted": 0,
        }
        self._model = model
        self._config = config
        self._breaker = CircuitBreaker(self.serve.breaker_threshold,
                                       self.serve.breaker_cooldown_s)
        self._fallback: EpisodeScheduler | None = None
        self._queue: asyncio.Queue | None = None
        self._runner: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._accepting = False

    @property
    def breaker_state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"``."""
        return self._breaker.state

    # -- lifecycle -----------------------------------------------------
    @property
    def effective_workers(self) -> int:
        """Worker processes the backing scheduler actually uses."""
        return self.scheduler.effective_workers

    @property
    def running(self) -> bool:
        return self._runner is not None and not self._runner.done()

    async def start(self) -> "ServeBroker":
        """Start the admission loop (idempotent while running)."""
        if self.running:
            return self
        self._queue = asyncio.Queue(maxsize=self.serve.queue_depth)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-wave")
        self._accepting = True
        self._runner = asyncio.create_task(
            self._run(), name="repro-serve-broker")
        return self

    async def stop(self) -> None:
        """Graceful shutdown: reject new work, drain in-flight checks.

        Every request admitted before ``stop`` resolves (served or
        failed with its wave's exception) before this returns; later
        submissions get ``AdmissionRejected(reason="shutdown")``.
        """
        self._accepting = False
        if self._runner is not None:
            await self._queue.put(_SHUTDOWN)
            try:
                await self._runner
            finally:
                self._runner = None
                self._executor.shutdown(wait=True)
                self._executor = None
        if self._fallback is not None:
            self._fallback.close()
        self.scheduler.close()
        self._sync_pool_stats()

    async def __aenter__(self) -> "ServeBroker":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- client surface ------------------------------------------------
    async def check_zone(self, image, box):
        """One zone safety check; resolves to a ``ZoneVerdict``.

        Raises :class:`AdmissionRejected` (typed, immediate) when the
        admission queue is full or the broker is shutting down.
        """
        return await self._admit("zone", (image, box))

    async def check_zones(self, image, boxes) -> list:
        """All of one frame's zones, admitted together."""
        return list(await asyncio.gather(
            *(self.check_zone(image, box) for box in boxes)))

    async def run_episode(self, frames, seed=0, name=""):
        """One full episode step; resolves to an ``EpisodeResult``."""
        request = EpisodeRequest(frames=tuple(frames), seed=seed,
                                 name=name)
        return await self._admit("episode", request)

    def _admit(self, kind: str, payload) -> asyncio.Future:
        if not self._accepting or self._queue is None:
            self.stats["rejected_shutdown"] += 1
            raise AdmissionRejected("shutdown", self.serve.queue_depth)
        item = _Pending(kind, payload,
                        asyncio.get_running_loop().create_future(),
                        admitted_at=time.monotonic())
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.stats["rejected_queue_full"] += 1
            raise AdmissionRejected(
                "queue_full", self.serve.queue_depth) from None
        self.stats["admitted"] += 1
        return item.future

    # -- admission loop ------------------------------------------------
    async def _run(self) -> None:
        window_s = self.serve.admission_window_ms / 1000.0
        loop = asyncio.get_running_loop()
        draining = False
        while not draining:
            item = await self._queue.get()
            if item is _SHUTDOWN:
                break
            wave = [item]
            deadline = loop.time() + window_s
            while len(wave) < self.serve.max_wave:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(),
                                                 remaining)
                except asyncio.TimeoutError:
                    break
                if nxt is _SHUTDOWN:
                    draining = True
                    break
                wave.append(nxt)
            await self._serve_wave(wave)
        # Shutdown sentinel seen: serve whatever was already admitted —
        # an admitted safety check is never dropped.
        leftovers = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not _SHUTDOWN:
                leftovers.append(item)
        while leftovers:
            wave = leftovers[:self.serve.max_wave]
            leftovers = leftovers[self.serve.max_wave:]
            await self._serve_wave(wave)

    async def _serve_wave(self, wave: list) -> None:
        """Serve one admitted wave: zones stacked, episodes batched.

        Zone checks run first (one ``check_zones_wave``), episode
        steps second (one ``scheduler.run``) — a fixed order, so a
        fixed request trace replays the scheduler's joint RNG stream
        identically.  Waves execute on the broker's dedicated worker
        thread; every member future resolves here, with the result, a
        typed timeout, or the wave's exception.
        """
        self.stats["waves"] += 1
        self.stats["max_wave"] = max(self.stats["max_wave"], len(wave))
        deadline_s = (None if self.serve.deadline_ms is None
                      else self.serve.deadline_ms / 1000.0)
        live = wave
        if deadline_s is not None:
            now = time.monotonic()
            live = []
            for p in wave:
                if now - p.admitted_at > deadline_s:
                    # Expired while queued: fail safe before spending
                    # any compute on an answer nobody is waiting for.
                    self._timeout(p, scope="admission")
                else:
                    live.append(p)
        zones = [p for p in live if p.kind == "zone"]
        episodes = [p for p in live if p.kind == "episode"]
        if zones:
            await self._zone_wave(zones, deadline_s)
        if episodes:
            await self._episode_wave(episodes, deadline_s)
        self._sync_pool_stats()

    async def _call(self, fn, arg, timeout_s: float | None):
        """Run ``fn(arg)`` on the wave thread, deadline-bounded."""
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._executor, fn, arg)
        if timeout_s is None:
            return await future
        return await asyncio.wait_for(future, timeout_s)

    def _wave_timeout(self, pending: list,
                      deadline_s: float | None) -> float | None:
        """Seconds until the *last* member's deadline (or None).

        The wave keeps running while any member can still be answered
        in time; on completion, late-but-computed results are
        delivered (an answer in hand beats a fabricated reject), so
        the per-request deadline is enforced at wave granularity.
        """
        if deadline_s is None:
            return None
        now = time.monotonic()
        remaining = max(p.admitted_at + deadline_s - now
                        for p in pending)
        return max(remaining, 0.005)

    async def _zone_wave(self, zones: list,
                         deadline_s: float | None) -> None:
        items = [p.payload for p in zones]
        try:
            verdicts = await self._call(
                self.scheduler.check_zones_wave, items,
                self._wave_timeout(zones, deadline_s))
        except asyncio.TimeoutError:
            # Inline compute cannot be killed; the wave thread will
            # finish (and its late results are discarded by the done()
            # guards) while the clients fail safe now.
            for p in zones:
                self._timeout(p, scope="wave")
        except Exception as exc:  # noqa: BLE001 - resolves futures
            self.stats["wave_errors"] += 1
            self._fail(zones, exc)
        else:
            self.stats["zone_checks"] += len(zones)
            for p, verdict in zip(zones, verdicts):
                if not p.future.done():
                    p.future.set_result(verdict)

    async def _episode_wave(self, episodes: list,
                            deadline_s: float | None) -> None:
        requests = [p.payload for p in episodes]
        timeout_s = self._wave_timeout(episodes, deadline_s)
        use_pool = self.effective_workers > 1
        degraded = use_pool and not self._breaker.allow()
        if degraded:
            self.stats["degraded_waves"] += 1
        runner = self._fallback_run if degraded else self.scheduler.run
        try:
            out = await self._call(runner, requests, timeout_s)
        except asyncio.TimeoutError:
            if use_pool and not degraded:
                self._pool_fault()
            for p in episodes:
                self._timeout(p, scope="wave")
        except CheckTimedOut as exc:
            # The pool's collect deadline fired: the hung worker was
            # killed and respawned; the wave's requests fail safe.
            if use_pool and not degraded:
                self._pool_fault()
            for p in episodes:
                self._timeout(p, scope=exc.scope)
        except WorkerPoolError:
            # Pool broken past its respawn budget (the scheduler has
            # already torn it down): count the fault, then serve this
            # same wave on the bit-identical inline path — degraded,
            # not dropped.
            self._pool_fault()
            self.stats["degraded_waves"] += 1
            try:
                out = await self._call(self._fallback_run, requests,
                                       timeout_s)
            except asyncio.TimeoutError:
                for p in episodes:
                    self._timeout(p, scope="wave")
            except Exception as exc:  # noqa: BLE001 - resolves futures
                self.stats["wave_errors"] += 1
                self._fail(episodes, exc)
            else:
                self._resolve_episodes(episodes, out)
        except Exception as exc:  # noqa: BLE001 - resolves futures
            self.stats["wave_errors"] += 1
            self._fail(episodes, exc)
        else:
            if use_pool and not degraded:
                self._breaker.record_success()
            self._resolve_episodes(episodes, out)

    def _resolve_episodes(self, episodes: list, out: list) -> None:
        self.stats["episode_steps"] += len(episodes)
        for p, result in zip(episodes, out):
            if not p.future.done():
                p.future.set_result(result)

    def _fallback_run(self, requests):
        """Run one episode wave on the inline (workers=1) path.

        The fallback scheduler shares the model and pipeline config
        and keeps ``monitor_batching="exact"``, so by the engine's
        sharding contract its results are bit-for-bit those the pool
        path would have produced.  Built lazily on first degradation;
        runs on the wave thread.
        """
        if self._fallback is None:
            from dataclasses import replace

            self._fallback = EpisodeScheduler(
                self._model, config=self._config,
                engine=replace(self.scheduler.engine, workers=1))
        return self._fallback.run(requests)

    def _pool_fault(self) -> None:
        self.stats["pool_faults"] += 1
        self._breaker.record_failure()
        self.stats["breaker_opens"] = self._breaker.stats["opens"]

    def _timeout(self, p, scope: str) -> None:
        """Resolve one request as a typed, fail-safe timeout."""
        self.stats["timed_out"] += 1
        verdict = None
        if p.kind == "zone":
            _, box = p.payload
            verdict = conservative_reject(box)
        if not p.future.done():
            p.future.set_exception(CheckTimedOut(
                self.serve.deadline_ms or 0.0, scope, verdict))

    def _sync_pool_stats(self) -> None:
        """Mirror pool supervision counters into the broker ledger."""
        totals = dict(self.scheduler.pool_stats_total)
        pool = self.scheduler._pool
        if pool is not None:
            for key, value in pool.stats.items():
                totals[key] = totals.get(key, 0) + value
        self.stats["respawns"] = totals.get("respawns", 0)
        self.stats["worker_deaths"] = totals.get("worker_deaths", 0)
        self.stats["tasks_resubmitted"] = totals.get("resubmitted", 0)

    @staticmethod
    def _fail(pending: list, exc: BaseException) -> None:
        for p in pending:
            if not p.future.done():
                p.future.set_exception(exc)
