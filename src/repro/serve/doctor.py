"""Doctor-style self-check of the serving stack.

``python -m repro.serve.doctor`` answers, before any traffic arrives:
can this host actually serve?  It checks the platform facts (fork
start method, CPU count), exercises the shared-memory frame transport
end to end (ring slot *and* dedicated-overflow round-trips), compares
the **requested vs effective** worker count — the degraded-to-inline
case the engine only warns about once — and, given a system, live-fires
a broker: a zone check, an episode step, and an overload burst that
must produce *typed* rejections with every request accounted for.
With fork available it then runs a **fault drill**: a chaos plan
SIGKILLs a live worker mid-wave and the drill asserts respawn,
ring-ledger balance, bit-for-bit recovery, and a degraded-mode round
trip through the circuit breaker (see :mod:`repro.serve.chaos`).

Exit code 0 when every check passes, 1 otherwise; ``--json`` emits the
raw report for machine consumption.  ``scripts/check.sh`` runs the
tiny-system doctor as its serve smoke stage.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import multiprocessing as mp
import platform
import sys

import numpy as np

from repro.core.engine import (
    EngineConfig,
    EpisodeRequest,
    EpisodeScheduler,
)
from repro.serve.broker import AdmissionRejected, ServeBroker, ServeConfig
from repro.serve.pool import fork_available
from repro.serve.shm import FrameRing, attach_frame, detach_frame
from repro.utils.geometry import Box

__all__ = ["format_doctor_report", "main", "run_doctor"]


def _check_shared_memory() -> tuple[bool, str]:
    """Round-trip a frame through a ring slot and an overflow segment."""
    frame = np.arange(2 * 3 * 4, dtype=np.float32).reshape(2, 3, 4)
    big = np.arange(3 * 16 * 16, dtype=np.float32).reshape(3, 16, 16)
    cache: dict = {}
    with FrameRing(slots=2, slot_bytes=frame.nbytes) as ring:
        ticket = ring.put(frame)
        view = attach_frame(ticket, cache)
        slot_ok = bool(np.array_equal(view, frame)) and not ticket.dedicated
        del view
        detach_frame(ticket, cache)
        ring.release(ticket)
        overflow = ring.put(big)  # larger than a slot -> dedicated
        view = attach_frame(overflow, cache)
        overflow_ok = bool(np.array_equal(view, big)) and overflow.dedicated
        del view
        detach_frame(overflow, cache)
        ring.release(overflow)
        leak_free = ring.in_flight == 0
        for handle in cache.values():
            handle.close()
    ok = slot_ok and overflow_ok and leak_free
    return ok, (f"ring-slot {'ok' if slot_ok else 'FAILED'}, "
                f"overflow {'ok' if overflow_ok else 'FAILED'}, "
                f"in_flight drained {'ok' if leak_free else 'FAILED'}")


async def _probe_broker(system, serve: ServeConfig, rng) -> dict:
    """Live-fire one broker: zone check, episode step, overload burst."""
    frame = system.test_samples[0].image
    height, width = frame.shape[-2:]
    boxes = [
        Box(height // 4, width // 4, height // 3, width // 3),
        Box(height // 2, width // 2, height // 4, width // 4),
    ]
    probe: dict = {}
    broker = ServeBroker(system.model, config=system.pipeline_config(),
                         serve=serve, rng=rng)
    probe["effective_workers"] = broker.effective_workers
    async with broker:
        verdicts = await broker.check_zones(frame, boxes)
        probe["zone_checks_ok"] = (
            len(verdicts) == len(boxes)
            and all(hasattr(v, "accepted") for v in verdicts))
        episode = await broker.run_episode([frame], seed=0,
                                           name="doctor")
        probe["episode_step_ok"] = len(episode.results) == 1
    probe["drained_on_stop"] = (
        broker.stats["zone_checks"] + broker.stats["episode_steps"]
        == broker.stats["admitted"])

    # Overload burst against a tiny queue: backpressure must shed with
    # typed rejections and every request must be accounted for.
    burst = ServeBroker(system.model, config=system.pipeline_config(),
                        serve=ServeConfig(queue_depth=1, max_wave=1,
                                          admission_window_ms=0.0),
                        rng=rng)
    async with burst:
        outcomes = await asyncio.gather(
            *(burst.check_zone(frame, boxes[0]) for _ in range(8)),
            return_exceptions=True)
    rejected = sum(isinstance(o, AdmissionRejected) for o in outcomes)
    served = sum(not isinstance(o, BaseException) for o in outcomes)
    probe["overload_rejected"] = rejected
    probe["overload_served"] = served
    probe["overload_typed_ok"] = (
        rejected > 0 and served + rejected == len(outcomes)
        and all(isinstance(o, AdmissionRejected)
                for o in outcomes if isinstance(o, BaseException)))
    return probe


def _episodes_match(got, expected) -> bool:
    """Decisions + labels of two episode-result lists, bit compared."""
    if len(got) != len(expected):
        return False
    for ep_a, ep_b in zip(got, expected):
        if len(ep_a.results) != len(ep_b.results):
            return False
        for ra, rb in zip(ep_a.results, ep_b.results):
            if ra.decision.action is not rb.decision.action:
                return False
            if not np.array_equal(ra.predicted_labels,
                                  rb.predicted_labels):
                return False
    return True


def _fault_drill(system) -> dict:
    """Kill a live worker mid-wave; verify recovery and degradation.

    Stage 1 (supervision): a ``workers=2`` scheduler runs a small
    episode fleet while a chaos plan SIGKILLs worker 0 at its first
    task.  The pool must respawn the worker, resubmit the lost task,
    return results **bit-for-bit equal** to the inline reference, and
    leave zero frame-ring tickets in flight (the ledger balances).

    Stage 2 (degraded round trip): a broker with ``max_respawns=0``
    and ``breaker_threshold=1`` takes a pool fault on its first
    episode wave — which must still be served (re-run inline), trip
    the breaker, and leave the next wave serving in degraded mode.
    """
    from repro.serve.chaos import FaultPlan, arm

    config = system.pipeline_config()
    frame = system.test_samples[0].image
    episodes = [EpisodeRequest(frames=(frame, frame), seed=seed,
                               name=f"drill{seed}")
                for seed in (0, 1)]
    expected = EpisodeScheduler(system.model, config).run(episodes)

    drill: dict = {}
    with EpisodeScheduler(
            system.model, config,
            engine=EngineConfig(workers=2)) as sched:
        arm(sched, FaultPlan.kill_worker(worker=0, at_task=0))
        got = sched.run(episodes)
        pool = sched._pool
        drill["respawns"] = pool.stats["respawns"]
        drill["worker_deaths"] = pool.stats["worker_deaths"]
        drill["ring_balanced"] = pool._ring.in_flight == 0
    drill["bit_for_bit"] = _episodes_match(got, expected)
    drill["supervision_ok"] = bool(
        drill["respawns"] >= 1 and drill["ring_balanced"]
        and drill["bit_for_bit"])

    async def degraded_round_trip() -> dict:
        serve = ServeConfig(workers=2, breaker_threshold=1,
                            admission_window_ms=0.0)
        broker = ServeBroker(system.model, config=config,
                             engine=EngineConfig(max_respawns=0),
                             serve=serve)
        arm(broker, FaultPlan.kill_worker(worker=0, at_task=0))
        async with broker:
            first = await broker.run_episode([frame, frame], seed=0)
            second = await broker.run_episode([frame, frame], seed=1)
        stats = broker.stats
        return {
            "faulted_wave_served": _episodes_match(
                [first], [expected[0]]),
            "degraded_wave_served": _episodes_match(
                [second], [expected[1]]),
            "pool_faults": stats["pool_faults"],
            "degraded_waves": stats["degraded_waves"],
            "ledger_balanced": (stats["admitted"]
                                == stats["episode_steps"]),
        }

    degraded = asyncio.run(degraded_round_trip())
    drill.update(degraded)
    drill["degraded_ok"] = bool(
        degraded["faulted_wave_served"]
        and degraded["degraded_wave_served"]
        and degraded["pool_faults"] >= 1
        and degraded["degraded_waves"] >= 1
        and degraded["ledger_balanced"])
    return drill


def run_doctor(system=None, serve: ServeConfig | None = None,
               rng=0) -> dict:
    """Run every self-check; returns ``{"ok", "checks", "info"}``.

    ``system`` (a :class:`repro.eval.harness.TrainedSystem`) enables
    the live broker probe; without it the doctor checks platform and
    transport only.  ``serve`` sizes the probe broker (and the
    requested-vs-effective comparison); default :class:`ServeConfig`.
    """
    serve = serve or ServeConfig()
    checks: list[dict] = []

    def check(name: str, ok: bool, detail: str) -> None:
        checks.append({"name": name, "ok": bool(ok), "detail": detail})

    info = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": mp.cpu_count(),
        "start_methods": list(mp.get_all_start_methods()),
    }
    check("fork-start-method", fork_available(),
          "persistent worker pool needs 'fork'; available: "
          + ",".join(info["start_methods"]))

    try:
        ok, detail = _check_shared_memory()
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        ok, detail = False, f"raised {exc!r}"
    check("shared-memory-roundtrip", ok, detail)

    requested = serve.resolved_workers()
    effective = requested if (requested <= 1 or fork_available()) else 1
    info["requested_workers"] = requested
    info["effective_workers"] = effective
    check("effective-workers", effective == requested,
          f"requested {requested}, effective {effective}"
          + ("" if effective == requested
             else " — sharding degraded to inline (no fork)"))

    if system is not None:
        try:
            probe = asyncio.run(_probe_broker(system, serve, rng))
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            check("broker-end-to-end", False, f"raised {exc!r}")
        else:
            info["broker_probe"] = probe
            check("broker-end-to-end",
                  probe["zone_checks_ok"] and probe["episode_step_ok"],
                  f"zone checks {probe['zone_checks_ok']}, "
                  f"episode step {probe['episode_step_ok']}, "
                  f"effective workers {probe['effective_workers']}")
            check("graceful-drain", probe["drained_on_stop"],
                  "stop() resolved every admitted check")
            check("typed-backpressure", probe["overload_typed_ok"],
                  f"burst of 8 vs queue_depth=1: {probe['overload_served']} "
                  f"served + {probe['overload_rejected']} typed rejections "
                  "(no silent drops)")

    if system is not None and fork_available():
        try:
            drill = _fault_drill(system)
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            check("fault-drill", False, f"raised {exc!r}")
        else:
            info["fault_drill"] = drill
            check("fault-drill-supervision", drill["supervision_ok"],
                  f"worker killed mid-wave: {drill['respawns']} "
                  f"respawn(s), ring balanced {drill['ring_balanced']}, "
                  f"bit-for-bit {drill['bit_for_bit']}")
            check("fault-drill-degraded", drill["degraded_ok"],
                  f"{drill['pool_faults']} pool fault(s) -> "
                  f"{drill['degraded_waves']} degraded wave(s), every "
                  "admitted step served inline (ledger balanced "
                  f"{drill['ledger_balanced']})")

    return {"ok": all(c["ok"] for c in checks), "checks": checks,
            "info": info}


def format_doctor_report(report: dict) -> str:
    lines = ["repro.serve doctor"]
    info = report["info"]
    lines.append(
        f"  python {info['python']}, numpy {info['numpy']}, "
        f"{info['cpu_count']} cpu(s), workers "
        f"{info['effective_workers']}/{info['requested_workers']} "
        "(effective/requested)")
    for check in report["checks"]:
        mark = "ok  " if check["ok"] else "FAIL"
        lines.append(f"  [{mark}] {check['name']}: {check['detail']}")
    lines.append("status: " + ("healthy" if report["ok"] else "UNHEALTHY"))
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.doctor",
        description="Self-check the repro serving stack.")
    parser.add_argument(
        "--system", choices=("tiny", "none"), default="tiny",
        help="trained system for the live broker probe: 'tiny' (the "
             "cached CI-scale system; default) or 'none' (platform "
             "and transport checks only)")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker count to probe with (default: ServeConfig "
             "resolution, i.e. REPRO_SERVE_WORKERS or 1)")
    parser.add_argument(
        "--json", action="store_true",
        help="emit the raw report as JSON instead of text")
    args = parser.parse_args(argv)

    serve = ServeConfig(workers=args.workers)
    system = None
    if args.system == "tiny":
        from repro.eval.harness import build_trained_system, \
            tiny_harness_config

        system = build_trained_system(tiny_harness_config(), cache=True)
    report = run_doctor(system=system, serve=serve)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_doctor_report(report))
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
