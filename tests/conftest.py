"""Shared fixtures for the test suite.

The expensive artefact — a trained segmentation system — is built once
per session at a deliberately tiny scale (small frames, few epochs) and
cached on disk, so the integration/core tests that need a real trained
model stay fast on repeated runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.generator import DatasetConfig
from repro.eval.harness import HarnessConfig, TrainedSystem, build_trained_system
from repro.segmentation.train import TrainConfig


@pytest.fixture(scope="session")
def tiny_system() -> TrainedSystem:
    """A small but genuinely trained system (cached across runs)."""
    config = HarnessConfig(
        dataset=DatasetConfig(num_scenes=5, windows_per_scene=8,
                              image_shape=(48, 64), gsd=1.0, seed=99),
        train=TrainConfig(epochs=30, batch_size=4, learning_rate=3e-3,
                          seed=5),
        model_channels=16,
        model_blocks=2,
        model_seed=11,
        zone_size_m=10.0,
        monitor_samples=6,
    )
    return build_trained_system(config, cache=True)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)
