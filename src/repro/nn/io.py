"""Checkpoint save/load for numpy-substrate models.

Checkpoints are plain ``.npz`` archives keyed by qualified parameter
names, plus batch-norm running statistics.  The format is deliberately
framework-free so trained monitors can be cached between benchmark runs.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import BatchNorm2d
from repro.nn.module import Module

__all__ = ["save_weights", "load_weights", "state_dict", "load_state_dict"]

_RUNNING_PREFIX = "__running__"


def state_dict(model: Module) -> dict[str, np.ndarray]:
    """Collect all parameters and running statistics into a flat dict."""
    state = {name: p.data.copy() for name, p in model.named_parameters()}
    for i, module in enumerate(model.modules()):
        if isinstance(module, BatchNorm2d):
            state[f"{_RUNNING_PREFIX}{i}.mean"] = module.running_mean.copy()
            state[f"{_RUNNING_PREFIX}{i}.var"] = module.running_var.copy()
    return state


def load_state_dict(model: Module, state: dict[str, np.ndarray]) -> None:
    """Load a dict produced by :func:`state_dict` into ``model``.

    Raises ``KeyError`` on missing parameters and ``ValueError`` on shape
    mismatch — silent partial loads would be a safety hazard for a
    certified component.
    """
    for name, p in model.named_parameters():
        if name not in state:
            raise KeyError(f"checkpoint missing parameter {name!r}")
        value = np.asarray(state[name])
        if value.shape != p.data.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: checkpoint "
                f"{value.shape}, model {p.data.shape}")
        p.data[...] = value.astype(p.data.dtype)
    for i, module in enumerate(model.modules()):
        if isinstance(module, BatchNorm2d):
            mean_key = f"{_RUNNING_PREFIX}{i}.mean"
            var_key = f"{_RUNNING_PREFIX}{i}.var"
            if mean_key in state:
                module.running_mean[...] = state[mean_key]
            if var_key in state:
                module.running_var[...] = state[var_key]


def save_weights(model: Module, path) -> None:
    """Serialise ``model`` weights (and BN statistics) to ``path``."""
    np.savez_compressed(path, **state_dict(model))


def load_weights(model: Module, path) -> None:
    """Restore weights saved by :func:`save_weights` into ``model``."""
    with np.load(path) as archive:
        load_state_dict(model, dict(archive))
