"""File collection, checker execution, suppression + baseline filtering.

Two entry points:

* :func:`lint_tree` — what the CLI runs: walk the default (or given)
  paths under a repo root, lint every ``*.py``, partition findings
  into active / suppressed / baselined.
* :func:`lint_source` — what the meta-tests use: lint a source
  *string* as if it lived at an arbitrary repo-relative path, so every
  rule's path-scoping is exercised without touching the real tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import BaseChecker, CheckContext
from repro.analysis.baseline import Baseline
from repro.analysis.checkers import CHECKER_CLASSES
from repro.analysis.findings import Finding
from repro.analysis.suppress import is_suppressed, suppressed_rules

__all__ = [
    "DEFAULT_PATHS",
    "LintResult",
    "all_checkers",
    "lint_source",
    "lint_file",
    "lint_tree",
]

#: Directories linted when the CLI gets no explicit paths.
DEFAULT_PATHS = ("src", "benchmarks", "examples", "tests", "scripts")

#: Directory names never descended into.
EXCLUDE_DIRS = frozenset({
    "__pycache__", ".git", ".smoke", ".pytest_cache", ".venv",
    "node_modules", ".eggs", "build", "dist",
})


def all_checkers() -> list[BaseChecker]:
    return [cls() for cls in CHECKER_CLASSES]


@dataclass
class LintResult:
    """Partitioned outcome of one lint run."""

    #: Findings that fail a ``--strict`` run.
    active: list[Finding] = field(default_factory=list)
    #: Findings silenced by an inline ``# repro-lint: disable=``.
    suppressed: list[Finding] = field(default_factory=list)
    #: Findings absorbed by the committed baseline.
    baselined: list[Finding] = field(default_factory=list)
    files: int = 0

    def extend(self, other: "LintResult") -> None:
        self.active.extend(other.active)
        self.suppressed.extend(other.suppressed)
        self.baselined.extend(other.baselined)
        self.files += other.files

    def sort(self) -> None:
        self.active.sort()
        self.suppressed.sort()
        self.baselined.sort()


def lint_source(source: str, rel_path: str, root: Path,
                checkers: list[BaseChecker] | None = None,
                baseline: Baseline | None = None) -> LintResult:
    """Lint ``source`` as if it lived at ``root/rel_path``."""
    checkers = all_checkers() if checkers is None else checkers
    result = LintResult(files=1)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        result.active.append(Finding(
            path=rel_path, line=exc.lineno or 1,
            col=(exc.offset or 0) + 1, rule="PARSE-ERROR",
            message=f"file does not parse: {exc.msg}"))
        return result
    ctx = CheckContext(root=root, rel_path=rel_path, tree=tree,
                       source=source)
    table = suppressed_rules(ctx.lines)
    for checker in checkers:
        for finding in checker.check(ctx) or ():
            if is_suppressed(finding.rule, finding.line, table):
                result.suppressed.append(finding)
            elif baseline is not None and baseline.absorb(
                    finding, ctx.line_text(finding.line)):
                result.baselined.append(finding)
            else:
                result.active.append(finding)
    return result


def lint_file(root: Path, path: Path,
              checkers: list[BaseChecker] | None = None,
              baseline: Baseline | None = None) -> LintResult:
    rel = path.resolve().relative_to(root.resolve()).as_posix()
    try:
        source = path.read_text()
    except (OSError, UnicodeDecodeError) as exc:
        result = LintResult(files=1)
        result.active.append(Finding(
            path=rel, line=1, col=1, rule="PARSE-ERROR",
            message=f"file is unreadable: {exc}"))
        return result
    return lint_source(source, rel, root, checkers=checkers,
                       baseline=baseline)


def collect_files(root: Path, paths: list[str]) -> list[Path]:
    """All ``*.py`` files under ``paths`` (repo-relative), sorted."""
    files: set[Path] = set()
    for entry in paths:
        target = (root / entry).resolve()
        if target.is_file() and target.suffix == ".py":
            files.add(target)
            continue
        if not target.is_dir():
            continue
        for candidate in target.rglob("*.py"):
            if not any(part in EXCLUDE_DIRS
                       for part in candidate.parts):
                files.add(candidate)
    return sorted(files)


def lint_tree(root: Path, paths: list[str] | None = None,
              checkers: list[BaseChecker] | None = None,
              baseline: Baseline | None = None) -> LintResult:
    """Lint every python file under ``paths`` (default tree)."""
    checkers = all_checkers() if checkers is None else checkers
    result = LintResult()
    for path in collect_files(root, list(paths or DEFAULT_PATHS)):
        result.extend(lint_file(root, path, checkers=checkers,
                                baseline=baseline))
    result.sort()
    return result
